//! The versioned manifest.
//!
//! The manifest is the dataset's durable root: one small file describing the
//! dataset configuration, the latest inferred [`Schema`], the lineage of
//! on-disk components (ids, layouts, page extents, per-leaf key ranges) and
//! the next component id. A dataset directory is *defined* by its manifest:
//! recovery reads it, reopens every listed component against the page file,
//! and replays the WAL on top.
//!
//! ## Atomicity
//!
//! Each commit writes a complete manifest to `MANIFEST.tmp`, syncs it, and
//! atomically renames it over `MANIFEST`. A crash before the rename leaves
//! the previous manifest intact (new component pages become unreferenced
//! orphans in the page file — never corruption, and the orphan sweep at the
//! next open frees them); a crash after the rename leaves the new manifest
//! fully in place. The version counter
//! increases with every commit, and the body is CRC-guarded so a damaged
//! manifest is rejected rather than half-loaded.
//!
//! ## Format versioning
//!
//! The magic bytes carry the format generation. `LSMMAN05` (current)
//! appends per-leaf column statistics (zone maps) to every leaf descriptor,
//! so filter pushdown can skip whole leaves before any page is read.
//! `LSMMAN04` added the memory-budget knob behind the shared decoded-leaf
//! cache, so a reopened dataset keeps the caching behaviour it was created
//! with. `LSMMAN03` added the compaction-strategy selection and its knobs;
//! `LSMMAN02` appended the per-component column statistics
//! ([`storage::ComponentStats`]) that the query planner's zone maps and
//! cost model consume; `LSMMAN01` manifests predate statistics. All older
//! formats are still read: pre-v5 leaves reopen without zone maps (those
//! leaves simply aren't skippable until the next flush/merge rewrites
//! them), pre-v4 configs decode with no memory budget, v1/v2 configs
//! additionally decode with the default tiering strategy, and v1
//! components reopen with no statistics (which disables zone-map pruning
//! for them and makes the planner fall back to conservative estimates).
//! Commits always write the current format.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use docmodel::Value;
use encoding::crc::crc32;
use encoding::{plain, varint};
use schema::{serial, Schema};
use storage::component::{ComponentDescriptor, LeafDescriptor};
use storage::stats::{ColumnStats, ComponentStats};
use storage::{LayoutKind, PageId, RowFormat};

use crate::{PersistError, Result};

/// Magic bytes opening every current-format manifest file.
const MAGIC: &[u8; 8] = b"LSMMAN05";
/// Previous format: no per-leaf statistics. Still readable.
const MAGIC_V4: &[u8; 8] = b"LSMMAN04";
/// Before that: additionally, no memory-budget field. Still readable.
const MAGIC_V3: &[u8; 8] = b"LSMMAN03";
/// Before that: additionally, no compaction-strategy fields. Still readable.
const MAGIC_V2: &[u8; 8] = b"LSMMAN02";
/// Oldest format: additionally, no per-component statistics. Still readable.
const MAGIC_V1: &[u8; 8] = b"LSMMAN01";

/// Decoded manifest format generation (from the magic bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Format {
    V1,
    V2,
    V3,
    V4,
    V5,
}

/// The durable subset of the dataset configuration. Enough to reconstruct a
/// working `DatasetConfig` on [`reopen`](crate::DurableStore), so a dataset
/// directory is self-describing.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedConfig {
    /// Dataset name.
    pub name: String,
    /// Storage layout of on-disk components.
    pub layout: LayoutKind,
    /// Primary-key field name.
    pub key_field: String,
    /// Memtable budget in bytes.
    pub memtable_budget: u64,
    /// Page size of the page file (must match on reopen).
    pub page_size: u64,
    /// Buffer-cache capacity in pages.
    pub cache_pages: u64,
    /// Whether a primary-key index is maintained.
    pub primary_key_index: bool,
    /// Secondary index path (rendered with `Path`'s display syntax).
    pub secondary_index_on: Option<String>,
    /// Page-level compression.
    pub compress_pages: bool,
    /// AMAX: records per mega leaf.
    pub amax_record_limit: u64,
    /// AMAX: empty-page tolerance.
    pub amax_empty_page_tolerance: f64,
    /// Tiering policy: size ratio.
    pub policy_size_ratio: f64,
    /// Tiering policy: max mergeable components.
    pub policy_max_components: u64,
    /// Compaction strategy selector: 0 = tiered, 1 = leveled,
    /// 2 = lazy-leveled (format v3; older manifests decode as 0).
    pub compaction_kind: u8,
    /// Leveled/lazy-leveled: target run size in bytes.
    pub compaction_target_size: u64,
    /// Leveled/lazy-leveled: L0 run-count trigger.
    pub compaction_l0_threshold: u64,
    /// Leveled/lazy-leveled: size ratio between adjacent runs.
    pub compaction_ratio: f64,
    /// Memory budget in bytes for this dataset's share of memtables, sealed
    /// queue, page cache, and decoded-leaf cache (format v4; 0 = no budget
    /// configured, older manifests decode as 0).
    pub memory_budget: u64,
}

/// Everything one manifest commit records.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestData {
    /// Monotonic commit version (assigned by [`ManifestStore::commit`]).
    pub version: u64,
    /// Durable dataset configuration.
    pub config: PersistedConfig,
    /// Id the next flushed/merged component will receive.
    pub next_component_id: u64,
    /// The cumulative inferred schema (column ids are positions, so every
    /// component written under any earlier schema stays readable).
    pub schema: Schema,
    /// Live components, oldest first.
    pub components: Vec<ComponentDescriptor>,
}

fn write_value(out: &mut Vec<u8>, value: &Value) {
    RowFormat::Vb.serialize(value, out);
}

fn read_value(buf: &[u8], pos: &mut usize) -> Result<Value> {
    RowFormat::Vb.deserialize(buf, pos)
}

fn write_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn read_bool(buf: &[u8], pos: &mut usize) -> Result<bool> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| PersistError::new("truncated manifest"))?;
    *pos += 1;
    Ok(b != 0)
}

/// Encode a manifest body in the given format generation. Production
/// commits always use [`Format::V5`]; the older formats exist so the
/// compatibility tests can produce genuine old-format bytes.
fn encode_body(data: &ManifestData, format: Format) -> Vec<u8> {
    let mut out = Vec::new();
    varint::write_u64(&mut out, data.version);

    let c = &data.config;
    plain::write_str(&mut out, &c.name);
    out.push(c.layout.tag());
    plain::write_str(&mut out, &c.key_field);
    varint::write_u64(&mut out, c.memtable_budget);
    varint::write_u64(&mut out, c.page_size);
    varint::write_u64(&mut out, c.cache_pages);
    write_bool(&mut out, c.primary_key_index);
    match &c.secondary_index_on {
        Some(path) => {
            write_bool(&mut out, true);
            plain::write_str(&mut out, path);
        }
        None => write_bool(&mut out, false),
    }
    write_bool(&mut out, c.compress_pages);
    varint::write_u64(&mut out, c.amax_record_limit);
    plain::write_f64(&mut out, c.amax_empty_page_tolerance);
    plain::write_f64(&mut out, c.policy_size_ratio);
    varint::write_u64(&mut out, c.policy_max_components);
    if format >= Format::V3 {
        out.push(c.compaction_kind);
        varint::write_u64(&mut out, c.compaction_target_size);
        varint::write_u64(&mut out, c.compaction_l0_threshold);
        plain::write_f64(&mut out, c.compaction_ratio);
    }
    if format >= Format::V4 {
        varint::write_u64(&mut out, c.memory_budget);
    }

    varint::write_u64(&mut out, data.next_component_id);
    serial::write_schema(&data.schema, &mut out);

    varint::write_u64(&mut out, data.components.len() as u64);
    for comp in &data.components {
        varint::write_u64(&mut out, comp.id);
        out.push(comp.layout.tag());
        varint::write_u64(&mut out, comp.record_count as u64);
        varint::write_u64(&mut out, comp.stored_bytes);
        varint::write_u64(&mut out, comp.pages.len() as u64);
        for &page in &comp.pages {
            varint::write_u64(&mut out, page);
        }
        varint::write_u64(&mut out, comp.leaves.len() as u64);
        for leaf in &comp.leaves {
            varint::write_u64(&mut out, leaf.page);
            varint::write_u64(&mut out, leaf.data_pages.len() as u64);
            for &page in &leaf.data_pages {
                varint::write_u64(&mut out, page);
            }
            write_value(&mut out, &leaf.min_key);
            write_value(&mut out, &leaf.max_key);
            varint::write_u64(&mut out, leaf.record_count as u64);
            if format >= Format::V5 {
                write_stats(&mut out, leaf.stats.as_ref());
            }
        }
        if format >= Format::V2 {
            write_stats(&mut out, comp.stats.as_ref());
        }
    }
    out
}

/// Serialize one statistics block — per component (format v2) and, with the
/// same encoding, per leaf (format v5 zone maps).
fn write_stats(out: &mut Vec<u8>, stats: Option<&ComponentStats>) {
    let Some(stats) = stats else {
        write_bool(out, false);
        return;
    };
    write_bool(out, true);
    varint::write_u64(out, stats.live_records);
    varint::write_u64(out, stats.columns.len() as u64);
    for (path, col) in &stats.columns {
        plain::write_str(out, path);
        varint::write_u64(out, col.rows);
        varint::write_u64(out, col.values);
        match (&col.min, &col.max) {
            (Some(min), Some(max)) => {
                write_bool(out, true);
                write_value(out, min);
                write_value(out, max);
            }
            _ => write_bool(out, false),
        }
    }
}

/// Deserialize one statistics block (per component or per leaf).
fn read_stats(buf: &[u8], pos: &mut usize) -> Result<Option<ComponentStats>> {
    if !read_bool(buf, pos)? {
        return Ok(None);
    }
    let live_records = varint::read_u64(buf, pos)?;
    let column_count = varint::read_u64(buf, pos)? as usize;
    let mut columns = std::collections::BTreeMap::new();
    for _ in 0..column_count {
        let path = plain::read_str(buf, pos)?.to_string();
        let rows = varint::read_u64(buf, pos)?;
        let values = varint::read_u64(buf, pos)?;
        let (min, max) = if read_bool(buf, pos)? {
            (Some(read_value(buf, pos)?), Some(read_value(buf, pos)?))
        } else {
            (None, None)
        };
        columns.insert(path, ColumnStats { rows, values, min, max });
    }
    Ok(Some(ComponentStats { live_records, columns }))
}

fn decode_body(buf: &[u8], format: Format) -> Result<ManifestData> {
    let pos = &mut 0usize;
    let version = varint::read_u64(buf, pos)?;

    let name = plain::read_str(buf, pos)?.to_string();
    let layout = LayoutKind::from_tag(read_u8(buf, pos)?)?;
    let key_field = plain::read_str(buf, pos)?.to_string();
    let memtable_budget = varint::read_u64(buf, pos)?;
    let page_size = varint::read_u64(buf, pos)?;
    let cache_pages = varint::read_u64(buf, pos)?;
    let primary_key_index = read_bool(buf, pos)?;
    let secondary_index_on = if read_bool(buf, pos)? {
        Some(plain::read_str(buf, pos)?.to_string())
    } else {
        None
    };
    let compress_pages = read_bool(buf, pos)?;
    let amax_record_limit = varint::read_u64(buf, pos)?;
    let amax_empty_page_tolerance = plain::read_f64(buf, pos)?;
    let policy_size_ratio = plain::read_f64(buf, pos)?;
    let policy_max_components = varint::read_u64(buf, pos)?;
    // Compaction-strategy fields arrived in v3; older manifests were all
    // written under the fixed tiering policy.
    let (compaction_kind, compaction_target_size, compaction_l0_threshold, compaction_ratio) =
        if format >= Format::V3 {
            (
                read_u8(buf, pos)?,
                varint::read_u64(buf, pos)?,
                varint::read_u64(buf, pos)?,
                plain::read_f64(buf, pos)?,
            )
        } else {
            (0, 4 << 20, 4, 0.5)
        };
    // The memory budget arrived in v4; older manifests ran unbudgeted.
    let memory_budget = if format >= Format::V4 {
        varint::read_u64(buf, pos)?
    } else {
        0
    };

    let next_component_id = varint::read_u64(buf, pos)?;
    let schema = serial::read_schema(buf, pos)?;

    let component_count = varint::read_u64(buf, pos)? as usize;
    let mut components = Vec::with_capacity(component_count.min(1 << 16));
    for _ in 0..component_count {
        let id = varint::read_u64(buf, pos)?;
        let layout = LayoutKind::from_tag(read_u8(buf, pos)?)?;
        let record_count = varint::read_u64(buf, pos)? as usize;
        let stored_bytes = varint::read_u64(buf, pos)?;
        let page_count = varint::read_u64(buf, pos)? as usize;
        let mut pages: Vec<PageId> = Vec::with_capacity(page_count.min(1 << 20));
        for _ in 0..page_count {
            pages.push(varint::read_u64(buf, pos)?);
        }
        let leaf_count = varint::read_u64(buf, pos)? as usize;
        let mut leaves = Vec::with_capacity(leaf_count.min(1 << 20));
        for _ in 0..leaf_count {
            let page = varint::read_u64(buf, pos)?;
            let data_page_count = varint::read_u64(buf, pos)? as usize;
            let mut data_pages: Vec<PageId> = Vec::with_capacity(data_page_count.min(1 << 20));
            for _ in 0..data_page_count {
                data_pages.push(varint::read_u64(buf, pos)?);
            }
            let min_key = read_value(buf, pos)?;
            let max_key = read_value(buf, pos)?;
            let record_count = varint::read_u64(buf, pos)? as usize;
            // Per-leaf zone maps arrived in v5; older leaves reopen without
            // them, so they just aren't skippable until rewritten.
            let stats = if format >= Format::V5 {
                read_stats(buf, pos)?
            } else {
                None
            };
            leaves.push(LeafDescriptor {
                page,
                data_pages,
                min_key,
                max_key,
                record_count,
                stats,
            });
        }
        let stats = if format >= Format::V2 {
            read_stats(buf, pos)?
        } else {
            None
        };
        components.push(ComponentDescriptor {
            id,
            layout,
            record_count,
            stored_bytes,
            pages,
            leaves,
            stats,
        });
    }

    Ok(ManifestData {
        version,
        config: PersistedConfig {
            name,
            layout,
            key_field,
            memtable_budget,
            page_size,
            cache_pages,
            primary_key_index,
            secondary_index_on,
            compress_pages,
            amax_record_limit,
            amax_empty_page_tolerance,
            policy_size_ratio,
            policy_max_components,
            compaction_kind,
            compaction_target_size,
            compaction_l0_threshold,
            compaction_ratio,
            memory_budget,
        },
        next_component_id,
        schema,
        components,
    })
}

fn read_u8(buf: &[u8], pos: &mut usize) -> Result<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| PersistError::new("truncated manifest"))?;
    *pos += 1;
    Ok(b)
}

/// Reads and atomically commits manifests in a dataset directory.
pub struct ManifestStore {
    path: PathBuf,
    tmp_path: PathBuf,
    dir: PathBuf,
    /// Version of the last loaded or committed manifest.
    version: u64,
}

impl ManifestStore {
    /// File name of the manifest within a dataset directory.
    pub const FILE_NAME: &'static str = "MANIFEST";

    /// Open the manifest location in `dir` and load the current manifest if
    /// one exists.
    pub fn open(dir: &Path) -> Result<(ManifestStore, Option<ManifestData>)> {
        let path = dir.join(Self::FILE_NAME);
        let tmp_path = dir.join(format!("{}.tmp", Self::FILE_NAME));
        // A crash may have left a stale temp file; it was never the truth.
        let _ = std::fs::remove_file(&tmp_path);
        let mut store = ManifestStore {
            path,
            tmp_path,
            dir: dir.to_path_buf(),
            version: 0,
        };
        let data = store.load()?;
        if let Some(data) = &data {
            store.version = data.version;
        }
        Ok((store, data))
    }

    fn load(&self) -> Result<Option<ManifestData>> {
        let mut file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(PersistError::new(format!(
                    "open manifest {}: {e}",
                    self.path.display()
                )))
            }
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| PersistError::new(format!("read manifest: {e}")))?;
        if bytes.len() < MAGIC.len() + 4 {
            return Err(PersistError::new("manifest too short"));
        }
        let format = match &bytes[..MAGIC.len()] {
            m if m == MAGIC => Format::V5,
            m if m == MAGIC_V4 => Format::V4,
            m if m == MAGIC_V3 => Format::V3,
            m if m == MAGIC_V2 => Format::V2,
            m if m == MAGIC_V1 => Format::V1,
            _ => return Err(PersistError::new("manifest magic mismatch")),
        };
        let crc_end = MAGIC.len() + 4;
        let expected_crc = u32::from_le_bytes(bytes[MAGIC.len()..crc_end].try_into().unwrap());
        let body = &bytes[crc_end..];
        if crc32(body) != expected_crc {
            return Err(PersistError::new(
                "manifest failed its CRC check — corrupt manifest",
            ));
        }
        decode_body(body, format).map(Some)
    }

    /// The version of the most recently loaded or committed manifest.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Atomically commit `data` as the next manifest version. On success the
    /// new manifest is durable; on failure (or crash) the previous manifest
    /// is still intact.
    pub fn commit(&mut self, mut data: ManifestData) -> Result<u64> {
        data.version = self.version + 1;
        let body = encode_body(&data, Format::V5);
        let mut bytes = Vec::with_capacity(MAGIC.len() + 4 + body.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        bytes.extend_from_slice(&body);

        let mut tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&self.tmp_path)
            .map_err(|e| PersistError::new(format!("open manifest temp: {e}")))?;
        tmp.write_all(&bytes)
            .map_err(|e| PersistError::new(format!("write manifest temp: {e}")))?;
        tmp.sync_data()
            .map_err(|e| PersistError::new(format!("sync manifest temp: {e}")))?;
        drop(tmp);
        std::fs::rename(&self.tmp_path, &self.path)
            .map_err(|e| PersistError::new(format!("rename manifest into place: {e}")))?;
        // Make the rename itself durable.
        if let Ok(dir) = File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        self.version = data.version;
        Ok(self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::doc;
    use schema::SchemaBuilder;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("persist-manifest-tests-{}", std::process::id()))
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_data() -> ManifestData {
        let mut builder = SchemaBuilder::new(Some("id".to_string()));
        builder.observe(&doc!({"id": 1, "user": {"name": "a"}, "tags": [1, 2]}));
        builder.observe(&doc!({"id": 2, "user": "heterogeneous"}));
        ManifestData {
            version: 0,
            config: PersistedConfig {
                name: "tweets".to_string(),
                layout: LayoutKind::Amax,
                key_field: "id".to_string(),
                memtable_budget: 1 << 20,
                page_size: 4096,
                cache_pages: storage::DEFAULT_CACHE_PAGES as u64,
                primary_key_index: true,
                secondary_index_on: Some("timestamp".to_string()),
                compress_pages: true,
                amax_record_limit: 15_000,
                amax_empty_page_tolerance: 0.2,
                policy_size_ratio: 1.2,
                policy_max_components: 5,
                compaction_kind: 1,
                compaction_target_size: 8 << 20,
                compaction_l0_threshold: 3,
                compaction_ratio: 0.75,
                memory_budget: 32 << 20,
            },
            next_component_id: 7,
            schema: builder.into_schema(),
            components: vec![ComponentDescriptor {
                id: 3,
                layout: LayoutKind::Amax,
                record_count: 123,
                stored_bytes: 4567,
                pages: vec![0, 1, 2, 5],
                leaves: vec![LeafDescriptor {
                    page: 0,
                    data_pages: vec![1, 2, 5],
                    min_key: Value::Int(0),
                    max_key: Value::Int(122),
                    record_count: 123,
                    stats: Some(sample_stats()),
                }],
                stats: Some(sample_stats()),
            }],
        }
    }

    fn sample_stats() -> ComponentStats {
        let mut columns = std::collections::BTreeMap::new();
        columns.insert(
            "timestamp".to_string(),
            ColumnStats {
                rows: 123,
                values: 123,
                min: Some(Value::Int(1_000)),
                max: Some(Value::Int(1_122)),
            },
        );
        columns.insert(
            "tags[*]".to_string(),
            ColumnStats { rows: 17, values: 40, min: None, max: None },
        );
        ComponentStats { live_records: 123, columns }
    }

    #[test]
    fn commit_load_roundtrip_bumps_versions() {
        let dir = temp_dir("roundtrip");
        let (mut store, loaded) = ManifestStore::open(&dir).unwrap();
        assert!(loaded.is_none());

        let data = sample_data();
        assert_eq!(store.commit(data.clone()).unwrap(), 1);
        assert_eq!(store.commit(data.clone()).unwrap(), 2);

        let (store2, loaded) = ManifestStore::open(&dir).unwrap();
        let loaded = loaded.unwrap();
        assert_eq!(store2.version(), 2);
        assert_eq!(loaded.version, 2);
        assert_eq!(loaded.config, data.config);
        assert_eq!(loaded.next_component_id, 7);
        assert_eq!(loaded.schema, data.schema);
        assert_eq!(loaded.components, data.components);
    }

    #[test]
    fn stats_roundtrip_and_absent_stats_stay_absent() {
        let dir = temp_dir("stats-roundtrip");
        let (mut store, _) = ManifestStore::open(&dir).unwrap();
        let mut data = sample_data();
        data.components.push(ComponentDescriptor {
            id: 4,
            layout: LayoutKind::Vb,
            record_count: 10,
            stored_bytes: 99,
            pages: vec![7],
            leaves: Vec::new(),
            stats: None, // e.g. carried over from a pre-stats manifest
        });
        store.commit(data.clone()).unwrap();
        let (_, loaded) = ManifestStore::open(&dir).unwrap();
        let loaded = loaded.unwrap();
        assert_eq!(loaded.components[0].stats, Some(sample_stats()));
        assert_eq!(loaded.components[1].stats, None);
    }

    /// The compaction fields an old-format (pre-v3) manifest decodes to: the
    /// default tiering strategy (kind 0) with the leveled knobs at their
    /// defaults — and, as for every pre-v4 format, no memory budget.
    fn with_default_compaction(mut config: PersistedConfig) -> PersistedConfig {
        config.compaction_kind = 0;
        config.compaction_target_size = 4 << 20;
        config.compaction_l0_threshold = 4;
        config.compaction_ratio = 0.5;
        config.memory_budget = 0;
        config
    }

    fn write_old_format(dir: &Path, magic: &[u8; 8], data: &ManifestData, format: Format) {
        let body = super::encode_body(data, format);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(magic);
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        bytes.extend_from_slice(&body);
        std::fs::write(dir.join(ManifestStore::FILE_NAME), &bytes).unwrap();
    }

    #[test]
    fn v1_manifests_without_stats_are_still_readable() {
        // Re-encode a manifest in the oldest format: v1 magic, no stats
        // blocks, no compaction fields.
        let dir = temp_dir("v1-compat");
        let mut data = sample_data();
        data.version = 1;
        write_old_format(&dir, b"LSMMAN01", &data, Format::V1);

        let (store, loaded) = ManifestStore::open(&dir).unwrap();
        let loaded = loaded.unwrap();
        assert_eq!(store.version(), 1);
        assert_eq!(loaded.components.len(), 1);
        assert_eq!(loaded.components[0].stats, None, "v1 has no stats");
        assert_eq!(loaded.config, with_default_compaction(data.config));
    }

    #[test]
    fn v2_manifests_without_compaction_fields_are_still_readable() {
        // v2 magic: stats blocks present, no compaction-strategy fields —
        // the config decodes with the default tiering strategy.
        let dir = temp_dir("v2-compat");
        let mut data = sample_data();
        data.version = 1;
        write_old_format(&dir, b"LSMMAN02", &data, Format::V2);

        let (store, loaded) = ManifestStore::open(&dir).unwrap();
        let loaded = loaded.unwrap();
        assert_eq!(store.version(), 1);
        assert_eq!(loaded.components[0].stats, Some(sample_stats()), "v2 keeps stats");
        assert_eq!(loaded.config, with_default_compaction(data.config));
    }

    #[test]
    fn v3_manifests_without_memory_budget_are_still_readable() {
        // v3 magic: compaction fields present, no memory budget — the config
        // decodes unbudgeted (0) with everything else intact.
        let dir = temp_dir("v3-compat");
        let mut data = sample_data();
        data.version = 1;
        write_old_format(&dir, b"LSMMAN03", &data, Format::V3);

        let (store, loaded) = ManifestStore::open(&dir).unwrap();
        let loaded = loaded.unwrap();
        assert_eq!(store.version(), 1);
        assert_eq!(loaded.components[0].stats, Some(sample_stats()), "v3 keeps stats");
        let mut expected = data.config.clone();
        expected.memory_budget = 0;
        assert_eq!(loaded.config, expected, "v3 keeps compaction, loses budget");
    }

    #[test]
    fn v4_manifests_without_leaf_stats_are_still_readable() {
        // v4 magic: everything but the per-leaf zone maps — leaves reopen
        // with no stats, so pushdown simply can't skip them.
        let dir = temp_dir("v4-compat");
        let mut data = sample_data();
        data.version = 1;
        write_old_format(&dir, b"LSMMAN04", &data, Format::V4);

        let (store, loaded) = ManifestStore::open(&dir).unwrap();
        let loaded = loaded.unwrap();
        assert_eq!(store.version(), 1);
        assert_eq!(loaded.config, data.config, "v4 keeps the whole config");
        assert_eq!(loaded.components[0].stats, Some(sample_stats()), "v4 keeps component stats");
        assert_eq!(loaded.components[0].leaves[0].stats, None, "v4 has no leaf zone maps");
    }

    #[test]
    fn leaf_zone_maps_roundtrip_and_absent_maps_stay_absent() {
        let dir = temp_dir("leaf-stats-roundtrip");
        let (mut store, _) = ManifestStore::open(&dir).unwrap();
        let mut data = sample_data();
        // A second leaf without zone maps (e.g. reopened from a pre-v5
        // manifest, then re-committed) must stay without them.
        data.components[0].leaves.push(LeafDescriptor {
            page: 9,
            data_pages: vec![10],
            min_key: Value::Int(123),
            max_key: Value::Int(200),
            record_count: 78,
            stats: None,
        });
        store.commit(data.clone()).unwrap();
        let (_, loaded) = ManifestStore::open(&dir).unwrap();
        let leaves = &loaded.unwrap().components[0].leaves;
        assert_eq!(leaves[0].stats, Some(sample_stats()));
        assert_eq!(leaves[1].stats, None);
    }

    #[test]
    fn corrupt_manifest_is_rejected() {
        let dir = temp_dir("corrupt");
        let (mut store, _) = ManifestStore::open(&dir).unwrap();
        store.commit(sample_data()).unwrap();
        let path = dir.join(ManifestStore::FILE_NAME);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        let err = ManifestStore::open(&dir).err().unwrap();
        assert!(err.message.contains("CRC") || err.message.contains("magic"), "{err}");
    }

    #[test]
    fn stale_temp_file_is_ignored() {
        let dir = temp_dir("staletmp");
        let (mut store, _) = ManifestStore::open(&dir).unwrap();
        store.commit(sample_data()).unwrap();
        // Crash simulation: a half-written temp manifest left behind.
        std::fs::write(dir.join("MANIFEST.tmp"), b"half written garbage").unwrap();
        let (_, loaded) = ManifestStore::open(&dir).unwrap();
        assert!(loaded.is_some(), "temp file must not shadow the manifest");
        assert!(!dir.join("MANIFEST.tmp").exists());
    }
}
