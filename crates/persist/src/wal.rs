//! The write-ahead log.
//!
//! Every acknowledged mutation (insert/upsert or delete) is appended to an
//! append-only log file *before* it is applied to the in-memory component.
//! On restart the log is replayed into a fresh memtable, restoring exactly
//! the acknowledged records that had not yet been flushed. After a flush
//! commits its manifest, the whole log is truncated: its records are now
//! covered by an on-disk component.
//!
//! ## Frame format
//!
//! Each record is one self-delimiting frame:
//!
//! ```text
//! [payload length: u32 LE] [crc32(payload): u32 LE] [payload bytes]
//! ```
//!
//! and the payload is a tag byte (insert/delete) followed by the key (and,
//! for inserts, the record) in the VB row format — the same single-pass
//! value serialisation components use, so the WAL round-trips every document
//! the engine accepts.
//!
//! ## Torn writes
//!
//! A crash can leave a partial frame at the tail. Replay stops at the first
//! frame whose length or CRC does not check out, *truncates the file back to
//! the last good frame boundary*, and reports the records read so far —
//! everything before a corrupt frame was acknowledged and must survive;
//! everything from the torn frame on was never acknowledged.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use docmodel::Value;
use encoding::crc::crc32;
use storage::RowFormat;

use crate::{PersistError, Result};

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Insert (or upsert) of `record` under `key`.
    Insert {
        /// Primary key.
        key: Value,
        /// The full document.
        record: Value,
    },
    /// Delete of `key` (an anti-matter entry in the memtable).
    Delete {
        /// Primary key.
        key: Value,
    },
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        match self {
            WalRecord::Insert { key, record } => encode_insert(key, record),
            WalRecord::Delete { key } => encode_delete(key),
        }
    }

    fn decode(payload: &[u8]) -> Result<WalRecord> {
        let (&tag, rest) = payload
            .split_first()
            .ok_or_else(|| PersistError::new("empty WAL payload"))?;
        let mut pos = 0;
        match tag {
            TAG_INSERT => {
                let key = RowFormat::Vb.deserialize(rest, &mut pos)?;
                let record = RowFormat::Vb.deserialize(rest, &mut pos)?;
                Ok(WalRecord::Insert { key, record })
            }
            TAG_DELETE => {
                let key = RowFormat::Vb.deserialize(rest, &mut pos)?;
                Ok(WalRecord::Delete { key })
            }
            other => Err(PersistError::new(format!("unknown WAL record tag {other}"))),
        }
    }
}

fn encode_insert(key: &Value, record: &Value) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.push(TAG_INSERT);
    RowFormat::Vb.serialize(key, &mut payload);
    RowFormat::Vb.serialize(record, &mut payload);
    payload
}

fn encode_delete(key: &Value) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.push(TAG_DELETE);
    RowFormat::Vb.serialize(key, &mut payload);
    payload
}

/// An open write-ahead log.
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Bytes of valid frames currently in the file.
    len: u64,
}

impl Wal {
    /// Open (or create) the log at `path` and replay its valid prefix.
    /// Returns the log positioned for appending and the replayed records.
    pub fn open(path: &Path) -> Result<(Wal, Vec<WalRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| PersistError::new(format!("open WAL {}: {e}", path.display())))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| PersistError::new(format!("read WAL {}: {e}", path.display())))?;

        let mut records = Vec::new();
        let mut pos = 0usize;
        let mut good_end = 0usize;
        while bytes.len() - pos >= 8 {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let expected_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
                break; // torn tail: frame body missing
            };
            if crc32(payload) != expected_crc {
                break; // torn or corrupt frame
            }
            let Ok(record) = WalRecord::decode(payload) else {
                break; // CRC passed but the payload does not parse: stop here
            };
            records.push(record);
            pos += 8 + len;
            good_end = pos;
        }

        if good_end < bytes.len() {
            // Drop the torn tail so appends continue from a clean boundary.
            file.set_len(good_end as u64)
                .map_err(|e| PersistError::new(format!("truncate torn WAL tail: {e}")))?;
        }
        file.seek(SeekFrom::Start(good_end as u64))
            .map_err(|e| PersistError::new(format!("seek WAL: {e}")))?;

        Ok((
            Wal {
                path: path.to_path_buf(),
                file,
                len: good_end as u64,
            },
            records,
        ))
    }

    /// Append one record (buffered in the OS; call [`Wal::sync`] to force it
    /// to the device).
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        self.append_payload(record.encode())
    }

    /// Append an insert frame without materialising a [`WalRecord`] (the
    /// ingest hot path logs borrowed values).
    pub fn append_insert(&mut self, key: &Value, record: &Value) -> Result<()> {
        self.append_payload(encode_insert(key, record))
    }

    /// Append a delete frame without materialising a [`WalRecord`].
    pub fn append_delete(&mut self, key: &Value) -> Result<()> {
        self.append_payload(encode_delete(key))
    }

    fn append_payload(&mut self, payload: Vec<u8>) -> Result<()> {
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| PersistError::new(format!("append to WAL {}: {e}", self.path.display())))?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Force appended records to the device.
    pub fn sync(&self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| PersistError::new(format!("sync WAL {}: {e}", self.path.display())))
    }

    /// Drop every record (called once a flush's manifest has committed: the
    /// logged records are now covered by an on-disk component).
    pub fn truncate(&mut self) -> Result<()> {
        self.file
            .set_len(0)
            .map_err(|e| PersistError::new(format!("truncate WAL: {e}")))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| PersistError::new(format!("seek WAL: {e}")))?;
        self.len = 0;
        self.sync()
    }

    /// Bytes of valid frames currently in the log.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// `true` when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::doc;

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("persist-wal-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                key: Value::Int(1),
                record: doc!({"id": 1, "user": {"name": "ann"}, "tags": ["a", "b"]}),
            },
            WalRecord::Insert {
                key: Value::Int(2),
                record: doc!({"id": 2, "score": 3.25, "ok": true, "note": null}),
            },
            WalRecord::Delete { key: Value::Int(1) },
        ]
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = temp_wal("roundtrip.wal");
        let records = sample_records();
        {
            let (mut wal, replayed) = Wal::open(&path).unwrap();
            assert!(replayed.is_empty());
            for r in &records {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
        }
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, records);
        assert!(!wal.is_empty());
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = temp_wal("truncate.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for r in &sample_records() {
            wal.append(r).unwrap();
        }
        wal.truncate().unwrap();
        assert!(wal.is_empty());
        drop(wal);
        let (_, replayed) = Wal::open(&path).unwrap();
        assert!(replayed.is_empty());
    }

    #[test]
    fn torn_tail_is_dropped_and_healed() {
        let path = temp_wal("torn.wal");
        let records = sample_records();
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        // Simulate a crash mid-write: chop the last frame in half.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let (mut wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, records[..2].to_vec(), "torn frame must be dropped");
        // The file healed: appending after the torn tail yields a clean log.
        wal.append(&records[2]).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, records);
    }

    #[test]
    fn corrupt_frame_stops_replay() {
        let path = temp_wal("corrupt.wal");
        let records = sample_records();
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        // Flip a byte inside the second frame's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let first_frame_len =
            8 + u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        bytes[first_frame_len + 10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, records[..1].to_vec());
    }

    #[test]
    fn empty_and_tiny_files_replay_cleanly() {
        let path = temp_wal("tiny.wal");
        std::fs::write(&path, [1, 2, 3]).unwrap(); // shorter than a header
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert!(replayed.is_empty());
        assert!(wal.is_empty());
    }
}
