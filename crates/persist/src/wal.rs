//! The segmented write-ahead log.
//!
//! Every acknowledged mutation (insert/upsert or delete) is appended to the
//! log *before* it is applied to the in-memory component. On restart the log
//! is replayed into a fresh memtable, restoring exactly the acknowledged
//! records that had not yet been flushed.
//!
//! ## Segments
//!
//! The log is a sequence of *segments*, one file each. Appends go to the
//! *active* segment; when the dataset seals its memtable for a background
//! flush it calls [`Wal::rotate`], which closes the active segment and opens
//! a fresh one. The sealed memtable's records are thereby confined to
//! segments up to the rotated id, so once the flush's manifest commits, those
//! segments — and only those — can be deleted with [`Wal::remove_through`]
//! while concurrent writers keep appending to the new active segment. This is
//! what makes "the WAL is truncated only after the flush manifest commits"
//! compatible with flushes running on background worker threads.
//!
//! Segment 0 is named `wal.log` (the pre-segmentation file name, so existing
//! dataset directories keep working); later segments are `wal-NNNNNN.log`.
//!
//! ## Frame format
//!
//! Each record is one self-delimiting frame:
//!
//! ```text
//! [payload length: u32 LE] [crc32(payload): u32 LE] [payload bytes]
//! ```
//!
//! and the payload is a tag byte (insert/delete) followed by the key (and,
//! for inserts, the record) in the VB row format — the same single-pass
//! value serialisation components use, so the WAL round-trips every document
//! the engine accepts.
//!
//! ## Torn writes
//!
//! A crash can leave a partial frame at the tail of a segment. Replay stops
//! at the first frame whose length or CRC does not check out, *truncates the
//! segment back to the last good frame boundary*, and reports the records
//! read so far — everything before a corrupt frame was acknowledged and must
//! survive; everything from the torn frame on was never acknowledged.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use docmodel::Value;
use encoding::crc::crc32;
use storage::RowFormat;

use crate::{PersistError, Result};

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Insert (or upsert) of `record` under `key`.
    Insert {
        /// Primary key.
        key: Value,
        /// The full document.
        record: Value,
    },
    /// Delete of `key` (an anti-matter entry in the memtable).
    Delete {
        /// Primary key.
        key: Value,
    },
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        match self {
            WalRecord::Insert { key, record } => encode_insert(key, record),
            WalRecord::Delete { key } => encode_delete(key),
        }
    }

    fn decode(payload: &[u8]) -> Result<WalRecord> {
        let (&tag, rest) = payload
            .split_first()
            .ok_or_else(|| PersistError::new("empty WAL payload"))?;
        let mut pos = 0;
        match tag {
            TAG_INSERT => {
                let key = RowFormat::Vb.deserialize(rest, &mut pos)?;
                let record = RowFormat::Vb.deserialize(rest, &mut pos)?;
                Ok(WalRecord::Insert { key, record })
            }
            TAG_DELETE => {
                let key = RowFormat::Vb.deserialize(rest, &mut pos)?;
                Ok(WalRecord::Delete { key })
            }
            other => Err(PersistError::new(format!("unknown WAL record tag {other}"))),
        }
    }
}

fn encode_insert(key: &Value, record: &Value) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.push(TAG_INSERT);
    RowFormat::Vb.serialize(key, &mut payload);
    RowFormat::Vb.serialize(record, &mut payload);
    payload
}

fn encode_delete(key: &Value) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.push(TAG_DELETE);
    RowFormat::Vb.serialize(key, &mut payload);
    payload
}

/// File name of segment `id` within the dataset directory. Segment 0 keeps
/// the historical single-file name so pre-segmentation directories recover.
pub fn segment_file_name(id: u64) -> String {
    if id == 0 {
        "wal.log".to_string()
    } else {
        format!("wal-{id:06}.log")
    }
}

fn parse_segment_id(name: &str) -> Option<u64> {
    if name == "wal.log" {
        return Some(0);
    }
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// A sealed, append-closed segment awaiting removal after a flush commit.
#[derive(Debug)]
struct SealedSegment {
    id: u64,
    path: PathBuf,
    len: u64,
}

/// What [`Wal::open`] found in the directory: the replayed records plus
/// the recovery summary the telemetry layer reports (how many segment
/// files were scanned, whether a torn tail had to be truncated).
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Acknowledged records not yet covered by a component, oldest first.
    pub records: Vec<WalRecord>,
    /// Segment files scanned (and replayed) at open.
    pub segments_replayed: usize,
    /// Whether a torn tail (partial frame from a crash mid-append) was
    /// truncated off the newest segment.
    pub torn_tail_healed: bool,
}

/// The segmented write-ahead log of one dataset directory.
pub struct Wal {
    dir: PathBuf,
    /// Sealed segments, oldest first.
    sealed: Vec<SealedSegment>,
    active_id: u64,
    active_path: PathBuf,
    active_file: File,
    active_len: u64,
}

/// Parse the valid frame prefix of one segment's bytes. Returns the decoded
/// records and the byte offset of the last good frame boundary.
fn parse_frames(bytes: &[u8], records: &mut Vec<WalRecord>) -> usize {
    let mut pos = 0usize;
    let mut good_end = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let expected_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break; // torn tail: frame body missing
        };
        if crc32(payload) != expected_crc {
            break; // torn or corrupt frame
        }
        let Ok(record) = WalRecord::decode(payload) else {
            break; // CRC passed but the payload does not parse: stop here
        };
        records.push(record);
        pos += 8 + len;
        good_end = pos;
    }
    good_end
}

impl Wal {
    /// Open (or create) the log in `dir` and replay the valid prefix of every
    /// segment, oldest first. Returns the log positioned for appending to the
    /// newest segment and the replay (records + recovery summary).
    pub fn open(dir: &Path) -> Result<(Wal, WalReplay)> {
        let mut ids: Vec<u64> = Vec::new();
        let entries = std::fs::read_dir(dir)
            .map_err(|e| PersistError::new(format!("list WAL dir {}: {e}", dir.display())))?;
        for entry in entries {
            let entry =
                entry.map_err(|e| PersistError::new(format!("list WAL dir: {e}")))?;
            if let Some(id) = entry.file_name().to_str().and_then(parse_segment_id) {
                ids.push(id);
            }
        }
        ids.sort_unstable();

        let mut records = Vec::new();
        let mut sealed = Vec::new();
        let mut heal: Option<(PathBuf, u64)> = None;
        let mut torn_tail_healed = false;
        for (i, &id) in ids.iter().enumerate() {
            let path = dir.join(segment_file_name(id));
            let bytes = std::fs::read(&path)
                .map_err(|e| PersistError::new(format!("read WAL {}: {e}", path.display())))?;
            let good_end = parse_frames(&bytes, &mut records);
            if good_end < bytes.len() && i + 1 < ids.len() {
                // A torn frame is only expected at the tail of the *newest*
                // segment (a crash mid-append). Mid-log corruption means the
                // acknowledged history is damaged — refuse to guess.
                return Err(PersistError::new(format!(
                    "WAL segment {} is corrupt before the newest segment",
                    path.display()
                )));
            }
            if i + 1 < ids.len() {
                sealed.push(SealedSegment {
                    id,
                    path,
                    len: good_end as u64,
                });
            } else {
                torn_tail_healed = good_end < bytes.len();
                heal = Some((path, good_end as u64));
            }
        }

        let active_id = ids.last().copied().unwrap_or(0);
        let active_path = dir.join(segment_file_name(active_id));
        let active_file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&active_path)
            .map_err(|e| {
                PersistError::new(format!("open WAL {}: {e}", active_path.display()))
            })?;
        let active_len = heal.as_ref().map(|(_, len)| *len).unwrap_or(0);
        // Drop any torn tail so appends continue from a clean boundary.
        active_file
            .set_len(active_len)
            .map_err(|e| PersistError::new(format!("truncate torn WAL tail: {e}")))?;
        let mut active_file = active_file;
        active_file
            .seek(SeekFrom::Start(active_len))
            .map_err(|e| PersistError::new(format!("seek WAL: {e}")))?;

        Ok((
            Wal {
                dir: dir.to_path_buf(),
                sealed,
                active_id,
                active_path,
                active_file,
                active_len,
            },
            WalReplay {
                records,
                segments_replayed: ids.len(),
                torn_tail_healed,
            },
        ))
    }

    /// Append one record (buffered in the OS; call [`Wal::sync`] to force it
    /// to the device).
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        self.append_payload(record.encode())
    }

    /// Append an insert frame without materialising a [`WalRecord`] (the
    /// ingest hot path logs borrowed values).
    pub fn append_insert(&mut self, key: &Value, record: &Value) -> Result<()> {
        self.append_payload(encode_insert(key, record))
    }

    /// Append a delete frame without materialising a [`WalRecord`].
    pub fn append_delete(&mut self, key: &Value) -> Result<()> {
        self.append_payload(encode_delete(key))
    }

    fn append_payload(&mut self, payload: Vec<u8>) -> Result<()> {
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.active_file.write_all(&frame).map_err(|e| {
            PersistError::new(format!(
                "append to WAL {}: {e}",
                self.active_path.display()
            ))
        })?;
        self.active_len += frame.len() as u64;
        Ok(())
    }

    /// Force appended records to the device (sealed segments were synced when
    /// they were rotated out).
    pub fn sync(&self) -> Result<()> {
        self.active_file.sync_data().map_err(|e| {
            PersistError::new(format!("sync WAL {}: {e}", self.active_path.display()))
        })
    }

    /// Seal the active segment and open a fresh one. Returns the sealed
    /// segment's id: every record appended so far lives in segments with ids
    /// `<=` the returned id, so the caller may [`Wal::remove_through`] that
    /// id once the records are covered by a committed manifest.
    pub fn rotate(&mut self) -> Result<u64> {
        self.sync()?;
        let new_id = self.active_id + 1;
        let new_path = self.dir.join(segment_file_name(new_id));
        let new_file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&new_path)
            .map_err(|e| PersistError::new(format!("open WAL {}: {e}", new_path.display())))?;
        let sealed_id = self.active_id;
        self.sealed.push(SealedSegment {
            id: sealed_id,
            path: std::mem::replace(&mut self.active_path, new_path),
            len: self.active_len,
        });
        self.active_file = new_file;
        self.active_id = new_id;
        self.active_len = 0;
        Ok(sealed_id)
    }

    /// Delete every sealed segment with id `<= through` (their records are
    /// now covered by a committed manifest). The active segment is never
    /// touched — concurrent appends proceed unhindered.
    pub fn remove_through(&mut self, through: u64) -> Result<()> {
        let mut keep = Vec::new();
        for seg in self.sealed.drain(..) {
            if seg.id <= through {
                std::fs::remove_file(&seg.path).map_err(|e| {
                    PersistError::new(format!(
                        "remove WAL segment {}: {e}",
                        seg.path.display()
                    ))
                })?;
            } else {
                keep.push(seg);
            }
        }
        self.sealed = keep;
        Ok(())
    }

    /// Drop every record: all sealed segments are deleted and the active
    /// segment is truncated. The flush commit path uses [`Wal::rotate`] +
    /// [`Wal::remove_through`] (in both synchronous and background modes);
    /// this is the blunt instrument for tools and tests that reset a log
    /// wholesale.
    pub fn truncate(&mut self) -> Result<()> {
        self.remove_through(u64::MAX)?;
        self.active_file
            .set_len(0)
            .map_err(|e| PersistError::new(format!("truncate WAL: {e}")))?;
        self.active_file
            .seek(SeekFrom::Start(0))
            .map_err(|e| PersistError::new(format!("seek WAL: {e}")))?;
        self.active_len = 0;
        self.sync()
    }

    /// Bytes of valid frames across every segment.
    pub fn len_bytes(&self) -> u64 {
        self.active_len + self.sealed.iter().map(|s| s.len).sum::<u64>()
    }

    /// `true` when no segment holds a record.
    pub fn is_empty(&self) -> bool {
        self.len_bytes() == 0
    }

    /// Id of the segment currently receiving appends.
    pub fn active_segment(&self) -> u64 {
        self.active_id
    }

    /// Number of sealed segments awaiting removal.
    pub fn sealed_segment_count(&self) -> usize {
        self.sealed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::doc;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("persist-wal-tests-{}", std::process::id()))
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                key: Value::Int(1),
                record: doc!({"id": 1, "user": {"name": "ann"}, "tags": ["a", "b"]}),
            },
            WalRecord::Insert {
                key: Value::Int(2),
                record: doc!({"id": 2, "score": 3.25, "ok": true, "note": null}),
            },
            WalRecord::Delete { key: Value::Int(1) },
        ]
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = temp_dir("roundtrip");
        let records = sample_records();
        {
            let (mut wal, replayed) = Wal::open(&dir).unwrap();
            assert!(replayed.records.is_empty());
            for r in &records {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
        }
        let (wal, replayed) = Wal::open(&dir).unwrap();
        assert_eq!(replayed.records, records);
        assert!(!wal.is_empty());
    }

    #[test]
    fn truncate_empties_the_log() {
        let dir = temp_dir("truncate");
        let (mut wal, _) = Wal::open(&dir).unwrap();
        for r in &sample_records() {
            wal.append(r).unwrap();
        }
        wal.truncate().unwrap();
        assert!(wal.is_empty());
        drop(wal);
        let (_, replayed) = Wal::open(&dir).unwrap();
        assert!(replayed.records.is_empty());
    }

    #[test]
    fn torn_tail_is_dropped_and_healed() {
        let dir = temp_dir("torn");
        let records = sample_records();
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        // Simulate a crash mid-write: chop the last frame in half.
        let path = dir.join(segment_file_name(0));
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let (mut wal, replayed) = Wal::open(&dir).unwrap();
        assert_eq!(replayed.records, records[..2].to_vec(), "torn frame must be dropped");
        assert!(replayed.torn_tail_healed, "the chopped frame is a torn tail");
        // The file healed: appending after the torn tail yields a clean log.
        wal.append(&records[2]).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&dir).unwrap();
        assert_eq!(replayed.records, records);
    }

    #[test]
    fn corrupt_frame_stops_replay() {
        let dir = temp_dir("corrupt");
        let records = sample_records();
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        // Flip a byte inside the second frame's payload.
        let path = dir.join(segment_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        let first_frame_len = 8 + u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        bytes[first_frame_len + 10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (_, replayed) = Wal::open(&dir).unwrap();
        assert_eq!(replayed.records, records[..1].to_vec());
    }

    #[test]
    fn empty_and_tiny_files_replay_cleanly() {
        let dir = temp_dir("tiny");
        std::fs::write(dir.join(segment_file_name(0)), [1, 2, 3]).unwrap(); // shorter than a header
        let (wal, replayed) = Wal::open(&dir).unwrap();
        assert!(replayed.records.is_empty());
        assert!(wal.is_empty());
    }

    #[test]
    fn rotation_segments_and_selective_removal() {
        let dir = temp_dir("rotate");
        let records = sample_records();
        let (mut wal, _) = Wal::open(&dir).unwrap();
        wal.append(&records[0]).unwrap();
        let seg0 = wal.rotate().unwrap();
        assert_eq!(seg0, 0);
        wal.append(&records[1]).unwrap();
        let seg1 = wal.rotate().unwrap();
        assert_eq!(seg1, 1);
        wal.append(&records[2]).unwrap();
        assert_eq!(wal.sealed_segment_count(), 2);
        assert_eq!(wal.active_segment(), 2);

        // Removing through segment 0 keeps segment 1 and the active tail.
        wal.remove_through(seg0).unwrap();
        assert_eq!(wal.sealed_segment_count(), 1);
        drop(wal);
        let (_, replayed) = Wal::open(&dir).unwrap();
        assert_eq!(replayed.records, records[1..].to_vec());
    }

    #[test]
    fn replay_spans_segments_in_order() {
        let dir = temp_dir("spans");
        let records = sample_records();
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            for r in &records {
                wal.append(r).unwrap();
                wal.rotate().unwrap();
            }
        }
        let (wal, replayed) = Wal::open(&dir).unwrap();
        assert_eq!(replayed.records, records);
        // Reopen keeps the sealed segments removable.
        let mut wal = wal;
        wal.remove_through(1).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&dir).unwrap();
        assert_eq!(replayed.records, records[2..].to_vec());
    }

    #[test]
    fn torn_tail_only_affects_newest_segment() {
        let dir = temp_dir("torn-newest");
        let records = sample_records();
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(&records[0]).unwrap();
            wal.rotate().unwrap();
            wal.append(&records[1]).unwrap();
            wal.append(&records[2]).unwrap();
        }
        let path = dir.join(segment_file_name(1));
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (_, replayed) = Wal::open(&dir).unwrap();
        assert_eq!(replayed.records, records[..2].to_vec());
    }
}
