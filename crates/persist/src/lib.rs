//! # persist — the durability subsystem
//!
//! The paper's columnar LSM design assumes components live on disk and
//! survive restarts; this crate supplies that layer for the reproduction. A
//! durable dataset is a directory:
//!
//! ```text
//! <dataset>/
//!   pages.dat        one file of page-aligned slots (storage::FileBackend)
//!   wal.log          CRC-framed insert/delete records (segment 0)
//!   wal-NNNNNN.log   later WAL segments (created by rotation, see below)
//!   MANIFEST         versioned, CRC-guarded root: config + schema + components
//! ```
//!
//! ## The protocol, mapped onto the LSM lifecycle
//!
//! The paper piggy-backs schema inference and columnar conversion on the
//! flush and merge events (§2.2, §4.5); durability piggy-backs on exactly the
//! same events:
//!
//! * **Ingest** — every insert/upsert/delete is appended to the WAL *before*
//!   it is applied to the memtable. The memtable is the only volatile state;
//!   the WAL is its durable twin.
//! * **Seal** — when the memtable fills it is sealed for flushing and the WAL
//!   is *rotated* ([`DurableStore::rotate_wal`]): the sealed memtable's
//!   records are confined to segments up to the rotated id while new inserts
//!   append to a fresh segment. Sealing is what lets the flush run on a
//!   background worker while ingestion continues.
//! * **Flush** — the sealed memtable is written as a new component into the
//!   page file, the page file is synced, and a new manifest version is
//!   committed recording the component (with the inferred schema snapshot the
//!   tuple compactor produced for it, §2.2). Only after the manifest commit
//!   are the WAL segments covering the flushed records removed: a crash
//!   anywhere in between replays the still-present segments over the
//!   (possibly already committed) component, which is idempotent because
//!   replay reapplies the same keys.
//! * **Merge** — the merged component is written and synced, then a manifest
//!   version is committed that swaps the input components for the output;
//!   only *after* that commit are the input pages freed (and only once no
//!   concurrent reader still holds the inputs — see `Component::retire` in
//!   the storage crate). A crash before the commit leaves the old manifest
//!   pointing at the old, still-intact components.
//! * **Recovery** — [`DurableStore::open`] loads the manifest, reopens every
//!   listed component against the page file, and replays every remaining WAL
//!   segment (oldest first) into the memtable. A torn tail in the newest
//!   segment (an unacknowledged partial frame) is detected by CRC and
//!   dropped.
//!
//! Orphaned pages (from crashes between component write and manifest commit)
//! are never visible to readers, because visibility is defined solely by the
//! manifest — and they are *reclaimed at the next open*: recovery reconciles
//! the page file against the union of manifest-referenced pages and frees
//! every unreferenced slot back onto the backends' free lists, so a crash
//! costs no space beyond the restart window (the orphan sweep lives in
//! `LsmDataset::open` in the `lsm` crate).
//!
//! ## Concurrency
//!
//! [`DurableStore`] is internally synchronised and is shared as an
//! `Arc<DurableStore>` between the ingest path (WAL appends) and background
//! flush/merge workers (manifest commits + segment removal). The WAL, the
//! manifest store and the armed crash point each sit behind their own small
//! mutex, so a worker committing a manifest never blocks a writer appending
//! to the WAL.
//!
//! ## Crash points
//!
//! [`CrashPoint`] injects failures at the protocol's interesting boundaries
//! (after component write, after manifest commit / before WAL truncation,
//! before a merge's manifest commit) so recovery tests can exercise each
//! window deterministically — including while background workers and writer
//! threads are active.

pub mod manifest;
pub mod wal;

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;
use storage::PageStore;
use telemetry::{EventKind, Telemetry};

pub use manifest::{ManifestData, ManifestStore, PersistedConfig};
pub use wal::{Wal, WalRecord, WalReplay};

/// Error type of the durability layer (shared with the storage stack so
/// `?` composes across crates).
pub type PersistError = encoding::DecodeError;
/// Result alias.
pub type Result<T> = std::result::Result<T, PersistError>;

/// File name of the page file within a dataset directory.
pub const PAGE_FILE_NAME: &str = "pages.dat";
/// File name of the first write-ahead log segment within a dataset directory.
pub const WAL_FILE_NAME: &str = "wal.log";

/// Injected failure points for recovery tests. Each fires once (the
/// injection is consumed) and makes the surrounding operation return an
/// error after the earlier protocol steps have already reached the disk —
/// exactly what a crash at that boundary leaves behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Flush: component pages are written and synced, but no manifest was
    /// committed. Recovery must serve the records from the WAL alone.
    AfterFlushComponentWrite,
    /// Flush: the manifest was committed, but the WAL was not truncated.
    /// Recovery sees the records twice (component + WAL) and must reconcile.
    AfterFlushManifestCommit,
    /// Merge: the merged component's pages are written and synced, but the
    /// manifest still lists the inputs. Recovery must serve the old
    /// components; the merged pages are orphans.
    BeforeMergeManifestCommit,
}

struct WalState {
    wal: Wal,
    appends_since_sync: u64,
}

/// The durable state of one dataset directory: page file, WAL and manifest,
/// plus the commit protocol tying them together. All methods take `&self`;
/// the struct is designed to be shared via `Arc` between the writer and
/// background flush/merge workers.
pub struct DurableStore {
    dir: PathBuf,
    store: PageStore,
    wal: Mutex<WalState>,
    manifest: Mutex<ManifestStore>,
    crash_point: Mutex<Option<CrashPoint>>,
    /// Optional metrics/event sink, attached by the dataset after open
    /// (the registry is owned by the LSM layer; `OnceLock` keeps the read
    /// on the append path to one atomic load).
    telemetry: OnceLock<Arc<Telemetry>>,
}

/// What [`DurableStore::open`] recovered from the directory.
pub struct Recovered {
    /// The manifest, if the directory holds a committed one.
    pub manifest: Option<ManifestData>,
    /// Acknowledged mutations not yet covered by a component, oldest first.
    pub wal_records: Vec<WalRecord>,
    /// WAL segment files scanned (and replayed) at open.
    pub wal_segments_replayed: usize,
    /// Whether a torn tail was truncated off the newest WAL segment.
    pub torn_tail_healed: bool,
}

impl DurableStore {
    /// Open (or create) the dataset directory, returning the durable store
    /// and everything recovery needs.
    pub fn open(dir: &Path, page_size: usize) -> Result<(DurableStore, Recovered)> {
        std::fs::create_dir_all(dir)
            .map_err(|e| PersistError::new(format!("create dataset dir {}: {e}", dir.display())))?;
        let (manifest, manifest_data) = ManifestStore::open(dir)?;
        if let Some(data) = &manifest_data {
            if data.config.page_size != page_size as u64 {
                return Err(PersistError::new(format!(
                    "dataset was created with page size {}, reopened with {page_size}",
                    data.config.page_size
                )));
            }
        }
        let store = PageStore::file_backed(&dir.join(PAGE_FILE_NAME), page_size)?;
        let (wal, replay) = Wal::open(dir)?;
        Ok((
            DurableStore {
                dir: dir.to_path_buf(),
                store,
                wal: Mutex::new(WalState {
                    wal,
                    appends_since_sync: 0,
                }),
                manifest: Mutex::new(manifest),
                crash_point: Mutex::new(None),
                telemetry: OnceLock::new(),
            },
            Recovered {
                manifest: manifest_data,
                wal_records: replay.records,
                wal_segments_replayed: replay.segments_replayed,
                torn_tail_healed: replay.torn_tail_healed,
            },
        ))
    }

    /// Attach the dataset's metrics/event registry. WAL append/fsync
    /// latencies and the seal/remove/manifest lifecycle events flow into it
    /// from then on. First attachment wins; later calls are no-ops.
    pub fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        let _ = self.telemetry.set(telemetry);
    }

    /// The attached registry, if recording is enabled.
    fn sink(&self) -> Option<&Telemetry> {
        self.telemetry
            .get()
            .map(|t| t.as_ref())
            .filter(|t| t.enabled())
    }

    /// The dataset directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file-backed page store components are written to.
    pub fn page_store(&self) -> &PageStore {
        &self.store
    }

    /// Version of the last committed manifest (0 before the first commit).
    pub fn manifest_version(&self) -> u64 {
        self.manifest.lock().version()
    }

    /// Bytes currently in the WAL (across every segment).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.lock().wal.len_bytes()
    }

    /// Arm a crash point (used by recovery tests).
    pub fn set_crash_point(&self, point: CrashPoint) {
        *self.crash_point.lock() = Some(point);
    }

    fn trip(&self, point: CrashPoint) -> Result<()> {
        let mut armed = self.crash_point.lock();
        if *armed == Some(point) {
            *armed = None;
            return Err(PersistError::new(format!(
                "injected crash at {point:?} (recovery test)"
            )));
        }
        Ok(())
    }

    /// Record one WAL append in the attached registry (latency + count).
    fn note_append(&self, started: Option<Instant>) {
        if let (Some(t), Some(started)) = (self.sink(), started) {
            t.wal_appends.incr();
            t.wal_append_latency.record(started.elapsed().as_micros() as u64);
        }
    }

    /// `Instant::now()` only when someone will consume the measurement.
    fn timer(&self) -> Option<Instant> {
        self.sink().map(|_| Instant::now())
    }

    /// Log one acknowledged mutation. The record reaches the OS immediately;
    /// call [`DurableStore::sync_wal`] to force it to the device.
    pub fn log(&self, record: &WalRecord) -> Result<()> {
        let started = self.timer();
        let mut state = self.wal.lock();
        state.wal.append(record)?;
        state.appends_since_sync += 1;
        drop(state);
        self.note_append(started);
        Ok(())
    }

    /// Log an insert without materialising a [`WalRecord`].
    pub fn log_insert(&self, key: &docmodel::Value, record: &docmodel::Value) -> Result<()> {
        let started = self.timer();
        let mut state = self.wal.lock();
        state.wal.append_insert(key, record)?;
        state.appends_since_sync += 1;
        drop(state);
        self.note_append(started);
        Ok(())
    }

    /// Log a delete without materialising a [`WalRecord`].
    pub fn log_delete(&self, key: &docmodel::Value) -> Result<()> {
        let started = self.timer();
        let mut state = self.wal.lock();
        state.wal.append_delete(key)?;
        state.appends_since_sync += 1;
        drop(state);
        self.note_append(started);
        Ok(())
    }

    /// Fsync the WAL (group-commit point for callers that need device-level
    /// durability of every acknowledged record).
    pub fn sync_wal(&self) -> Result<()> {
        let started = self.timer();
        let mut state = self.wal.lock();
        if state.appends_since_sync > 0 {
            state.wal.sync()?;
            state.appends_since_sync = 0;
            drop(state);
            if let (Some(t), Some(started)) = (self.sink(), started) {
                t.wal_syncs.incr();
                t.wal_sync_latency.record(started.elapsed().as_micros() as u64);
            }
        }
        Ok(())
    }

    /// Seal the active WAL segment (called while the memtable it covers is
    /// sealed for flushing). Returns the sealed segment id to later pass to
    /// [`DurableStore::commit_flush`].
    pub fn rotate_wal(&self) -> Result<u64> {
        let mut state = self.wal.lock();
        let id = state.wal.rotate()?;
        state.appends_since_sync = 0;
        drop(state);
        if let Some(t) = self.sink() {
            t.emit(EventKind::WalSegmentSealed { segment: id });
        }
        Ok(id)
    }

    /// Commit a flush of records confined to WAL segments `<=
    /// through_segment` (the id returned by [`DurableStore::rotate_wal`] when
    /// the flushed memtable was sealed). The new component's pages are
    /// already in the page store. Syncs pages, commits the manifest, then
    /// removes the covered WAL segments — in that order, so every crash
    /// window is recoverable. Concurrent appends to the active segment are
    /// unaffected.
    pub fn commit_flush(&self, data: ManifestData, through_segment: u64) -> Result<u64> {
        self.store.sync()?;
        self.trip(CrashPoint::AfterFlushComponentWrite)?;
        let version = self.manifest.lock().commit(data)?;
        if let Some(t) = self.sink() {
            t.emit(EventKind::ManifestCommit { version });
        }
        self.trip(CrashPoint::AfterFlushManifestCommit)?;
        self.wal.lock().wal.remove_through(through_segment)?;
        if let Some(t) = self.sink() {
            t.emit(EventKind::WalSegmentsRemoved { through: through_segment });
        }
        Ok(version)
    }

    /// Commit a merge: the merged component's pages are already in the page
    /// store; the manifest swap makes it visible. The caller frees the input
    /// components' pages only after this returns (and only once no reader
    /// still holds them).
    pub fn commit_merge(&self, data: ManifestData) -> Result<u64> {
        self.store.sync()?;
        self.trip(CrashPoint::BeforeMergeManifestCommit)?;
        let version = self.manifest.lock().commit(data)?;
        if let Some(t) = self.sink() {
            t.emit(EventKind::ManifestCommit { version });
        }
        Ok(version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::{doc, Value};
    use schema::SchemaBuilder;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("persist-store-tests-{}", std::process::id()))
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn empty_manifest(page_size: u64) -> ManifestData {
        ManifestData {
            version: 0,
            config: PersistedConfig {
                name: "t".to_string(),
                layout: storage::LayoutKind::Vb,
                key_field: "id".to_string(),
                memtable_budget: 1024,
                page_size,
                cache_pages: storage::DEFAULT_CACHE_PAGES as u64,
                primary_key_index: true,
                secondary_index_on: None,
                compress_pages: true,
                amax_record_limit: 100,
                amax_empty_page_tolerance: 0.2,
                policy_size_ratio: 1.2,
                policy_max_components: 5,
                compaction_kind: 0,
                compaction_target_size: 4 << 20,
                compaction_l0_threshold: 4,
                compaction_ratio: 0.5,
                memory_budget: 0,
            },
            next_component_id: 0,
            schema: SchemaBuilder::new(Some("id".to_string())).into_schema(),
            components: Vec::new(),
        }
    }

    #[test]
    fn open_log_reopen_replays() {
        let dir = temp_dir("replay");
        {
            let (ds, recovered) = DurableStore::open(&dir, 4096).unwrap();
            assert!(recovered.manifest.is_none());
            assert!(recovered.wal_records.is_empty());
            ds.log(&WalRecord::Insert {
                key: Value::Int(1),
                record: doc!({"id": 1}),
            })
            .unwrap();
            ds.log(&WalRecord::Delete { key: Value::Int(1) }).unwrap();
            ds.sync_wal().unwrap();
        }
        let (ds, recovered) = DurableStore::open(&dir, 4096).unwrap();
        assert_eq!(recovered.wal_records.len(), 2);
        assert!(ds.wal_bytes() > 0);
    }

    #[test]
    fn commit_flush_removes_covered_segments_and_bumps_version() {
        let dir = temp_dir("flush");
        let (ds, _) = DurableStore::open(&dir, 4096).unwrap();
        ds.log(&WalRecord::Insert {
            key: Value::Int(1),
            record: doc!({"id": 1}),
        })
        .unwrap();
        let seg = ds.rotate_wal().unwrap();
        // A record appended after the rotation lives in the next segment and
        // must survive the flush commit.
        ds.log(&WalRecord::Insert {
            key: Value::Int(2),
            record: doc!({"id": 2}),
        })
        .unwrap();
        let v = ds.commit_flush(empty_manifest(4096), seg).unwrap();
        assert_eq!(v, 1);
        assert!(ds.wal_bytes() > 0, "the post-rotation record remains");
        assert_eq!(ds.manifest_version(), 1);
        drop(ds);
        let (_, recovered) = DurableStore::open(&dir, 4096).unwrap();
        assert_eq!(recovered.wal_records.len(), 1);
        assert!(matches!(
            &recovered.wal_records[0],
            WalRecord::Insert { key: Value::Int(2), .. }
        ));
    }

    #[test]
    fn mismatched_page_size_is_rejected() {
        let dir = temp_dir("pagesize");
        {
            let (ds, _) = DurableStore::open(&dir, 4096).unwrap();
            let seg = ds.rotate_wal().unwrap();
            ds.commit_flush(empty_manifest(4096), seg).unwrap();
        }
        let err = DurableStore::open(&dir, 8192).err().unwrap();
        assert!(err.message.contains("page size"), "{err}");
    }

    #[test]
    fn crash_points_fire_once_at_their_boundary() {
        let dir = temp_dir("crashpoints");
        let (ds, _) = DurableStore::open(&dir, 4096).unwrap();
        ds.log(&WalRecord::Insert {
            key: Value::Int(1),
            record: doc!({"id": 1}),
        })
        .unwrap();
        let seg = ds.rotate_wal().unwrap();

        // Before the manifest commit: version unchanged, WAL intact.
        ds.set_crash_point(CrashPoint::AfterFlushComponentWrite);
        assert!(ds.commit_flush(empty_manifest(4096), seg).is_err());
        assert_eq!(ds.manifest_version(), 0);
        assert!(ds.wal_bytes() > 0);

        // After the manifest commit: version bumped, WAL still intact.
        ds.set_crash_point(CrashPoint::AfterFlushManifestCommit);
        assert!(ds.commit_flush(empty_manifest(4096), seg).is_err());
        assert_eq!(ds.manifest_version(), 1);
        assert!(ds.wal_bytes() > 0);

        // The injection is consumed: the next commit succeeds.
        assert_eq!(ds.commit_flush(empty_manifest(4096), seg).unwrap(), 2);
        assert_eq!(ds.wal_bytes(), 0);

        // Merge crash point blocks the manifest swap.
        ds.set_crash_point(CrashPoint::BeforeMergeManifestCommit);
        assert!(ds.commit_merge(empty_manifest(4096)).is_err());
        assert_eq!(ds.manifest_version(), 2);
        assert_eq!(ds.commit_merge(empty_manifest(4096)).unwrap(), 3);
    }

    #[test]
    fn concurrent_appends_and_commits_share_the_store() {
        let dir = temp_dir("concurrent");
        let (ds, _) = DurableStore::open(&dir, 4096).unwrap();
        let ds = std::sync::Arc::new(ds);
        let writer = {
            let ds = ds.clone();
            std::thread::spawn(move || {
                for i in 0..200i64 {
                    ds.log(&WalRecord::Insert {
                        key: Value::Int(i),
                        record: doc!({"id": i}),
                    })
                    .unwrap();
                }
            })
        };
        // Interleave rotations + commits with the appends.
        for _ in 0..5 {
            let seg = ds.rotate_wal().unwrap();
            ds.commit_flush(empty_manifest(4096), seg).unwrap();
        }
        writer.join().unwrap();
        drop(ds);
        // Whatever survived the removals replays cleanly.
        let (_, recovered) = DurableStore::open(&dir, 4096).unwrap();
        for r in &recovered.wal_records {
            assert!(matches!(r, WalRecord::Insert { .. }));
        }
    }
}
