//! # persist — the durability subsystem
//!
//! The paper's columnar LSM design assumes components live on disk and
//! survive restarts; this crate supplies that layer for the reproduction. A
//! durable dataset is a directory:
//!
//! ```text
//! <dataset>/
//!   pages.dat   one file of page-aligned slots (storage::FileBackend)
//!   wal.log     CRC-framed insert/delete records (wal::Wal)
//!   MANIFEST    versioned, CRC-guarded root: config + schema + components
//! ```
//!
//! ## The protocol, mapped onto the LSM lifecycle
//!
//! The paper piggy-backs schema inference and columnar conversion on the
//! flush and merge events (§2.2, §4.5); durability piggy-backs on exactly the
//! same events:
//!
//! * **Ingest** — every insert/upsert/delete is appended to the WAL *before*
//!   it is applied to the memtable. The memtable is the only volatile state;
//!   the WAL is its durable twin.
//! * **Flush** — the memtable is written as a new component into the page
//!   file, the page file is synced, and a new manifest version is committed
//!   recording the component (with the inferred schema snapshot the tuple
//!   compactor produced for it, §2.2). Only after the manifest commit is the
//!   WAL truncated: a crash anywhere in between replays the still-present
//!   WAL records over the (possibly already committed) component, which is
//!   idempotent because replay reapplies the same keys.
//! * **Merge** — the merged component is written and synced, then a manifest
//!   version is committed that swaps the input components for the output;
//!   only *after* that commit are the input pages freed. A crash before the
//!   commit leaves the old manifest pointing at the old, still-intact
//!   components (the merged pages are orphaned, never referenced).
//! * **Recovery** — [`DurableStore::open`] loads the manifest, reopens every
//!   listed component against the page file, and replays the WAL into the
//!   memtable. The WAL's torn tail (an unacknowledged partial frame) is
//!   detected by CRC and dropped.
//!
//! Orphaned pages (from crashes between component write and manifest commit)
//! leak space until a future page-file compaction; they are never visible to
//! readers because visibility is defined solely by the manifest.
//!
//! ## Crash points
//!
//! [`CrashPoint`] injects failures at the protocol's interesting boundaries
//! (after component write, after manifest commit / before WAL truncation,
//! before a merge's manifest commit) so recovery tests can exercise each
//! window deterministically.

pub mod manifest;
pub mod wal;

use std::path::{Path, PathBuf};

use storage::PageStore;

pub use manifest::{ManifestData, ManifestStore, PersistedConfig};
pub use wal::{Wal, WalRecord};

/// Error type of the durability layer (shared with the storage stack so
/// `?` composes across crates).
pub type PersistError = encoding::DecodeError;
/// Result alias.
pub type Result<T> = std::result::Result<T, PersistError>;

/// File name of the page file within a dataset directory.
pub const PAGE_FILE_NAME: &str = "pages.dat";
/// File name of the write-ahead log within a dataset directory.
pub const WAL_FILE_NAME: &str = "wal.log";

/// Injected failure points for recovery tests. Each fires once (the
/// injection is consumed) and makes the surrounding operation return an
/// error after the earlier protocol steps have already reached the disk —
/// exactly what a crash at that boundary leaves behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Flush: component pages are written and synced, but no manifest was
    /// committed. Recovery must serve the records from the WAL alone.
    AfterFlushComponentWrite,
    /// Flush: the manifest was committed, but the WAL was not truncated.
    /// Recovery sees the records twice (component + WAL) and must reconcile.
    AfterFlushManifestCommit,
    /// Merge: the merged component's pages are written and synced, but the
    /// manifest still lists the inputs. Recovery must serve the old
    /// components; the merged pages are orphans.
    BeforeMergeManifestCommit,
}

/// The durable state of one dataset directory: page file, WAL and manifest,
/// plus the commit protocol tying them together.
pub struct DurableStore {
    dir: PathBuf,
    store: PageStore,
    wal: Wal,
    manifest: ManifestStore,
    crash_point: Option<CrashPoint>,
    wal_appends_since_sync: u64,
}

/// What [`DurableStore::open`] recovered from the directory.
pub struct Recovered {
    /// The manifest, if the directory holds a committed one.
    pub manifest: Option<ManifestData>,
    /// Acknowledged mutations not yet covered by a component, oldest first.
    pub wal_records: Vec<WalRecord>,
}

impl DurableStore {
    /// Open (or create) the dataset directory, returning the durable store
    /// and everything recovery needs.
    pub fn open(dir: &Path, page_size: usize) -> Result<(DurableStore, Recovered)> {
        std::fs::create_dir_all(dir)
            .map_err(|e| PersistError::new(format!("create dataset dir {}: {e}", dir.display())))?;
        let (manifest, manifest_data) = ManifestStore::open(dir)?;
        if let Some(data) = &manifest_data {
            if data.config.page_size != page_size as u64 {
                return Err(PersistError::new(format!(
                    "dataset was created with page size {}, reopened with {page_size}",
                    data.config.page_size
                )));
            }
        }
        let store = PageStore::file_backed(&dir.join(PAGE_FILE_NAME), page_size)?;
        let (wal, wal_records) = Wal::open(&dir.join(WAL_FILE_NAME))?;
        Ok((
            DurableStore {
                dir: dir.to_path_buf(),
                store,
                wal,
                manifest,
                crash_point: None,
                wal_appends_since_sync: 0,
            },
            Recovered {
                manifest: manifest_data,
                wal_records,
            },
        ))
    }

    /// The dataset directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file-backed page store components are written to.
    pub fn page_store(&self) -> &PageStore {
        &self.store
    }

    /// Version of the last committed manifest (0 before the first commit).
    pub fn manifest_version(&self) -> u64 {
        self.manifest.version()
    }

    /// Bytes currently in the WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// Arm a crash point (used by recovery tests).
    pub fn set_crash_point(&mut self, point: CrashPoint) {
        self.crash_point = Some(point);
    }

    fn trip(&mut self, point: CrashPoint) -> Result<()> {
        if self.crash_point == Some(point) {
            self.crash_point = None;
            return Err(PersistError::new(format!(
                "injected crash at {point:?} (recovery test)"
            )));
        }
        Ok(())
    }

    /// Log one acknowledged mutation. The record reaches the OS immediately;
    /// call [`DurableStore::sync_wal`] to force it to the device.
    pub fn log(&mut self, record: &WalRecord) -> Result<()> {
        self.wal.append(record)?;
        self.wal_appends_since_sync += 1;
        Ok(())
    }

    /// Log an insert without materialising a [`WalRecord`].
    pub fn log_insert(&mut self, key: &docmodel::Value, record: &docmodel::Value) -> Result<()> {
        self.wal.append_insert(key, record)?;
        self.wal_appends_since_sync += 1;
        Ok(())
    }

    /// Log a delete without materialising a [`WalRecord`].
    pub fn log_delete(&mut self, key: &docmodel::Value) -> Result<()> {
        self.wal.append_delete(key)?;
        self.wal_appends_since_sync += 1;
        Ok(())
    }

    /// Fsync the WAL (group-commit point for callers that need device-level
    /// durability of every acknowledged record).
    pub fn sync_wal(&mut self) -> Result<()> {
        if self.wal_appends_since_sync > 0 {
            self.wal.sync()?;
            self.wal_appends_since_sync = 0;
        }
        Ok(())
    }

    /// Commit a flush: the new component's pages are already in the page
    /// store. Syncs pages, commits the manifest, then truncates the WAL — in
    /// that order, so every crash window is recoverable.
    pub fn commit_flush(&mut self, data: ManifestData) -> Result<u64> {
        self.store.sync()?;
        self.trip(CrashPoint::AfterFlushComponentWrite)?;
        let version = self.manifest.commit(data)?;
        self.trip(CrashPoint::AfterFlushManifestCommit)?;
        self.wal.truncate()?;
        self.wal_appends_since_sync = 0;
        Ok(version)
    }

    /// Commit a merge: the merged component's pages are already in the page
    /// store; the manifest swap makes it visible. The caller frees the input
    /// components' pages only after this returns.
    pub fn commit_merge(&mut self, data: ManifestData) -> Result<u64> {
        self.store.sync()?;
        self.trip(CrashPoint::BeforeMergeManifestCommit)?;
        self.manifest.commit(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::{doc, Value};
    use schema::SchemaBuilder;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("persist-store-tests-{}", std::process::id()))
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn empty_manifest(page_size: u64) -> ManifestData {
        ManifestData {
            version: 0,
            config: PersistedConfig {
                name: "t".to_string(),
                layout: storage::LayoutKind::Vb,
                key_field: "id".to_string(),
                memtable_budget: 1024,
                page_size,
                cache_pages: 8,
                primary_key_index: true,
                secondary_index_on: None,
                compress_pages: true,
                amax_record_limit: 100,
                amax_empty_page_tolerance: 0.2,
                policy_size_ratio: 1.2,
                policy_max_components: 5,
            },
            next_component_id: 0,
            schema: SchemaBuilder::new(Some("id".to_string())).into_schema(),
            components: Vec::new(),
        }
    }

    #[test]
    fn open_log_reopen_replays() {
        let dir = temp_dir("replay");
        {
            let (mut ds, recovered) = DurableStore::open(&dir, 4096).unwrap();
            assert!(recovered.manifest.is_none());
            assert!(recovered.wal_records.is_empty());
            ds.log(&WalRecord::Insert {
                key: Value::Int(1),
                record: doc!({"id": 1}),
            })
            .unwrap();
            ds.log(&WalRecord::Delete { key: Value::Int(1) }).unwrap();
            ds.sync_wal().unwrap();
        }
        let (ds, recovered) = DurableStore::open(&dir, 4096).unwrap();
        assert_eq!(recovered.wal_records.len(), 2);
        assert!(ds.wal_bytes() > 0);
    }

    #[test]
    fn commit_flush_truncates_wal_and_bumps_version() {
        let dir = temp_dir("flush");
        let (mut ds, _) = DurableStore::open(&dir, 4096).unwrap();
        ds.log(&WalRecord::Insert {
            key: Value::Int(1),
            record: doc!({"id": 1}),
        })
        .unwrap();
        let v = ds.commit_flush(empty_manifest(4096)).unwrap();
        assert_eq!(v, 1);
        assert_eq!(ds.wal_bytes(), 0);
        assert_eq!(ds.manifest_version(), 1);
    }

    #[test]
    fn mismatched_page_size_is_rejected() {
        let dir = temp_dir("pagesize");
        {
            let (mut ds, _) = DurableStore::open(&dir, 4096).unwrap();
            ds.commit_flush(empty_manifest(4096)).unwrap();
        }
        let err = DurableStore::open(&dir, 8192).err().unwrap();
        assert!(err.message.contains("page size"), "{err}");
    }

    #[test]
    fn crash_points_fire_once_at_their_boundary() {
        let dir = temp_dir("crashpoints");
        let (mut ds, _) = DurableStore::open(&dir, 4096).unwrap();
        ds.log(&WalRecord::Insert {
            key: Value::Int(1),
            record: doc!({"id": 1}),
        })
        .unwrap();

        // Before the manifest commit: version unchanged, WAL intact.
        ds.set_crash_point(CrashPoint::AfterFlushComponentWrite);
        assert!(ds.commit_flush(empty_manifest(4096)).is_err());
        assert_eq!(ds.manifest_version(), 0);
        assert!(ds.wal_bytes() > 0);

        // After the manifest commit: version bumped, WAL still intact.
        ds.set_crash_point(CrashPoint::AfterFlushManifestCommit);
        assert!(ds.commit_flush(empty_manifest(4096)).is_err());
        assert_eq!(ds.manifest_version(), 1);
        assert!(ds.wal_bytes() > 0);

        // The injection is consumed: the next commit succeeds.
        assert_eq!(ds.commit_flush(empty_manifest(4096)).unwrap(), 2);
        assert_eq!(ds.wal_bytes(), 0);

        // Merge crash point blocks the manifest swap.
        ds.set_crash_point(CrashPoint::BeforeMergeManifestCommit);
        assert!(ds.commit_merge(empty_manifest(4096)).is_err());
        assert_eq!(ds.manifest_version(), 2);
        assert_eq!(ds.commit_merge(empty_manifest(4096)).unwrap(), 3);
    }
}
