//! Per-component column statistics — the zone maps behind the cost-based
//! planner.
//!
//! Every sealed component carries a [`ComponentStats`]: for each column path
//! observed in its live records, how many records have the path, how many
//! values the path addresses, and (for *single-valued* paths whose values
//! are all atomic) the minimum and maximum value under the document total
//! order. The structure is computed once, at flush/merge time in
//! [`crate::component::Component::write`], persisted in the manifest, and
//! consumed twice by the query layer:
//!
//! * **Zone-map pruning** — a filter whose
//!   [`implied_bounds`](../../query/expr/enum.Expr.html) on some path are
//!   disjoint from the component's `[min, max]` for that path (or whose path
//!   the component never materialised at all) cannot match any record in the
//!   component, so the scan skips it without reading a single page;
//! * **Selectivity estimation** — the planner interpolates a range filter
//!   against the per-component bounds and value counts to estimate how many
//!   records match, which drives the scan-vs-index-probe decision (the
//!   fig. 15 crossover).
//!
//! ## What is (and is not) tracked
//!
//! Statistics are collected by walking every live record's value tree, so a
//! column exists in the map exactly when **some record in the component
//! addresses at least one value at that path** — the precondition the query
//! layer's absence pruning relies on. Bounds follow the same existential
//! semantics as filter evaluation and are deliberately conservative:
//!
//! * **Multi-valued paths** (any `[*]` step, e.g. `tags[*]`) keep counts
//!   only, never bounds. With existential semantics one record contributes
//!   many values, and PR 3's lesson applies: per-value bounds are still
//!   sound for disjointness, but keeping them invites exactly the
//!   intersect-the-conjuncts mistakes the planner had to unlearn — so the
//!   open edge is documented (ROADMAP) and the bounds are simply omitted.
//! * **Heterogeneous paths**: the moment a path addresses a non-atomic value
//!   (an object or array node — e.g. the path `tags` addressing the array
//!   itself), its bounds are dropped. Comparisons against composite values
//!   are legal under the total order, but summarising them cheaply is not
//!   worth the soundness analysis.
//! * Explicit `null`s **are** values under the total order (`x <= 5` can
//!   match a `null`), so they participate in min/max like any other atomic.
//!
//! Anti-matter entries contribute nothing: stats describe the records a scan
//! of this component alone could produce. Whether skipping a pruned
//! component is *reconciliation-safe* (an older component might hold a
//! shadowed version of one of its keys) is decided by the query layer using
//! the component key ranges — see `query::physical`.

use std::collections::BTreeMap;
use std::fmt;

use docmodel::{total_cmp, Value};

/// Statistics for one column path within one component.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Live records with at least one value at the path.
    pub rows: u64,
    /// Total values the path addresses across live records (`>= rows`; equal
    /// for single-valued paths).
    pub values: u64,
    /// Smallest value under the document total order. `None` when bounds are
    /// not tracked for this path (multi-valued, or a non-atomic value was
    /// observed).
    pub min: Option<Value>,
    /// Largest value under the document total order; tracked iff `min` is.
    pub max: Option<Value>,
}

impl ColumnStats {
    /// `true` when the column carries usable `[min, max]` bounds.
    pub fn has_bounds(&self) -> bool {
        self.min.is_some() && self.max.is_some()
    }
}

/// Column statistics of one sealed component, keyed by the column path's
/// query rendering (`user.name`, `games[*].title`, ...). Computed at
/// flush/merge time, persisted in the manifest, immutable thereafter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ComponentStats {
    /// Live (non-anti-matter) records in the component.
    pub live_records: u64,
    /// Per-column statistics. A path is present iff some live record
    /// addresses at least one value there.
    pub columns: BTreeMap<String, ColumnStats>,
}

impl ComponentStats {
    /// Statistics for a column path (its query rendering, e.g. `"score"`).
    pub fn column(&self, path: &str) -> Option<&ColumnStats> {
        self.columns.get(path)
    }
}

impl fmt::Display for ComponentStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} live records", self.live_records)?;
        for (path, col) in &self.columns {
            write!(f, "  {path}: rows={} values={}", col.rows, col.values)?;
            match (&col.min, &col.max) {
                (Some(min), Some(max)) => writeln!(f, " min={min} max={max}")?,
                _ => writeln!(f, " (no bounds)")?,
            }
        }
        Ok(())
    }
}

/// Per-column accumulation state while a component is being written.
struct ColumnBuilder {
    rows: u64,
    values: u64,
    /// Ordinal of the last record that touched this column (for `rows`).
    last_record: u64,
    /// Bounds, maintained while every observed value is atomic and the path
    /// is single-valued; dropped permanently otherwise.
    bounds: Option<(Value, Value)>,
    bounds_ok: bool,
}

/// Accumulates [`ComponentStats`] over the live records of a component being
/// written. One [`StatsBuilder::observe`] call per record, then
/// [`StatsBuilder::finish`].
pub struct StatsBuilder {
    live_records: u64,
    columns: BTreeMap<String, ColumnBuilder>,
}

impl StatsBuilder {
    /// An empty accumulator.
    pub fn new() -> StatsBuilder {
        StatsBuilder {
            live_records: 0,
            columns: BTreeMap::new(),
        }
    }

    /// Fold one live record into the statistics.
    pub fn observe(&mut self, doc: &Value) {
        self.live_records += 1;
        let ordinal = self.live_records;
        let mut path = String::new();
        observe_value(&mut self.columns, &mut path, doc, ordinal, true);
    }

    /// Finish accumulation.
    pub fn finish(self) -> ComponentStats {
        ComponentStats {
            live_records: self.live_records,
            columns: self
                .columns
                .into_iter()
                .map(|(path, col)| {
                    let (min, max) = match (col.bounds_ok, col.bounds) {
                        (true, Some((min, max))) => (Some(min), Some(max)),
                        _ => (None, None),
                    };
                    (
                        path,
                        ColumnStats {
                            rows: col.rows,
                            values: col.values,
                            min,
                            max,
                        },
                    )
                })
                .collect(),
        }
    }
}

impl Default for StatsBuilder {
    fn default() -> Self {
        StatsBuilder::new()
    }
}

/// Record `value` at the current `path`, then recurse into its children. The
/// path buffer mirrors [`docmodel::Path`]'s display syntax exactly, so a
/// query path's `to_string()` is a direct key into the map. `single_valued`
/// is `false` once the path has crossed an `[*]` step.
fn observe_value(
    columns: &mut BTreeMap<String, ColumnBuilder>,
    path: &mut String,
    value: &Value,
    ordinal: u64,
    single_valued: bool,
) {
    // The record root itself is not a column.
    if !path.is_empty() {
        let col = columns.entry(path.clone()).or_insert_with(|| ColumnBuilder {
            rows: 0,
            values: 0,
            last_record: 0,
            bounds: None,
            bounds_ok: single_valued,
        });
        col.values += 1;
        if col.last_record != ordinal {
            col.last_record = ordinal;
            col.rows += 1;
        }
        if col.bounds_ok {
            if single_valued && value.is_atomic() {
                match &mut col.bounds {
                    None => col.bounds = Some((value.clone(), value.clone())),
                    Some((min, max)) => {
                        if total_cmp(value, min) == std::cmp::Ordering::Less {
                            *min = value.clone();
                        }
                        if total_cmp(value, max) == std::cmp::Ordering::Greater {
                            *max = value.clone();
                        }
                    }
                }
            } else {
                // A composite value (or a multi-valued sighting) poisons the
                // bounds for good: comparisons against it are legal under
                // the total order, so partial bounds would be unsound.
                col.bounds_ok = false;
                col.bounds = None;
            }
        }
    }
    match value {
        Value::Object(fields) => {
            for (name, child) in fields.iter() {
                let saved = path.len();
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(name);
                observe_value(columns, path, child, ordinal, single_valued);
                path.truncate(saved);
            }
        }
        Value::Array(elems) => {
            let saved = path.len();
            path.push_str("[*]");
            for elem in elems.iter() {
                observe_value(columns, path, elem, ordinal, false);
            }
            path.truncate(saved);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::doc;

    fn stats(docs: &[Value]) -> ComponentStats {
        let mut b = StatsBuilder::new();
        for d in docs {
            b.observe(d);
        }
        b.finish()
    }

    #[test]
    fn single_valued_atomic_paths_get_bounds() {
        let s = stats(&[
            doc!({"id": 1, "score": 10, "user": {"name": "bo"}}),
            doc!({"id": 2, "score": 90}),
            doc!({"id": 3}),
        ]);
        assert_eq!(s.live_records, 3);
        let score = s.column("score").unwrap();
        assert_eq!((score.rows, score.values), (2, 2));
        assert_eq!(score.min, Some(Value::Int(10)));
        assert_eq!(score.max, Some(Value::Int(90)));
        let name = s.column("user.name").unwrap();
        assert_eq!(name.rows, 1);
        assert_eq!(name.min, Some(Value::from("bo")));
        // `user` addresses an object: counted, but no bounds.
        let user = s.column("user").unwrap();
        assert_eq!(user.rows, 1);
        assert!(!user.has_bounds());
        assert!(s.column("missing").is_none());
    }

    #[test]
    fn multi_valued_paths_are_counts_only() {
        let s = stats(&[
            doc!({"id": 1, "ts": [100, 200]}),
            doc!({"id": 2, "ts": [150]}),
        ]);
        let elems = s.column("ts[*]").unwrap();
        assert_eq!((elems.rows, elems.values), (2, 3));
        assert!(!elems.has_bounds(), "no bounds on [*] paths");
        // The array node itself: single-valued path, composite value.
        let arr = s.column("ts").unwrap();
        assert_eq!(arr.rows, 2);
        assert!(!arr.has_bounds());
    }

    #[test]
    fn heterogeneous_values_drop_bounds_permanently() {
        let s = stats(&[
            doc!({"id": 1, "v": 5}),
            doc!({"id": 2, "v": {"nested": 1}}),
            doc!({"id": 3, "v": 7}),
        ]);
        let v = s.column("v").unwrap();
        assert_eq!(v.rows, 3);
        assert!(!v.has_bounds(), "a composite sighting poisons the bounds");
    }

    #[test]
    fn explicit_nulls_participate_in_bounds() {
        let s = stats(&[doc!({"id": 1, "v": null}), doc!({"id": 2, "v": 5})]);
        let v = s.column("v").unwrap();
        assert_eq!(v.rows, 2);
        assert!(v.has_bounds());
        // Null sorts below every other value in the document total order.
        assert_eq!(
            total_cmp(v.min.as_ref().unwrap(), &Value::Int(5)),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn paths_render_exactly_like_query_paths() {
        let s = stats(&[doc!({"games": [{"title": "NBA", "consoles": ["PC"]}]})]);
        for path in ["games", "games[*]", "games[*].title", "games[*].consoles[*]"] {
            assert!(
                s.column(&docmodel::Path::parse(path).to_string()).is_some(),
                "{path}"
            );
        }
    }

    #[test]
    fn display_renders_without_panicking() {
        let s = stats(&[doc!({"id": 1, "tags": ["a"]})]);
        let text = s.to_string();
        assert!(text.contains("live records"), "{text}");
        assert!(text.contains("no bounds"), "{text}");
    }
}
