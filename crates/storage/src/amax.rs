//! The AMAX mega-leaf layout (§4.3, Figure 9).
//!
//! An AMAX *mega leaf node* covers up to a configured number of records
//! (15,000 by default, §4.5.2) and consists of:
//!
//! * **Page 0** — the header (tuple count, column count), a per-column
//!   directory with the column's location and its min/max values (the zone
//!   map used to skip leaves that cannot satisfy a predicate), and the
//!   encoded primary keys;
//! * **megapages** — one per column, spanning as many physical data pages as
//!   the column needs. Megapages are written from the largest column to the
//!   smallest so small columns can share the last partially-filled page of a
//!   larger one, subject to the `empty-page-tolerance` knob: if the next
//!   column does not fit in the space left on the current page and that
//!   space is no more than the tolerated fraction, the page is closed and
//!   left partially empty.
//!
//! The payoff is that a query touching `k` columns reads Page 0 plus only the
//! physical pages spanned by those `k` megapages — `COUNT(*)` reads Page 0
//! alone, which is the paper's headline order-of-magnitude result.

use columnar::{ColumnChunk, ShreddedBatch};
use docmodel::Value;
use encoding::{varint, DecodeError};
use schema::{ColumnId, ColumnSpec};

use crate::rowformat::RowFormat;
use crate::Result;

/// Tuning knobs of the AMAX writer.
#[derive(Debug, Clone, Copy)]
pub struct AmaxConfig {
    /// Maximum number of records per mega leaf (Page 0 must hold all keys).
    pub record_limit: usize,
    /// Fraction of a physical page the writer may leave empty rather than
    /// splitting the next column across a page boundary.
    pub empty_page_tolerance: f64,
}

impl Default for AmaxConfig {
    fn default() -> Self {
        AmaxConfig {
            record_limit: 15_000,
            empty_page_tolerance: 0.2,
        }
    }
}

/// Location and statistics of one column's megapage within a mega leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct AmaxColumnLocation {
    /// The column.
    pub column_id: ColumnId,
    /// Index (within the leaf's data pages) of the page where the megapage
    /// starts.
    pub start_page: usize,
    /// Byte offset within that page.
    pub start_offset: usize,
    /// Total encoded length in bytes.
    pub len: usize,
    /// Minimum value stored in the column (zone map), if any value exists.
    pub min: Option<Value>,
    /// Maximum value stored in the column (zone map), if any value exists.
    pub max: Option<Value>,
}

impl AmaxColumnLocation {
    /// Indexes of the data pages this megapage spans.
    pub fn pages_spanned(&self, page_budget: usize) -> std::ops::Range<usize> {
        if self.len == 0 {
            return self.start_page..self.start_page;
        }
        let mut end_page = self.start_page;
        let mut remaining = self.len;
        let mut available = page_budget - self.start_offset;
        while remaining > available {
            remaining -= available;
            end_page += 1;
            available = page_budget;
        }
        self.start_page..end_page + 1
    }
}

/// Decoded Page 0 header of a mega leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct AmaxLeafHeader {
    /// Number of records covered by the leaf.
    pub record_count: usize,
    /// Per-column megapage directory.
    pub columns: Vec<AmaxColumnLocation>,
    /// Byte offset within Page 0 where the encoded key chunk begins.
    pub key_chunk_offset: usize,
}

/// Encode a shredded batch as one mega leaf: `(page0_payload, data_pages)`.
///
/// `page_budget` is the usable payload size of one physical page.
pub fn encode_amax_leaf(
    batch: &ShreddedBatch,
    page_budget: usize,
    config: &AmaxConfig,
) -> (Vec<u8>, Vec<Vec<u8>>) {
    let key_chunk = batch
        .columns
        .iter()
        .find(|c| c.spec.is_key)
        .expect("AMAX leaves require a primary-key column");
    let mut key_bytes = Vec::new();
    key_chunk.encode(&mut key_bytes);

    // Encode every non-key column and sort by size, largest first (§4.3).
    let mut encoded: Vec<(&ColumnChunk, Vec<u8>)> = batch
        .columns
        .iter()
        .filter(|c| !c.spec.is_key)
        .map(|c| {
            let mut bytes = Vec::new();
            c.encode(&mut bytes);
            (c, bytes)
        })
        .collect();
    encoded.sort_by_key(|column| std::cmp::Reverse(column.1.len()));

    // Pack megapages into data pages.
    let mut data_pages: Vec<Vec<u8>> = vec![Vec::with_capacity(page_budget)];
    let mut locations = Vec::with_capacity(encoded.len());
    for (chunk, bytes) in &encoded {
        {
            let current = data_pages.last().unwrap();
            let remaining = page_budget - current.len();
            let fits = bytes.len() <= remaining;
            let tolerate_empty = (remaining as f64) <= config.empty_page_tolerance * page_budget as f64;
            if !current.is_empty() && !fits && tolerate_empty {
                // Close the page partially empty and start a fresh one.
                data_pages.push(Vec::with_capacity(page_budget));
            }
        }
        if data_pages.last().unwrap().len() >= page_budget {
            data_pages.push(Vec::with_capacity(page_budget));
        }
        let start_page = data_pages.len() - 1;
        let start_offset = data_pages.last().unwrap().len();
        // Spill the megapage across as many pages as needed.
        let mut written = 0usize;
        while written < bytes.len() {
            let current = data_pages.last_mut().unwrap();
            let space = page_budget - current.len();
            if space == 0 {
                data_pages.push(Vec::with_capacity(page_budget));
                continue;
            }
            let take = space.min(bytes.len() - written);
            current.extend_from_slice(&bytes[written..written + take]);
            written += take;
        }
        let (min, max) = chunk.min_max().map(|(a, b)| (Some(a), Some(b))).unwrap_or((None, None));
        locations.push(AmaxColumnLocation {
            column_id: chunk.spec.id,
            start_page,
            start_offset,
            len: bytes.len(),
            min,
            max,
        });
    }
    if data_pages.last().is_some_and(Vec::is_empty) && data_pages.len() > 1 {
        data_pages.pop();
    }

    // Page 0: header, directory, encoded keys.
    let mut page0 = Vec::with_capacity(key_bytes.len() + 256);
    varint::write_u64(&mut page0, batch.record_count as u64);
    varint::write_u64(&mut page0, locations.len() as u64);
    debug_assert!(batch.record_count <= config.record_limit);
    for loc in &locations {
        varint::write_u64(&mut page0, u64::from(loc.column_id));
        varint::write_u64(&mut page0, loc.start_page as u64);
        varint::write_u64(&mut page0, loc.start_offset as u64);
        varint::write_u64(&mut page0, loc.len as u64);
        write_opt_value(&mut page0, &loc.min);
        write_opt_value(&mut page0, &loc.max);
    }
    page0.extend_from_slice(&key_bytes);
    (page0, data_pages)
}

fn write_opt_value(out: &mut Vec<u8>, value: &Option<Value>) {
    match value {
        Some(v) => {
            out.push(1);
            RowFormat::Vb.serialize(v, out);
        }
        None => out.push(0),
    }
}

fn read_opt_value(buf: &[u8], pos: &mut usize) -> Result<Option<Value>> {
    let flag = *buf
        .get(*pos)
        .ok_or_else(|| DecodeError::new("truncated AMAX zone map"))?;
    *pos += 1;
    if flag == 1 {
        Ok(Some(RowFormat::Vb.deserialize(buf, pos)?))
    } else {
        Ok(None)
    }
}

/// Decode the header (directory) of a Page 0 payload.
pub fn decode_amax_header(page0: &[u8]) -> Result<AmaxLeafHeader> {
    let mut pos = 0usize;
    let record_count = varint::read_u64(page0, &mut pos)? as usize;
    let column_count = varint::read_u64(page0, &mut pos)? as usize;
    let mut columns = Vec::with_capacity(column_count.min(1 << 16));
    for _ in 0..column_count {
        let column_id = varint::read_u64(page0, &mut pos)? as ColumnId;
        let start_page = varint::read_u64(page0, &mut pos)? as usize;
        let start_offset = varint::read_u64(page0, &mut pos)? as usize;
        let len = varint::read_u64(page0, &mut pos)? as usize;
        let min = read_opt_value(page0, &mut pos)?;
        let max = read_opt_value(page0, &mut pos)?;
        columns.push(AmaxColumnLocation {
            column_id,
            start_page,
            start_offset,
            len,
            min,
            max,
        });
    }
    Ok(AmaxLeafHeader {
        record_count,
        columns,
        key_chunk_offset: pos,
    })
}

/// Decode the primary-key chunk stored at the end of Page 0.
pub fn decode_amax_keys(page0: &[u8], header: &AmaxLeafHeader, key_spec: &ColumnSpec) -> Result<ColumnChunk> {
    let mut pos = header.key_chunk_offset;
    ColumnChunk::decode(key_spec.clone(), page0, &mut pos)
}

/// Reassemble one column's megapage bytes from the leaf's data pages and
/// decode it. `read_page(i)` returns the payload of the `i`-th data page of
/// the leaf; only the pages actually spanned by the column are requested.
pub fn read_amax_column(
    location: &AmaxColumnLocation,
    page_budget: usize,
    spec: &ColumnSpec,
    mut read_page: impl FnMut(usize) -> Result<std::sync::Arc<Vec<u8>>>,
) -> Result<ColumnChunk> {
    let mut bytes = Vec::with_capacity(location.len);
    let mut remaining = location.len;
    let mut offset = location.start_offset;
    for page_idx in location.pages_spanned(page_budget) {
        let page = read_page(page_idx)?;
        let available = page.len().saturating_sub(offset);
        let take = available.min(remaining);
        if take == 0 && remaining > 0 {
            return Err(DecodeError::new("AMAX megapage shorter than directory entry"));
        }
        bytes.extend_from_slice(&page[offset..offset + take]);
        remaining -= take;
        offset = 0;
    }
    if remaining > 0 {
        return Err(DecodeError::new("truncated AMAX megapage"));
    }
    let mut pos = 0usize;
    ColumnChunk::decode(spec.clone(), &bytes, &mut pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::Shredder;
    use docmodel::doc;
    use schema::{columns_of, SchemaBuilder};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn sample_batch(n: usize) -> (schema::Schema, ShreddedBatch) {
        let records: Vec<_> = (0..n as i64)
            .map(|i| {
                doc!({
                    "id": i,
                    "text": (format!("tweet number {i} with some padding text to grow the column")),
                    "likes": (i * 7 % 100),
                    "lang": (if i % 2 == 0 { "en" } else { "es" })
                })
            })
            .collect();
        let mut b = SchemaBuilder::new(Some("id".to_string()));
        b.observe_all(records.iter());
        let schema = b.into_schema();
        let batch = {
            let mut shredder = Shredder::new(&schema);
            for r in &records {
                shredder.shred(r);
            }
            shredder.finish()
        };
        (schema, batch)
    }

    #[test]
    fn leaf_roundtrip_and_column_reads() {
        let (schema, batch) = sample_batch(200);
        let page_budget = 1024;
        let (page0, data_pages) = encode_amax_leaf(&batch, page_budget, &AmaxConfig::default());
        assert!(data_pages.len() > 1, "text column should span multiple pages");
        for p in &data_pages {
            assert!(p.len() <= page_budget);
        }

        let header = decode_amax_header(&page0).unwrap();
        assert_eq!(header.record_count, 200);
        let specs: HashMap<ColumnId, ColumnSpec> =
            columns_of(&schema).into_iter().map(|s| (s.id, s)).collect();
        let key_spec = specs.values().find(|s| s.is_key).unwrap();
        let keys = decode_amax_keys(&page0, &header, key_spec).unwrap();
        assert_eq!(keys.values.len(), 200);

        // Every non-key column decodes back to its original chunk.
        for loc in &header.columns {
            let spec = &specs[&loc.column_id];
            let chunk = read_amax_column(loc, page_budget, spec, |i| {
                Ok(Arc::new(data_pages[i].clone()))
            })
            .unwrap();
            let original = batch.column(loc.column_id).unwrap();
            assert_eq!(&chunk, original);
        }
    }

    #[test]
    fn count_style_access_touches_only_page0() {
        let (_, batch) = sample_batch(100);
        let (page0, _) = encode_amax_leaf(&batch, 2048, &AmaxConfig::default());
        // Counting records requires only the header of Page 0.
        let header = decode_amax_header(&page0).unwrap();
        assert_eq!(header.record_count, 100);
    }

    #[test]
    fn columns_are_ordered_largest_first_and_share_pages() {
        let (_, batch) = sample_batch(300);
        let page_budget = 4096;
        let (page0, data_pages) = encode_amax_leaf(&batch, page_budget, &AmaxConfig::default());
        let header = decode_amax_header(&page0).unwrap();
        let lens: Vec<usize> = header.columns.iter().map(|c| c.len).collect();
        let mut sorted = lens.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(lens, sorted, "megapages must be written largest to smallest");
        // Sharing: the total page count never exceeds what one-page-per-column
        // packing would need, and the two smallest columns share a page.
        let unshared: usize = lens.iter().map(|l| l.div_ceil(page_budget).max(1)).sum();
        assert!(data_pages.len() <= unshared);
        let smallest_two: Vec<_> = header.columns.iter().rev().take(2).collect();
        assert_eq!(smallest_two[0].start_page, smallest_two[1].start_page);
    }

    #[test]
    fn zone_maps_capture_min_and_max() {
        let (schema, batch) = sample_batch(50);
        let (page0, _) = encode_amax_leaf(&batch, 4096, &AmaxConfig::default());
        let header = decode_amax_header(&page0).unwrap();
        let specs: HashMap<ColumnId, ColumnSpec> =
            columns_of(&schema).into_iter().map(|s| (s.id, s)).collect();
        let likes = header
            .columns
            .iter()
            .find(|c| specs[&c.column_id].path.to_string() == "likes")
            .unwrap();
        assert_eq!(likes.min, Some(Value::Int(0)));
        assert!(matches!(likes.max, Some(Value::Int(m)) if m <= 99));
    }

    #[test]
    fn empty_page_tolerance_controls_sharing() {
        let (_, batch) = sample_batch(200);
        let page_budget = 1024;
        // Tolerance 1.0: never share a page that cannot hold the whole next
        // column — more, emptier pages.
        let strict = AmaxConfig {
            record_limit: 15_000,
            empty_page_tolerance: 1.0,
        };
        let relaxed = AmaxConfig {
            record_limit: 15_000,
            empty_page_tolerance: 0.0,
        };
        let (_, strict_pages) = encode_amax_leaf(&batch, page_budget, &strict);
        let (_, relaxed_pages) = encode_amax_leaf(&batch, page_budget, &relaxed);
        assert!(strict_pages.len() >= relaxed_pages.len());
    }

    #[test]
    fn corrupt_page0_is_an_error() {
        let (_, batch) = sample_batch(20);
        let (page0, _) = encode_amax_leaf(&batch, 2048, &AmaxConfig::default());
        assert!(decode_amax_header(&page0[..3]).is_err());
    }
}
