//! Row-major record formats: the two baselines the paper compares against.
//!
//! * **Open** — AsterixDB's schemaless, self-describing recursive format:
//!   every record embeds its field names, every nested value sits behind a
//!   fixed 4-byte offset table (one slot per child, per nesting level), and
//!   values are written bottom-up, which is why constructing deep records is
//!   expensive (children are copied into their parents level by level).
//! * **Vector-Based (VB)** — the tuple-compactor format: the record's
//!   *structure* (tags, field names, lengths) is separated from its values
//!   conceptually and everything is written once, front to back, using
//!   varint lengths instead of fixed offset tables. It is both smaller
//!   (~15–20% on 1NF data) and cheaper to construct, and it is the format of
//!   the LSM in-memory component for all layouts (§4.5).
//!
//! Both formats serialize a [`Value`] to bytes and back; the LSM row
//! components and the row-major memtable use them directly.

use docmodel::Value;
use encoding::{plain, varint, DecodeError};

use crate::Result;

/// Which row format to use for a record payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowFormat {
    /// AsterixDB's schemaless recursive format.
    Open,
    /// The vector-based compacted format.
    Vb,
}

impl RowFormat {
    /// Serialize a record.
    pub fn serialize(self, value: &Value, out: &mut Vec<u8>) {
        match self {
            RowFormat::Open => write_open(value, out),
            RowFormat::Vb => write_vb(value, out),
        }
    }

    /// Serialize into a fresh buffer.
    pub fn to_bytes(self, value: &Value) -> Vec<u8> {
        let mut out = Vec::with_capacity(value.approx_size() * 2);
        self.serialize(value, &mut out);
        out
    }

    /// Deserialize a record previously produced by [`RowFormat::serialize`].
    pub fn deserialize(self, buf: &[u8], pos: &mut usize) -> Result<Value> {
        match self {
            RowFormat::Open => read_open(buf, pos),
            RowFormat::Vb => read_vb(buf, pos),
        }
    }

    /// Stable tag persisted in component metadata.
    pub fn tag(self) -> u8 {
        match self {
            RowFormat::Open => 0,
            RowFormat::Vb => 1,
        }
    }

    /// Inverse of [`RowFormat::tag`].
    pub fn from_tag(tag: u8) -> Result<RowFormat> {
        match tag {
            0 => Ok(RowFormat::Open),
            1 => Ok(RowFormat::Vb),
            other => Err(DecodeError::new(format!("unknown row format tag {other}"))),
        }
    }
}

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_DOUBLE: u8 = 4;
const TAG_STRING: u8 = 5;
const TAG_ARRAY: u8 = 6;
const TAG_OBJECT: u8 = 7;

// ---------------------------------------------------------------------------
// Open format: field names inline, fixed 4-byte offset tables per nested value.
// ---------------------------------------------------------------------------

fn write_open(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_BOOL_FALSE),
        Value::Bool(true) => out.push(TAG_BOOL_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            plain::write_i64(out, *i);
        }
        Value::Double(d) => {
            out.push(TAG_DOUBLE);
            plain::write_f64(out, *d);
        }
        Value::String(s) => {
            out.push(TAG_STRING);
            plain::write_u32(out, s.len() as u32);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(elems) => {
            // Children are serialized into a temporary buffer first and then
            // copied into the parent — mirroring the bottom-up construction
            // cost of the real Open format.
            out.push(TAG_ARRAY);
            plain::write_u32(out, elems.len() as u32);
            let mut children: Vec<Vec<u8>> = Vec::with_capacity(elems.len());
            for e in elems {
                let mut child = Vec::new();
                write_open(e, &mut child);
                children.push(child);
            }
            // Offset table: 4 bytes per child, relative to the start of the
            // children region.
            let mut offset = 0u32;
            for child in &children {
                plain::write_u32(out, offset);
                offset += child.len() as u32;
            }
            for child in &children {
                out.extend_from_slice(child);
            }
        }
        Value::Object(fields) => {
            out.push(TAG_OBJECT);
            plain::write_u32(out, fields.len() as u32);
            let mut children: Vec<Vec<u8>> = Vec::with_capacity(fields.len());
            for (_, v) in fields {
                let mut child = Vec::new();
                write_open(v, &mut child);
                children.push(child);
            }
            let mut offset = 0u32;
            for ((name, _), child) in fields.iter().zip(&children) {
                plain::write_u32(out, name.len() as u32);
                out.extend_from_slice(name.as_bytes());
                plain::write_u32(out, offset);
                offset += child.len() as u32;
            }
            for child in &children {
                out.extend_from_slice(child);
            }
        }
    }
}

fn read_open(buf: &[u8], pos: &mut usize) -> Result<Value> {
    let tag = *buf
        .get(*pos)
        .ok_or_else(|| DecodeError::new("truncated open record"))?;
    *pos += 1;
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL_FALSE => Value::Bool(false),
        TAG_BOOL_TRUE => Value::Bool(true),
        TAG_INT => Value::Int(plain::read_i64(buf, pos)?),
        TAG_DOUBLE => Value::Double(plain::read_f64(buf, pos)?),
        TAG_STRING => {
            let len = plain::read_u32(buf, pos)? as usize;
            let end = *pos + len;
            if end > buf.len() {
                return Err(DecodeError::new("truncated open string"));
            }
            let s = std::str::from_utf8(&buf[*pos..end])
                .map_err(|_| DecodeError::new("invalid utf-8 in open string"))?
                .to_string();
            *pos = end;
            Value::String(s)
        }
        TAG_ARRAY => {
            let count = plain::read_u32(buf, pos)? as usize;
            // Skip the offset table; children are stored in order.
            *pos += 4 * count;
            if *pos > buf.len() {
                return Err(DecodeError::new("truncated open array offsets"));
            }
            let mut elems = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                elems.push(read_open(buf, pos)?);
            }
            Value::Array(elems)
        }
        TAG_OBJECT => {
            let count = plain::read_u32(buf, pos)? as usize;
            let mut names = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let len = plain::read_u32(buf, pos)? as usize;
                let end = *pos + len;
                if end > buf.len() {
                    return Err(DecodeError::new("truncated open field name"));
                }
                let name = std::str::from_utf8(&buf[*pos..end])
                    .map_err(|_| DecodeError::new("invalid utf-8 in field name"))?
                    .to_string();
                *pos = end;
                let _offset = plain::read_u32(buf, pos)?;
                names.push(name);
            }
            let mut fields = Vec::with_capacity(count.min(1 << 16));
            for name in names {
                let v = read_open(buf, pos)?;
                fields.push((name, v));
            }
            Value::Object(fields)
        }
        other => return Err(DecodeError::new(format!("unknown open tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Vector-based format: compact, single forward pass, varint lengths.
// ---------------------------------------------------------------------------

fn write_vb(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_BOOL_FALSE),
        Value::Bool(true) => out.push(TAG_BOOL_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            varint::write_i64(out, *i);
        }
        Value::Double(d) => {
            out.push(TAG_DOUBLE);
            plain::write_f64(out, *d);
        }
        Value::String(s) => {
            out.push(TAG_STRING);
            varint::write_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(elems) => {
            out.push(TAG_ARRAY);
            varint::write_u64(out, elems.len() as u64);
            for e in elems {
                write_vb(e, out);
            }
        }
        Value::Object(fields) => {
            out.push(TAG_OBJECT);
            varint::write_u64(out, fields.len() as u64);
            for (name, v) in fields {
                varint::write_u64(out, name.len() as u64);
                out.extend_from_slice(name.as_bytes());
                write_vb(v, out);
            }
        }
    }
}

fn read_vb(buf: &[u8], pos: &mut usize) -> Result<Value> {
    let tag = *buf
        .get(*pos)
        .ok_or_else(|| DecodeError::new("truncated vb record"))?;
    *pos += 1;
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL_FALSE => Value::Bool(false),
        TAG_BOOL_TRUE => Value::Bool(true),
        TAG_INT => Value::Int(varint::read_i64(buf, pos)?),
        TAG_DOUBLE => Value::Double(plain::read_f64(buf, pos)?),
        TAG_STRING => {
            let len = varint::read_u64(buf, pos)? as usize;
            let end = pos
                .checked_add(len)
                .ok_or_else(|| DecodeError::new("vb string length overflow"))?;
            if end > buf.len() {
                return Err(DecodeError::new("truncated vb string"));
            }
            let s = std::str::from_utf8(&buf[*pos..end])
                .map_err(|_| DecodeError::new("invalid utf-8 in vb string"))?
                .to_string();
            *pos = end;
            Value::String(s)
        }
        TAG_ARRAY => {
            let count = varint::read_u64(buf, pos)? as usize;
            let mut elems = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                elems.push(read_vb(buf, pos)?);
            }
            Value::Array(elems)
        }
        TAG_OBJECT => {
            let count = varint::read_u64(buf, pos)? as usize;
            let mut fields = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let len = varint::read_u64(buf, pos)? as usize;
                let end = pos
                    .checked_add(len)
                    .ok_or_else(|| DecodeError::new("vb name length overflow"))?;
                if end > buf.len() {
                    return Err(DecodeError::new("truncated vb field name"));
                }
                let name = std::str::from_utf8(&buf[*pos..end])
                    .map_err(|_| DecodeError::new("invalid utf-8 in vb field name"))?
                    .to_string();
                *pos = end;
                let v = read_vb(buf, pos)?;
                fields.push((name, v));
            }
            Value::Object(fields)
        }
        other => return Err(DecodeError::new(format!("unknown vb tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::doc;

    fn sample_records() -> Vec<Value> {
        vec![
            doc!({"id": 1, "name": {"first": "Ann", "last": "Lee"}, "score": 3.5}),
            doc!({"id": 2, "tags": ["a", "b", "c"], "flags": [true, false], "n": null}),
            doc!({"id": 3, "nested": {"deep": {"deeper": [1, [2, 3], {"x": "y"}]}}}),
            doc!({}),
        ]
    }

    #[test]
    fn open_roundtrip() {
        for rec in sample_records() {
            let bytes = RowFormat::Open.to_bytes(&rec);
            let mut pos = 0;
            let back = RowFormat::Open.deserialize(&bytes, &mut pos).unwrap();
            assert_eq!(back, rec);
            assert_eq!(pos, bytes.len());
        }
    }

    #[test]
    fn vb_roundtrip() {
        for rec in sample_records() {
            let bytes = RowFormat::Vb.to_bytes(&rec);
            let mut pos = 0;
            let back = RowFormat::Vb.deserialize(&bytes, &mut pos).unwrap();
            assert_eq!(back, rec);
            assert_eq!(pos, bytes.len());
        }
    }

    #[test]
    fn vb_is_smaller_than_open() {
        // The VB format drops the fixed offset tables, so nested records are
        // consistently smaller — the paper reports ~17% on the cell dataset.
        let rec = doc!({
            "caller": "12025550147",
            "callee": "12025550198",
            "duration": 632,
            "cell": {"tower": 1021, "lat": 38.89, "lon": (-77.03)},
            "ts": (1600000000000i64)
        });
        let open = RowFormat::Open.to_bytes(&rec).len();
        let vb = RowFormat::Vb.to_bytes(&rec).len();
        assert!(vb < open, "vb {vb} should be smaller than open {open}");
    }

    #[test]
    fn format_tags_roundtrip() {
        for f in [RowFormat::Open, RowFormat::Vb] {
            assert_eq!(RowFormat::from_tag(f.tag()).unwrap(), f);
        }
        assert!(RowFormat::from_tag(9).is_err());
    }

    #[test]
    fn corrupt_records_error_instead_of_panicking() {
        let rec = doc!({"id": 1, "xs": [1, 2, 3]});
        for fmt in [RowFormat::Open, RowFormat::Vb] {
            let bytes = fmt.to_bytes(&rec);
            for cut in [0, 1, bytes.len() / 2] {
                let mut pos = 0;
                assert!(fmt.deserialize(&bytes[..cut], &mut pos).is_err());
            }
            let mut garbage = bytes.clone();
            garbage[0] = 200;
            let mut pos = 0;
            assert!(fmt.deserialize(&garbage, &mut pos).is_err());
        }
    }

    #[test]
    fn multiple_records_in_one_buffer() {
        let records = sample_records();
        for fmt in [RowFormat::Open, RowFormat::Vb] {
            let mut buf = Vec::new();
            for r in &records {
                fmt.serialize(r, &mut buf);
            }
            let mut pos = 0;
            for r in &records {
                assert_eq!(&fmt.deserialize(&buf, &mut pos).unwrap(), r);
            }
            assert_eq!(pos, buf.len());
        }
    }
}
