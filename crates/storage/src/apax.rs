//! The APAX page layout (§4.2, Figure 8).
//!
//! An APAX page is a B+-tree leaf page in which every column of the records
//! covered by the page occupies a contiguous *minipage*. The page header
//! carries the tuple count, the column count and the minimum/maximum primary
//! key, so B+-tree operations never need to decode the key minipage.
//!
//! Because every column of every record lives in the same page, a scan that
//! needs two columns still reads the whole page — APAX saves CPU (decode only
//! the needed minipages) but not I/O, which is exactly the trade-off the
//! evaluation observes against AMAX.

use std::collections::HashMap;

use columnar::{ColumnChunk, ShreddedBatch};
use docmodel::Value;
use encoding::{plain, varint, DecodeError};
use schema::{ColumnId, ColumnSpec};

use crate::rowformat::RowFormat;
use crate::Result;

/// Decoded header of an APAX page.
#[derive(Debug, Clone, PartialEq)]
pub struct ApaxHeader {
    /// Number of records covered by the page.
    pub record_count: usize,
    /// Number of minipages (columns) stored.
    pub column_count: usize,
    /// Minimum primary key in the page.
    pub min_key: Value,
    /// Maximum primary key in the page.
    pub max_key: Value,
}

/// Encode a shredded batch as one APAX page payload.
///
/// Layout: header, then a column directory (`column id`, `offset`, `length`)
/// and finally the concatenated encoded minipages. The directory plays the
/// role of the "relative pointers stored in the page header" of Figure 8.
pub fn encode_apax_page(batch: &ShreddedBatch, min_key: &Value, max_key: &Value) -> Vec<u8> {
    let mut minipages: Vec<(ColumnId, Vec<u8>)> = Vec::with_capacity(batch.columns.len());
    for chunk in &batch.columns {
        let mut bytes = Vec::new();
        chunk.encode(&mut bytes);
        minipages.push((chunk.spec.id, bytes));
    }

    let mut out = Vec::new();
    varint::write_u64(&mut out, batch.record_count as u64);
    varint::write_u64(&mut out, minipages.len() as u64);
    RowFormat::Vb.serialize(min_key, &mut out);
    RowFormat::Vb.serialize(max_key, &mut out);
    // Directory.
    let mut offset = 0u64;
    for (id, bytes) in &minipages {
        varint::write_u64(&mut out, u64::from(*id));
        varint::write_u64(&mut out, offset);
        varint::write_u64(&mut out, bytes.len() as u64);
        offset += bytes.len() as u64;
    }
    for (_, bytes) in &minipages {
        out.extend_from_slice(bytes);
    }
    out
}

/// Decode only the header of an APAX page.
pub fn decode_apax_header(buf: &[u8]) -> Result<ApaxHeader> {
    let mut pos = 0usize;
    let record_count = varint::read_u64(buf, &mut pos)? as usize;
    let column_count = varint::read_u64(buf, &mut pos)? as usize;
    let min_key = RowFormat::Vb.deserialize(buf, &mut pos)?;
    let max_key = RowFormat::Vb.deserialize(buf, &mut pos)?;
    Ok(ApaxHeader {
        record_count,
        column_count,
        min_key,
        max_key,
    })
}

/// Decode the requested columns (or all columns when `projection` is `None`)
/// from an APAX page payload. The caller provides the specs from the
/// component's persisted schema; minipages of unprojected columns are left
/// untouched (the CPU saving of APAX).
pub fn decode_apax_columns(
    buf: &[u8],
    specs: &HashMap<ColumnId, ColumnSpec>,
    projection: Option<&[ColumnId]>,
) -> Result<(ApaxHeader, Vec<ColumnChunk>)> {
    let mut pos = 0usize;
    let record_count = varint::read_u64(buf, &mut pos)? as usize;
    let column_count = varint::read_u64(buf, &mut pos)? as usize;
    let min_key = RowFormat::Vb.deserialize(buf, &mut pos)?;
    let max_key = RowFormat::Vb.deserialize(buf, &mut pos)?;
    let mut directory = Vec::with_capacity(column_count.min(1 << 16));
    for _ in 0..column_count {
        let id = varint::read_u64(buf, &mut pos)? as ColumnId;
        let offset = varint::read_u64(buf, &mut pos)? as usize;
        let len = varint::read_u64(buf, &mut pos)? as usize;
        directory.push((id, offset, len));
    }
    let payload_start = pos;

    let mut chunks = Vec::new();
    for (id, offset, len) in directory {
        let wanted = match projection {
            Some(ids) => ids.contains(&id),
            None => true,
        };
        if !wanted {
            continue;
        }
        let Some(spec) = specs.get(&id) else {
            // A column unknown to the reader's schema snapshot; skip it.
            continue;
        };
        let start = payload_start + offset;
        let end = start + len;
        if end > buf.len() {
            return Err(DecodeError::new("APAX minipage out of bounds"));
        }
        let mut cpos = start;
        let chunk = ColumnChunk::decode(spec.clone(), buf, &mut cpos)?;
        chunks.push(chunk);
    }
    Ok((
        ApaxHeader {
            record_count,
            column_count,
            min_key,
            max_key,
        },
        chunks,
    ))
}

/// Sanity helper used by writers: the encoded size the page would have.
pub fn estimated_page_size(batch: &ShreddedBatch) -> usize {
    // Header + directory are small; the dominant term is the encoded chunks.
    64 + batch
        .columns
        .iter()
        .map(|c| c.encoded_len() + 16)
        .sum::<usize>()
}

/// Extract `(min, max)` primary keys from the key chunk of a batch (records
/// are sorted by key, so these are the first and last values).
pub fn key_bounds(batch: &ShreddedBatch) -> Option<(Value, Value)> {
    let key_chunk = batch.columns.iter().find(|c| c.spec.is_key)?;
    if key_chunk.values.is_empty() {
        return None;
    }
    Some((
        key_chunk.values.get(0),
        key_chunk.values.get(key_chunk.values.len() - 1),
    ))
}

/// Convenience for tests: encode plain `u32` (unused in the layout itself but
/// kept for header compatibility experiments).
#[allow(dead_code)]
fn _unused_u32(out: &mut Vec<u8>, v: u32) {
    plain::write_u32(out, v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::Shredder;
    use docmodel::doc;
    use schema::{columns_of, SchemaBuilder};

    fn sample_batch() -> (schema::Schema, ShreddedBatch) {
        let records = vec![
            doc!({"id": 1, "name": "a", "score": 1.5, "tags": ["x"]}),
            doc!({"id": 2, "name": "b", "score": 2.5, "tags": ["y", "z"]}),
            doc!({"id": 3, "name": "c", "score": 3.5}),
        ];
        let mut b = SchemaBuilder::new(Some("id".to_string()));
        b.observe_all(records.iter());
        let schema = b.into_schema();
        let batch = {
            let mut shredder = Shredder::new(&schema);
            for r in &records {
                shredder.shred(r);
            }
            shredder.finish()
        };
        (schema, batch)
    }

    #[test]
    fn page_roundtrip_all_columns() {
        let (schema, batch) = sample_batch();
        let (min, max) = key_bounds(&batch).unwrap();
        let page = encode_apax_page(&batch, &min, &max);
        let specs: HashMap<ColumnId, ColumnSpec> =
            columns_of(&schema).into_iter().map(|s| (s.id, s)).collect();

        let header = decode_apax_header(&page).unwrap();
        assert_eq!(header.record_count, 3);
        assert_eq!(header.min_key, Value::Int(1));
        assert_eq!(header.max_key, Value::Int(3));

        let (_, chunks) = decode_apax_columns(&page, &specs, None).unwrap();
        assert_eq!(chunks.len(), batch.columns.len());
        for (decoded, original) in chunks.iter().zip(&batch.columns) {
            assert_eq!(decoded, original);
        }
    }

    #[test]
    fn projection_decodes_only_requested_columns() {
        let (schema, batch) = sample_batch();
        let (min, max) = key_bounds(&batch).unwrap();
        let page = encode_apax_page(&batch, &min, &max);
        let specs: HashMap<ColumnId, ColumnSpec> =
            columns_of(&schema).into_iter().map(|s| (s.id, s)).collect();
        let key_id = columns_of(&schema).iter().find(|c| c.is_key).unwrap().id;
        let (_, chunks) = decode_apax_columns(&page, &specs, Some(&[key_id])).unwrap();
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].spec.is_key);
    }

    #[test]
    fn estimated_size_bounds_encoded_size() {
        let (_, batch) = sample_batch();
        let (min, max) = key_bounds(&batch).unwrap();
        let page = encode_apax_page(&batch, &min, &max);
        assert!(estimated_page_size(&batch) >= page.len());
    }

    #[test]
    fn corrupt_page_is_an_error() {
        let (schema, batch) = sample_batch();
        let (min, max) = key_bounds(&batch).unwrap();
        let page = encode_apax_page(&batch, &min, &max);
        let specs: HashMap<ColumnId, ColumnSpec> =
            columns_of(&schema).into_iter().map(|s| (s.id, s)).collect();
        assert!(decode_apax_header(&page[..1]).is_err());
        assert!(decode_apax_columns(&page[..page.len() / 2], &specs, None).is_err());
    }
}
