//! leafcache — a shared, size-bounded cache of **decoded leaves**.
//!
//! The page [`BufferCache`](crate::pagestore::BufferCache) short-circuits
//! disk reads but still pays the full decode + assembly cost on every leaf
//! visit. This module caches the *output* of that work so repeated point
//! reads and hot-range scans skip both the page reads and the decode.
//!
//! ## Keying
//!
//! Entries are keyed by `(origin, component id, leaf index, payload kind,
//! projected columns)`:
//!
//! * **origin** — a small integer handed out by [`LeafCache::handle`], one
//!   per dataset/shard attached to the cache. Component ids are only unique
//!   *within* a dataset (each shard counts from 1), so the origin disambiguates
//!   shards sharing one cache.
//! * **component id** — ids are monotonically allocated and *never reused*
//!   (the allocator is persisted in the manifest), so a key can never alias a
//!   future component. This is what makes the cache immune to page-id reuse:
//!   page slots are recycled by the free list, component ids are not.
//! * **leaf index** — position in the component's leaf directory.
//! * **payload kind + columns** — the same leaf can be cached as decoded
//!   column chunks (cursor path) and as fully assembled entries (lookup
//!   path), and separately per projected column set. See
//!   [`LeafPayloadKind`].
//!
//! ## Eviction, scan resistance, and budget accounting
//!
//! The cache holds at most `capacity` bytes of *estimated decoded size*
//! (entries via [`docmodel::Value::approx_size`], chunks via their vector
//! footprints). A payload larger than the whole capacity is never inserted
//! at all, so resident bytes are provably bounded by the configured budget
//! at every instant.
//!
//! Eviction is a **two-segment LRU** (probation/protected), so one-off
//! scans cannot flush the point-read working set:
//!
//! * inserts land in *probation*; a subsequent hit promotes the entry to
//!   *protected* (re-reference is the admission test);
//! * eviction removes the probation LRU first and touches the protected
//!   segment only when probation is empty — a cold full scan, whose leaves
//!   are each touched exactly once, evicts only its own stream;
//! * the protected segment is capped at 4/5 of the capacity: promotions
//!   beyond that demote the protected LRU back to probation, so the cache
//!   never wedges itself into a state where new entries can't be admitted.
//!
//! ## Payload sharing (why Entries and Chunks cache separately)
//!
//! The same physical leaf may be resident as decoded [`Chunks`]
//! (cursor path) and as assembled [`Entries`](LeafPayloadKind::Entries)
//! (lookup path), and separately per projected column set. These are *not*
//! shared views of one buffer — each payload owns its own decoded vectors —
//! so the **budget** deliberately charges each payload its full footprint
//! (`resident_leaves` / `resident_bytes` count payloads; anything else
//! would under-report real memory). The **residency gauges** exposed for
//! telemetry and planner discounts, however, must not double-charge a leaf
//! for being cached in two shapes: `resident_distinct_leaves` (and the
//! per-component `cached_leaf_count` the planner reads) deduplicate by
//! `(origin, component, leaf)`.
//!
//! [`Chunks`]: LeafPayloadKind::Chunks
//!
//! ## Invalidation protocol
//!
//! Two events drop entries eagerly rather than waiting for LRU pressure:
//!
//! * **Component retirement** — when a retired component's last pin drops
//!   (`Component::drop` with `free_on_drop` set, i.e. after a merge or
//!   dataset clear), its decoded leaves are invalidated right where its
//!   pages are freed. Until that point snapshot readers may still serve
//!   (and re-warm) the retired component — that is correct, because the
//!   id still refers to exactly that immutable content.
//! * **`reclaim_space` GC** — the copy-down pass rewrites a component's
//!   pages in place (same id, same logical content, new page slots). The
//!   decoded bytes are identical, but the dataset invalidates the id anyway
//!   so cached state never outlives a physical relocation.
//!
//! Because ids are never reused, a stale entry can at worst waste budget,
//! never serve wrong data; the invalidation protocol bounds the waste.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use columnar::{ColumnChunk, ColumnValues};
use docmodel::Value;
use schema::ColumnId;

use crate::component::Entry;

/// What shape of decoded payload an entry holds. Part of the cache key: the
/// cursor path and the lookup path want different representations of the
/// same leaf, and both may be resident at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeafPayloadKind {
    /// Fully materialised `(key, record)` entries — row-page decodes, and
    /// columnar leaves that have been assembled for point lookups.
    Entries,
    /// Decoded column chunks with record assembly still deferred — the
    /// columnar cursor path, which feeds chunks straight into per-column
    /// cursors.
    Chunks,
}

/// A cached decoded leaf. Payloads are `Arc`'d so a hit is a pointer bump,
/// never a deep copy; column chunks are additionally `Arc`'d per chunk so
/// they can be handed to `ColumnCursor`s without cloning the vectors.
#[derive(Clone)]
pub enum DecodedLeaf {
    /// See [`LeafPayloadKind::Entries`].
    Rows(Arc<Vec<Entry>>),
    /// See [`LeafPayloadKind::Chunks`].
    Chunks(Arc<Vec<Arc<ColumnChunk>>>),
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct LeafKey {
    origin: u64,
    component: u64,
    leaf: usize,
    kind: LeafPayloadKind,
    /// Normalised (sorted, deduplicated) projected column set; `None` means
    /// every column. Different projections decode different chunk sets, so
    /// they cache separately.
    columns: Option<Vec<ColumnId>>,
}

struct CachedLeaf {
    payload: DecodedLeaf,
    bytes: usize,
    last_used: u64,
    /// Segment membership: `false` = probation (inserted, never re-hit),
    /// `true` = protected (survived at least one re-reference). See the
    /// module docs' scan-resistance section.
    protected: bool,
}

/// Numerator/denominator of the byte-capacity fraction the protected
/// segment may hold before promotions start demoting its own LRU tail.
const PROTECTED_SHARE: (usize, usize) = (4, 5);

struct Inner {
    entries: HashMap<LeafKey, CachedLeaf>,
    total_bytes: usize,
    /// Bytes held by protected-segment entries (`<= total_bytes`).
    protected_bytes: usize,
    tick: u64,
}

/// Point-in-time counters and residency of a [`LeafCache`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LeafCacheStats {
    /// Leaf loads served from the cache (no page reads, no decode).
    pub hits: u64,
    /// Leaf loads that had to decode from the page store.
    pub misses: u64,
    /// Entries removed to stay under the byte capacity.
    pub evictions: u64,
    /// Entries removed by explicit invalidation (retirement / GC / clear).
    pub invalidations: u64,
    /// Estimated decoded bytes currently resident.
    pub resident_bytes: u64,
    /// Number of cached leaf *payloads* currently resident. The same
    /// physical leaf cached as both entries and chunks (or under two
    /// projections) counts once per payload — this is the budget-accounting
    /// view, since each payload holds its own decoded copy.
    pub resident_leaves: u64,
    /// Number of *distinct physical leaves* with at least one resident
    /// payload — the residency view for gauges and planner discounts, which
    /// must not double-charge a leaf for being cached in two shapes.
    pub resident_distinct_leaves: u64,
    /// Configured byte capacity.
    pub capacity_bytes: u64,
}

/// Shared, size-bounded cache of decoded leaves. One per
/// `Datastore`/`ShardedDataset`, shared by every shard, snapshot, and
/// concurrent reader; all methods take `&self` and are thread-safe.
///
/// See the [module docs](self) for the keying, eviction, and invalidation
/// protocol.
pub struct LeafCache {
    capacity: usize,
    inner: Mutex<Inner>,
    next_origin: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl std::fmt::Debug for LeafCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("LeafCache")
            .field("capacity_bytes", &stats.capacity_bytes)
            .field("resident_bytes", &stats.resident_bytes)
            .field("resident_leaves", &stats.resident_leaves)
            .finish_non_exhaustive()
    }
}

impl LeafCache {
    /// A cache that holds at most `capacity_bytes` of estimated decoded
    /// payload.
    pub fn new(capacity_bytes: usize) -> LeafCache {
        LeafCache {
            capacity: capacity_bytes,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                total_bytes: 0,
                protected_bytes: 0,
                tick: 0,
            }),
            next_origin: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Register one dataset/shard with the cache, reserving a fresh origin
    /// id for its component-id namespace.
    pub fn handle(self: &Arc<LeafCache>) -> LeafCacheHandle {
        LeafCacheHandle {
            cache: Arc::clone(self),
            origin: self.next_origin.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Configured byte capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    /// Estimated decoded bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().total_bytes
    }

    /// Number of cached leaf payloads currently resident (one physical leaf
    /// may account for several — see [`LeafCacheStats::resident_leaves`]).
    pub fn resident_leaves(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Number of distinct physical leaves with at least one resident
    /// payload — the deduplicated residency gauge.
    pub fn resident_distinct_leaves(&self) -> usize {
        let inner = self.inner.lock();
        let distinct: HashSet<(u64, u64, usize)> = inner
            .entries
            .keys()
            .map(|k| (k.origin, k.component, k.leaf))
            .collect();
        distinct.len()
    }

    /// Snapshot of counters and residency.
    pub fn stats(&self) -> LeafCacheStats {
        let (total_bytes, len, distinct) = {
            let inner = self.inner.lock();
            let distinct: HashSet<(u64, u64, usize)> = inner
                .entries
                .keys()
                .map(|k| (k.origin, k.component, k.leaf))
                .collect();
            (inner.total_bytes, inner.entries.len(), distinct.len())
        };
        LeafCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            resident_bytes: total_bytes as u64,
            resident_leaves: len as u64,
            resident_distinct_leaves: distinct as u64,
            capacity_bytes: self.capacity as u64,
        }
    }

    /// Drop every entry (counted as invalidations). Counters survive.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let dropped = inner.entries.len() as u64;
        inner.entries.clear();
        inner.total_bytes = 0;
        inner.protected_bytes = 0;
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
    }

    fn lookup(
        &self,
        key: &LeafKey,
        refresh: bool,
    ) -> Option<DecodedLeaf> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.entries.get_mut(key)?;
        let payload = entry.payload.clone();
        if refresh {
            entry.last_used = tick;
            // A re-reference promotes the entry out of probation: it has
            // proven it is part of a working set, not a one-off scan.
            if !entry.protected {
                entry.protected = true;
                let bytes = entry.bytes;
                inner.protected_bytes += bytes;
                self.demote_over_share(&mut inner);
            }
        }
        Some(payload)
    }

    /// Demote protected-LRU entries back to probation until the protected
    /// segment fits its share of the capacity. The just-promoted entry
    /// carries the newest tick, so it is never its own demotion victim.
    fn demote_over_share(&self, inner: &mut Inner) {
        let share = self.capacity * PROTECTED_SHARE.0 / PROTECTED_SHARE.1;
        while inner.protected_bytes > share {
            let victim = inner
                .entries
                .iter()
                .filter(|(_, e)| e.protected)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    if let Some(e) = inner.entries.get_mut(&k) {
                        e.protected = false;
                        inner.protected_bytes -= e.bytes;
                    }
                }
                None => break,
            }
        }
    }

    fn get(
        &self,
        origin: u64,
        component: u64,
        leaf: usize,
        kind: LeafPayloadKind,
        columns: Option<&[ColumnId]>,
    ) -> Option<DecodedLeaf> {
        let key = LeafKey {
            origin,
            component,
            leaf,
            kind,
            columns: normalise_columns(columns),
        };
        let found = self.lookup(&key, true);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn peek(
        &self,
        origin: u64,
        component: u64,
        leaf: usize,
        kind: LeafPayloadKind,
        columns: Option<&[ColumnId]>,
    ) -> Option<DecodedLeaf> {
        let key = LeafKey {
            origin,
            component,
            leaf,
            kind,
            columns: normalise_columns(columns),
        };
        self.lookup(&key, true)
    }

    fn insert(
        &self,
        origin: u64,
        component: u64,
        leaf: usize,
        kind: LeafPayloadKind,
        columns: Option<&[ColumnId]>,
        payload: DecodedLeaf,
    ) -> u64 {
        let bytes = payload_bytes(&payload);
        if bytes > self.capacity {
            // An oversized payload would evict everything and still not
            // fit; refusing it keeps resident bytes ≤ capacity invariant.
            return 0;
        }
        let key = LeafKey {
            origin,
            component,
            leaf,
            kind,
            columns: normalise_columns(columns),
        };
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.entries.insert(
            key,
            // New entries start on probation: a payload has to be re-hit
            // before it may displace the protected working set.
            CachedLeaf {
                payload,
                bytes,
                last_used: tick,
                protected: false,
            },
        ) {
            inner.total_bytes -= old.bytes;
            if old.protected {
                inner.protected_bytes -= old.bytes;
            }
        }
        inner.total_bytes += bytes;
        let mut evicted = 0u64;
        while inner.total_bytes > self.capacity {
            // Probation first: a one-off scan then only ever evicts its own
            // stream. The protected segment is touched only when probation
            // is empty. The fresh insert carries the newest tick, so it is
            // never its own victim while older probation entries exist.
            let victim = inner
                .entries
                .iter()
                .filter(|(_, e)| !e.protected)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .or_else(|| {
                    inner
                        .entries
                        .iter()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(k, _)| k.clone())
                });
            match victim {
                Some(k) => {
                    if let Some(e) = inner.entries.remove(&k) {
                        inner.total_bytes -= e.bytes;
                        if e.protected {
                            inner.protected_bytes -= e.bytes;
                        }
                        evicted += 1;
                    }
                }
                None => break,
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        evicted
    }

    fn invalidate(&self, origin: u64, component: u64) -> u64 {
        let mut inner = self.inner.lock();
        let before = inner.entries.len();
        inner
            .entries
            .retain(|k, _| !(k.origin == origin && k.component == component));
        let dropped = (before - inner.entries.len()) as u64;
        inner.total_bytes = inner.entries.values().map(|e| e.bytes).sum();
        inner.protected_bytes = inner
            .entries
            .values()
            .filter(|e| e.protected)
            .map(|e| e.bytes)
            .sum();
        if dropped > 0 {
            self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        }
        dropped
    }

    fn cached_leaf_count(&self, origin: u64, component: u64) -> usize {
        let inner = self.inner.lock();
        let mut leaves = HashSet::new();
        for k in inner.entries.keys() {
            if k.origin == origin && k.component == component {
                leaves.insert(k.leaf);
            }
        }
        leaves.len()
    }
}

/// One dataset's view of a shared [`LeafCache`]: the cache plus the origin
/// id that namespaces this dataset's component ids. Cheap to clone; rides
/// along on [`BufferCache`](crate::pagestore::BufferCache) clones.
#[derive(Clone)]
pub struct LeafCacheHandle {
    cache: Arc<LeafCache>,
    origin: u64,
}

impl LeafCacheHandle {
    /// The shared cache behind this handle.
    pub fn cache(&self) -> &Arc<LeafCache> {
        &self.cache
    }

    /// This dataset's origin id.
    pub fn origin(&self) -> u64 {
        self.origin
    }

    /// Fetch a decoded leaf, counting a cache hit or miss.
    pub fn get(
        &self,
        component: u64,
        leaf: usize,
        kind: LeafPayloadKind,
        columns: Option<&[ColumnId]>,
    ) -> Option<DecodedLeaf> {
        self.cache.get(self.origin, component, leaf, kind, columns)
    }

    /// Fetch a decoded leaf without touching the hit/miss counters — used
    /// when a miss on one payload kind can be served by transcoding another
    /// resident kind (still refreshes recency).
    pub fn peek(
        &self,
        component: u64,
        leaf: usize,
        kind: LeafPayloadKind,
        columns: Option<&[ColumnId]>,
    ) -> Option<DecodedLeaf> {
        self.cache.peek(self.origin, component, leaf, kind, columns)
    }

    /// Insert a decoded leaf, evicting LRU entries as needed to stay under
    /// the byte capacity. Returns how many entries were evicted.
    pub fn insert(
        &self,
        component: u64,
        leaf: usize,
        kind: LeafPayloadKind,
        columns: Option<&[ColumnId]>,
        payload: DecodedLeaf,
    ) -> u64 {
        self.cache
            .insert(self.origin, component, leaf, kind, columns, payload)
    }

    /// Drop every cached leaf of one component (retirement / GC). Returns
    /// how many entries were dropped.
    pub fn invalidate_component(&self, component: u64) -> u64 {
        self.cache.invalidate(self.origin, component)
    }

    /// Distinct leaf indices of `component` with at least one resident
    /// payload — the planner's residency-discount input.
    pub fn cached_leaf_count(&self, component: u64) -> usize {
        self.cache.cached_leaf_count(self.origin, component)
    }
}

fn normalise_columns(columns: Option<&[ColumnId]>) -> Option<Vec<ColumnId>> {
    columns.map(|cols| {
        let mut v = cols.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn entry_bytes(entry: &Entry) -> usize {
    let (key, doc) = entry;
    key.approx_size() + doc.as_ref().map_or(0, Value::approx_size) + 16
}

fn chunk_bytes(chunk: &ColumnChunk) -> usize {
    let values = match &chunk.values {
        ColumnValues::Bool(v) => v.len(),
        ColumnValues::Int(v) => v.len() * 8,
        ColumnValues::Double(v) => v.len() * 8,
        ColumnValues::String(v) => v.iter().map(|s| 24 + s.len()).sum(),
    };
    64 + chunk.defs.len() * 2 + values
}

/// Estimated decoded size of a payload — the unit of budget accounting.
pub fn payload_bytes(payload: &DecodedLeaf) -> usize {
    match payload {
        DecodedLeaf::Rows(entries) => 32 + entries.iter().map(entry_bytes).sum::<usize>(),
        DecodedLeaf::Chunks(chunks) => {
            32 + chunks.iter().map(|c| chunk_bytes(c)).sum::<usize>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize, tag: i64) -> DecodedLeaf {
        let entries: Vec<Entry> = (0..n)
            .map(|i| (Value::Int(tag * 1000 + i as i64), Some(Value::Int(i as i64))))
            .collect();
        DecodedLeaf::Rows(Arc::new(entries))
    }

    fn rows_len(leaf: &DecodedLeaf) -> usize {
        match leaf {
            DecodedLeaf::Rows(entries) => entries.len(),
            DecodedLeaf::Chunks(_) => panic!("expected rows"),
        }
    }

    #[test]
    fn hit_after_insert_and_counters() {
        let cache = Arc::new(LeafCache::new(1 << 20));
        let h = cache.handle();
        assert!(h.get(1, 0, LeafPayloadKind::Entries, None).is_none());
        h.insert(1, 0, LeafPayloadKind::Entries, None, rows(4, 7));
        let hit = h.get(1, 0, LeafPayloadKind::Entries, None).expect("hit");
        assert_eq!(rows_len(&hit), 4);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.resident_leaves, 1);
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn payload_kinds_and_projections_cache_separately() {
        let cache = Arc::new(LeafCache::new(1 << 20));
        let h = cache.handle();
        h.insert(1, 0, LeafPayloadKind::Entries, None, rows(1, 1));
        assert!(h.peek(1, 0, LeafPayloadKind::Chunks, None).is_none());
        let cols: Vec<ColumnId> = vec![3, 1, 3];
        let sorted: Vec<ColumnId> = vec![1, 3];
        h.insert(1, 0, LeafPayloadKind::Entries, Some(&cols), rows(2, 2));
        // Normalised column sets are order/dup insensitive.
        let hit = h
            .peek(1, 0, LeafPayloadKind::Entries, Some(&sorted))
            .expect("normalised projection hit");
        assert_eq!(rows_len(&hit), 2);
        assert!(h.peek(1, 0, LeafPayloadKind::Entries, None).is_some());
        assert_eq!(cache.resident_leaves(), 2);
    }

    #[test]
    fn lru_eviction_keeps_resident_bytes_under_capacity() {
        let one_leaf = payload_bytes(&rows(8, 0));
        let cache = Arc::new(LeafCache::new(one_leaf * 3 + 1));
        let h = cache.handle();
        for leaf in 0..3 {
            h.insert(1, leaf, LeafPayloadKind::Entries, None, rows(8, leaf as i64));
        }
        // Touch leaf 0 so leaf 1 is the LRU victim.
        assert!(h.get(1, 0, LeafPayloadKind::Entries, None).is_some());
        let evicted = h.insert(1, 3, LeafPayloadKind::Entries, None, rows(8, 3));
        assert_eq!(evicted, 1);
        assert!(h.peek(1, 1, LeafPayloadKind::Entries, None).is_none());
        assert!(h.peek(1, 0, LeafPayloadKind::Entries, None).is_some());
        assert!(cache.resident_bytes() <= cache.capacity_bytes());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn oversized_payload_is_never_cached() {
        let cache = Arc::new(LeafCache::new(64));
        let h = cache.handle();
        let evicted = h.insert(1, 0, LeafPayloadKind::Entries, None, rows(64, 0));
        assert_eq!(evicted, 0);
        assert_eq!(cache.resident_leaves(), 0);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn invalidate_component_drops_all_its_leaves_only() {
        let cache = Arc::new(LeafCache::new(1 << 20));
        let h = cache.handle();
        for leaf in 0..4 {
            h.insert(1, leaf, LeafPayloadKind::Entries, None, rows(2, 1));
            h.insert(2, leaf, LeafPayloadKind::Entries, None, rows(2, 2));
        }
        assert_eq!(h.cached_leaf_count(1), 4);
        assert_eq!(h.invalidate_component(1), 4);
        assert_eq!(h.cached_leaf_count(1), 0);
        assert_eq!(h.cached_leaf_count(2), 4);
        assert_eq!(cache.stats().invalidations, 4);
        assert!(h.peek(2, 0, LeafPayloadKind::Entries, None).is_some());
    }

    #[test]
    fn origins_namespace_component_ids() {
        let cache = Arc::new(LeafCache::new(1 << 20));
        let shard_a = cache.handle();
        let shard_b = cache.handle();
        assert_ne!(shard_a.origin(), shard_b.origin());
        shard_a.insert(1, 0, LeafPayloadKind::Entries, None, rows(3, 10));
        shard_b.insert(1, 0, LeafPayloadKind::Entries, None, rows(5, 20));
        assert_eq!(
            rows_len(&shard_a.peek(1, 0, LeafPayloadKind::Entries, None).unwrap()),
            3
        );
        assert_eq!(
            rows_len(&shard_b.peek(1, 0, LeafPayloadKind::Entries, None).unwrap()),
            5
        );
        // Invalidating shard A's component 1 leaves shard B's untouched.
        shard_a.invalidate_component(1);
        assert!(shard_a.peek(1, 0, LeafPayloadKind::Entries, None).is_none());
        assert!(shard_b.peek(1, 0, LeafPayloadKind::Entries, None).is_some());
    }

    #[test]
    fn hot_set_survives_a_full_cold_scan() {
        // A cache big enough for ~8 leaves, a hot set of 4, and a cold scan
        // of 64 distinct leaves (component 2) streaming through once.
        let one_leaf = payload_bytes(&rows(8, 0));
        let cache = Arc::new(LeafCache::new(one_leaf * 8 + 1));
        let h = cache.handle();
        for leaf in 0..4 {
            h.insert(1, leaf, LeafPayloadKind::Entries, None, rows(8, leaf as i64));
            // Promote to protected: the hot set has been re-referenced.
            assert!(h.get(1, leaf, LeafPayloadKind::Entries, None).is_some());
        }
        for leaf in 0..64 {
            // Each scan leaf is touched once — inserted, never re-hit.
            h.insert(2, leaf, LeafPayloadKind::Entries, None, rows(8, leaf as i64));
        }
        // The scan churned through probation only; every hot leaf is still
        // resident, so the hot-key hit rate survives the scan intact.
        for leaf in 0..4 {
            assert!(
                h.peek(1, leaf, LeafPayloadKind::Entries, None).is_some(),
                "hot leaf {leaf} was evicted by a one-off scan"
            );
        }
        assert!(cache.resident_bytes() <= cache.capacity_bytes());
    }

    #[test]
    fn promotion_cap_demotes_instead_of_wedging() {
        // Promote more than 4/5 of the capacity: the cache must keep
        // admitting and keep every promotion path working (demoted entries
        // stay resident, just evictable again).
        let one_leaf = payload_bytes(&rows(8, 0));
        let cache = Arc::new(LeafCache::new(one_leaf * 5 + 1));
        let h = cache.handle();
        for leaf in 0..5 {
            h.insert(1, leaf, LeafPayloadKind::Entries, None, rows(8, leaf as i64));
            assert!(h.get(1, leaf, LeafPayloadKind::Entries, None).is_some());
        }
        assert_eq!(cache.resident_leaves(), 5);
        // A new insert still finds an evictable victim.
        h.insert(1, 9, LeafPayloadKind::Entries, None, rows(8, 9));
        assert!(h.peek(1, 9, LeafPayloadKind::Entries, None).is_some());
        assert!(cache.resident_bytes() <= cache.capacity_bytes());
    }

    #[test]
    fn distinct_leaf_gauge_deduplicates_payload_kinds() {
        let cache = Arc::new(LeafCache::new(1 << 20));
        let h = cache.handle();
        // One physical leaf, two shapes + one extra projection.
        h.insert(1, 0, LeafPayloadKind::Entries, None, rows(2, 1));
        h.insert(1, 0, LeafPayloadKind::Chunks, None, rows(2, 1));
        h.insert(1, 0, LeafPayloadKind::Entries, Some(&[1]), rows(2, 1));
        // A second physical leaf.
        h.insert(1, 1, LeafPayloadKind::Entries, None, rows(2, 2));
        // Budget view counts payloads; residency view counts leaves.
        assert_eq!(cache.resident_leaves(), 4);
        assert_eq!(cache.resident_distinct_leaves(), 2);
        assert_eq!(cache.stats().resident_distinct_leaves, 2);
        assert_eq!(cache.stats().resident_leaves, 4);
    }

    #[test]
    fn clear_counts_invalidations_and_zeroes_residency() {
        let cache = Arc::new(LeafCache::new(1 << 20));
        let h = cache.handle();
        h.insert(1, 0, LeafPayloadKind::Entries, None, rows(2, 0));
        h.insert(1, 1, LeafPayloadKind::Entries, None, rows(2, 1));
        cache.clear();
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.resident_leaves(), 0);
        assert_eq!(cache.stats().invalidations, 2);
    }
}
