//! Immutable on-disk components in the four layouts, behind one interface.
//!
//! An LSM flush (or merge) produces a *component*: a sorted, immutable run of
//! `(key, record-or-anti-matter)` entries together with the schema inferred
//! up to that point (persisted, in the real system, on the component's
//! metadata page). This module writes and reads components in the four
//! layouts the paper evaluates:
//!
//! * `Open` and `Vb` — row-major slotted pages ([`crate::rowpage`]);
//! * `Apax` — one APAX page per batch of records ([`crate::apax`]);
//! * `Amax` — mega leaf nodes ([`crate::amax`]).
//!
//! All layouts apply page-level compression (the stand-in for Snappy) and are
//! read through the shared [`BufferCache`], so the experiments can compare
//! page I/O across layouts directly. The per-page (or per-leaf) minimum and
//! maximum keys kept in [`Component`] play the role of the B+-tree interior
//! nodes: point lookups and merges locate leaves through them without
//! touching data pages.
//!
//! ## The cursor protocol
//!
//! Reads are *pull-based*: a cursor loads **one leaf at a time** (one row
//! page, one APAX page, or one AMAX mega leaf) and hands entries out in key
//! order. No page is read before the consumer pulls past the previous leaf,
//! so dropping a cursor early (a `LIMIT`, a short-circuiting merge) leaves
//! the remaining leaves untouched and unread. For **columnar** leaves,
//! record assembly is itself lazy: loading a leaf decodes only the key
//! column; [`ComponentCursor::peek_key`] exposes the next key without
//! assembling anything, and [`ComponentCursor::skip_entry`] batch-advances
//! every column cursor past a record (§4.4's skipping) so entries shadowed
//! by newer components are never decoded into documents. Both the page reads
//! and the per-record assembly are observable through the
//! [`crate::pagestore::IoStats`] counters (`pages_read`,
//! `records_assembled`). Two front ends share the implementation:
//!
//! * [`ComponentScan`] borrows the component (`ComponentReader::scan`) —
//!   used where the caller already holds the component;
//! * [`ComponentCursor`] owns an `Arc<Component>` ([`Component::cursor`]) —
//!   used by the LSM snapshot's merge-reconcile cursor and any caller that
//!   must outlive a borrow (the facade's streaming scan API).
//!
//! Both honour projection push-down: only the resolved columns of the
//! projected paths are decoded (and, for AMAX, read at all).
//!
//! ## Filter push-down (late materialization)
//!
//! A cursor can additionally carry a [`ScanFilter`]: a conjunction of
//! [`ColumnPredicate`] ranges over single-valued scalar paths, plus the key
//! ranges of every *older* component in the same snapshot. The contract:
//!
//! * **Only the reconciliation winner is evaluated.** The cursor never
//!   hides keys from the k-way merge on its own — a non-matching entry can
//!   still shadow an older version of its key, and dropping it before
//!   reconciliation would resurrect that stale version. The merge cursor
//!   (`lsm::snapshot`) picks the winning source per key, batch-skips the
//!   shadowed losers unevaluated, and only then asks the winner
//!   [`ComponentCursor::pushed_matches`]; rejected winners are consumed
//!   with [`ComponentCursor::skip_entry_filtered`], which counts them in
//!   `IoStats::records_filtered_pre_assembly`.
//! * **Columnar leaves evaluate on the filter columns alone.** A filtered
//!   lazy leaf decodes the key column plus the filter columns eagerly; the
//!   projection columns are not decoded — for AMAX, their pages are not
//!   even read — until some record of the leaf survives the filter. A leaf
//!   whose records are all rejected therefore costs zero
//!   non-filter-column page reads and zero `records_assembled`.
//! * **Per-leaf zone maps skip whole leaves.** Each leaf carries the same
//!   [`ComponentStats`] shape the component carries. When a pushed
//!   predicate proves no record of the leaf can match *and* the leaf's key
//!   range is disjoint from every older component's key range (so hiding
//!   it can neither resurrect a shadowed version nor lose an anti-matter
//!   entry that still annihilates something), the leaf is skipped before
//!   any page read and counted in `IoStats::leaves_skipped`.
//! * **Anti-matter always passes the filter** — it must reach the merge to
//!   annihilate older versions of its key; the snapshot scan drops it
//!   after reconciliation.
//!
//! The query planner decides what is pushable (sargable conjuncts over
//! non-repeated paths — the existential `[*]` semantics make repeated
//! paths unsafe to push) and keeps the rest as a *residual* predicate
//! evaluated on the assembled record.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::ops::Bound;
use std::sync::Arc;

use columnar::{Assembler, ColumnCursor, ShreddedBatch, Shredder};
use docmodel::{total_cmp, Path, Value};
use encoding::{compress, DecodeError};
use schema::{columns_of, ColumnId, ColumnSpec, Schema};

use crate::amax::{self, AmaxConfig};
use crate::apax;
use crate::leafcache::{DecodedLeaf, LeafCacheHandle, LeafPayloadKind};
use crate::pagestore::{BufferCache, PageId};
use crate::rowformat::RowFormat;
use crate::rowpage;
use crate::stats::{ComponentStats, StatsBuilder};
use crate::Result;

/// The four storage layouts of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// AsterixDB's schemaless row format.
    Open,
    /// The vector-based row format.
    Vb,
    /// APAX: columns as minipages inside each leaf page.
    Apax,
    /// AMAX: columns as megapages inside mega leaf nodes.
    Amax,
}

impl LayoutKind {
    /// All four layouts, in the order the paper's figures list them.
    pub const ALL: [LayoutKind; 4] = [
        LayoutKind::Open,
        LayoutKind::Vb,
        LayoutKind::Apax,
        LayoutKind::Amax,
    ];

    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            LayoutKind::Open => "Open",
            LayoutKind::Vb => "VB",
            LayoutKind::Apax => "APAX",
            LayoutKind::Amax => "AMAX",
        }
    }

    /// `true` for the two columnar layouts.
    pub fn is_columnar(self) -> bool {
        matches!(self, LayoutKind::Apax | LayoutKind::Amax)
    }

    /// Stable numeric tag used when persisting the layout (manifests).
    pub fn tag(self) -> u8 {
        match self {
            LayoutKind::Open => 0,
            LayoutKind::Vb => 1,
            LayoutKind::Apax => 2,
            LayoutKind::Amax => 3,
        }
    }

    /// Inverse of [`LayoutKind::tag`].
    pub fn from_tag(tag: u8) -> Result<LayoutKind> {
        Ok(match tag {
            0 => LayoutKind::Open,
            1 => LayoutKind::Vb,
            2 => LayoutKind::Apax,
            3 => LayoutKind::Amax,
            other => return Err(DecodeError::new(format!("unknown layout tag {other}"))),
        })
    }
}

/// Configuration shared by component writers.
#[derive(Debug, Clone)]
pub struct ComponentConfig {
    /// Storage layout.
    pub layout: LayoutKind,
    /// AMAX-specific knobs.
    pub amax: AmaxConfig,
    /// Apply page-level compression (on by default, as in the paper's setup).
    pub compress_pages: bool,
}

impl ComponentConfig {
    /// Default configuration for a layout.
    pub fn new(layout: LayoutKind) -> ComponentConfig {
        ComponentConfig {
            layout,
            amax: AmaxConfig::default(),
            compress_pages: true,
        }
    }
}

/// One entry of a component: primary key plus record, or anti-matter (`None`).
pub type Entry = (Value, Option<Value>);

/// One pushed-down range predicate over a single-valued scalar path — the
/// sargable half of a query filter, in a vocabulary the storage layer can
/// evaluate without the query crate's expression trees.
///
/// Matching is *existential*, exactly like the query layer's comparison
/// semantics: the predicate holds when **some** value at `path` falls inside
/// `[lo, hi]` under the document total order; a record without the path
/// never matches.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnPredicate {
    /// The (non-repeated) path the predicate constrains.
    pub path: Path,
    /// Lower bound of the accepted range.
    pub lo: Bound<Value>,
    /// Upper bound of the accepted range.
    pub hi: Bound<Value>,
}

impl ColumnPredicate {
    /// Does `doc` hold a value at the path inside the range?
    pub fn matches(&self, doc: &Value) -> bool {
        self.path.evaluate(doc).iter().any(|v| self.contains(v))
    }

    /// Is `v` inside `[lo, hi]` under the document total order?
    pub fn contains(&self, v: &Value) -> bool {
        let above_lo = match &self.lo {
            Bound::Unbounded => true,
            Bound::Included(b) => total_cmp(v, b) != Ordering::Less,
            Bound::Excluded(b) => total_cmp(v, b) == Ordering::Greater,
        };
        let below_hi = match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(b) => total_cmp(v, b) != Ordering::Greater,
            Bound::Excluded(b) => total_cmp(v, b) == Ordering::Less,
        };
        above_lo && below_hi
    }

    /// Do `stats` (a component's or a leaf's zone map) prove that **no**
    /// record they cover can match? True when the path was never addressed
    /// by a live record (stats track every observed path, composites
    /// included, so absence really means absence), or when its `[min, max]`
    /// bounds are disjoint from the range. Paths without usable bounds
    /// (multi-valued or composite sightings) are never provably empty.
    pub fn prove_no_match(&self, stats: &ComponentStats) -> bool {
        let Some(column) = stats.column(&self.path.to_string()) else {
            return true;
        };
        if column.values == 0 {
            return true;
        }
        let below = column
            .max
            .as_ref()
            .is_some_and(|max| match &self.lo {
                Bound::Unbounded => false,
                Bound::Included(b) => total_cmp(max, b) == Ordering::Less,
                Bound::Excluded(b) => total_cmp(max, b) != Ordering::Greater,
            });
        let above = column
            .min
            .as_ref()
            .is_some_and(|min| match &self.hi {
                Bound::Unbounded => false,
                Bound::Included(b) => total_cmp(min, b) == Ordering::Greater,
                Bound::Excluded(b) => total_cmp(min, b) != Ordering::Less,
            });
        below || above
    }
}

impl std::fmt::Display for ColumnPredicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let (Bound::Included(a), Bound::Included(b)) = (&self.lo, &self.hi) {
            if a == b {
                return write!(f, "{} = {a}", self.path);
            }
        }
        let mut wrote = false;
        match &self.lo {
            Bound::Included(v) => {
                write!(f, "{} >= {v}", self.path)?;
                wrote = true;
            }
            Bound::Excluded(v) => {
                write!(f, "{} > {v}", self.path)?;
                wrote = true;
            }
            Bound::Unbounded => {}
        }
        match &self.hi {
            Bound::Included(v) => {
                if wrote {
                    write!(f, " AND ")?;
                }
                write!(f, "{} <= {v}", self.path)?;
                wrote = true;
            }
            Bound::Excluded(v) => {
                if wrote {
                    write!(f, " AND ")?;
                }
                write!(f, "{} < {v}", self.path)?;
                wrote = true;
            }
            Bound::Unbounded => {}
        }
        if !wrote {
            write!(f, "{}: any", self.path)?;
        }
        Ok(())
    }
}

/// A pushed-down scan filter handed to [`Component::cursor_filtered`]: the
/// sargable conjuncts (all must hold) plus the reconciliation-safety context
/// for zone-map leaf skipping. See the module-level filter push-down
/// contract.
#[derive(Clone)]
pub struct ScanFilter {
    /// Conjunction of pushed predicates (shared across every source of one
    /// snapshot scan).
    pub predicates: Arc<Vec<ColumnPredicate>>,
    /// `(min_key, max_key)` of every component **older** than the one being
    /// scanned — pruned or not. A leaf may only be zone-map-skipped when its
    /// key range is disjoint from all of them: hiding a leaf whose keys
    /// overlap an older component could resurrect a shadowed version or
    /// drop an anti-matter entry that still annihilates something.
    pub older_key_ranges: Arc<Vec<(Value, Value)>>,
}

#[derive(Debug, Clone)]
struct LeafRef {
    /// Page id of the leaf page (row or APAX) or of Page 0 (AMAX).
    page: PageId,
    /// Data pages of an AMAX mega leaf (empty for other layouts).
    data_pages: Vec<PageId>,
    min_key: Value,
    max_key: Value,
    record_count: usize,
    /// Per-leaf zone map (same shape as the component-level stats), used to
    /// skip whole leaves under a pushed-down filter. `None` for leaves
    /// recovered from a pre-V5 manifest — such leaves are never skipped.
    stats: Option<ComponentStats>,
}

/// Summary information about a component.
#[derive(Debug, Clone)]
pub struct ComponentMeta {
    /// Monotonic component identifier (newer components have larger ids).
    pub id: u64,
    /// Storage layout of this component.
    pub layout: LayoutKind,
    /// Number of entries (records plus anti-matter).
    pub record_count: usize,
    /// Smallest key in the component.
    pub min_key: Option<Value>,
    /// Largest key in the component.
    pub max_key: Option<Value>,
    /// Bytes stored on the simulated disk (after page compression).
    pub stored_bytes: u64,
    /// Every page belonging to the component (for freeing after a merge).
    pub pages: Vec<PageId>,
}

/// Description of one leaf, sufficient to reopen it from a manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafDescriptor {
    /// Page id of the leaf page (row or APAX) or of Page 0 (AMAX).
    pub page: PageId,
    /// Data pages of an AMAX mega leaf (empty for other layouts).
    pub data_pages: Vec<PageId>,
    /// Smallest key in the leaf.
    pub min_key: Value,
    /// Largest key in the leaf.
    pub max_key: Value,
    /// Number of entries in the leaf.
    pub record_count: usize,
    /// Per-leaf zone map over the leaf's live records. `None` for leaves
    /// recovered from a pre-V5 manifest (they simply are not skippable
    /// until the next merge rewrites them with stats).
    pub stats: Option<ComponentStats>,
}

/// Serializable description of a whole component: everything a manifest must
/// record so [`Component::open`] can rebuild the in-memory handle after a
/// restart (the schema is persisted separately, once per manifest).
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentDescriptor {
    /// Monotonic component identifier.
    pub id: u64,
    /// Storage layout of the component.
    pub layout: LayoutKind,
    /// Number of entries (records plus anti-matter).
    pub record_count: usize,
    /// Bytes stored on disk (after page compression).
    pub stored_bytes: u64,
    /// Every page belonging to the component.
    pub pages: Vec<PageId>,
    /// The component's leaves, in key order.
    pub leaves: Vec<LeafDescriptor>,
    /// Per-column statistics collected when the component was written.
    /// `None` only for components recovered from a pre-stats manifest.
    pub stats: Option<ComponentStats>,
}

/// An immutable on-disk component.
///
/// Components are shared as `Arc<Component>` between the LSM tree and any
/// number of concurrent read snapshots. When a merge replaces a component it
/// calls [`Component::retire`]; the pages are then freed when the *last*
/// handle drops, so a snapshot taken before the merge can keep reading the
/// old component safely.
pub struct Component {
    meta: ComponentMeta,
    schema: Schema,
    specs: HashMap<ColumnId, ColumnSpec>,
    key_spec: Option<ColumnSpec>,
    leaves: Vec<LeafRef>,
    stats: Option<Arc<ComponentStats>>,
    config: ComponentConfig,
    cache: BufferCache,
    free_on_drop: std::sync::atomic::AtomicBool,
}

impl Drop for Component {
    fn drop(&mut self) {
        if *self.free_on_drop.get_mut() {
            // Free through the cache so cached copies of these ids are
            // evicted before the store recycles the slots for new pages.
            self.cache.free_pages(&self.meta.pages);
            // The component id is dead for good (ids are never reused), so
            // its decoded leaves can never be read again — drop them now
            // rather than letting them squat on the leaf-cache budget.
            if let Some(handle) = self.cache.leaf_cache() {
                handle.invalidate_component(self.meta.id);
            }
        }
    }
}

/// Read-side interface shared by every layout (used by the LSM tree and the
/// query engine).
pub trait ComponentReader {
    /// Component summary.
    fn meta(&self) -> &ComponentMeta;
    /// The schema persisted with the component.
    fn schema(&self) -> &Schema;
    /// Scan all entries in key order, assembling only the projected paths
    /// (`None` = every column, `Some(&[])` = keys only).
    fn scan(&self, projection: Option<&[Path]>) -> Result<ComponentScan<'_>>;
    /// Point lookup. `Ok(None)` = key not in this component,
    /// `Ok(Some(None))` = anti-matter entry, `Ok(Some(Some(doc)))` = record.
    fn lookup(&self, key: &Value, projection: Option<&[Path]>) -> Result<Option<Option<Value>>>;
}

impl Component {
    /// Write a component from sorted entries.
    ///
    /// `entries` must be sorted by key with unique keys (the memtable and the
    /// merge both guarantee this); `schema` is the inferred schema snapshot
    /// to persist with the component.
    pub fn write(
        cache: &BufferCache,
        config: &ComponentConfig,
        schema: Schema,
        entries: &[Entry],
        id: u64,
    ) -> Result<Component> {
        let page_budget = cache.store().page_size() - 64;
        let mut leaves = Vec::new();
        let mut pages = Vec::new();
        let mut stored_bytes = 0u64;

        match config.layout {
            LayoutKind::Open | LayoutKind::Vb => {
                let format = if config.layout == LayoutKind::Open {
                    RowFormat::Open
                } else {
                    RowFormat::Vb
                };
                let mut batch: Vec<Entry> = Vec::new();
                let mut batch_size = 0usize;
                for entry in entries {
                    batch_size += rowpage::entry_size_estimate(format, entry);
                    batch.push(entry.clone());
                    if batch_size >= page_budget {
                        write_row_leaf(
                            cache, config, format, &mut batch, page_budget, &mut leaves, &mut pages,
                            &mut stored_bytes,
                        )?;
                        batch_size = 0;
                    }
                }
                if !batch.is_empty() {
                    write_row_leaf(
                        cache, config, format, &mut batch, page_budget, &mut leaves, &mut pages,
                        &mut stored_bytes,
                    )?;
                }
            }
            LayoutKind::Apax => {
                let mut batch: Vec<Entry> = Vec::new();
                let mut batch_size = 0usize;
                for entry in entries {
                    batch_size += rowpage::entry_size_estimate(RowFormat::Vb, entry);
                    batch.push(entry.clone());
                    if batch_size >= page_budget {
                        write_apax_leaves(
                            cache, config, &schema, &batch, page_budget, &mut leaves, &mut pages,
                            &mut stored_bytes,
                        )?;
                        batch.clear();
                        batch_size = 0;
                    }
                }
                if !batch.is_empty() {
                    write_apax_leaves(
                        cache, config, &schema, &batch, page_budget, &mut leaves, &mut pages,
                        &mut stored_bytes,
                    )?;
                }
            }
            LayoutKind::Amax => {
                for batch in entries.chunks(config.amax.record_limit.max(1)) {
                    write_amax_leaf(
                        cache, config, &schema, batch, page_budget, &mut leaves, &mut pages,
                        &mut stored_bytes,
                    )?;
                }
            }
        }

        let specs: HashMap<ColumnId, ColumnSpec> =
            columns_of(&schema).into_iter().map(|s| (s.id, s)).collect();
        let key_spec = specs.values().find(|s| s.is_key).cloned();
        // Column statistics (zone maps + planner cardinalities) over the
        // live records, collected in the same pass that seals the component.
        let mut stats = StatsBuilder::new();
        for (_, doc) in entries {
            if let Some(doc) = doc {
                stats.observe(doc);
            }
        }
        let meta = ComponentMeta {
            id,
            layout: config.layout,
            record_count: entries.len(),
            min_key: entries.first().map(|(k, _)| k.clone()),
            max_key: entries.last().map(|(k, _)| k.clone()),
            stored_bytes,
            pages,
        };
        Ok(Component {
            meta,
            schema,
            specs,
            key_spec,
            leaves,
            stats: Some(Arc::new(stats.finish())),
            config: config.clone(),
            cache: cache.clone(),
            free_on_drop: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// The buffer cache this component reads through — its store's
    /// [`IoStats`](crate::pagestore::IoStats) account for every page the
    /// component touches (EXPLAIN ANALYZE reads deltas from here when it
    /// only has a snapshot, not a dataset, in hand).
    pub fn cache(&self) -> &BufferCache {
        &self.cache
    }

    /// Mark the component's pages for release when the last handle drops.
    ///
    /// Called by a merge after its manifest commit has made the merged
    /// output visible: the inputs are no longer referenced by the tree, but
    /// concurrent snapshots may still read them, so the actual
    /// `free_pages` happens in [`Drop`] — once nobody can observe it.
    pub fn retire(&self) {
        self.free_on_drop
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Describe the component for persistence in a manifest.
    pub fn describe(&self) -> ComponentDescriptor {
        ComponentDescriptor {
            id: self.meta.id,
            layout: self.meta.layout,
            record_count: self.meta.record_count,
            stored_bytes: self.meta.stored_bytes,
            pages: self.meta.pages.clone(),
            stats: self.stats.as_deref().cloned(),
            leaves: self
                .leaves
                .iter()
                .map(|leaf| LeafDescriptor {
                    page: leaf.page,
                    data_pages: leaf.data_pages.clone(),
                    min_key: leaf.min_key.clone(),
                    max_key: leaf.max_key.clone(),
                    record_count: leaf.record_count,
                    stats: leaf.stats.clone(),
                })
                .collect(),
        }
    }

    /// Reopen a component from its manifest description. The pages referenced
    /// by the descriptor must exist in `cache`'s store (a file-backed store
    /// reopened from the same dataset directory).
    pub fn open(
        cache: &BufferCache,
        config: &ComponentConfig,
        schema: Schema,
        desc: ComponentDescriptor,
    ) -> Component {
        let specs: HashMap<ColumnId, ColumnSpec> =
            columns_of(&schema).into_iter().map(|s| (s.id, s)).collect();
        let key_spec = specs.values().find(|s| s.is_key).cloned();
        let stats = desc.stats.map(Arc::new);
        let leaves: Vec<LeafRef> = desc
            .leaves
            .into_iter()
            .map(|leaf| LeafRef {
                page: leaf.page,
                data_pages: leaf.data_pages,
                min_key: leaf.min_key,
                max_key: leaf.max_key,
                record_count: leaf.record_count,
                stats: leaf.stats,
            })
            .collect();
        let meta = ComponentMeta {
            id: desc.id,
            layout: desc.layout,
            record_count: desc.record_count,
            min_key: leaves.first().map(|l| l.min_key.clone()),
            max_key: leaves.last().map(|l| l.max_key.clone()),
            stored_bytes: desc.stored_bytes,
            pages: desc.pages,
        };
        let mut config = config.clone();
        config.layout = meta.layout;
        Component {
            meta,
            schema,
            specs,
            key_spec,
            leaves,
            stats,
            config,
            cache: cache.clone(),
            free_on_drop: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Number of leaves (pages for row/APAX, mega leaf nodes for AMAX).
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// The component's primary-key range `(min, max)`, from its key-ordered
    /// leaves. `None` for an empty component. Feeds the reconciliation-safety
    /// side of leaf skipping: a newer component may hide a leaf only when the
    /// leaf's key range is disjoint from every older component's range.
    pub fn key_range(&self) -> Option<(Value, Value)> {
        let first = self.leaves.first()?;
        let last = self.leaves.last()?;
        Some((first.min_key.clone(), last.max_key.clone()))
    }

    /// Per-column statistics collected when the component was written (zone
    /// maps + planner cardinalities). `None` only for components recovered
    /// from a pre-stats manifest — such components are never zone-map pruned
    /// and the planner falls back to conservative estimates.
    pub fn stats(&self) -> Option<&Arc<ComponentStats>> {
        self.stats.as_ref()
    }

    /// An owning streaming cursor over the component (see the module-level
    /// cursor protocol): entries in key order, one leaf decoded at a time,
    /// assembling only the projected paths (`None` = every column,
    /// `Some(&[])` = keys only). Dropping the cursor early leaves the
    /// remaining leaves unread.
    pub fn cursor(self: &Arc<Self>, projection: Option<&[Path]>) -> ComponentCursor {
        ComponentCursor {
            state: CursorState::new(self, projection),
            component: self.clone(),
        }
    }

    /// Like [`Component::cursor`], with a pushed-down filter: leaves whose
    /// zone maps prove no match (and whose key range is reconciliation-safe
    /// to hide) are skipped before any page read, and
    /// [`ComponentCursor::pushed_matches`] evaluates the predicates over the
    /// filter columns alone. See the module-level filter push-down contract.
    pub fn cursor_filtered(
        self: &Arc<Self>,
        projection: Option<&[Path]>,
        filter: Option<ScanFilter>,
    ) -> ComponentCursor {
        ComponentCursor {
            state: CursorState::new_filtered(self, projection, filter),
            component: self.clone(),
        }
    }

    /// Resolve a projection (list of paths) into the set of column ids to
    /// read, always including the primary-key column. `None` means all.
    pub fn projection_columns(&self, projection: Option<&[Path]>) -> Option<Vec<ColumnId>> {
        let paths = projection?;
        let mut ids: Vec<ColumnId> = Vec::new();
        if let Some(key) = &self.key_spec {
            ids.push(key.id);
        }
        for path in paths {
            if let Some(node) = self.schema.resolve_path(path) {
                for spec in self.specs.values() {
                    if is_descendant_column(&self.schema, node, spec.id) && !ids.contains(&spec.id)
                    {
                        ids.push(spec.id);
                    }
                }
            }
        }
        Some(ids)
    }

    fn read_payload(&self, id: PageId) -> Result<Arc<Vec<u8>>> {
        read_page_payload(&self.cache, id)
    }

    /// Locate the leaf that may contain `key`.
    fn leaf_for_key(&self, key: &Value) -> Option<usize> {
        self.leaves.iter().position(|leaf| {
            total_cmp(key, &leaf.min_key) != std::cmp::Ordering::Less
                && total_cmp(key, &leaf.max_key) != std::cmp::Ordering::Greater
        })
    }

    /// Decode the column chunks of one columnar leaf (APAX page or AMAX mega
    /// leaf), restricted to `columns` (`None` = all). The key column is
    /// always included.
    fn decode_chunks(
        &self,
        leaf: &LeafRef,
        columns: Option<&[ColumnId]>,
    ) -> Result<Vec<columnar::ColumnChunk>> {
        match self.config.layout {
            LayoutKind::Apax => {
                let payload = self.read_payload(leaf.page)?;
                let (_, chunks) = apax::decode_apax_columns(&payload, &self.specs, columns)?;
                Ok(chunks)
            }
            LayoutKind::Amax => {
                let page0 = self.read_payload(leaf.page)?;
                let header = amax::decode_amax_header(&page0)?;
                let key_spec = self
                    .key_spec
                    .as_ref()
                    .ok_or_else(|| DecodeError::new("AMAX component lacks a key column"))?;
                let key_chunk = amax::decode_amax_keys(&page0, &header, key_spec)?;
                let page_budget = self.cache.store().page_size() - 64;
                let mut chunks = vec![key_chunk];
                for loc in &header.columns {
                    let wanted = match columns {
                        Some(ids) => ids.contains(&loc.column_id),
                        None => true,
                    };
                    if !wanted {
                        continue;
                    }
                    let Some(spec) = self.specs.get(&loc.column_id) else {
                        continue;
                    };
                    let chunk = amax::read_amax_column(loc, page_budget, spec, |i| {
                        self.read_payload(leaf.data_pages[i])
                    })?;
                    chunks.push(chunk);
                }
                Ok(chunks)
            }
            LayoutKind::Open | LayoutKind::Vb => {
                Err(DecodeError::new("row layouts have no column chunks"))
            }
        }
    }

    /// The shared decoded-leaf cache handle, when the owning dataset
    /// attached one to this component's buffer cache.
    fn leaf_cache(&self) -> Option<&LeafCacheHandle> {
        self.cache.leaf_cache()
    }

    /// Number of this component's leaves with a decoded copy resident in the
    /// shared leaf cache (0 when none is attached). Feeds the planner's
    /// cache-residency discount: a resident leaf costs no page reads.
    pub fn cached_leaf_count(&self) -> usize {
        self.leaf_cache()
            .map_or(0, |handle| handle.cached_leaf_count(self.meta.id))
    }

    /// Decoded entries of one row-layout leaf, through the decoded-leaf
    /// cache when one is attached. Row pages ignore projection, so the cache
    /// key never carries a column set. A hit decodes nothing: no page reads
    /// and no `records_assembled`.
    fn row_entries(&self, leaf_idx: usize) -> Result<Arc<Vec<Entry>>> {
        let Some(handle) = self.leaf_cache() else {
            let payload = self.read_payload(self.leaves[leaf_idx].page)?;
            let entries = rowpage::decode_row_page(&payload)?;
            self.cache
                .store()
                .note_records_assembled(entries.len() as u64);
            return Ok(Arc::new(entries));
        };
        if let Some(DecodedLeaf::Rows(entries)) =
            handle.get(self.meta.id, leaf_idx, LeafPayloadKind::Entries, None)
        {
            self.cache.store().note_leaf_cache_hit();
            return Ok(entries);
        }
        self.cache.store().note_leaf_cache_miss();
        let payload = self.read_payload(self.leaves[leaf_idx].page)?;
        let entries = Arc::new(rowpage::decode_row_page(&payload)?);
        self.cache
            .store()
            .note_records_assembled(entries.len() as u64);
        let evicted = handle.insert(
            self.meta.id,
            leaf_idx,
            LeafPayloadKind::Entries,
            None,
            DecodedLeaf::Rows(entries.clone()),
        );
        self.cache.store().note_leaf_cache_evictions(evicted);
        Ok(entries)
    }

    /// Decoded column chunks of one columnar leaf, through the decoded-leaf
    /// cache when one is attached.
    fn cached_chunks(
        &self,
        leaf_idx: usize,
        columns: Option<&[ColumnId]>,
    ) -> Result<Arc<Vec<Arc<columnar::ColumnChunk>>>> {
        let Some(handle) = self.leaf_cache() else {
            let chunks = self.decode_chunks(&self.leaves[leaf_idx], columns)?;
            return Ok(Arc::new(chunks.into_iter().map(Arc::new).collect()));
        };
        if let Some(DecodedLeaf::Chunks(chunks)) =
            handle.get(self.meta.id, leaf_idx, LeafPayloadKind::Chunks, columns)
        {
            self.cache.store().note_leaf_cache_hit();
            return Ok(chunks);
        }
        self.cache.store().note_leaf_cache_miss();
        let chunks: Arc<Vec<Arc<columnar::ColumnChunk>>> = Arc::new(
            self.decode_chunks(&self.leaves[leaf_idx], columns)?
                .into_iter()
                .map(Arc::new)
                .collect(),
        );
        let evicted = handle.insert(
            self.meta.id,
            leaf_idx,
            LeafPayloadKind::Chunks,
            columns,
            DecodedLeaf::Chunks(chunks.clone()),
        );
        self.cache.store().note_leaf_cache_evictions(evicted);
        Ok(chunks)
    }

    fn assemble_leaf(&self, leaf_idx: usize, columns: Option<&[ColumnId]>) -> Result<Vec<Entry>> {
        match self.config.layout {
            LayoutKind::Open | LayoutKind::Vb => {
                let entries = self.row_entries(leaf_idx)?;
                Ok(Arc::try_unwrap(entries).unwrap_or_else(|arc| arc.as_ref().clone()))
            }
            LayoutKind::Apax | LayoutKind::Amax => {
                let count = self.leaves[leaf_idx].record_count;
                let Some(handle) = self.leaf_cache() else {
                    let chunks: Vec<Arc<columnar::ColumnChunk>> = self
                        .decode_chunks(&self.leaves[leaf_idx], columns)?
                        .into_iter()
                        .map(Arc::new)
                        .collect();
                    return self.assemble_chunks(&chunks, count);
                };
                if let Some(DecodedLeaf::Rows(entries)) =
                    handle.get(self.meta.id, leaf_idx, LeafPayloadKind::Entries, columns)
                {
                    // Assembled hit: the lookup pays neither page reads nor
                    // the per-record assembly.
                    self.cache.store().note_leaf_cache_hit();
                    return Ok(entries.as_ref().clone());
                }
                self.cache.store().note_leaf_cache_miss();
                // A cursor may already have warmed this leaf's chunks; reuse
                // them silently rather than decoding the pages again.
                let chunks = match handle.peek(
                    self.meta.id,
                    leaf_idx,
                    LeafPayloadKind::Chunks,
                    columns,
                ) {
                    Some(DecodedLeaf::Chunks(chunks)) => chunks,
                    _ => Arc::new(
                        self.decode_chunks(&self.leaves[leaf_idx], columns)?
                            .into_iter()
                            .map(Arc::new)
                            .collect::<Vec<_>>(),
                    ),
                };
                let entries = Arc::new(self.assemble_chunks(&chunks, count)?);
                let evicted = handle.insert(
                    self.meta.id,
                    leaf_idx,
                    LeafPayloadKind::Entries,
                    columns,
                    DecodedLeaf::Rows(entries.clone()),
                );
                self.cache.store().note_leaf_cache_evictions(evicted);
                Ok(entries.as_ref().clone())
            }
        }
    }

    /// Load one leaf into a cursor buffer. Row layouts materialise every
    /// entry (the page decode does that anyway); columnar layouts decode only
    /// the key column eagerly and defer record assembly, so a reconciling
    /// merge can batch-skip shadowed entries via
    /// [`columnar::ColumnCursor::skip_records`] without ever assembling them
    /// (§4.4). Under a pushed-down filter, columnar leaves go further: only
    /// the key + filter columns are decoded now, and the projection columns
    /// wait for the leaf's first surviving record. Both paths read through
    /// the decoded-leaf cache when one is attached.
    fn load_leaf(
        &self,
        leaf_idx: usize,
        columns: Option<&[ColumnId]>,
        filter: Option<&CursorFilter>,
    ) -> Result<LeafBuffer> {
        match self.config.layout {
            LayoutKind::Open | LayoutKind::Vb => {
                let entries = self.row_entries(leaf_idx)?;
                // Uncached datasets hold the only reference, so the unwrap
                // moves the vector instead of deep-cloning it.
                let entries =
                    Arc::try_unwrap(entries).unwrap_or_else(|arc| arc.as_ref().clone());
                Ok(LeafBuffer::Rows(entries.into()))
            }
            LayoutKind::Apax | LayoutKind::Amax => {
                let count = self.leaves[leaf_idx].record_count;
                if let Some(filter) = filter {
                    // Late materialization: decode only the key + filter
                    // columns; the projection assembler is created on the
                    // leaf's first surviving record (see `CursorState::next`).
                    let chunks = self.cached_chunks(leaf_idx, Some(&filter.columns))?;
                    let keys = chunks
                        .iter()
                        .find(|c| c.spec.is_key)
                        .cloned()
                        .ok_or_else(|| DecodeError::new("component page lacks the key column"))?;
                    let cursors: Vec<ColumnCursor> = chunks
                        .iter()
                        .map(|c| ColumnCursor::new(c.clone()))
                        .collect();
                    return Ok(LeafBuffer::Lazy(Box::new(LazyLeaf {
                        keys,
                        assembler: None,
                        filter_eval: Some(FilterEval {
                            assembler: Assembler::new(&self.schema, cursors, count),
                            pos: 0,
                            last: None,
                        }),
                        filter_covers_projection: filter.covers_projection,
                        projection: columns.map(<[ColumnId]>::to_vec),
                        leaf_idx,
                        pos: 0,
                        count,
                    })));
                }
                let chunks = self.cached_chunks(leaf_idx, columns)?;
                let keys = chunks
                    .iter()
                    .find(|c| c.spec.is_key)
                    .cloned()
                    .ok_or_else(|| DecodeError::new("component page lacks the key column"))?;
                let cursors: Vec<ColumnCursor> = chunks
                    .iter()
                    .map(|c| ColumnCursor::new(c.clone()))
                    .collect();
                Ok(LeafBuffer::Lazy(Box::new(LazyLeaf {
                    keys,
                    assembler: Some(Assembler::new(&self.schema, cursors, count)),
                    filter_eval: None,
                    filter_covers_projection: false,
                    projection: columns.map(<[ColumnId]>::to_vec),
                    leaf_idx,
                    pos: 0,
                    count,
                })))
            }
        }
    }

    /// An [`Assembler`] over the projection columns of one leaf, positioned
    /// at record `pos` — the deferred half of a filtered columnar load,
    /// created only once some record of the leaf survives the filter.
    fn projection_assembler(
        &self,
        leaf_idx: usize,
        columns: Option<&[ColumnId]>,
        count: usize,
        pos: usize,
    ) -> Result<Assembler> {
        let chunks = self.cached_chunks(leaf_idx, columns)?;
        let cursors: Vec<ColumnCursor> = chunks
            .iter()
            .map(|c| ColumnCursor::new(c.clone()))
            .collect();
        let mut assembler = Assembler::new(&self.schema, cursors, count);
        assembler.skip_records(pos);
        Ok(assembler)
    }

    /// Turn decoded chunks into `(key, record-or-anti-matter)` entries.
    fn assemble_chunks(
        &self,
        chunks: &[Arc<columnar::ColumnChunk>],
        count: usize,
    ) -> Result<Vec<Entry>> {
        let key_chunk = chunks
            .iter()
            .find(|c| c.spec.is_key)
            .cloned()
            .ok_or_else(|| DecodeError::new("component page lacks the key column"))?;
        let cursors: Vec<ColumnCursor> = chunks
            .iter()
            .map(|c| ColumnCursor::new(c.clone()))
            .collect();
        let mut assembler = Assembler::new(&self.schema, cursors, count);
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let doc = assembler
                .next_record()
                .ok_or_else(|| DecodeError::new("assembler ended early"))??;
            let key = key_chunk.values.get(i);
            let is_antimatter = key_chunk.defs[i] == 0;
            out.push((key, if is_antimatter { None } else { Some(doc) }));
        }
        self.cache.store().note_records_assembled(count as u64);
        Ok(out)
    }
}

impl ComponentReader for Component {
    fn meta(&self) -> &ComponentMeta {
        &self.meta
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn scan(&self, projection: Option<&[Path]>) -> Result<ComponentScan<'_>> {
        Ok(ComponentScan {
            state: CursorState::new(self, projection),
            component: self,
        })
    }

    fn lookup(&self, key: &Value, projection: Option<&[Path]>) -> Result<Option<Option<Value>>> {
        let Some(leaf_idx) = self.leaf_for_key(key) else {
            return Ok(None);
        };
        let columns = self.projection_columns(projection);
        let entries = self.assemble_leaf(leaf_idx, columns.as_deref())?;
        // Row pages are sorted, so a binary search would do; columnar pages
        // require the linear scan over decoded keys the paper describes
        // (§4.6). The entries are materialised either way at this point, so a
        // linear find keeps the code paths identical.
        Ok(entries
            .into_iter()
            .find(|(k, _)| total_cmp(k, key) == std::cmp::Ordering::Equal)
            .map(|(_, doc)| doc))
    }
}

/// The resident leaf of a component cursor.
///
/// Row layouts hold the decoded entries; columnar layouts hold the decoded
/// key column plus a positioned [`Assembler`], so the records of the leaf
/// are assembled (or batch-skipped) one at a time as the consumer pulls.
enum LeafBuffer {
    /// Row layouts: the page decode materialises every entry anyway.
    Rows(VecDeque<Entry>),
    /// Columnar layouts: keys decoded, record assembly deferred (boxed: the
    /// assembler plus key chunk dwarf the row variant).
    Lazy(Box<LazyLeaf>),
}

/// A columnar leaf whose records have not (all) been assembled yet.
struct LazyLeaf {
    /// The decoded key column: one definition level and one value per entry,
    /// including anti-matter (the key column stores the deleted key at
    /// definition level 0, §3.2.3). `Arc`'d so a leaf-cache hit shares the
    /// chunk instead of cloning it.
    keys: Arc<columnar::ColumnChunk>,
    /// Projection assembler. Filtered cursors leave it `None` until the
    /// leaf's first surviving record forces the projection chunks to be
    /// decoded — a leaf whose records are all rejected never reads its
    /// non-filter-column pages.
    assembler: Option<Assembler>,
    /// A second assembler over the filter columns only, evaluating pushed
    /// predicates without touching the projection columns. Lags behind
    /// `pos` (filter evaluation is only forced for merge winners) and is
    /// re-synced by batch-skipping.
    filter_eval: Option<FilterEval>,
    /// When the filter columns are exactly the projection columns, a
    /// surviving record is emitted from the filter evaluator's doc and the
    /// projection assembler is never created — see
    /// [`CursorFilter::covers_projection`].
    filter_covers_projection: bool,
    /// Projected column set (`None` = all), kept for the deferred
    /// projection-assembler creation.
    projection: Option<Vec<ColumnId>>,
    /// Index of this leaf within the component.
    leaf_idx: usize,
    /// Next record position within the leaf.
    pos: usize,
    /// Total records in the leaf.
    count: usize,
}

/// The filter-column evaluator of a filtered lazy leaf.
struct FilterEval {
    /// Assembler over the filter columns alone.
    assembler: Assembler,
    /// Next record position this assembler will decode (`<= LazyLeaf::pos`).
    pos: usize,
    /// The most recent evaluation: `(record position, assembled
    /// filter-column doc, passed)`. Makes evaluation idempotent (a repeat
    /// call for the same position returns the cached verdict instead of
    /// mis-reading the next record), and when the filter columns cover the
    /// projection, `next` emits the cached doc instead of assembling the
    /// record a second time.
    last: Option<(usize, Value, bool)>,
}

impl LeafBuffer {
    fn remaining(&self) -> usize {
        match self {
            LeafBuffer::Rows(buffer) => buffer.len(),
            LeafBuffer::Lazy(leaf) => leaf.count - leaf.pos,
        }
    }
}

/// The shared position of a component cursor: the next leaf to decode and
/// the not-yet-consumed part of the current leaf. One leaf is resident at a
/// time — the memory bound of the cursor protocol.
struct CursorState {
    columns: Option<Vec<ColumnId>>,
    /// Pushed-down filter context; `None` for unfiltered cursors.
    filter: Option<CursorFilter>,
    next_leaf: usize,
    leaf: Option<LeafBuffer>,
}

/// A [`ScanFilter`] resolved against one component's schema.
struct CursorFilter {
    predicates: Arc<Vec<ColumnPredicate>>,
    older_key_ranges: Arc<Vec<(Value, Value)>>,
    /// Columns the predicates read (key column included) — what a filtered
    /// columnar leaf decodes eagerly.
    columns: Vec<ColumnId>,
    /// Whether the filter columns are exactly the projected columns. When
    /// true, the doc the filter evaluator assembles *is* the projected
    /// record, so surviving records are emitted from it directly — no
    /// second assembler, no double decode of shared columns.
    covers_projection: bool,
}

impl CursorState {
    fn new(component: &Component, projection: Option<&[Path]>) -> CursorState {
        CursorState::new_filtered(component, projection, None)
    }

    fn new_filtered(
        component: &Component,
        projection: Option<&[Path]>,
        filter: Option<ScanFilter>,
    ) -> CursorState {
        let columns = component.projection_columns(projection);
        let filter = filter
            .filter(|f| !f.predicates.is_empty())
            .map(|f| {
                let paths: Vec<Path> = f.predicates.iter().map(|p| p.path.clone()).collect();
                let filter_columns = component
                    .projection_columns(Some(&paths))
                    .unwrap_or_default();
                CursorFilter {
                    covers_projection: columns
                        .as_deref()
                        .is_some_and(|proj| same_column_set(proj, &filter_columns)),
                    columns: filter_columns,
                    predicates: f.predicates,
                    older_key_ranges: f.older_key_ranges,
                }
            });
        CursorState {
            columns,
            filter,
            next_leaf: 0,
            leaf: None,
        }
    }

    /// Make the current leaf buffer hold at least one unconsumed entry,
    /// loading the next leaf when the current one is drained. Under a
    /// pushed-down filter, leaves whose zone maps prove no match — and
    /// whose key range is disjoint from every older component's, so hiding
    /// them is reconciliation-safe — are skipped without any page read.
    /// `None` = the component is exhausted.
    fn ensure_leaf(&mut self, component: &Component) -> Option<Result<&mut LeafBuffer>> {
        loop {
            if self.leaf.as_ref().is_some_and(|l| l.remaining() > 0) {
                return Some(Ok(self.leaf.as_mut().expect("leaf checked above")));
            }
            if self.next_leaf >= component.leaves.len() {
                self.leaf = None;
                return None;
            }
            let leaf_idx = self.next_leaf;
            self.next_leaf += 1;
            if let Some(filter) = &self.filter {
                let leaf = &component.leaves[leaf_idx];
                let provably_empty = leaf
                    .stats
                    .as_ref()
                    .is_some_and(|stats| {
                        filter.predicates.iter().any(|p| p.prove_no_match(stats))
                    });
                if provably_empty && leaf_safe_to_hide(leaf, &filter.older_key_ranges) {
                    component.cache.store().note_leaves_skipped(1);
                    continue;
                }
            }
            match component.load_leaf(leaf_idx, self.columns.as_deref(), self.filter.as_ref()) {
                Ok(buffer) => self.leaf = Some(buffer),
                Err(e) => return Some(Err(e)),
            }
        }
    }

    fn next(&mut self, component: &Component) -> Option<Result<Entry>> {
        let buffer = match self.ensure_leaf(component)? {
            Ok(buffer) => buffer,
            Err(e) => return Some(Err(e)),
        };
        match buffer {
            LeafBuffer::Rows(rows) => rows.pop_front().map(Ok),
            LeafBuffer::Lazy(leaf) => {
                // Filter covers the projection: the doc the evaluator
                // assembled for this position is the projected record —
                // emit it instead of decoding the leaf a second time.
                if leaf.filter_covers_projection {
                    let cached = leaf
                        .filter_eval
                        .as_mut()
                        .and_then(|eval| match &eval.last {
                            Some((pos, _, _)) if *pos == leaf.pos => eval.last.take(),
                            _ => None,
                        });
                    if let Some((_, doc, _)) = cached {
                        if let Some(assembler) = leaf.assembler.as_mut() {
                            assembler.skip_records(1);
                        }
                        let key = leaf.keys.values.get(leaf.pos);
                        let is_antimatter = leaf.keys.defs[leaf.pos] == 0;
                        leaf.pos += 1;
                        component.cache.store().note_records_assembled(1);
                        return Some(Ok((key, if is_antimatter { None } else { Some(doc) })));
                    }
                }
                if leaf.assembler.is_none() {
                    // First surviving record of a filtered leaf: decode the
                    // projection chunks now and catch up to the cursor.
                    match component.projection_assembler(
                        leaf.leaf_idx,
                        leaf.projection.as_deref(),
                        leaf.count,
                        leaf.pos,
                    ) {
                        Ok(assembler) => leaf.assembler = Some(assembler),
                        Err(e) => return Some(Err(e)),
                    }
                }
                let doc = match leaf
                    .assembler
                    .as_mut()
                    .expect("assembler created above")
                    .next_record()
                    .unwrap_or_else(|| Err(DecodeError::new("assembler ended early")))
                {
                    Ok(doc) => doc,
                    Err(e) => return Some(Err(e)),
                };
                let key = leaf.keys.values.get(leaf.pos);
                let is_antimatter = leaf.keys.defs[leaf.pos] == 0;
                leaf.pos += 1;
                component.cache.store().note_records_assembled(1);
                Some(Ok((key, if is_antimatter { None } else { Some(doc) })))
            }
        }
    }

    /// Does the next entry pass the pushed-down filter? Anti-matter always
    /// passes (it must reach the merge to annihilate older versions);
    /// columnar leaves evaluate on the filter columns alone, without
    /// assembling the record. `None` = exhausted; no filter = always `true`.
    fn pushed_matches(&mut self, component: &Component) -> Option<Result<bool>> {
        let predicates = match &self.filter {
            Some(filter) => filter.predicates.clone(),
            None => return Some(Ok(true)),
        };
        let buffer = match self.ensure_leaf(component)? {
            Ok(buffer) => buffer,
            Err(e) => return Some(Err(e)),
        };
        match buffer {
            LeafBuffer::Rows(rows) => {
                let (_, doc) = rows.front()?;
                Some(Ok(doc
                    .as_ref()
                    .is_none_or(|doc| predicates.iter().all(|p| p.matches(doc)))))
            }
            LeafBuffer::Lazy(leaf) => {
                if leaf.keys.defs[leaf.pos] == 0 {
                    return Some(Ok(true)); // anti-matter
                }
                let Some(eval) = leaf.filter_eval.as_mut() else {
                    return Some(Ok(true));
                };
                if let Some((pos, _, passed)) = &eval.last {
                    if *pos == leaf.pos {
                        return Some(Ok(*passed)); // already evaluated
                    }
                }
                if leaf.pos > eval.pos {
                    // Catch up past records that were reconciliation-skipped
                    // without ever being evaluated.
                    eval.assembler.skip_records(leaf.pos - eval.pos);
                    eval.pos = leaf.pos;
                }
                let doc = match eval
                    .assembler
                    .next_record()
                    .unwrap_or_else(|| Err(DecodeError::new("filter assembler ended early")))
                {
                    Ok(doc) => doc,
                    Err(e) => return Some(Err(e)),
                };
                eval.pos += 1;
                let passed = predicates.iter().all(|p| p.matches(&doc));
                eval.last = Some((leaf.pos, doc, passed));
                Some(Ok(passed))
            }
        }
    }

    /// The next entry's key, without assembling the record.
    fn peek_key(&mut self, component: &Component) -> Option<Result<Value>> {
        let buffer = match self.ensure_leaf(component)? {
            Ok(buffer) => buffer,
            Err(e) => return Some(Err(e)),
        };
        match buffer {
            LeafBuffer::Rows(rows) => rows.front().map(|(key, _)| Ok(key.clone())),
            LeafBuffer::Lazy(leaf) => Some(Ok(leaf.keys.values.get(leaf.pos))),
        }
    }

    /// Drop the next entry without assembling it: every column cursor of a
    /// lazy leaf skips the record's entries in one batched advance
    /// ([`columnar::ColumnCursor::skip_records`]) — values are never decoded
    /// into a document. Row layouts just discard the already-decoded entry.
    fn skip_entry(&mut self, component: &Component) {
        let Some(Ok(buffer)) = self.ensure_leaf(component) else {
            return;
        };
        match buffer {
            LeafBuffer::Rows(rows) => {
                rows.pop_front();
            }
            LeafBuffer::Lazy(leaf) => {
                if let Some(assembler) = leaf.assembler.as_mut() {
                    assembler.skip_records(1);
                }
                leaf.pos += 1;
            }
        }
    }

    fn buffered(&self) -> usize {
        self.leaf.as_ref().map_or(0, LeafBuffer::remaining)
    }
}

/// Streaming scan over a borrowed component, loading one leaf at a time.
pub struct ComponentScan<'a> {
    component: &'a Component,
    state: CursorState,
}

impl Iterator for ComponentScan<'_> {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        self.state.next(self.component)
    }
}

/// Streaming scan over a shared component handle. Identical to
/// [`ComponentScan`] but owning its `Arc<Component>`, so it can be stored in
/// long-lived pipelines (the LSM snapshot cursor, the facade's streaming
/// API) without borrowing. Created by [`Component::cursor`].
pub struct ComponentCursor {
    component: Arc<Component>,
    state: CursorState,
}

impl ComponentCursor {
    /// Entries resident from the current leaf but not yet consumed — the
    /// cursor's live memory footprint, in records. At most one leaf's worth.
    pub fn buffered(&self) -> usize {
        self.state.buffered()
    }

    /// The next entry's key without assembling the record (or decoding any
    /// non-key column value, for columnar layouts). `None` = exhausted.
    ///
    /// Repeated calls return the same key until [`Iterator::next`] or
    /// [`ComponentCursor::skip_entry`] consumes the entry. This is the hook
    /// the LSM merge-reconcile cursor uses to detect shadowed entries before
    /// paying for their assembly.
    pub fn peek_key(&mut self) -> Option<Result<Value>> {
        self.state.peek_key(&self.component)
    }

    /// Consume the next entry without assembling it (§4.4's batched skip:
    /// every column cursor of the leaf advances past the record in one go,
    /// no value is decoded into a document). No-op when exhausted.
    pub fn skip_entry(&mut self) {
        self.state.skip_entry(&self.component)
    }

    /// Does the next entry pass the pushed-down filter ([`ScanFilter`])?
    /// For columnar leaves only the filter columns are decoded — the record
    /// is not assembled. Anti-matter always passes (it must reach the merge
    /// to annihilate). Cursors without a filter always answer `true`;
    /// `None` = exhausted.
    ///
    /// The merge cursor calls this **only for the reconciliation winner** of
    /// a key, after batch-skipping the shadowed losers — evaluating a loser
    /// would let a stale value filter (or admit) a live record.
    pub fn pushed_matches(&mut self) -> Option<Result<bool>> {
        self.state.pushed_matches(&self.component)
    }

    /// Consume the next entry as a pushed-filter rejection: exactly
    /// [`ComponentCursor::skip_entry`], plus the
    /// `records_filtered_pre_assembly` accounting in
    /// [`crate::pagestore::IoStats`].
    pub fn skip_entry_filtered(&mut self) {
        self.component
            .cache
            .store()
            .note_records_filtered_pre_assembly(1);
        self.state.skip_entry(&self.component)
    }
}

/// Is hiding `leaf` reconciliation-safe? Only when its key range is disjoint
/// from every older component's key range: otherwise a skipped entry could
/// shadow (or annihilate) something an older component still yields.
fn leaf_safe_to_hide(leaf: &LeafRef, older: &[(Value, Value)]) -> bool {
    older.iter().all(|(lo, hi)| {
        total_cmp(&leaf.max_key, lo) == Ordering::Less
            || total_cmp(&leaf.min_key, hi) == Ordering::Greater
    })
}

/// Do two (deduplicated, unordered) column lists name the same set?
/// `projection_columns` preserves path order, so set equality is what
/// decides whether a filter's doc can stand in for the projection's.
fn same_column_set(a: &[ColumnId], b: &[ColumnId]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    a.sort_unstable();
    b.sort_unstable();
    a == b
}

impl Iterator for ComponentCursor {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        self.state.next(&self.component)
    }
}

fn is_descendant_column(schema: &Schema, ancestor: schema::NodeId, column: ColumnId) -> bool {
    use schema::node::SchemaNode;
    if ancestor == column {
        return matches!(schema.node(ancestor), SchemaNode::Atomic { .. });
    }
    match schema.node(ancestor) {
        SchemaNode::Atomic { .. } => false,
        SchemaNode::Object { fields } => fields
            .iter()
            .any(|(_, c)| is_descendant_column(schema, *c, column)),
        SchemaNode::Array { item } => item
            .map(|c| is_descendant_column(schema, c, column))
            .unwrap_or(false),
        SchemaNode::Union { branches } => branches
            .iter()
            .any(|(_, c)| is_descendant_column(schema, *c, column)),
    }
}

// ---------------------------------------------------------------------------
// Page helpers (compression wrapper).
// ---------------------------------------------------------------------------

/// Write one page payload, applying page-level compression when configured.
/// Returns the page id and the stored size.
pub fn write_page(cache: &BufferCache, payload: &[u8], compress_pages: bool) -> (PageId, usize) {
    let mut stored = Vec::with_capacity(payload.len() + 1);
    if compress_pages {
        let (compressed, bytes) = compress::compress_if_smaller(payload);
        stored.push(u8::from(compressed));
        stored.extend_from_slice(&bytes);
    } else {
        stored.push(0);
        stored.extend_from_slice(payload);
    }
    let len = stored.len();
    (cache.append_page(stored), len)
}

/// Read a page payload written by [`write_page`].
pub fn read_page_payload(cache: &BufferCache, id: PageId) -> Result<Arc<Vec<u8>>> {
    let raw = cache.try_read_page(id)?;
    let Some((&flag, rest)) = raw.split_first() else {
        return Err(DecodeError::new("empty page"));
    };
    if flag == 1 {
        Ok(Arc::new(compress::decompress(rest)?))
    } else {
        Ok(Arc::new(rest.to_vec()))
    }
}

// ---------------------------------------------------------------------------
// Layout-specific leaf writers.
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn write_row_leaf(
    cache: &BufferCache,
    config: &ComponentConfig,
    format: RowFormat,
    batch: &mut Vec<Entry>,
    page_budget: usize,
    leaves: &mut Vec<LeafRef>,
    pages: &mut Vec<PageId>,
    stored_bytes: &mut u64,
) -> Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    let mut payload = Vec::with_capacity(page_budget);
    rowpage::encode_row_page(format, batch, &mut payload);
    if payload.len() > page_budget && batch.len() > 1 {
        // Page overflow: split the batch and retry each half.
        let rest = batch.split_off(batch.len() / 2);
        write_row_leaf(cache, config, format, batch, page_budget, leaves, pages, stored_bytes)?;
        let mut rest = rest;
        write_row_leaf(cache, config, format, &mut rest, page_budget, leaves, pages, stored_bytes)?;
        batch.clear();
        return Ok(());
    }
    let (page, stored) = write_page(cache, &payload, config.compress_pages);
    pages.push(page);
    *stored_bytes += stored as u64;
    leaves.push(LeafRef {
        page,
        data_pages: Vec::new(),
        min_key: batch.first().unwrap().0.clone(),
        max_key: batch.last().unwrap().0.clone(),
        record_count: batch.len(),
        stats: Some(leaf_stats(batch)),
    });
    batch.clear();
    Ok(())
}

/// Per-leaf zone map: the same statistics pass as the component level, over
/// one leaf's live records.
fn leaf_stats(entries: &[Entry]) -> ComponentStats {
    let mut stats = StatsBuilder::new();
    for (_, doc) in entries {
        if let Some(doc) = doc {
            stats.observe(doc);
        }
    }
    stats.finish()
}

fn shred_entries(schema: &Schema, entries: &[Entry]) -> ShreddedBatch {
    let mut shredder = Shredder::new(schema);
    for (key, doc) in entries {
        match doc {
            Some(doc) => shredder.shred(doc),
            None => shredder.shred_antimatter(key),
        }
    }
    shredder.finish()
}

#[allow(clippy::too_many_arguments)]
fn write_apax_leaves(
    cache: &BufferCache,
    config: &ComponentConfig,
    schema: &Schema,
    entries: &[Entry],
    page_budget: usize,
    leaves: &mut Vec<LeafRef>,
    pages: &mut Vec<PageId>,
    stored_bytes: &mut u64,
) -> Result<()> {
    if entries.is_empty() {
        return Ok(());
    }
    let batch = shred_entries(schema, entries);
    let min_key = entries.first().unwrap().0.clone();
    let max_key = entries.last().unwrap().0.clone();
    let payload = apax::encode_apax_page(&batch, &min_key, &max_key);
    if payload.len() > page_budget && entries.len() > 1 {
        let mid = entries.len() / 2;
        write_apax_leaves(cache, config, schema, &entries[..mid], page_budget, leaves, pages, stored_bytes)?;
        write_apax_leaves(cache, config, schema, &entries[mid..], page_budget, leaves, pages, stored_bytes)?;
        return Ok(());
    }
    let (page, stored) = write_page(cache, &payload, config.compress_pages);
    pages.push(page);
    *stored_bytes += stored as u64;
    leaves.push(LeafRef {
        page,
        data_pages: Vec::new(),
        min_key,
        max_key,
        record_count: entries.len(),
        stats: Some(leaf_stats(entries)),
    });
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn write_amax_leaf(
    cache: &BufferCache,
    config: &ComponentConfig,
    schema: &Schema,
    entries: &[Entry],
    page_budget: usize,
    leaves: &mut Vec<LeafRef>,
    pages: &mut Vec<PageId>,
    stored_bytes: &mut u64,
) -> Result<()> {
    if entries.is_empty() {
        return Ok(());
    }
    let batch = shred_entries(schema, entries);
    let (page0, data) = amax::encode_amax_leaf(&batch, page_budget, &config.amax);
    if page0.len() > page_budget && entries.len() > 1 {
        // Page 0 (keys + directory) must fit in one physical page; halve the
        // batch until it does.
        let mid = entries.len() / 2;
        write_amax_leaf(cache, config, schema, &entries[..mid], page_budget, leaves, pages, stored_bytes)?;
        write_amax_leaf(cache, config, schema, &entries[mid..], page_budget, leaves, pages, stored_bytes)?;
        return Ok(());
    }
    let (page0_id, stored0) = write_page(cache, &page0, config.compress_pages);
    *stored_bytes += stored0 as u64;
    pages.push(page0_id);
    let mut data_pages = Vec::with_capacity(data.len());
    for payload in &data {
        let (id, stored) = write_page(cache, payload, config.compress_pages);
        *stored_bytes += stored as u64;
        pages.push(id);
        data_pages.push(id);
    }
    leaves.push(LeafRef {
        page: page0_id,
        data_pages,
        min_key: entries.first().unwrap().0.clone(),
        max_key: entries.last().unwrap().0.clone(),
        record_count: entries.len(),
        stats: Some(leaf_stats(entries)),
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::PageStore;
    use docmodel::doc;
    use schema::SchemaBuilder;

    fn records(n: i64) -> Vec<Entry> {
        (0..n)
            .map(|i| {
                let doc = doc!({
                    "id": i,
                    "user": {"name": (format!("user{}", i % 17)), "verified": (i % 3 == 0)},
                    "text": (format!("message number {i} with a reasonable amount of text content")),
                    "likes": (i * 13 % 100),
                    "tags": [(format!("t{}", i % 5)), (format!("t{}", i % 7))]
                });
                (Value::Int(i), Some(doc))
            })
            .collect()
    }

    fn schema_for(entries: &[Entry]) -> Schema {
        let mut b = SchemaBuilder::new(Some("id".to_string()));
        for (_, doc) in entries {
            if let Some(doc) = doc {
                b.observe(doc);
            }
        }
        b.into_schema()
    }

    fn small_cache() -> BufferCache {
        BufferCache::new(PageStore::with_page_size(4096), 64)
    }

    #[test]
    fn write_and_scan_all_layouts() {
        let entries = records(300);
        let schema = schema_for(&entries);
        for layout in LayoutKind::ALL {
            let cache = small_cache();
            let config = ComponentConfig::new(layout);
            let comp = Component::write(&cache, &config, schema.clone(), &entries, 1).unwrap();
            assert_eq!(comp.meta().record_count, 300, "{layout:?}");
            assert!(comp.leaf_count() > 0);
            assert!(comp.meta().stored_bytes > 0);

            let scanned: Vec<Entry> = comp.scan(None).unwrap().map(|e| e.unwrap()).collect();
            assert_eq!(scanned.len(), 300, "{layout:?}");
            for (i, (key, doc)) in scanned.iter().enumerate() {
                assert_eq!(key, &Value::Int(i as i64), "{layout:?}");
                let doc = doc.as_ref().unwrap();
                assert_eq!(doc.get_field("id"), Some(&Value::Int(i as i64)));
                assert!(doc.get_path_str("user.name").is_some(), "{layout:?}");
                assert_eq!(doc.get_field("tags").unwrap().as_array().unwrap().len(), 2);
            }
        }
    }

    #[test]
    fn component_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Component>();
    }

    #[test]
    fn retired_component_frees_pages_only_on_last_drop() {
        let entries = records(100);
        let schema = schema_for(&entries);
        let cache = small_cache();
        let config = ComponentConfig::new(LayoutKind::Amax);
        let comp = std::sync::Arc::new(
            Component::write(&cache, &config, schema, &entries, 1).unwrap(),
        );
        let pages = comp.meta().pages.clone();
        let snapshot_handle = comp.clone();

        // Retire + drop the tree's handle: a concurrent snapshot still holds
        // the component, so the pages must remain readable.
        comp.retire();
        drop(comp);
        assert!(!cache.store().read_page(pages[0]).is_empty());
        let scanned: Vec<Entry> = snapshot_handle.scan(None).unwrap().map(|e| e.unwrap()).collect();
        assert_eq!(scanned.len(), 100);

        // The last handle drops: now the pages are released.
        drop(snapshot_handle);
        for &page in &pages {
            assert!(cache.store().read_page(page).is_empty(), "page {page}");
        }
    }

    #[test]
    fn unretired_component_keeps_pages_on_drop() {
        let entries = records(50);
        let schema = schema_for(&entries);
        let cache = small_cache();
        let config = ComponentConfig::new(LayoutKind::Vb);
        let comp = Component::write(&cache, &config, schema, &entries, 1).unwrap();
        let pages = comp.meta().pages.clone();
        drop(comp);
        assert!(!cache.store().read_page(pages[0]).is_empty());
    }

    #[test]
    fn lookup_and_antimatter_roundtrip() {
        let mut entries = records(100);
        entries[50].1 = None; // anti-matter for key 50
        let schema = schema_for(&entries);
        for layout in LayoutKind::ALL {
            let cache = small_cache();
            let comp =
                Component::write(&cache, &ComponentConfig::new(layout), schema.clone(), &entries, 1)
                    .unwrap();
            let hit = comp.lookup(&Value::Int(10), None).unwrap().unwrap();
            assert_eq!(hit.unwrap().get_field("id"), Some(&Value::Int(10)));
            let tomb = comp.lookup(&Value::Int(50), None).unwrap();
            assert_eq!(tomb, Some(None), "{layout:?}");
            assert_eq!(comp.lookup(&Value::Int(5000), None).unwrap(), None);
        }
    }

    #[test]
    fn amax_projection_reads_fewer_pages_than_full_scan() {
        let entries = records(2000);
        let schema = schema_for(&entries);
        let cache = small_cache();
        let comp = Component::write(
            &cache,
            &ComponentConfig::new(LayoutKind::Amax),
            schema.clone(),
            &entries,
            1,
        )
        .unwrap();

        cache.clear();
        cache.store().reset_stats();
        let keys_only: Vec<_> = comp.scan(Some(&[])).unwrap().collect();
        assert_eq!(keys_only.len(), 2000);
        let count_reads = cache.store().stats().pages_read;

        cache.clear();
        cache.store().reset_stats();
        let full: Vec<_> = comp.scan(None).unwrap().collect();
        assert_eq!(full.len(), 2000);
        let full_reads = cache.store().stats().pages_read;

        assert!(
            count_reads < full_reads,
            "keys-only scan ({count_reads} pages) should read fewer pages than full scan ({full_reads})"
        );
    }

    #[test]
    fn apax_projection_reads_same_pages_but_decodes_less() {
        let entries = records(2000);
        let schema = schema_for(&entries);
        let cache = small_cache();
        let comp = Component::write(
            &cache,
            &ComponentConfig::new(LayoutKind::Apax),
            schema.clone(),
            &entries,
            1,
        )
        .unwrap();
        cache.clear();
        cache.store().reset_stats();
        let keys_only: Vec<_> = comp.scan(Some(&[])).unwrap().collect();
        let count_reads = cache.store().stats().pages_read;
        cache.clear();
        cache.store().reset_stats();
        let full: Vec<_> = comp.scan(None).unwrap().collect();
        let full_reads = cache.store().stats().pages_read;
        assert_eq!(keys_only.len(), full.len());
        // APAX reads every page either way: columns share the leaf pages.
        assert_eq!(count_reads, full_reads);
    }

    #[test]
    fn columnar_layouts_are_smaller_on_numeric_data() {
        // Mirrors the sensors result (Figure 12a): encoded numeric columns
        // beat row formats by a wide margin.
        let entries: Vec<Entry> = (0..4000i64)
            .map(|i| {
                (
                    Value::Int(i),
                    Some(doc!({
                        "id": i,
                        "sensor_id": (i % 50),
                        "ts": (1_600_000_000_000i64 + i * 1000),
                        "temp": (((i % 40) as f64) * 0.5),
                        "battery": (i % 100)
                    })),
                )
            })
            .collect();
        let schema = schema_for(&entries);
        let mut sizes = HashMap::new();
        for layout in LayoutKind::ALL {
            let cache = small_cache();
            let comp =
                Component::write(&cache, &ComponentConfig::new(layout), schema.clone(), &entries, 1)
                    .unwrap();
            sizes.insert(layout, comp.meta().stored_bytes);
        }
        assert!(sizes[&LayoutKind::Amax] < sizes[&LayoutKind::Vb]);
        assert!(sizes[&LayoutKind::Apax] < sizes[&LayoutKind::Open]);
        assert!(sizes[&LayoutKind::Vb] <= sizes[&LayoutKind::Open]);
    }

    #[test]
    fn describe_open_roundtrip_preserves_reads() {
        let mut entries = records(200);
        entries[13].1 = None; // include anti-matter
        let schema = schema_for(&entries);
        for layout in LayoutKind::ALL {
            let cache = small_cache();
            let config = ComponentConfig::new(layout);
            let comp = Component::write(&cache, &config, schema.clone(), &entries, 3).unwrap();
            let desc = comp.describe();
            assert_eq!(desc.layout, layout);
            assert_eq!(desc.record_count, 200);
            drop(comp);

            // Reopen from the descriptor (as recovery does from a manifest).
            let reopened = Component::open(&cache, &config, schema.clone(), desc.clone());
            assert_eq!(reopened.describe(), desc, "{layout:?}");
            assert_eq!(reopened.meta().min_key, Some(Value::Int(0)));
            assert_eq!(reopened.meta().max_key, Some(Value::Int(199)));
            let scanned: Vec<Entry> =
                reopened.scan(None).unwrap().map(|e| e.unwrap()).collect();
            assert_eq!(scanned.len(), 200, "{layout:?}");
            assert_eq!(scanned, entries, "{layout:?}");
            assert_eq!(reopened.lookup(&Value::Int(13), None).unwrap(), Some(None));
        }
    }

    #[test]
    fn dropping_a_cursor_early_leaves_later_leaves_unread() {
        let entries = records(2000);
        let schema = schema_for(&entries);
        for layout in LayoutKind::ALL {
            let cache = small_cache();
            let mut config = ComponentConfig::new(layout);
            // AMAX's default record limit packs everything into one mega
            // leaf; shrink it so the component has several leaves to skip.
            config.amax.record_limit = 256;
            let comp = std::sync::Arc::new(
                Component::write(&cache, &config, schema.clone(), &entries, 1).unwrap(),
            );
            assert!(comp.leaf_count() > 1, "{layout:?} needs several leaves");

            cache.clear();
            cache.store().reset_stats();
            let full = comp.cursor(None).count();
            assert_eq!(full, 2000, "{layout:?}");
            let full_reads = cache.store().stats().pages_read;

            cache.clear();
            cache.store().reset_stats();
            let mut cursor = comp.cursor(None);
            let first = cursor.next().unwrap().unwrap();
            assert_eq!(first.0, Value::Int(0), "{layout:?}");
            assert!(cursor.buffered() > 0, "{layout:?}: one leaf resident");
            drop(cursor);
            let early_reads = cache.store().stats().pages_read;
            assert!(
                early_reads < full_reads,
                "{layout:?}: early drop read {early_reads} pages, full scan {full_reads}"
            );
        }
    }

    /// The reassembly caveat recorded in the ROADMAP: an **empty array**
    /// survives columnar reassembly only when some record in the same
    /// component materialised the array's item column. A lone `{"tags": []}`
    /// record produces no `tags[*]` column at all (the schema has no item
    /// node to shred into), so reassembly cannot distinguish "empty array"
    /// from "absent field" and `EXISTS(tags)` on it is schema-dependent. See
    /// the note next to the assembly automaton in `columnar::assemble`.
    #[test]
    fn empty_array_reassembly_is_schema_dependent() {
        let schema_of = |entries: &[Entry]| schema_for(entries);
        for layout in [LayoutKind::Apax, LayoutKind::Amax] {
            // Alone: no record ever materialised a `tags` element, the
            // column does not exist, and the empty array is lost.
            let lone: Vec<Entry> = vec![(
                Value::Int(0),
                Some(doc!({"id": 0, "tags": []})),
            )];
            let cache = small_cache();
            let comp = Component::write(
                &cache,
                &ComponentConfig::new(layout),
                schema_of(&lone),
                &lone,
                1,
            )
            .unwrap();
            let scanned: Vec<Entry> = comp.scan(None).unwrap().map(|e| e.unwrap()).collect();
            let doc = scanned[0].1.as_ref().unwrap();
            assert_eq!(doc.get_field("tags"), None, "{layout:?}: empty array lost");

            // With a sibling record that materialises `tags[*]`, the item
            // column exists and the empty array round-trips.
            let pair: Vec<Entry> = vec![
                (Value::Int(0), Some(doc!({"id": 0, "tags": []}))),
                (Value::Int(1), Some(doc!({"id": 1, "tags": ["x"]}))),
            ];
            let cache = small_cache();
            let comp = Component::write(
                &cache,
                &ComponentConfig::new(layout),
                schema_of(&pair),
                &pair,
                1,
            )
            .unwrap();
            let scanned: Vec<Entry> = comp.scan(None).unwrap().map(|e| e.unwrap()).collect();
            let doc = scanned[0].1.as_ref().unwrap();
            assert_eq!(
                doc.get_field("tags"),
                Some(&Value::Array(Vec::new())),
                "{layout:?}: empty array preserved once the column exists"
            );
        }
    }

    /// §4.4's batched skip: peeking keys and skipping entries on a columnar
    /// cursor must not assemble the skipped records — only the pulled ones
    /// count in [`crate::pagestore::IoStats::records_assembled`].
    #[test]
    fn skipping_columnar_entries_avoids_assembly() {
        let entries = records(1000);
        let schema = schema_for(&entries);
        for layout in [LayoutKind::Apax, LayoutKind::Amax] {
            let cache = small_cache();
            let mut config = ComponentConfig::new(layout);
            config.amax.record_limit = 256;
            let comp = std::sync::Arc::new(
                Component::write(&cache, &config, schema.clone(), &entries, 1).unwrap(),
            );

            cache.store().reset_stats();
            let mut cursor = comp.cursor(None);
            let mut assembled = 0usize;
            let mut seen = 0usize;
            while let Some(key) = cursor.peek_key() {
                let key = key.unwrap();
                // Peeking alone assembles nothing.
                assert_eq!(key, Value::Int(seen as i64), "{layout:?}");
                if seen.is_multiple_of(2) {
                    let (k, doc) = cursor.next().unwrap().unwrap();
                    assert_eq!(k, key, "{layout:?}");
                    assert!(doc.is_some(), "{layout:?}");
                    assembled += 1;
                } else {
                    cursor.skip_entry();
                }
                seen += 1;
            }
            assert_eq!(seen, 1000, "{layout:?}");
            assert_eq!(
                cache.store().stats().records_assembled,
                assembled as u64,
                "{layout:?}: skipped entries must not be assembled"
            );
        }
    }

    #[test]
    fn layout_tags_roundtrip() {
        for layout in LayoutKind::ALL {
            assert_eq!(LayoutKind::from_tag(layout.tag()).unwrap(), layout);
        }
        assert!(LayoutKind::from_tag(9).is_err());
    }

    #[test]
    fn projection_columns_resolve_paths() {
        let entries = records(10);
        let schema = schema_for(&entries);
        let cache = small_cache();
        let comp = Component::write(
            &cache,
            &ComponentConfig::new(LayoutKind::Amax),
            schema,
            &entries,
            7,
        )
        .unwrap();
        let cols = comp
            .projection_columns(Some(&[Path::parse("user.name"), Path::parse("likes")]))
            .unwrap();
        // key + user.name + likes
        assert_eq!(cols.len(), 3);
        assert!(comp.projection_columns(None).is_none());
        let empty = comp.projection_columns(Some(&[])).unwrap();
        assert_eq!(empty.len(), 1); // just the key
    }

    fn leaf_cached_cache() -> (BufferCache, Arc<crate::leafcache::LeafCache>) {
        let leaf_cache = Arc::new(crate::leafcache::LeafCache::new(8 << 20));
        let cache = BufferCache::new(PageStore::with_page_size(4096), 64)
            .with_leaf_cache(leaf_cache.handle());
        (cache, leaf_cache)
    }

    #[test]
    fn warm_rescan_reads_zero_pages_in_every_layout() {
        let entries = records(300);
        let schema = schema_for(&entries);
        for layout in LayoutKind::ALL {
            let (cache, leaf_cache) = leaf_cached_cache();
            let config = ComponentConfig::new(layout);
            let comp = Component::write(&cache, &config, schema.clone(), &entries, 1).unwrap();

            // Cold scan: every leaf misses and is decoded from pages.
            cache.clear();
            cache.store().reset_stats();
            let cold: Vec<Entry> = comp.scan(None).unwrap().map(|e| e.unwrap()).collect();
            let cold_stats = cache.store().stats();
            assert_eq!(cold_stats.leaf_cache_hits, 0, "{layout:?}");
            assert_eq!(
                cold_stats.leaf_cache_misses,
                comp.leaf_count() as u64,
                "{layout:?}"
            );
            assert!(cold_stats.pages_read > 0, "{layout:?}");

            // Warm scan: all leaves hit — zero pages read, zero decodes, and
            // (for row layouts) zero records assembled.
            cache.clear(); // page cache cleared: hits must come from the leaf cache
            cache.store().reset_stats();
            let warm: Vec<Entry> = comp.scan(None).unwrap().map(|e| e.unwrap()).collect();
            assert_eq!(cold, warm, "{layout:?}");
            let warm_stats = cache.store().stats();
            assert_eq!(warm_stats.pages_read, 0, "{layout:?}");
            assert_eq!(
                warm_stats.leaf_cache_hits,
                comp.leaf_count() as u64,
                "{layout:?}"
            );
            assert_eq!(warm_stats.leaf_cache_misses, 0, "{layout:?}");
            assert!(leaf_cache.resident_bytes() > 0, "{layout:?}");
        }
    }

    #[test]
    fn warm_lookup_skips_pages_and_assembly() {
        let entries = records(200);
        let schema = schema_for(&entries);
        for layout in LayoutKind::ALL {
            let (cache, _leaf_cache) = leaf_cached_cache();
            let config = ComponentConfig::new(layout);
            let comp = Component::write(&cache, &config, schema.clone(), &entries, 1).unwrap();

            cache.clear();
            cache.store().reset_stats();
            let cold = comp.lookup(&Value::Int(137), None).unwrap();
            assert!(cold.as_ref().is_some_and(|doc| doc.is_some()), "{layout:?}");

            cache.clear();
            cache.store().reset_stats();
            let warm = comp.lookup(&Value::Int(137), None).unwrap();
            assert_eq!(cold, warm, "{layout:?}");
            let stats = cache.store().stats();
            assert_eq!(stats.pages_read, 0, "{layout:?}");
            assert_eq!(stats.leaf_cache_misses, 0, "{layout:?}");
            assert!(stats.leaf_cache_hits >= 1, "{layout:?}");
            // A hit serves materialised entries: nothing is re-assembled.
            assert_eq!(stats.records_assembled, 0, "{layout:?}");
        }
    }

    #[test]
    fn projected_and_full_scans_cache_separately_but_stay_correct() {
        let entries = records(150);
        let schema = schema_for(&entries);
        let (cache, _leaf_cache) = leaf_cached_cache();
        let config = ComponentConfig::new(LayoutKind::Amax);
        let comp = Component::write(&cache, &config, schema, &entries, 1).unwrap();

        let path = vec![Path::parse("likes")];
        let projected: Vec<Entry> =
            comp.scan(Some(&path)).unwrap().map(|e| e.unwrap()).collect();
        // The projected chunks must not satisfy a full scan (different key).
        let full: Vec<Entry> = comp.scan(None).unwrap().map(|e| e.unwrap()).collect();
        assert_eq!(full.len(), projected.len());
        let full_doc = full[10].1.as_ref().unwrap();
        assert!(full_doc.get_path_str("user.name").is_some());
        let projected_doc = projected[10].1.as_ref().unwrap();
        assert!(projected_doc.get_path_str("user.name").is_none());
        assert_eq!(projected_doc.get_field("likes"), full_doc.get_field("likes"));
    }

    #[test]
    fn retired_component_invalidates_its_decoded_leaves() {
        let entries = records(120);
        let schema = schema_for(&entries);
        let (cache, leaf_cache) = leaf_cached_cache();
        let config = ComponentConfig::new(LayoutKind::Apax);
        let comp = std::sync::Arc::new(
            Component::write(&cache, &config, schema, &entries, 1).unwrap(),
        );
        let id = comp.meta().id;
        let scanned: Vec<Entry> = comp.scan(None).unwrap().map(|e| e.unwrap()).collect();
        assert_eq!(scanned.len(), 120);
        let handle = cache.leaf_cache().unwrap();
        assert!(handle.cached_leaf_count(id) > 0);

        comp.retire();
        drop(comp);
        assert_eq!(handle.cached_leaf_count(id), 0);
        assert!(leaf_cache.stats().invalidations > 0);
        assert_eq!(leaf_cache.resident_bytes(), 0);
    }

    #[test]
    fn component_churn_never_serves_stale_decoded_leaves() {
        // Regression for cache coherence under slot reuse: retire + rewrite
        // components over the same recycled page slots repeatedly, scanning
        // through the shared leaf cache each round. Stale state from a
        // retired generation must never leak into the next.
        let schema = schema_for(&records(40));
        let (cache, leaf_cache) = leaf_cached_cache();
        for generation in 0..6u64 {
            let entries: Vec<Entry> = (0..40)
                .map(|i| {
                    (
                        Value::Int(i),
                        Some(doc!({
                            "id": i,
                            "user": {"name": (format!("gen{generation}")), "verified": true},
                            "text": (format!("generation {generation} row {i}")),
                            "likes": (generation as i64),
                            "tags": ["a", "b"]
                        })),
                    )
                })
                .collect();
            let config = ComponentConfig::new(LayoutKind::Vb);
            let comp = std::sync::Arc::new(
                Component::write(&cache, &config, schema.clone(), &entries, generation + 1)
                    .unwrap(),
            );
            // Scan twice: the second pass serves from the leaf cache.
            for _ in 0..2 {
                let scanned: Vec<Entry> =
                    comp.scan(None).unwrap().map(|e| e.unwrap()).collect();
                assert_eq!(scanned, entries, "generation {generation}");
            }
            comp.retire();
        }
        // Every generation was retired, so nothing may remain resident.
        assert_eq!(leaf_cache.resident_leaves(), 0);
        assert!(leaf_cache.stats().invalidations > 0);
    }
}
