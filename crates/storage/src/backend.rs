//! Storage backends behind [`crate::pagestore::PageStore`].
//!
//! The reproduction originally ran on a purely in-memory "simulated disk".
//! The durability subsystem (`persist`) needs real files, so the page store
//! is now split in two layers: [`PageStore`](crate::pagestore::PageStore)
//! keeps the I/O accounting and the API every layout writer/reader uses,
//! while the actual byte storage lives behind this [`StorageBackend`] trait:
//!
//! * [`MemoryBackend`] — the original vector of pages; fast, volatile, and
//!   the default for experiments that only measure I/O counters;
//! * [`FileBackend`] — one file per dataset, with every page stored in a
//!   page-aligned slot at `id * page_size`. Each slot carries a small header
//!   (payload length + CRC-32) so variable-length payloads round-trip
//!   exactly and torn or corrupt slots are detected instead of decoded.
//!
//! Backends store *whole pages*: compression, layout encoding and caching
//! all happen above this interface.
//!
//! Both backends keep a **free list**: `free_pages` blanks a slot *and*
//! records its id so the next `append_page` reuses it instead of growing the
//! page file. Under update-heavy workloads (where merges retire whole runs of
//! input pages) this caps the file at roughly the high-water mark of live
//! data instead of growing monotonically. Reused ids make stale caching a
//! hazard, so freeing must go through [`crate::pagestore::BufferCache`] (or
//! [`crate::pagestore::PageStore`]) rather than the backend directly — the
//! cache evicts the ids before the backend can hand them out again.

use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use encoding::crc::crc32;
use parking_lot::Mutex;

use crate::pagestore::PageId;
use crate::{Result, StorageError};

/// Byte storage for fixed-size pages. Implementations must be safe to share
/// across threads (the buffer cache clones its store handle freely).
pub trait StorageBackend: Send + Sync {
    /// The fixed page size in bytes. Payloads may be shorter (they are
    /// length-delimited) but never longer than [`StorageBackend::max_payload`].
    fn page_size(&self) -> usize;

    /// Largest payload `append_page` accepts. The file backend reserves a
    /// few header bytes inside each slot, so this can be slightly smaller
    /// than `page_size`.
    fn max_payload(&self) -> usize;

    /// Number of page slots allocated so far (live pages plus free-listed
    /// slots awaiting reuse). This is the physical size of the backing
    /// storage in pages.
    fn page_count(&self) -> u64;

    /// Number of slots currently on the free list (allocated but dead).
    fn free_page_count(&self) -> u64;

    /// Store `data` in a page and return its id: a slot from the free list
    /// when one is available, a freshly grown slot otherwise.
    fn append_page(&self, data: Vec<u8>) -> Result<PageId>;

    /// Read a page's payload. Freed pages read back empty until their slot
    /// is reused.
    fn read_page(&self, id: PageId) -> Result<Arc<Vec<u8>>>;

    /// Release the contents of the given pages (after an LSM merge deletes
    /// its input components). The slots go on the free list and may be
    /// handed out again by a later `append_page`; freeing an id twice is a
    /// no-op. Callers that cache page contents must evict these ids first.
    fn free_pages(&self, ids: &[PageId]) -> Result<()>;

    /// Give back the contiguous run of *trailing* free slots: while the
    /// highest allocated slot is on the free list, deallocate it (truncate
    /// the page file / pop the page vector). Returns how many slots were
    /// released. Free slots in the middle of the file stay on the free list —
    /// the space-reclamation pass (`LsmDataset::reclaim_space`) relocates
    /// live pages downward first so the dead tail grows.
    fn shrink_free_tail(&self) -> Result<u64>;

    /// Flush all written pages to durable storage (no-op in memory).
    fn sync(&self) -> Result<()>;
}

/// The original in-process backend: a vector of pages under a lock, plus a
/// free list of reusable slot ids.
pub struct MemoryBackend {
    page_size: usize,
    state: Mutex<MemoryState>,
}

struct MemoryState {
    pages: Vec<Arc<Vec<u8>>>,
    /// Freed slot ids awaiting reuse; ordered so reuse is deterministic
    /// (lowest id first).
    free: BTreeSet<PageId>,
}

impl MemoryBackend {
    /// Create an empty in-memory backend.
    pub fn new(page_size: usize) -> MemoryBackend {
        MemoryBackend {
            page_size,
            state: Mutex::new(MemoryState {
                pages: Vec::new(),
                free: BTreeSet::new(),
            }),
        }
    }
}

impl StorageBackend for MemoryBackend {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn max_payload(&self) -> usize {
        self.page_size
    }

    fn page_count(&self) -> u64 {
        self.state.lock().pages.len() as u64
    }

    fn free_page_count(&self) -> u64 {
        self.state.lock().free.len() as u64
    }

    fn append_page(&self, data: Vec<u8>) -> Result<PageId> {
        let mut state = self.state.lock();
        if let Some(id) = state.free.pop_first() {
            state.pages[id as usize] = Arc::new(data);
            Ok(id)
        } else {
            state.pages.push(Arc::new(data));
            Ok((state.pages.len() - 1) as PageId)
        }
    }

    fn read_page(&self, id: PageId) -> Result<Arc<Vec<u8>>> {
        let state = self.state.lock();
        state
            .pages
            .get(id as usize)
            .cloned()
            .ok_or_else(|| StorageError::new(format!("unknown page id {id}")))
    }

    fn free_pages(&self, ids: &[PageId]) -> Result<()> {
        let mut state = self.state.lock();
        for &id in ids {
            if (id as usize) < state.pages.len() && state.free.insert(id) {
                state.pages[id as usize] = Arc::new(Vec::new());
            }
        }
        Ok(())
    }

    fn shrink_free_tail(&self) -> Result<u64> {
        let mut state = self.state.lock();
        let mut released = 0u64;
        while let Some(&last) = state.free.last() {
            if last as usize + 1 != state.pages.len() {
                break;
            }
            state.free.remove(&last);
            state.pages.pop();
            released += 1;
        }
        Ok(released)
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// Per-slot header of the file backend: payload length + CRC-32.
const SLOT_HEADER: usize = 8;

/// File-backed pages: one file per dataset, page `id` in the page-aligned
/// slot at byte offset `id * page_size`.
pub struct FileBackend {
    file: File,
    page_size: usize,
    next_id: AtomicU64,
    /// Serialises slot allocation; reads go through `pread` without it.
    append_lock: Mutex<()>,
    /// Freed slot ids awaiting reuse. Not persisted: after a restart the
    /// recovery path (`LsmDataset::open`) re-derives dead slots by
    /// reconciling the page file against the manifest's component page sets
    /// and frees them again, which repopulates this list.
    free: Mutex<BTreeSet<PageId>>,
}

impl FileBackend {
    /// Open (or create) the page file at `path`. An existing file must hold
    /// a whole number of `page_size` slots; its pages become readable again.
    pub fn open(path: &Path, page_size: usize) -> Result<FileBackend> {
        assert!(
            page_size > SLOT_HEADER + 1,
            "page size {page_size} cannot hold the slot header"
        );
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_error("open page file", path, &e))?;
        let len = file
            .metadata()
            .map_err(|e| io_error("stat page file", path, &e))?
            .len();
        if len % page_size as u64 != 0 {
            return Err(StorageError::new(format!(
                "page file {} has length {len}, not a multiple of the page size {page_size} \
                 (wrong page size, or a truncated file)",
                path.display()
            )));
        }
        Ok(FileBackend {
            file,
            page_size,
            next_id: AtomicU64::new(len / page_size as u64),
            append_lock: Mutex::new(()),
            free: Mutex::new(BTreeSet::new()),
        })
    }
}

fn io_error(op: &str, path: &Path, e: &io::Error) -> StorageError {
    StorageError::new(format!("{op} {}: {e}", path.display()))
}

impl StorageBackend for FileBackend {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn max_payload(&self) -> usize {
        self.page_size - SLOT_HEADER
    }

    fn page_count(&self) -> u64 {
        self.next_id.load(Ordering::SeqCst)
    }

    fn free_page_count(&self) -> u64 {
        self.free.lock().len() as u64
    }

    fn append_page(&self, data: Vec<u8>) -> Result<PageId> {
        assert!(
            data.len() <= self.max_payload(),
            "payload {} exceeds file-backed page capacity {} ({} bytes are the slot header)",
            data.len(),
            self.max_payload(),
            SLOT_HEADER
        );
        let mut slot = Vec::with_capacity(self.page_size);
        slot.extend_from_slice(&(data.len() as u32).to_le_bytes());
        slot.extend_from_slice(&crc32(&data).to_le_bytes());
        slot.extend_from_slice(&data);
        slot.resize(self.page_size, 0);

        let _guard = self.append_lock.lock();
        // Reuse a freed slot when one exists; grow the file otherwise.
        let (id, grows) = match self.free.lock().pop_first() {
            Some(id) => (id, false),
            None => (self.next_id.load(Ordering::SeqCst), true),
        };
        self.file
            .write_all_at(&slot, id * self.page_size as u64)
            .map_err(|e| StorageError::new(format!("write page {id}: {e}")))?;
        if grows {
            self.next_id.store(id + 1, Ordering::SeqCst);
        }
        Ok(id)
    }

    fn read_page(&self, id: PageId) -> Result<Arc<Vec<u8>>> {
        if id >= self.page_count() {
            return Err(StorageError::new(format!("unknown page id {id}")));
        }
        let mut slot = vec![0u8; self.page_size];
        self.file
            .read_exact_at(&mut slot, id * self.page_size as u64)
            .map_err(|e| StorageError::new(format!("read page {id}: {e}")))?;
        let len = u32::from_le_bytes(slot[0..4].try_into().unwrap()) as usize;
        let expected_crc = u32::from_le_bytes(slot[4..8].try_into().unwrap());
        if len > self.max_payload() {
            return Err(StorageError::new(format!(
                "page {id} header claims {len} bytes, beyond the slot capacity — corrupt page"
            )));
        }
        let payload = &slot[SLOT_HEADER..SLOT_HEADER + len];
        if crc32(payload) != expected_crc {
            return Err(StorageError::new(format!(
                "page {id} failed its CRC check — corrupt page"
            )));
        }
        Ok(Arc::new(payload.to_vec()))
    }

    fn free_pages(&self, ids: &[PageId]) -> Result<()> {
        // Rewrite the slot header as an empty payload (so the dead bytes can
        // never be mistaken for a live page after a crash) and put the slot
        // on the free list for the next append to reuse.
        let mut header = [0u8; SLOT_HEADER];
        header[4..8].copy_from_slice(&crc32(&[]).to_le_bytes());
        // Taking the append lock keeps a freed slot from being handed back
        // out (and overwritten) while its blank header is still in flight.
        let _guard = self.append_lock.lock();
        for &id in ids {
            if id >= self.page_count() || !self.free.lock().insert(id) {
                continue;
            }
            self.file
                .write_all_at(&header, id * self.page_size as u64)
                .map_err(|e| StorageError::new(format!("free page {id}: {e}")))?;
        }
        Ok(())
    }

    fn shrink_free_tail(&self) -> Result<u64> {
        // The append lock keeps a concurrent append from being handed a slot
        // this truncation is about to cut off.
        let _guard = self.append_lock.lock();
        let mut free = self.free.lock();
        let mut next = self.next_id.load(Ordering::SeqCst);
        let mut released = 0u64;
        while let Some(&last) = free.last() {
            if last + 1 != next {
                break;
            }
            free.remove(&last);
            next -= 1;
            released += 1;
        }
        if released > 0 {
            self.file
                .set_len(next * self.page_size as u64)
                .map_err(|e| StorageError::new(format!("truncate page file: {e}")))?;
            self.next_id.store(next, Ordering::SeqCst);
        }
        Ok(released)
    }

    fn sync(&self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| StorageError::new(format!("sync page file: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "storage-backend-tests-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn memory_backend_roundtrip() {
        let backend = MemoryBackend::new(256);
        let a = backend.append_page(vec![1, 2, 3]).unwrap();
        let b = backend.append_page(Vec::new()).unwrap();
        assert_eq!(backend.page_count(), 2);
        assert_eq!(*backend.read_page(a).unwrap(), vec![1, 2, 3]);
        assert_eq!(*backend.read_page(b).unwrap(), Vec::<u8>::new());
        backend.free_pages(&[a]).unwrap();
        assert_eq!(*backend.read_page(a).unwrap(), Vec::<u8>::new());
        assert!(backend.read_page(99).is_err());
    }

    #[test]
    fn file_backend_roundtrip_and_reopen() {
        let path = temp_path("roundtrip.pages");
        let _ = std::fs::remove_file(&path);
        let payloads: Vec<Vec<u8>> = vec![vec![7u8; 100], Vec::new(), vec![42u8; 248]];
        {
            let backend = FileBackend::open(&path, 256).unwrap();
            for p in &payloads {
                backend.append_page(p.clone()).unwrap();
            }
            backend.sync().unwrap();
        }
        // A fresh handle (a "restart") sees the same pages.
        let backend = FileBackend::open(&path, 256).unwrap();
        assert_eq!(backend.page_count(), 3);
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(&*backend.read_page(i as u64).unwrap(), p, "page {i}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_detects_corruption() {
        let path = temp_path("corrupt.pages");
        let _ = std::fs::remove_file(&path);
        let backend = FileBackend::open(&path, 128).unwrap();
        let id = backend.append_page(vec![9u8; 64]).unwrap();
        // Flip one payload byte behind the backend's back.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.write_all_at(&[0xFF], SLOT_HEADER as u64 + 10).unwrap();
        let err = backend.read_page(id).unwrap_err();
        assert!(err.message.contains("CRC"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_frees_pages() {
        let path = temp_path("free.pages");
        let _ = std::fs::remove_file(&path);
        let backend = FileBackend::open(&path, 128).unwrap();
        let id = backend.append_page(vec![1u8; 32]).unwrap();
        backend.free_pages(&[id]).unwrap();
        assert_eq!(*backend.read_page(id).unwrap(), Vec::<u8>::new());
        // Freeing unknown ids is a no-op, not an error.
        backend.free_pages(&[55]).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn memory_backend_reuses_freed_slots() {
        let backend = MemoryBackend::new(256);
        let ids: Vec<_> = (0..4)
            .map(|i| backend.append_page(vec![i as u8; 8]).unwrap())
            .collect();
        backend.free_pages(&[ids[1], ids[2]]).unwrap();
        assert_eq!(backend.free_page_count(), 2);
        // Double-free is a no-op.
        backend.free_pages(&[ids[1]]).unwrap();
        assert_eq!(backend.free_page_count(), 2);
        // Reuse lowest id first; the backend does not grow.
        assert_eq!(backend.append_page(vec![9u8; 8]).unwrap(), ids[1]);
        assert_eq!(backend.append_page(vec![8u8; 8]).unwrap(), ids[2]);
        assert_eq!(backend.page_count(), 4);
        assert_eq!(backend.free_page_count(), 0);
        assert_eq!(*backend.read_page(ids[1]).unwrap(), vec![9u8; 8]);
        // Free list drained: the next append grows again.
        assert_eq!(backend.append_page(vec![7u8; 8]).unwrap(), 4);
    }

    #[test]
    fn file_backend_reuses_freed_slots() {
        let path = temp_path("reuse.pages");
        let _ = std::fs::remove_file(&path);
        let backend = FileBackend::open(&path, 128).unwrap();
        let ids: Vec<_> = (0..3)
            .map(|i| backend.append_page(vec![i as u8; 32]).unwrap())
            .collect();
        backend.free_pages(&[ids[0]]).unwrap();
        assert_eq!(backend.free_page_count(), 1);
        let reused = backend.append_page(vec![0xAB; 32]).unwrap();
        assert_eq!(reused, ids[0], "freed slot is reused");
        assert_eq!(backend.page_count(), 3, "the file did not grow");
        assert_eq!(*backend.read_page(reused).unwrap(), vec![0xAB; 32]);
        // The other pages are untouched.
        assert_eq!(*backend.read_page(ids[1]).unwrap(), vec![1u8; 32]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn memory_backend_shrinks_its_free_tail() {
        let backend = MemoryBackend::new(256);
        let ids: Vec<_> = (0..5)
            .map(|i| backend.append_page(vec![i as u8; 8]).unwrap())
            .collect();
        // A hole below the tail blocks nothing above it from going away.
        backend.free_pages(&[ids[1], ids[3], ids[4]]).unwrap();
        assert_eq!(backend.shrink_free_tail().unwrap(), 2);
        assert_eq!(backend.page_count(), 3);
        assert_eq!(backend.free_page_count(), 1, "the hole at 1 stays");
        assert_eq!(*backend.read_page(ids[2]).unwrap(), vec![2u8; 8]);
        // Nothing left to release.
        assert_eq!(backend.shrink_free_tail().unwrap(), 0);
        // The next appends refill the hole, then grow from the new tail.
        assert_eq!(backend.append_page(vec![9u8; 8]).unwrap(), ids[1]);
        assert_eq!(backend.append_page(vec![9u8; 8]).unwrap(), 3);
    }

    #[test]
    fn file_backend_shrinks_its_free_tail() {
        let path = temp_path("shrink.pages");
        let _ = std::fs::remove_file(&path);
        let backend = FileBackend::open(&path, 128).unwrap();
        let ids: Vec<_> = (0..4)
            .map(|i| backend.append_page(vec![i as u8; 32]).unwrap())
            .collect();
        backend.free_pages(&[ids[2], ids[3]]).unwrap();
        assert_eq!(backend.shrink_free_tail().unwrap(), 2);
        assert_eq!(backend.page_count(), 2);
        assert_eq!(backend.free_page_count(), 0);
        let len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(len, 2 * 128, "the page file physically shrank");
        assert_eq!(*backend.read_page(ids[1]).unwrap(), vec![1u8; 32]);
        assert!(backend.read_page(ids[3]).is_err(), "truncated slot is gone");
        // A reopen agrees with the truncated geometry.
        drop(backend);
        let backend = FileBackend::open(&path, 128).unwrap();
        assert_eq!(backend.page_count(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_rejects_bad_geometry() {
        let path = temp_path("geometry.pages");
        let _ = std::fs::remove_file(&path);
        {
            let backend = FileBackend::open(&path, 128).unwrap();
            backend.append_page(vec![1u8; 16]).unwrap();
        }
        assert!(FileBackend::open(&path, 96).is_err(), "mismatched page size");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "exceeds file-backed page capacity")]
    fn file_backend_rejects_oversized_payload() {
        let path = temp_path("oversize.pages");
        let _ = std::fs::remove_file(&path);
        let backend = FileBackend::open(&path, 128).unwrap();
        let _ = backend.append_page(vec![0u8; 128]);
    }
}
