//! Storage backends behind [`crate::pagestore::PageStore`].
//!
//! The reproduction originally ran on a purely in-memory "simulated disk".
//! The durability subsystem (`persist`) needs real files, so the page store
//! is now split in two layers: [`PageStore`](crate::pagestore::PageStore)
//! keeps the I/O accounting and the API every layout writer/reader uses,
//! while the actual byte storage lives behind this [`StorageBackend`] trait:
//!
//! * [`MemoryBackend`] — the original vector of pages; fast, volatile, and
//!   the default for experiments that only measure I/O counters;
//! * [`FileBackend`] — one file per dataset, with every page stored in a
//!   page-aligned slot at `id * page_size`. Each slot carries a small header
//!   (payload length + CRC-32) so variable-length payloads round-trip
//!   exactly and torn or corrupt slots are detected instead of decoded.
//!
//! Backends store *whole pages*: compression, layout encoding and caching
//! all happen above this interface.

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use encoding::crc::crc32;
use parking_lot::Mutex;

use crate::pagestore::PageId;
use crate::{Result, StorageError};

/// Byte storage for fixed-size pages. Implementations must be safe to share
/// across threads (the buffer cache clones its store handle freely).
pub trait StorageBackend: Send + Sync {
    /// The fixed page size in bytes. Payloads may be shorter (they are
    /// length-delimited) but never longer than [`StorageBackend::max_payload`].
    fn page_size(&self) -> usize;

    /// Largest payload `append_page` accepts. The file backend reserves a
    /// few header bytes inside each slot, so this can be slightly smaller
    /// than `page_size`.
    fn max_payload(&self) -> usize;

    /// Number of pages allocated so far (freed pages keep their slots).
    fn page_count(&self) -> u64;

    /// Store `data` in a fresh page and return its id.
    fn append_page(&self, data: Vec<u8>) -> Result<PageId>;

    /// Read a page's payload. Freed pages read back empty.
    fn read_page(&self, id: PageId) -> Result<Arc<Vec<u8>>>;

    /// Release the contents of the given pages (after an LSM merge deletes
    /// its input components). Ids stay allocated; reads return empty.
    fn free_pages(&self, ids: &[PageId]) -> Result<()>;

    /// Flush all written pages to durable storage (no-op in memory).
    fn sync(&self) -> Result<()>;
}

/// The original in-process backend: a vector of pages under a lock.
pub struct MemoryBackend {
    page_size: usize,
    pages: Mutex<Vec<Arc<Vec<u8>>>>,
}

impl MemoryBackend {
    /// Create an empty in-memory backend.
    pub fn new(page_size: usize) -> MemoryBackend {
        MemoryBackend {
            page_size,
            pages: Mutex::new(Vec::new()),
        }
    }
}

impl StorageBackend for MemoryBackend {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn max_payload(&self) -> usize {
        self.page_size
    }

    fn page_count(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    fn append_page(&self, data: Vec<u8>) -> Result<PageId> {
        let mut pages = self.pages.lock();
        pages.push(Arc::new(data));
        Ok((pages.len() - 1) as PageId)
    }

    fn read_page(&self, id: PageId) -> Result<Arc<Vec<u8>>> {
        let pages = self.pages.lock();
        pages
            .get(id as usize)
            .cloned()
            .ok_or_else(|| StorageError::new(format!("unknown page id {id}")))
    }

    fn free_pages(&self, ids: &[PageId]) -> Result<()> {
        let mut pages = self.pages.lock();
        for &id in ids {
            if let Some(slot) = pages.get_mut(id as usize) {
                *slot = Arc::new(Vec::new());
            }
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// Per-slot header of the file backend: payload length + CRC-32.
const SLOT_HEADER: usize = 8;

/// File-backed pages: one file per dataset, page `id` in the page-aligned
/// slot at byte offset `id * page_size`.
pub struct FileBackend {
    file: File,
    page_size: usize,
    next_id: AtomicU64,
    /// Serialises slot allocation; reads go through `pread` without it.
    append_lock: Mutex<()>,
}

impl FileBackend {
    /// Open (or create) the page file at `path`. An existing file must hold
    /// a whole number of `page_size` slots; its pages become readable again.
    pub fn open(path: &Path, page_size: usize) -> Result<FileBackend> {
        assert!(
            page_size > SLOT_HEADER + 1,
            "page size {page_size} cannot hold the slot header"
        );
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_error("open page file", path, &e))?;
        let len = file
            .metadata()
            .map_err(|e| io_error("stat page file", path, &e))?
            .len();
        if len % page_size as u64 != 0 {
            return Err(StorageError::new(format!(
                "page file {} has length {len}, not a multiple of the page size {page_size} \
                 (wrong page size, or a truncated file)",
                path.display()
            )));
        }
        Ok(FileBackend {
            file,
            page_size,
            next_id: AtomicU64::new(len / page_size as u64),
            append_lock: Mutex::new(()),
        })
    }
}

fn io_error(op: &str, path: &Path, e: &io::Error) -> StorageError {
    StorageError::new(format!("{op} {}: {e}", path.display()))
}

impl StorageBackend for FileBackend {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn max_payload(&self) -> usize {
        self.page_size - SLOT_HEADER
    }

    fn page_count(&self) -> u64 {
        self.next_id.load(Ordering::SeqCst)
    }

    fn append_page(&self, data: Vec<u8>) -> Result<PageId> {
        assert!(
            data.len() <= self.max_payload(),
            "payload {} exceeds file-backed page capacity {} ({} bytes are the slot header)",
            data.len(),
            self.max_payload(),
            SLOT_HEADER
        );
        let mut slot = Vec::with_capacity(self.page_size);
        slot.extend_from_slice(&(data.len() as u32).to_le_bytes());
        slot.extend_from_slice(&crc32(&data).to_le_bytes());
        slot.extend_from_slice(&data);
        slot.resize(self.page_size, 0);

        let _guard = self.append_lock.lock();
        let id = self.next_id.load(Ordering::SeqCst);
        self.file
            .write_all_at(&slot, id * self.page_size as u64)
            .map_err(|e| StorageError::new(format!("write page {id}: {e}")))?;
        self.next_id.store(id + 1, Ordering::SeqCst);
        Ok(id)
    }

    fn read_page(&self, id: PageId) -> Result<Arc<Vec<u8>>> {
        if id >= self.page_count() {
            return Err(StorageError::new(format!("unknown page id {id}")));
        }
        let mut slot = vec![0u8; self.page_size];
        self.file
            .read_exact_at(&mut slot, id * self.page_size as u64)
            .map_err(|e| StorageError::new(format!("read page {id}: {e}")))?;
        let len = u32::from_le_bytes(slot[0..4].try_into().unwrap()) as usize;
        let expected_crc = u32::from_le_bytes(slot[4..8].try_into().unwrap());
        if len > self.max_payload() {
            return Err(StorageError::new(format!(
                "page {id} header claims {len} bytes, beyond the slot capacity — corrupt page"
            )));
        }
        let payload = &slot[SLOT_HEADER..SLOT_HEADER + len];
        if crc32(payload) != expected_crc {
            return Err(StorageError::new(format!(
                "page {id} failed its CRC check — corrupt page"
            )));
        }
        Ok(Arc::new(payload.to_vec()))
    }

    fn free_pages(&self, ids: &[PageId]) -> Result<()> {
        // Rewrite the slot header as an empty payload. The space is not
        // reclaimed (components are immutable and merges free whole runs;
        // compaction of the page file itself is future work).
        let mut header = [0u8; SLOT_HEADER];
        header[4..8].copy_from_slice(&crc32(&[]).to_le_bytes());
        for &id in ids {
            if id >= self.page_count() {
                continue;
            }
            self.file
                .write_all_at(&header, id * self.page_size as u64)
                .map_err(|e| StorageError::new(format!("free page {id}: {e}")))?;
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| StorageError::new(format!("sync page file: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "storage-backend-tests-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn memory_backend_roundtrip() {
        let backend = MemoryBackend::new(256);
        let a = backend.append_page(vec![1, 2, 3]).unwrap();
        let b = backend.append_page(Vec::new()).unwrap();
        assert_eq!(backend.page_count(), 2);
        assert_eq!(*backend.read_page(a).unwrap(), vec![1, 2, 3]);
        assert_eq!(*backend.read_page(b).unwrap(), Vec::<u8>::new());
        backend.free_pages(&[a]).unwrap();
        assert_eq!(*backend.read_page(a).unwrap(), Vec::<u8>::new());
        assert!(backend.read_page(99).is_err());
    }

    #[test]
    fn file_backend_roundtrip_and_reopen() {
        let path = temp_path("roundtrip.pages");
        let _ = std::fs::remove_file(&path);
        let payloads: Vec<Vec<u8>> = vec![vec![7u8; 100], Vec::new(), vec![42u8; 248]];
        {
            let backend = FileBackend::open(&path, 256).unwrap();
            for p in &payloads {
                backend.append_page(p.clone()).unwrap();
            }
            backend.sync().unwrap();
        }
        // A fresh handle (a "restart") sees the same pages.
        let backend = FileBackend::open(&path, 256).unwrap();
        assert_eq!(backend.page_count(), 3);
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(&*backend.read_page(i as u64).unwrap(), p, "page {i}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_detects_corruption() {
        let path = temp_path("corrupt.pages");
        let _ = std::fs::remove_file(&path);
        let backend = FileBackend::open(&path, 128).unwrap();
        let id = backend.append_page(vec![9u8; 64]).unwrap();
        // Flip one payload byte behind the backend's back.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.write_all_at(&[0xFF], SLOT_HEADER as u64 + 10).unwrap();
        let err = backend.read_page(id).unwrap_err();
        assert!(err.message.contains("CRC"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_frees_pages() {
        let path = temp_path("free.pages");
        let _ = std::fs::remove_file(&path);
        let backend = FileBackend::open(&path, 128).unwrap();
        let id = backend.append_page(vec![1u8; 32]).unwrap();
        backend.free_pages(&[id]).unwrap();
        assert_eq!(*backend.read_page(id).unwrap(), Vec::<u8>::new());
        // Freeing unknown ids is a no-op, not an error.
        backend.free_pages(&[55]).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_rejects_bad_geometry() {
        let path = temp_path("geometry.pages");
        let _ = std::fs::remove_file(&path);
        {
            let backend = FileBackend::open(&path, 128).unwrap();
            backend.append_page(vec![1u8; 16]).unwrap();
        }
        assert!(FileBackend::open(&path, 96).is_err(), "mismatched page size");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "exceeds file-backed page capacity")]
    fn file_backend_rejects_oversized_payload() {
        let path = temp_path("oversize.pages");
        let _ = std::fs::remove_file(&path);
        let backend = FileBackend::open(&path, 128).unwrap();
        let _ = backend.append_page(vec![0u8; 128]);
    }
}
