//! Pages, I/O accounting and the buffer cache.
//!
//! [`PageStore`] is the disk every component writer and reader talks to: a
//! store of fixed-size pages with atomic counters for pages read, pages
//! written and bytes moved. All experiments report these counters next to
//! wall-clock time because the paper's query speedups are, at heart, I/O
//! reductions (read fewer columns, read fewer bytes per column) while its
//! ingestion slowdowns are CPU effects (encode/decode, page construction).
//!
//! The bytes themselves live behind a [`crate::backend::StorageBackend`]:
//! the default [`crate::backend::MemoryBackend`] keeps the original
//! simulated in-process disk, while [`PageStore::file_backed`] opens the
//! [`crate::backend::FileBackend`] the durability subsystem (`persist`)
//! builds on. The accounting layer is identical for both, so durable and
//! in-memory runs report comparable I/O counters.
//!
//! The [`BufferCache`] models the part of AsterixDB's buffer cache that the
//! AMAX writer interacts with: writers *confiscate* pages from the cache to
//! use as temporary buffers for growing megapages instead of reserving a
//! dedicated memory budget (§4.5.2), and readers cache recently used pages
//! with an LRU policy sized by the configured memory budget.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{FileBackend, MemoryBackend, StorageBackend};
use crate::leafcache::LeafCacheHandle;
use crate::Result;

/// Default on-disk page size: 128 KiB, the value used in the paper's
/// experiment setup (§6).
pub const PAGE_SIZE_DEFAULT: usize = 128 * 1024;

/// Default [`BufferCache`] capacity, in pages. One documented default for
/// every construction site (dataset configs, persisted manifests, test
/// helpers) so a config round-tripped through the manifest keeps the same
/// cache size it started with.
pub const DEFAULT_CACHE_PAGES: usize = 256;

/// Identifier of a page within a [`PageStore`].
pub type PageId = u64;

/// Counters describing the I/O a workload performed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read from the simulated disk (cache misses only).
    pub pages_read: u64,
    /// Pages written to the simulated disk.
    pub pages_written: u64,
    /// Bytes read from the simulated disk.
    pub bytes_read: u64,
    /// Bytes written to the simulated disk.
    pub bytes_written: u64,
    /// Reads satisfied by the buffer cache.
    pub cache_hits: u64,
    /// Records materialised from stored pages (row-page decodes plus
    /// column-chunk assemblies). Scans that batch-skip shadowed entries
    /// (§4.4) assemble fewer records than they visit, and this counter is
    /// how tests observe the difference.
    pub records_assembled: u64,
    /// Leaf loads served by the shared decoded-leaf cache
    /// ([`crate::leafcache::LeafCache`]) — no page reads, no decode.
    pub leaf_cache_hits: u64,
    /// Leaf loads that missed the decoded-leaf cache and decoded from pages.
    pub leaf_cache_misses: u64,
    /// Decoded leaves evicted from the leaf cache to stay under its byte
    /// budget, attributed to the store whose insert forced them out.
    pub leaf_cache_evictions: u64,
    /// Reconciliation-winning records rejected by a pushed-down filter
    /// **before** record assembly: only the filter columns were decoded and
    /// the entry was batch-skipped, so none of these appear in
    /// `records_assembled`.
    pub records_filtered_pre_assembly: u64,
    /// Whole leaves skipped by per-leaf zone maps under a pushed-down
    /// filter — no page reads, no decode, not even the key column.
    pub leaves_skipped: u64,
}

/// A store of fixed-size pages: explicit read/write calls, atomic
/// accounting, bytes held by a [`StorageBackend`]. Cloning shares the
/// underlying storage.
#[derive(Clone)]
pub struct PageStore {
    inner: Arc<PageStoreInner>,
}

struct PageStoreInner {
    backend: Box<dyn StorageBackend>,
    pages_read: AtomicU64,
    pages_written: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    cache_hits: AtomicU64,
    records_assembled: AtomicU64,
    leaf_cache_hits: AtomicU64,
    leaf_cache_misses: AtomicU64,
    leaf_cache_evictions: AtomicU64,
    records_filtered_pre_assembly: AtomicU64,
    leaves_skipped: AtomicU64,
}

impl PageStore {
    /// Create an in-memory store with the default page size.
    pub fn new() -> PageStore {
        PageStore::with_page_size(PAGE_SIZE_DEFAULT)
    }

    /// Create an in-memory store with a custom page size (tests use small
    /// pages so that multi-page behaviour shows up with little data).
    pub fn with_page_size(page_size: usize) -> PageStore {
        PageStore::with_backend(Box::new(MemoryBackend::new(page_size)))
    }

    /// Create a store over an explicit backend.
    pub fn with_backend(backend: Box<dyn StorageBackend>) -> PageStore {
        PageStore {
            inner: Arc::new(PageStoreInner {
                backend,
                pages_read: AtomicU64::new(0),
                pages_written: AtomicU64::new(0),
                bytes_read: AtomicU64::new(0),
                bytes_written: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                records_assembled: AtomicU64::new(0),
                leaf_cache_hits: AtomicU64::new(0),
                leaf_cache_misses: AtomicU64::new(0),
                leaf_cache_evictions: AtomicU64::new(0),
                records_filtered_pre_assembly: AtomicU64::new(0),
                leaves_skipped: AtomicU64::new(0),
            }),
        }
    }

    /// Open (or create) a file-backed store: pages live in page-aligned
    /// slots of the file at `path` and survive restarts.
    pub fn file_backed(path: &Path, page_size: usize) -> Result<PageStore> {
        Ok(PageStore::with_backend(Box::new(FileBackend::open(
            path, page_size,
        )?)))
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.inner.backend.page_size()
    }

    /// Largest payload [`PageStore::append_page`] accepts (the file backend
    /// reserves a few bytes per page for its slot header).
    pub fn max_payload(&self) -> usize {
        self.inner.backend.max_payload()
    }

    /// Number of page slots allocated so far (live pages plus free-listed
    /// slots). This is the physical size of the backing storage in pages:
    /// with freed-slot reuse it tracks the high-water mark of live data
    /// rather than growing monotonically.
    pub fn page_count(&self) -> u64 {
        self.inner.backend.page_count()
    }

    /// Number of allocated slots currently on the free list (dead space a
    /// later append will reuse).
    pub fn free_page_count(&self) -> u64 {
        self.inner.backend.free_page_count()
    }

    /// Total allocated bytes (page slots × page size) — the physical
    /// footprint, including free-listed slots awaiting reuse.
    pub fn allocated_bytes(&self) -> u64 {
        self.page_count() * self.page_size() as u64
    }

    /// Append a new page with the given contents, returning its id. Contents
    /// longer than the page size are a programming error; backend I/O errors
    /// surface as [`StorageError`](crate::StorageError) from
    /// [`PageStore::try_append_page`].
    pub fn append_page(&self, data: Vec<u8>) -> PageId {
        self.try_append_page(data).expect("page append failed")
    }

    /// Append a new page, surfacing backend I/O errors.
    pub fn try_append_page(&self, data: Vec<u8>) -> Result<PageId> {
        assert!(
            data.len() <= self.inner.backend.max_payload(),
            "page payload {} exceeds page size {}",
            data.len(),
            self.inner.backend.max_payload()
        );
        let len = data.len() as u64;
        let id = self.inner.backend.append_page(data)?;
        self.inner.pages_written.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_written.fetch_add(len, Ordering::Relaxed);
        Ok(id)
    }

    /// Read a page (counted as disk I/O). Panics on an unknown id — page ids
    /// are only ever produced by `append_page`, so an unknown id is a bug,
    /// not a data error. I/O and corruption errors surface through
    /// [`PageStore::try_read_page`].
    pub fn read_page(&self, id: PageId) -> Arc<Vec<u8>> {
        self.try_read_page(id).expect("page read failed")
    }

    /// Read a page, surfacing backend I/O and corruption errors.
    pub fn try_read_page(&self, id: PageId) -> Result<Arc<Vec<u8>>> {
        let page = self.inner.backend.read_page(id)?;
        self.inner.pages_read.fetch_add(1, Ordering::Relaxed);
        self.inner
            .bytes_read
            .fetch_add(page.len() as u64, Ordering::Relaxed);
        Ok(page)
    }

    /// Drop the contents of the given pages (used when an LSM merge deletes
    /// its input components). The slots go on the backend's free list and
    /// may be reused by a later append. Callers holding a [`BufferCache`]
    /// over this store must free through [`BufferCache::free_pages`] instead
    /// so cached copies of the dead ids are evicted before reuse.
    pub fn free_pages(&self, ids: &[PageId]) {
        self.inner
            .backend
            .free_pages(ids)
            .expect("freeing pages failed");
    }

    /// Release the contiguous run of trailing free slots back to the
    /// operating system (truncating the page file). Returns how many slots
    /// went away. See [`StorageBackend::shrink_free_tail`].
    pub fn shrink_free_tail(&self) -> Result<u64> {
        self.inner.backend.shrink_free_tail()
    }

    /// Flush written pages to durable storage (no-op for memory backends).
    pub fn sync(&self) -> Result<()> {
        self.inner.backend.sync()
    }

    fn note_cache_hit(&self) {
        self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Account for `n` records materialised from stored pages (called by the
    /// component readers when they decode a row page or assemble records
    /// from column chunks).
    pub fn note_records_assembled(&self, n: u64) {
        self.inner.records_assembled.fetch_add(n, Ordering::Relaxed);
    }

    /// Account for one leaf load served by the decoded-leaf cache.
    pub fn note_leaf_cache_hit(&self) {
        self.inner.leaf_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Account for one leaf load that missed the decoded-leaf cache.
    pub fn note_leaf_cache_miss(&self) {
        self.inner.leaf_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Account for `n` decoded leaves evicted by an insert through this
    /// store's components.
    pub fn note_leaf_cache_evictions(&self, n: u64) {
        if n > 0 {
            self.inner.leaf_cache_evictions.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Account for `n` reconciliation winners rejected by a pushed-down
    /// filter before assembly (only filter columns decoded).
    pub fn note_records_filtered_pre_assembly(&self, n: u64) {
        if n > 0 {
            self.inner
                .records_filtered_pre_assembly
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Account for `n` leaves skipped wholesale by per-leaf zone maps.
    pub fn note_leaves_skipped(&self, n: u64) {
        if n > 0 {
            self.inner.leaves_skipped.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Snapshot of the accounting counters.
    pub fn stats(&self) -> IoStats {
        IoStats {
            pages_read: self.inner.pages_read.load(Ordering::Relaxed),
            pages_written: self.inner.pages_written.load(Ordering::Relaxed),
            bytes_read: self.inner.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.inner.bytes_written.load(Ordering::Relaxed),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
            records_assembled: self.inner.records_assembled.load(Ordering::Relaxed),
            leaf_cache_hits: self.inner.leaf_cache_hits.load(Ordering::Relaxed),
            leaf_cache_misses: self.inner.leaf_cache_misses.load(Ordering::Relaxed),
            leaf_cache_evictions: self.inner.leaf_cache_evictions.load(Ordering::Relaxed),
            records_filtered_pre_assembly: self
                .inner
                .records_filtered_pre_assembly
                .load(Ordering::Relaxed),
            leaves_skipped: self.inner.leaves_skipped.load(Ordering::Relaxed),
        }
    }

    /// Reset the accounting counters (between experiment phases).
    pub fn reset_stats(&self) {
        self.inner.pages_read.store(0, Ordering::Relaxed);
        self.inner.pages_written.store(0, Ordering::Relaxed);
        self.inner.bytes_read.store(0, Ordering::Relaxed);
        self.inner.bytes_written.store(0, Ordering::Relaxed);
        self.inner.cache_hits.store(0, Ordering::Relaxed);
        self.inner.records_assembled.store(0, Ordering::Relaxed);
        self.inner.leaf_cache_hits.store(0, Ordering::Relaxed);
        self.inner.leaf_cache_misses.store(0, Ordering::Relaxed);
        self.inner.leaf_cache_evictions.store(0, Ordering::Relaxed);
        self.inner
            .records_filtered_pre_assembly
            .store(0, Ordering::Relaxed);
        self.inner.leaves_skipped.store(0, Ordering::Relaxed);
    }
}

impl Default for PageStore {
    fn default() -> Self {
        PageStore::new()
    }
}

/// A shared LRU buffer cache in front of a [`PageStore`].
///
/// The cache is sized in pages (memory budget ÷ page size). Reads first
/// consult the cache; misses go to the store and are inserted. Writers can
/// *confiscate* capacity: confiscated pages reduce the cache's usable size
/// until they are returned, modelling how the AMAX writer borrows buffer
/// cache pages as temporary megapage buffers instead of allocating its own
/// budget (§4.5.2).
#[derive(Clone)]
pub struct BufferCache {
    store: PageStore,
    inner: Arc<Mutex<CacheInner>>,
    /// Shared decoded-leaf cache handle, when the owning dataset attached
    /// one. Rides along on clones so every component built over this cache
    /// reads through the same leaf cache.
    leaf: Option<LeafCacheHandle>,
}

struct CacheInner {
    capacity: usize,
    confiscated: usize,
    /// Page id → (data, last-use tick).
    entries: HashMap<PageId, (Arc<Vec<u8>>, u64)>,
    tick: u64,
}

impl BufferCache {
    /// Create a cache holding at most `capacity_pages` pages.
    pub fn new(store: PageStore, capacity_pages: usize) -> BufferCache {
        BufferCache {
            store,
            inner: Arc::new(Mutex::new(CacheInner {
                capacity: capacity_pages.max(1),
                confiscated: 0,
                entries: HashMap::new(),
                tick: 0,
            })),
            leaf: None,
        }
    }

    /// Attach a decoded-leaf cache handle: components built over this buffer
    /// cache will serve leaf loads through it.
    pub fn with_leaf_cache(mut self, handle: LeafCacheHandle) -> BufferCache {
        self.leaf = Some(handle);
        self
    }

    /// The attached decoded-leaf cache handle, if any.
    pub fn leaf_cache(&self) -> Option<&LeafCacheHandle> {
        self.leaf.as_ref()
    }

    /// The underlying store.
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// Read a page through the cache. Panics on I/O errors; see
    /// [`BufferCache::try_read_page`].
    pub fn read_page(&self, id: PageId) -> Arc<Vec<u8>> {
        self.try_read_page(id).expect("page read failed")
    }

    /// Read a page through the cache, surfacing I/O and corruption errors.
    pub fn try_read_page(&self, id: PageId) -> crate::Result<Arc<Vec<u8>>> {
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((data, last)) = inner.entries.get_mut(&id) {
                *last = tick;
                let data = data.clone();
                drop(inner);
                self.store.note_cache_hit();
                return Ok(data);
            }
        }
        let data = self.store.try_read_page(id)?;
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(id, (data.clone(), tick));
        Self::evict_if_needed(&mut inner);
        Ok(data)
    }

    /// Write a fresh page through the cache (it is immediately cached, as
    /// flushes produce pages that are often read back by the next merge).
    pub fn append_page(&self, data: Vec<u8>) -> PageId {
        let id = self.store.append_page(data.clone());
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(id, (Arc::new(data), tick));
        Self::evict_if_needed(&mut inner);
        id
    }

    /// Confiscate `n` pages' worth of capacity for use as temporary write
    /// buffers. Returns the number actually confiscated (never more than the
    /// currently usable capacity minus one, so readers always keep a page).
    pub fn confiscate(&self, n: usize) -> usize {
        let mut inner = self.inner.lock();
        let usable = inner.capacity.saturating_sub(inner.confiscated);
        let granted = n.min(usable.saturating_sub(1));
        inner.confiscated += granted;
        Self::evict_if_needed(&mut inner);
        granted
    }

    /// Return previously confiscated capacity.
    pub fn return_confiscated(&self, n: usize) {
        let mut inner = self.inner.lock();
        inner.confiscated = inner.confiscated.saturating_sub(n);
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Currently confiscated capacity, in pages.
    pub fn confiscated_pages(&self) -> usize {
        self.inner.lock().confiscated
    }

    /// Free pages through the cache: evict any cached copies first, then
    /// release the slots to the store's free list. This is the only safe
    /// order once slots are reused — freeing at the store level alone would
    /// leave stale cache entries that shadow whatever page is written into
    /// the recycled slot next.
    pub fn free_pages(&self, ids: &[PageId]) {
        {
            let mut inner = self.inner.lock();
            for id in ids {
                inner.entries.remove(id);
            }
        }
        self.store.free_pages(ids);
    }

    /// Drop every cached page (used between experiment runs to measure cold
    /// reads).
    pub fn clear(&self) {
        self.inner.lock().entries.clear();
    }

    fn evict_if_needed(inner: &mut CacheInner) {
        let usable = inner.capacity.saturating_sub(inner.confiscated).max(1);
        while inner.entries.len() > usable {
            // Evict the least recently used entry.
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    inner.entries.remove(&id);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_accounting() {
        let store = PageStore::with_page_size(1024);
        let a = store.append_page(vec![1u8; 100]);
        let b = store.append_page(vec![2u8; 200]);
        assert_eq!(store.page_count(), 2);
        assert_eq!(store.read_page(a)[0], 1);
        assert_eq!(store.read_page(b).len(), 200);
        let stats = store.stats();
        assert_eq!(stats.pages_written, 2);
        assert_eq!(stats.pages_read, 2);
        assert_eq!(stats.bytes_written, 300);
        assert_eq!(stats.bytes_read, 300);
        store.reset_stats();
        assert_eq!(store.stats(), IoStats::default());
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_page_panics() {
        let store = PageStore::with_page_size(64);
        store.append_page(vec![0u8; 65]);
    }

    #[test]
    fn free_pages_releases_contents() {
        let store = PageStore::with_page_size(1024);
        let a = store.append_page(vec![7u8; 500]);
        store.free_pages(&[a]);
        assert!(store.read_page(a).is_empty());
    }

    #[test]
    fn cache_hits_avoid_disk_reads() {
        let store = PageStore::with_page_size(1024);
        let cache = BufferCache::new(store.clone(), 4);
        let id = cache.append_page(vec![9u8; 10]);
        store.reset_stats();
        for _ in 0..5 {
            assert_eq!(cache.read_page(id)[0], 9);
        }
        let stats = store.stats();
        assert_eq!(stats.pages_read, 0, "all reads should hit the cache");
        assert_eq!(stats.cache_hits, 5);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let store = PageStore::with_page_size(256);
        let cache = BufferCache::new(store.clone(), 2);
        let ids: Vec<_> = (0..4).map(|i| store.append_page(vec![i as u8; 16])).collect();
        for &id in &ids {
            cache.read_page(id);
        }
        assert!(cache.cached_pages() <= 2);
        // The most recently used page is still cached.
        store.reset_stats();
        cache.read_page(ids[3]);
        assert_eq!(store.stats().pages_read, 0);
    }

    #[test]
    fn cache_freeing_evicts_before_slot_reuse() {
        let store = PageStore::with_page_size(256);
        let cache = BufferCache::new(store.clone(), 4);
        let id = cache.append_page(vec![1u8; 16]);
        assert_eq!(cache.read_page(id)[0], 1);
        cache.free_pages(&[id]);
        // The slot is recycled for new contents; the cache must not serve
        // the stale pre-free copy.
        let reused = cache.append_page(vec![2u8; 16]);
        assert_eq!(reused, id, "freed slot is reused");
        assert_eq!(cache.read_page(reused)[0], 2);
        assert_eq!(store.free_page_count(), 0);
    }

    #[test]
    fn confiscation_shrinks_usable_capacity() {
        let store = PageStore::with_page_size(256);
        let cache = BufferCache::new(store.clone(), 4);
        let granted = cache.confiscate(3);
        assert_eq!(granted, 3);
        assert_eq!(cache.confiscated_pages(), 3);
        // Only one usable slot remains.
        let ids: Vec<_> = (0..3).map(|i| store.append_page(vec![i as u8; 16])).collect();
        for &id in &ids {
            cache.read_page(id);
        }
        assert!(cache.cached_pages() <= 1);
        cache.return_confiscated(3);
        assert_eq!(cache.confiscated_pages(), 0);
        // Cannot confiscate everything: at least one page stays usable.
        assert!(cache.confiscate(100) < 100);
    }
}
