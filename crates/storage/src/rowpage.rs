//! Slotted leaf pages for row-major components (Open and VB layouts).
//!
//! A row page stores a sorted run of `(key, record-or-anti-matter)` entries.
//! Records are serialized with the configured [`RowFormat`]; keys are always
//! serialized with the compact VB scalar encoding so that point lookups can
//! binary-search the page without touching record payloads.

use docmodel::{total_cmp, Value};
use encoding::{plain, varint, DecodeError};

use crate::rowformat::RowFormat;
use crate::Result;

/// One entry of a row page: the primary key and either a record or an
/// anti-matter marker (`None`).
pub type RowEntry = (Value, Option<Value>);

/// Encode a row page. Entries must already be sorted by key.
pub fn encode_row_page(format: RowFormat, entries: &[RowEntry], out: &mut Vec<u8>) {
    out.push(format.tag());
    plain::write_u32(out, entries.len() as u32);
    for (key, record) in entries {
        RowFormat::Vb.serialize(key, out);
        match record {
            Some(doc) => {
                out.push(1);
                let mut body = Vec::with_capacity(doc.approx_size());
                format.serialize(doc, &mut body);
                varint::write_u64(out, body.len() as u64);
                out.extend_from_slice(&body);
            }
            None => out.push(0),
        }
    }
}

/// Decode every entry of a row page.
pub fn decode_row_page(buf: &[u8]) -> Result<Vec<RowEntry>> {
    let mut pos = 0usize;
    let format = RowFormat::from_tag(
        *buf.first()
            .ok_or_else(|| DecodeError::new("empty row page"))?,
    )?;
    pos += 1;
    let count = plain::read_u32(buf, &mut pos)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let key = RowFormat::Vb.deserialize(buf, &mut pos)?;
        let flag = *buf
            .get(pos)
            .ok_or_else(|| DecodeError::new("truncated row entry"))?;
        pos += 1;
        let record = if flag == 1 {
            let len = varint::read_u64(buf, &mut pos)? as usize;
            let end = pos
                .checked_add(len)
                .ok_or_else(|| DecodeError::new("row record length overflow"))?;
            if end > buf.len() {
                return Err(DecodeError::new("truncated row record"));
            }
            let mut rpos = pos;
            let doc = format.deserialize(buf, &mut rpos)?;
            pos = end;
            Some(doc)
        } else {
            None
        };
        out.push((key, record));
    }
    Ok(out)
}

/// Binary-search a decoded page for `key`. Returns the entry if present.
pub fn lookup_in_page<'a>(entries: &'a [RowEntry], key: &Value) -> Option<&'a RowEntry> {
    entries
        .binary_search_by(|(k, _)| total_cmp(k, key))
        .ok()
        .map(|idx| &entries[idx])
}

/// Rough serialized size of one entry, used by writers to decide when a page
/// is full without encoding twice.
pub fn entry_size_estimate(format: RowFormat, entry: &RowEntry) -> usize {
    let record = match &entry.1 {
        Some(doc) => match format {
            // The Open format's offset tables and inline field names make it
            // roughly 1.3x the logical size; VB is close to the logical size.
            RowFormat::Open => doc.approx_size() * 13 / 10 + 16,
            RowFormat::Vb => doc.approx_size() + 8,
        },
        None => 2,
    };
    entry.0.approx_size() + 2 + record
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::doc;

    fn entries() -> Vec<RowEntry> {
        vec![
            (Value::Int(1), Some(doc!({"id": 1, "name": "a", "xs": [1, 2]}))),
            (Value::Int(2), None),
            (Value::Int(5), Some(doc!({"id": 5, "nested": {"k": true}}))),
        ]
    }

    #[test]
    fn roundtrip_both_formats() {
        for fmt in [RowFormat::Open, RowFormat::Vb] {
            let mut buf = Vec::new();
            encode_row_page(fmt, &entries(), &mut buf);
            let back = decode_row_page(&buf).unwrap();
            assert_eq!(back, entries());
        }
    }

    #[test]
    fn lookup_finds_records_and_tombstones() {
        let e = entries();
        assert!(lookup_in_page(&e, &Value::Int(1)).unwrap().1.is_some());
        assert!(lookup_in_page(&e, &Value::Int(2)).unwrap().1.is_none());
        assert!(lookup_in_page(&e, &Value::Int(3)).is_none());
    }

    #[test]
    fn corrupt_page_is_an_error() {
        let mut buf = Vec::new();
        encode_row_page(RowFormat::Vb, &entries(), &mut buf);
        assert!(decode_row_page(&buf[..buf.len() / 2]).is_err());
        assert!(decode_row_page(&[]).is_err());
    }

    #[test]
    fn size_estimate_is_positive_and_tracks_format() {
        let e = &entries()[0];
        let open = entry_size_estimate(RowFormat::Open, e);
        let vb = entry_size_estimate(RowFormat::Vb, e);
        assert!(open > vb);
        assert!(vb > 0);
    }
}
