//! # storage — pages, row formats, and the APAX / AMAX columnar layouts
//!
//! This crate is the on-disk half of the document store substrate:
//!
//! * [`pagestore`] — fixed-size pages with read/write accounting (the
//!   experiments report page I/O alongside wall time, since the paper's I/O
//!   savings are the mechanism behind its speedups) and a
//!   [`pagestore::BufferCache`] with the page-confiscation behaviour the
//!   AMAX writer relies on (§4.5.2);
//! * [`backend`] — the byte storage behind the page store: the in-memory
//!   simulated disk, and the file-backed backend (one page file per
//!   dataset, CRC-guarded page slots) the `persist` subsystem builds on;
//! * [`rowformat`] — the two row-major baselines: AsterixDB's schemaless
//!   recursive **Open** format (field names embedded in every record, nested
//!   values behind per-level offsets) and the **Vector-Based (VB)** format of
//!   the tuple-compactor paper (structure separated from values, written in
//!   one pass);
//! * [`rowpage`] — slotted leaf pages holding row-format records;
//! * [`apax`] — the APAX leaf-page layout (Figure 8): every column occupies a
//!   minipage inside one B+-tree leaf page, reachable through header offsets,
//!   with the page-level min/max keys stored in the header;
//! * [`amax`] — the AMAX mega-leaf layout (Figure 9): Page 0 carries the
//!   header, per-column min/max prefixes and the encoded primary keys; each
//!   column becomes a megapage spanning physical pages, written largest to
//!   smallest under an `empty-page-tolerance`;
//! * [`component`] — immutable sorted runs ("on-disk components") in any of
//!   the four layouts behind one [`component::ComponentReader`] interface:
//!   full scans with projection, ranged scans, and point lookups;
//! * [`leafcache`] — a shared, size-bounded cache of *decoded* leaves keyed
//!   by `(component id, leaf index)`, shared across snapshots and shards,
//!   that lets hot reads skip both the page reads and the decode/assembly;
//! * [`stats`] — per-component column statistics (value counts and min/max
//!   zone maps) collected at flush/merge time, persisted in the manifest,
//!   and consumed by the query planner for zone-map pruning and the
//!   cost-based scan-vs-index-probe decision.

pub mod amax;
pub mod apax;
pub mod backend;
pub mod component;
pub mod leafcache;
pub mod pagestore;
pub mod rowformat;
pub mod rowpage;
pub mod stats;

pub use backend::{FileBackend, MemoryBackend, StorageBackend};
pub use component::{ComponentDescriptor, ComponentReader, LayoutKind, LeafDescriptor};
pub use leafcache::{DecodedLeaf, LeafCache, LeafCacheHandle, LeafCacheStats, LeafPayloadKind};
pub use stats::{ColumnStats, ComponentStats};
pub use pagestore::{BufferCache, IoStats, PageId, PageStore, DEFAULT_CACHE_PAGES, PAGE_SIZE_DEFAULT};
pub use rowformat::RowFormat;

/// Error type shared by the storage readers (decode failures, corrupt pages).
pub type StorageError = encoding::DecodeError;
/// Result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
