//! End-to-end server integration tests:
//!
//! * **differential**: N concurrent pipelined connections issuing a mixed
//!   SET/GET/DEL/QUERY workload must leave the store in exactly the state a
//!   single-threaded oracle [`Datastore`] reaches with the same operations;
//! * **graceful shutdown**: SHUTDOWN mid-stream drains in-flight pipelines,
//!   and a durable store reopens with every *acknowledged* write present
//!   and nothing nobody issued;
//! * **telemetry**: wire-reported `server.*` counts equal client-side
//!   counts exactly;
//! * **SCAN**: chunked streams are strictly key-ascending with no repeats,
//!   see bounded-staleness writes between chunks, and support projections;
//! * **connection cap**: connections over the limit are refused with an
//!   error frame, and slots free up when connections close.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;

use docmodel::{parse_json, to_json, Value};
use docstore::{DatasetOptions, Datastore, Layout};
use query::{Aggregate, ExecMode, Expr, Query};
use server::resp::Frame;
use server::{CommandKind, RespClient, Server, ServerConfig};

/// Unoptimized builds run a reduced workload so tier-1 `cargo test` stays
/// fast; CI runs this suite again in `--release` at full scale.
#[cfg(debug_assertions)]
const CONNECTIONS: usize = 3;
#[cfg(not(debug_assertions))]
const CONNECTIONS: usize = 8;
#[cfg(debug_assertions)]
const KEYS_PER_CONNECTION: i64 = 60;
#[cfg(not(debug_assertions))]
const KEYS_PER_CONNECTION: i64 = 250;
/// Connections own disjoint key ranges: connection `c` owns `c*STRIDE ..`.
const STRIDE: i64 = 1_000_000;
/// Requests per pipelined burst.
const PIPELINE: usize = 32;

fn doc_json(key: i64, version: u32) -> String {
    format!(
        r#"{{"v": {version}, "num": {}, "nested": {{"tag": "t{}"}}}}"#,
        key % 977,
        key % 13
    )
}

fn test_config() -> ServerConfig {
    ServerConfig { shards: 3, ..ServerConfig::default() }
}

/// Apply one connection's deterministic script to the oracle: insert every
/// key, update every third, delete every tenth — mirroring `scripted_ops`.
fn apply_to_oracle(oracle: &Datastore, conn: usize) {
    let base = conn as i64 * STRIDE;
    for i in 0..KEYS_PER_CONNECTION {
        let key = base + i;
        let mut doc = parse_json(&doc_json(key, 1)).unwrap();
        doc.set_field("id", Value::Int(key));
        oracle.ingest("oracle", doc).unwrap();
    }
    for i in (0..KEYS_PER_CONNECTION).step_by(3) {
        let key = base + i;
        let mut doc = parse_json(&doc_json(key, 2)).unwrap();
        doc.set_field("id", Value::Int(key));
        oracle.ingest("oracle", doc).unwrap();
    }
    for i in (0..KEYS_PER_CONNECTION).step_by(10) {
        oracle.delete("oracle", Value::Int(base + i)).unwrap();
    }
}

/// What a scripted request's reply must look like. Connections own
/// disjoint key ranges and a connection's commands are ordered, so every
/// expectation is exact.
enum Expect {
    Ok,
    Int(i64),
    Null,
    /// A document whose `v` field equals this version.
    DocVersion(i64),
}

fn check_reply(reply: &Frame, expect: &Expect, context: &str) {
    match expect {
        Expect::Ok => assert_eq!(*reply, Frame::Simple("OK".into()), "{context}"),
        Expect::Int(n) => assert_eq!(*reply, Frame::Integer(*n), "{context}"),
        Expect::Null => assert_eq!(*reply, Frame::Null, "{context}"),
        Expect::DocVersion(v) => {
            let doc = parse_json(reply.as_text().unwrap_or_else(|| panic!("{context}: miss")))
                .unwrap();
            assert_eq!(doc.get_field("v"), Some(&Value::Int(*v)), "{context}");
        }
    }
}

/// The same script as wire requests, in pipelined bursts, with GETs mixed
/// in whose replies are checked against the connection's own program order.
fn run_wire_script(client: &mut RespClient, conn: usize) {
    let base = conn as i64 * STRIDE;
    let mut batch: Vec<(Vec<String>, Expect)> = Vec::new();
    fn flush(client: &mut RespClient, batch: &mut Vec<(Vec<String>, Expect)>) {
        if batch.is_empty() {
            return;
        }
        let requests: Vec<Vec<String>> = batch.iter().map(|(req, _)| req.clone()).collect();
        let replies = client.pipeline(&requests).unwrap();
        assert_eq!(replies.len(), batch.len());
        for (reply, (req, expect)) in replies.iter().zip(batch.iter()) {
            check_reply(reply, expect, &req.join(" "));
        }
        batch.clear();
    }
    let push = |client: &mut RespClient,
                    batch: &mut Vec<(Vec<String>, Expect)>,
                    req: Vec<String>,
                    expect: Expect| {
        batch.push((req, expect));
        if batch.len() >= PIPELINE {
            flush(client, batch);
        }
    };

    for i in 0..KEYS_PER_CONNECTION {
        let key = base + i;
        push(
            client,
            &mut batch,
            vec!["SET".into(), key.to_string(), doc_json(key, 1)],
            Expect::Ok,
        );
        if i % 7 == 0 {
            // Read-your-writes within one connection.
            push(
                client,
                &mut batch,
                vec!["GET".into(), key.to_string()],
                Expect::DocVersion(1),
            );
        }
    }
    for i in (0..KEYS_PER_CONNECTION).step_by(3) {
        let key = base + i;
        push(
            client,
            &mut batch,
            vec!["SET".into(), key.to_string(), doc_json(key, 2)],
            Expect::Ok,
        );
    }
    for i in (0..KEYS_PER_CONNECTION).step_by(10) {
        let key = base + i;
        push(client, &mut batch, vec!["DEL".into(), key.to_string()], Expect::Int(1));
    }
    // Post-script point checks: an updated key, a deleted key.
    push(
        client,
        &mut batch,
        vec!["GET".into(), (base + 3).to_string()],
        Expect::DocVersion(2),
    );
    push(client, &mut batch, vec!["GET".into(), base.to_string()], Expect::Null);
    flush(client, &mut batch);
}

/// Build the in-process oracle store.
fn oracle_store() -> Datastore {
    let mut oracle = Datastore::new();
    oracle
        .create_dataset("oracle", DatasetOptions::new(Layout::Amax).shards(3))
        .unwrap();
    oracle
}

#[test]
fn concurrent_mixed_workload_matches_oracle() {
    let handle = Server::start(test_config()).unwrap();
    let addr = handle.addr();

    // Wire side: CONNECTIONS concurrent pipelined clients.
    std::thread::scope(|scope| {
        for conn in 0..CONNECTIONS {
            scope.spawn(move || {
                let mut client = RespClient::connect(addr).unwrap();
                run_wire_script(&mut client, conn);
            });
        }
    });

    // Oracle side: same scripts, single-threaded.
    let oracle = oracle_store();
    for conn in 0..CONNECTIONS {
        apply_to_oracle(&oracle, conn);
    }

    // Full-state differential: the wire SCAN must equal the oracle's scan.
    let mut client = RespClient::connect(addr).unwrap();
    let wire_entries = client.scan_all(64).unwrap();
    let mut oracle_entries = Vec::new();
    for entry in oracle.scan_cursor("oracle", None).unwrap() {
        let (key, doc) = entry.unwrap();
        oracle_entries.push((key, doc));
    }
    assert_eq!(wire_entries.len(), oracle_entries.len(), "live record counts diverge");
    for ((wire_key, wire_doc), (oracle_key, oracle_doc)) in
        wire_entries.iter().zip(oracle_entries.iter())
    {
        assert_eq!(parse_json(wire_key).unwrap(), *oracle_key);
        assert_eq!(parse_json(wire_doc).unwrap(), *oracle_doc);
    }

    // Query differential: grouped aggregate over the wire == oracle.
    let spec = r#"{"select": [{"agg": "count"}, {"agg": "sum", "path": "num"}],
                   "group_by": "nested.tag", "order_desc_by": 0, "limit": 5}"#;
    let wire_rows = match client.query(spec).unwrap() {
        Frame::Array(rows) => rows,
        other => panic!("QUERY must return an array, got {other:?}"),
    };
    let oracle_query = Query::new()
        .aggregate(Aggregate::Count)
        .aggregate(Aggregate::Sum("num".into()))
        .group_by("nested.tag")
        .order_desc_by(0)
        .with_limit(5);
    let oracle_rows = oracle.query("oracle", &oracle_query, ExecMode::Compiled).unwrap();
    assert_eq!(wire_rows.len(), oracle_rows.len());
    for (wire_row, oracle_row) in wire_rows.iter().zip(oracle_rows.iter()) {
        let parsed = parse_json(wire_row.as_text().expect("row is bulk JSON")).unwrap();
        assert_eq!(
            parsed.get_field("group"),
            Some(oracle_row.group.as_ref().unwrap_or(&Value::Null))
        );
        assert_eq!(
            parsed.get_field("aggs"),
            Some(&Value::Array(oracle_row.aggs.clone()))
        );
    }

    // Filtered query differential (interpreted mode, filter pushdown).
    let spec = r#"{"select": [{"agg": "count"}],
                   "filter": {"and": [{"ge": {"path": "num", "value": 100}},
                                      {"exists": "nested.tag"}]},
                   "mode": "interpreted"}"#;
    let wire_rows = match client.query(spec).unwrap() {
        Frame::Array(rows) => rows,
        other => panic!("QUERY must return an array, got {other:?}"),
    };
    let oracle_query = Query::new()
        .aggregate(Aggregate::Count)
        .with_filter(Expr::and([
            Expr::ge("num", Value::Int(100)),
            Expr::exists("nested.tag"),
        ]));
    let oracle_rows = oracle.query("oracle", &oracle_query, ExecMode::Interpreted).unwrap();
    let parsed = parse_json(wire_rows[0].as_text().unwrap()).unwrap();
    assert_eq!(parsed.get_field("aggs"), Some(&Value::Array(oracle_rows[0].aggs.clone())));
}

#[test]
fn shutdown_drains_acknowledged_writes_to_durable_storage() {
    let dir = std::env::temp_dir()
        .join(format!("server-tests-{}", std::process::id()))
        .join("shutdown-drain");
    let _ = std::fs::remove_dir_all(&dir);

    let config = ServerConfig {
        durability_dir: Some(dir.clone()),
        shards: 2,
        sync_every: 8,
        ..ServerConfig::default()
    };
    let handle = Server::start(config).unwrap();
    let addr = handle.addr();

    // Every key any client acknowledged (MSET replied) and every key issued.
    let acked = Mutex::new(Vec::<i64>::new());
    let issued_watermark: Vec<AtomicI64> =
        (0..CONNECTIONS).map(|_| AtomicI64::new(-1)).collect();

    std::thread::scope(|scope| {
        for (conn, watermark) in issued_watermark.iter().enumerate() {
            let acked = &acked;
            scope.spawn(move || {
                let mut client = match RespClient::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return,
                };
                let base = conn as i64 * STRIDE;
                // Stream batches until the server goes away mid-stream.
                for batch in 0..i64::MAX {
                    let lo = base + batch * 4;
                    watermark.store(lo + 3, Ordering::SeqCst);
                    let pairs: Vec<(String, String)> = (lo..lo + 4)
                        .map(|k| (k.to_string(), doc_json(k, 1)))
                        .collect();
                    let borrowed: Vec<(&str, &str)> =
                        pairs.iter().map(|(k, d)| (k.as_str(), d.as_str())).collect();
                    match client.mset(&borrowed) {
                        Ok(Frame::Integer(4)) => {
                            acked.lock().unwrap().extend(lo..lo + 4);
                        }
                        Ok(other) => panic!("unexpected MSET reply {other:?}"),
                        Err(_) => return, // server shut down mid-stream
                    }
                    if batch > 10_000 {
                        panic!("shutdown never arrived");
                    }
                }
            });
        }
        // Let the writers get going, then shut down over the wire.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let mut admin = RespClient::connect(addr).unwrap();
        assert_eq!(admin.shutdown().unwrap(), Frame::Simple("OK".into()));
    });
    drop(handle); // join the accept thread; store synced

    // Reopen: recovered keys ⊇ acknowledged keys, ⊆ issued keys.
    // (open_dataset recovers WAL-only state; the workload may never have
    // flushed a component.)
    let mut store = Datastore::new();
    store
        .open_dataset("default", &dir, DatasetOptions::new(Layout::Amax).shards(2))
        .unwrap();
    let mut recovered = std::collections::HashSet::new();
    for entry in store.scan_cursor("default", None).unwrap() {
        let (key, _) = entry.unwrap();
        match key {
            Value::Int(k) => {
                recovered.insert(k);
            }
            other => panic!("unexpected key {other:?}"),
        }
    }
    let acked = acked.into_inner().unwrap();
    assert!(!acked.is_empty(), "no batch was ever acknowledged");
    for key in &acked {
        assert!(
            recovered.contains(key),
            "acknowledged key {key} lost after reopen ({} acked, {} recovered)",
            acked.len(),
            recovered.len()
        );
    }
    for key in &recovered {
        let conn = (key / STRIDE) as usize;
        assert!(
            *key <= issued_watermark[conn].load(Ordering::SeqCst),
            "recovered key {key} was never issued"
        );
    }
}

#[test]
fn wire_metrics_match_client_side_counts_exactly() {
    let handle = Server::start(test_config()).unwrap();
    let mut client = RespClient::connect(handle.addr()).unwrap();

    const SETS: i64 = 5;
    const GETS: i64 = 3;
    const DELS: i64 = 2;
    const PINGS: i64 = 4;
    for i in 0..SETS {
        client.set(&i.to_string(), &doc_json(i, 1)).unwrap();
    }
    for i in 0..GETS {
        client.get(&i.to_string()).unwrap();
    }
    for i in 0..DELS {
        client.del(&[&i.to_string()]).unwrap();
    }
    for _ in 0..PINGS {
        client.ping().unwrap();
    }
    client.query(r#"{"select": [{"agg": "count"}]}"#).unwrap();
    client.command(&["BOGUS"]).unwrap(); // one error, one 'other'

    let reply = client.metrics("JSON").unwrap();
    let snap = parse_json(reply.as_text().expect("METRICS JSON is bulk text")).unwrap();
    let counter = |name: &str| -> i64 {
        let counters = snap.get_field("counters").expect("counters object");
        counters
            .get_field(name)
            .unwrap_or_else(|| panic!("counter {name} missing: {}", to_json(&snap)))
            .as_int()
            .expect("counter is an integer")
    };
    assert_eq!(counter("server.requests.set"), SETS);
    assert_eq!(counter("server.requests.get"), GETS);
    assert_eq!(counter("server.requests.del"), DELS);
    assert_eq!(counter("server.requests.ping"), PINGS);
    assert_eq!(counter("server.requests.query"), 1);
    assert_eq!(counter("server.requests.other"), 1);
    assert_eq!(counter("server.errors"), 1);
    // The METRICS request itself is counted before it renders the snapshot.
    assert_eq!(counter("server.requests.metrics"), 1);
    assert_eq!(counter("server.requests"), SETS + GETS + DELS + PINGS + 1 + 1 + 1);

    // The server-side registry agrees with the wire.
    assert_eq!(handle.metrics().requests_for(CommandKind::Set), SETS as u64);
    assert_eq!(handle.metrics().requests_for(CommandKind::Other), 1);

    // Engine metrics are in the same snapshot (merged view).
    assert!(
        snap.get_field("dataset").is_some(),
        "engine snapshot fields missing: {}",
        to_json(&snap)
    );
}

#[test]
fn scan_streams_in_key_order_with_bounded_staleness() {
    let handle = Server::start(test_config()).unwrap();
    let mut writer = RespClient::connect(handle.addr()).unwrap();
    let n: i64 = if cfg!(debug_assertions) { 120 } else { 600 };
    let pairs: Vec<(String, String)> =
        (0..n).map(|k| (k.to_string(), doc_json(k, 1))).collect();
    for chunk in pairs.chunks(50) {
        let borrowed: Vec<(&str, &str)> =
            chunk.iter().map(|(k, d)| (k.as_str(), d.as_str())).collect();
        writer.mset(&borrowed).unwrap();
    }

    // Chunked scan with writes landing between chunks.
    let mut scanner = RespClient::connect(handle.addr()).unwrap();
    let (mut cursor, first) = scanner.scan_step(0, 10).unwrap();
    assert_eq!(first.len(), 10);
    let mut seen: Vec<i64> = first
        .iter()
        .map(|(k, _)| k.parse::<i64>().unwrap())
        .collect();

    // A delete behind the scan position, an update and an insert ahead of it.
    writer.del(&["3"]).unwrap();
    writer.set("500000", &doc_json(500_000, 7)).unwrap();
    writer.set(&(n - 1).to_string(), &doc_json(n - 1, 7)).unwrap();

    let mut updated_seen = false;
    let mut inserted_seen = false;
    while cursor != 0 {
        let (next, chunk) = scanner.scan_step(cursor, 10).unwrap();
        cursor = next;
        for (key, doc) in &chunk {
            let key: i64 = key.parse().unwrap();
            seen.push(key);
            let doc = parse_json(doc).unwrap();
            if key == 500_000 {
                inserted_seen = true;
                assert_eq!(doc.get_field("v"), Some(&Value::Int(7)));
            }
            if key == n - 1 {
                updated_seen = true;
                assert_eq!(
                    doc.get_field("v"),
                    Some(&Value::Int(7)),
                    "bounded staleness: refreshed cursor sees the update"
                );
            }
        }
    }
    assert!(seen.windows(2).all(|w| w[0] < w[1]), "keys must be strictly ascending");
    assert!(inserted_seen, "insert ahead of the scan position must appear");
    assert!(updated_seen, "update ahead of the scan position must be visible");

    // Projection scans always carry the requested paths. (Projection is
    // physical I/O pruning: flushed columnar components read only the
    // projected columns' pages, while memtable-resident records arrive
    // whole — so absence of other fields is not asserted here.)
    let reply = scanner
        .command(&["SCAN", "0", "COUNT", "5", "PATHS", "nested.tag"])
        .unwrap();
    let entries = reply.as_array().unwrap()[1].as_array().unwrap();
    assert_eq!(entries.len(), 5);
    for entry in entries {
        let doc = parse_json(entry.as_array().unwrap()[1].as_text().unwrap()).unwrap();
        let tag = doc.get_field("nested").and_then(|n| n.get_field("tag"));
        assert!(
            matches!(tag, Some(Value::String(_))),
            "projected path must be present: {doc:?}"
        );
    }
}

#[test]
fn connections_over_the_cap_are_refused_until_a_slot_frees() {
    let config = ServerConfig { max_connections: 2, ..test_config() };
    let handle = Server::start(config).unwrap();
    let addr = handle.addr();

    let mut a = RespClient::connect(addr).unwrap();
    let mut b = RespClient::connect(addr).unwrap();
    assert_eq!(a.ping().unwrap(), Frame::Simple("PONG".into()));
    assert_eq!(b.ping().unwrap(), Frame::Simple("PONG".into()));

    // The third connection gets an error frame (or a closed socket).
    let mut c = RespClient::connect(addr).unwrap();
    match c.ping() {
        Ok(Frame::Error(msg)) => assert!(msg.contains("max connections"), "{msg}"),
        Ok(other) => panic!("over-cap connection must be refused, got {other:?}"),
        Err(_) => {} // refusal frame raced the close; either is a refusal
    }
    assert!(handle.metrics().connections_rejected.get() >= 1);

    // Free a slot; a new connection is (eventually) served.
    drop(a);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let mut d = RespClient::connect(addr).unwrap();
        if let Ok(Frame::Simple(p)) = d.ping() {
            assert_eq!(p, "PONG");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slot never freed after closing a connection"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}
