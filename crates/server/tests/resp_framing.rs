//! RESP framing robustness: torn buffers split at every byte boundary,
//! malformed frames, and oversized declarations — against both the decoder
//! and a live server socket. None of these may panic, allocate unboundedly,
//! or leave the server wedged.

use std::io::{Read, Write};
use std::net::TcpStream;

use server::resp::{self, Frame, Limits, ProtocolError};
use server::{RespClient, Server, ServerConfig};

fn test_config() -> ServerConfig {
    ServerConfig { shards: 2, ..ServerConfig::default() }
}

/// A pipeline of requests, decoded from a buffer that grows one byte at a
/// time: every prefix must either yield exactly the complete requests it
/// contains or ask for more bytes — never an error, never a partial
/// consume.
#[test]
fn torn_pipelines_decode_at_every_byte_boundary() {
    let mut wire = Vec::new();
    resp::encode_request(&["SET", "1", r#"{"v": 1}"#], &mut wire);
    resp::encode_request(&["GET", "1"], &mut wire);
    resp::encode_request(&["DEL", "1", "2", "3"], &mut wire);
    let limits = Limits::default();

    // Expected full parse.
    let mut expected = Vec::new();
    let mut pos = 0;
    while let Some((args, next)) = resp::decode_request(&wire, pos, &limits).unwrap() {
        expected.push(args);
        pos = next;
        if pos == wire.len() {
            break;
        }
    }
    assert_eq!(expected.len(), 3);

    // Feed the wire bytes one at a time, draining complete requests as they
    // appear; the result must be the same three requests regardless of how
    // the bytes were torn.
    let mut buf: Vec<u8> = Vec::new();
    let mut pos = 0;
    let mut got = Vec::new();
    for &byte in &wire {
        buf.push(byte);
        while let Some((args, next)) = resp::decode_request(&buf, pos, &limits).unwrap() {
            got.push(args);
            pos = next;
        }
    }
    assert_eq!(got, expected);
}

/// Every strict prefix of a single request is "incomplete", not an error,
/// and decoding never consumes bytes it didn't use.
#[test]
fn every_strict_prefix_is_incomplete() {
    let mut wire = Vec::new();
    resp::encode_request(&["MSET", "1", r#"{"a": [1, 2, 3]}"#, "2", "{}"], &mut wire);
    let limits = Limits::default();
    for cut in 0..wire.len() {
        assert_eq!(
            resp::decode_request(&wire[..cut], 0, &limits).unwrap(),
            None,
            "prefix of {cut}/{} bytes must be incomplete",
            wire.len()
        );
    }
    let (args, used) = resp::decode_request(&wire, 0, &limits).unwrap().unwrap();
    assert_eq!(args.len(), 5);
    assert_eq!(used, wire.len());
}

/// Oversized declared lengths are rejected from the header alone — before
/// any payload is buffered or allocated.
#[test]
fn oversized_declarations_reject_without_buffering() {
    let limits = Limits { max_bulk_len: 1 << 10, max_array_len: 8, ..Limits::default() };
    assert_eq!(
        resp::decode(b"$1073741824\r\n", 0, &limits).unwrap_err(),
        ProtocolError::BulkTooLarge { declared: 1 << 30, limit: 1 << 10 }
    );
    assert_eq!(
        resp::decode(b"*1000000\r\n", 0, &limits).unwrap_err(),
        ProtocolError::ArrayTooLarge { declared: 1_000_000, limit: 8 }
    );
    // Inside a request array too.
    assert!(matches!(
        resp::decode_request(b"*2\r\n$3\r\nGET\r\n$999999999\r\n", 0, &limits).unwrap_err(),
        ProtocolError::BulkTooLarge { .. }
    ));
}

/// A live server fed a request one byte per write still answers correctly.
#[test]
fn server_survives_byte_at_a_time_writes() {
    let handle = Server::start(test_config()).unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    let mut wire = Vec::new();
    resp::encode_request(&["SET", "7", r#"{"v": 42}"#], &mut wire);
    resp::encode_request(&["GET", "7"], &mut wire);
    for &byte in &wire {
        stream.write_all(&[byte]).unwrap();
    }

    let mut client_side = RespClient::connect(handle.addr()).unwrap();
    // Read both replies off the raw stream.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let limits = Limits::default();
    let mut frames = Vec::new();
    while frames.len() < 2 {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed before replying");
        buf.extend_from_slice(&chunk[..n]);
        let mut pos = 0;
        frames.clear();
        while let Some((frame, next)) = resp::decode(&buf, pos, &limits).unwrap() {
            frames.push(frame);
            pos = next;
            if pos == buf.len() {
                break;
            }
        }
    }
    assert_eq!(frames[0], Frame::Simple("OK".into()));
    let doc = docmodel::parse_json(frames[1].as_text().expect("bulk reply")).unwrap();
    assert_eq!(doc.get_field("v"), Some(&docmodel::Value::Int(42)));
    assert_eq!(doc.get_field("id"), Some(&docmodel::Value::Int(7)));

    // And the server is still healthy for other clients.
    assert_eq!(client_side.ping().unwrap(), Frame::Simple("PONG".into()));
}

/// Malformed frames get one error frame, then the connection closes — and
/// the server keeps serving everyone else.
#[test]
fn malformed_frames_get_an_error_frame_then_close() {
    let handle = Server::start(test_config()).unwrap();
    // Each case must be a *framing* error (bare text lines are valid inline
    // commands, so they don't qualify — they get a normal error reply).
    for garbage in [b"*abc\r\n".as_slice(), b"*1\r\n$-7\r\n", b"*1\r\n:12\r\n"] {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(garbage).unwrap();
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).unwrap(); // server closes after the error
        let (frame, _) = resp::decode(&reply, 0, &Limits::default()).unwrap().unwrap();
        match frame {
            Frame::Error(msg) => assert!(msg.starts_with("ERR"), "{msg}"),
            other => panic!("expected an error frame for {garbage:?}, got {other:?}"),
        }
    }
    let mut client = RespClient::connect(handle.addr()).unwrap();
    assert_eq!(client.ping().unwrap(), Frame::Simple("PONG".into()));
}

/// An adversarial bulk header larger than the configured cap is refused
/// with an error frame as soon as the header arrives — the payload is never
/// awaited, so memory stays bounded.
#[test]
fn oversized_bulk_header_is_refused_over_the_wire() {
    let config = ServerConfig {
        limits: Limits { max_bulk_len: 4 << 10, ..Limits::default() },
        ..test_config()
    };
    let handle = Server::start(config).unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // Header declares 512 MiB; we never send the payload.
    stream.write_all(b"*3\r\n$3\r\nSET\r\n$1\r\n1\r\n$536870912\r\n").unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).unwrap();
    let (frame, _) = resp::decode(&reply, 0, &Limits::default()).unwrap().unwrap();
    let msg = frame.as_error().expect("error frame").to_string();
    assert!(msg.contains("exceeds"), "{msg}");

    // Requests within the limit still work on a fresh connection.
    let mut client = RespClient::connect(handle.addr()).unwrap();
    assert_eq!(
        client.set("1", r#"{"v": 1}"#).unwrap(),
        Frame::Simple("OK".into())
    );
}
