//! A minimal blocking RESP client: one TCP connection, synchronous
//! request/reply, plus explicit pipelining (send N requests in one write,
//! then read N replies). Used by the integration tests, the quickstart
//! example, and the load-generator benchmark.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::resp::{self, Frame, Limits};

/// A blocking RESP connection.
pub struct RespClient {
    stream: TcpStream,
    limits: Limits,
    /// Unparsed reply bytes (a read may return more than one reply).
    buf: Vec<u8>,
    pos: usize,
}

impl RespClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<RespClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(RespClient { stream, limits: Limits::default(), buf: Vec::new(), pos: 0 })
    }

    /// Replace the decoder limits (e.g. to accept larger scan chunks).
    pub fn with_limits(mut self, limits: Limits) -> RespClient {
        self.limits = limits;
        self
    }

    /// Bound how long reads may block before erroring out.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Issue one command and wait for its reply.
    pub fn command<A: AsRef<[u8]>>(&mut self, args: &[A]) -> std::io::Result<Frame> {
        let mut wire = Vec::new();
        resp::encode_request(args, &mut wire);
        self.stream.write_all(&wire)?;
        self.read_reply()
    }

    /// Pipeline: write every request in one burst, then collect exactly one
    /// reply per request, in order.
    pub fn pipeline<A: AsRef<[u8]>>(
        &mut self,
        requests: &[Vec<A>],
    ) -> std::io::Result<Vec<Frame>> {
        let mut wire = Vec::new();
        for args in requests {
            resp::encode_request(args, &mut wire);
        }
        self.stream.write_all(&wire)?;
        let mut replies = Vec::with_capacity(requests.len());
        for _ in 0..requests.len() {
            replies.push(self.read_reply()?);
        }
        Ok(replies)
    }

    /// Read one complete reply frame, buffering torn frames across reads.
    fn read_reply(&mut self) -> std::io::Result<Frame> {
        let mut chunk = [0u8; 16 << 10];
        loop {
            match resp::decode(&self.buf, self.pos, &self.limits) {
                Ok(Some((frame, next))) => {
                    self.pos = next;
                    if self.pos == self.buf.len() {
                        self.buf.clear();
                        self.pos = 0;
                    }
                    return Ok(frame);
                }
                Ok(None) => {}
                Err(e) => {
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e))
                }
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-reply",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    // ---- convenience wrappers -------------------------------------------

    /// `PING`.
    pub fn ping(&mut self) -> std::io::Result<Frame> {
        self.command(&["PING"])
    }

    /// `SET key doc` — document put; `doc` is a JSON object.
    pub fn set(&mut self, key: &str, doc: &str) -> std::io::Result<Frame> {
        self.command(&["SET", key, doc])
    }

    /// `GET key` — `Bulk(json)` for a hit, `Null` for a miss.
    pub fn get(&mut self, key: &str) -> std::io::Result<Frame> {
        self.command(&["GET", key])
    }

    /// `DEL key...` — `Integer(existing keys deleted)`.
    pub fn del(&mut self, keys: &[&str]) -> std::io::Result<Frame> {
        let mut args = vec!["DEL"];
        args.extend_from_slice(keys);
        self.command(&args)
    }

    /// `MSET k1 d1 k2 d2 ...` — group-committed batch ingest;
    /// `Integer(records)` acknowledges a durable batch.
    pub fn mset(&mut self, pairs: &[(&str, &str)]) -> std::io::Result<Frame> {
        let mut args = vec!["MSET".to_string()];
        for (k, d) in pairs {
            args.push((*k).to_string());
            args.push((*d).to_string());
        }
        self.command(&args)
    }

    /// `QUERY spec` — see [`crate::queryspec`] for the spec grammar.
    pub fn query(&mut self, spec: &str) -> std::io::Result<Frame> {
        self.command(&["QUERY", spec])
    }

    /// One `SCAN` step. Returns `(next_cursor, entries)` where entries are
    /// `(key_json, doc_json)` pairs and a zero `next_cursor` ends the scan.
    pub fn scan_step(
        &mut self,
        cursor: u64,
        count: usize,
    ) -> std::io::Result<(u64, Vec<(String, String)>)> {
        let reply =
            self.command(&["SCAN".to_string(), cursor.to_string(), "COUNT".into(), count.to_string()])?;
        parse_scan_reply(&reply)
    }

    /// Drain a full `SCAN` stream into `(key_json, doc_json)` pairs, one
    /// chunk of `count` documents per round trip.
    pub fn scan_all(&mut self, count: usize) -> std::io::Result<Vec<(String, String)>> {
        let mut entries = Vec::new();
        let mut cursor = 0u64;
        loop {
            let (next, mut chunk) = self.scan_step(cursor, count)?;
            entries.append(&mut chunk);
            if next == 0 {
                return Ok(entries);
            }
            cursor = next;
        }
    }

    /// `METRICS [TEXT|JSON]` — the merged engine + server snapshot.
    pub fn metrics(&mut self, format: &str) -> std::io::Result<Frame> {
        self.command(&["METRICS", format])
    }

    /// `INFO`.
    pub fn info(&mut self) -> std::io::Result<Frame> {
        self.command(&["INFO"])
    }

    /// `HEALTH`.
    pub fn health(&mut self) -> std::io::Result<Frame> {
        self.command(&["HEALTH"])
    }

    /// `SHUTDOWN` — ask the server to drain and stop.
    pub fn shutdown(&mut self) -> std::io::Result<Frame> {
        self.command(&["SHUTDOWN"])
    }
}

/// Split a `SCAN` reply (`[cursor, [[key, doc], ...]]`) into its parts.
fn parse_scan_reply(reply: &Frame) -> std::io::Result<(u64, Vec<(String, String)>)> {
    let invalid = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    if let Frame::Error(e) = reply {
        return Err(std::io::Error::other(e.clone()));
    }
    let parts = reply.as_array().ok_or_else(|| invalid("SCAN reply is not an array"))?;
    let [cursor, entries] = parts else {
        return Err(invalid("SCAN reply must have two elements"));
    };
    let cursor = cursor
        .as_text()
        .and_then(|t| t.parse::<u64>().ok())
        .ok_or_else(|| invalid("SCAN cursor is not an integer"))?;
    let entries = entries.as_array().ok_or_else(|| invalid("SCAN entries are not an array"))?;
    let mut out = Vec::with_capacity(entries.len());
    for entry in entries {
        let pair = entry.as_array().ok_or_else(|| invalid("SCAN entry is not a pair"))?;
        let [key, doc] = pair else {
            return Err(invalid("SCAN entry must be a [key, doc] pair"));
        };
        let key = key.as_text().ok_or_else(|| invalid("SCAN key is not text"))?;
        let doc = doc.as_text().ok_or_else(|| invalid("SCAN doc is not text"))?;
        out.push((key.to_string(), doc.to_string()));
    }
    Ok((cursor, out))
}
