//! The TCP server: a std-only, thread-per-connection RESP front-end over a
//! [`Datastore`].
//!
//! ## Threading model
//!
//! [`Server::start`] opens (or creates) the dataset, binds the listener,
//! and spawns one **accept thread**. The accept thread runs a nonblocking
//! accept loop (sleeping a few milliseconds when idle so it notices the
//! shutdown flag promptly) and spawns one **connection thread** per
//! accepted socket, up to [`ServerConfig::max_connections`]; sockets over
//! the cap get an error frame and an immediate close. All threads share one
//! immutable [`Datastore`] (every data-plane operation takes `&self`; the
//! engine's shards do their own internal locking) and one
//! [`ServerMetrics`] registry.
//!
//! ## Pipelining and backpressure
//!
//! A connection thread reads into a growable buffer and services **every**
//! complete request buffered so far before reading again, so a pipeline of
//! N commands costs one read/write round, not N. Replies accumulate in an
//! output buffer that is flushed with a blocking `write_all` whenever it
//! crosses [`FLUSH_THRESHOLD`] (and at the end of every service round):
//! a slow reader therefore blocks its own connection thread — per-connection
//! backpressure — without growing the buffer and without affecting other
//! connections. Torn frames (a request split across reads at any byte
//! boundary) simply wait for more bytes; malformed or over-limit frames get
//! one error frame and the connection is closed, since framing is lost.
//!
//! ## Graceful shutdown
//!
//! `SHUTDOWN` (or [`ServerHandle::shutdown`]) sets a flag. The accept loop
//! stops accepting and each connection finishes the requests already
//! buffered, flushes its replies, and closes. The accept thread then joins
//! every connection thread and syncs the dataset, so **every acknowledged
//! write is durable** when [`ServerHandle::join`] returns: a reopened store
//! contains at least every write whose reply reached a client, and no write
//! nobody issued.

use std::collections::HashMap;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use docmodel::{parse_json, to_json, Path, Value};
use docstore::{DatasetOptions, Datastore, Layout};
use query::QueryRow;

use crate::metrics::{CommandKind, ServerMetrics};
use crate::queryspec::parse_query_spec;
use crate::resp::{self, Frame, Limits};

/// Flush the output buffer once it holds this many bytes, bounding
/// per-connection reply memory for large pipelines.
pub const FLUSH_THRESHOLD: usize = 64 << 10;

/// How long a connection thread blocks in `read` before re-checking the
/// shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Idle sleep of the nonblocking accept loop.
const ACCEPT_IDLE: Duration = Duration::from_millis(5);

/// Documents a single `SCAN` reply carries when no `COUNT` is given.
const DEFAULT_SCAN_COUNT: usize = 100;

/// Open streaming cursors one connection may hold.
const MAX_CURSORS_PER_CONNECTION: usize = 64;

/// Everything needed to start a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `"127.0.0.1:6399"` (port `0` picks a free one).
    pub addr: String,
    /// Dataset name served over the wire.
    pub dataset: String,
    /// Storage layout for a freshly created dataset.
    pub layout: Layout,
    /// Hash partitions of the dataset.
    pub shards: usize,
    /// Durability root: `Some(dir)` opens a durable dataset (WAL +
    /// manifests) under `dir`, `None` serves an in-memory store.
    pub durability_dir: Option<PathBuf>,
    /// Connections served concurrently; further ones are rejected with an
    /// error frame.
    pub max_connections: usize,
    /// RESP decoder hardening limits.
    pub limits: Limits,
    /// Primary-key field of ingested documents.
    pub key_field: String,
    /// Run flushes/merges on the store's background worker pool.
    pub background: bool,
    /// `MSET` group-commit interval: WAL fsync every this many records
    /// (and once per batch).
    pub sync_every: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            dataset: "default".to_string(),
            layout: Layout::Amax,
            shards: 4,
            durability_dir: None,
            max_connections: 64,
            limits: Limits::default(),
            key_field: "id".to_string(),
            background: false,
            sync_every: 64,
        }
    }
}

/// Why the server failed to start or serve.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Storage-engine failure.
    Store(docstore::Error),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "io: {e}"),
            ServerError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> ServerError {
        ServerError::Io(e)
    }
}

impl From<docstore::Error> for ServerError {
    fn from(e: docstore::Error) -> ServerError {
        ServerError::Store(e)
    }
}

/// State shared by the accept thread and every connection thread.
struct Shared {
    store: Datastore,
    dataset: String,
    key_field: String,
    sync_every: usize,
    limits: Limits,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    max_connections: usize,
}

/// The server factory; see the module docs for the runtime model.
pub struct Server;

impl Server {
    /// Open (or create) the configured dataset, bind the listener, and
    /// spawn the accept thread. Returns immediately; the handle exposes the
    /// bound address and controls shutdown.
    pub fn start(config: ServerConfig) -> Result<ServerHandle, ServerError> {
        let mut store = Datastore::new();
        let options = DatasetOptions::new(config.layout)
            .key(config.key_field.clone())
            .shards(config.shards)
            .background(config.background);
        match &config.durability_dir {
            // open_dataset creates the directory on first use and recovers
            // it (manifest + WAL replay) on every later one.
            Some(dir) => store.open_dataset(&config.dataset, dir, options)?,
            None => store.create_dataset(&config.dataset, options)?,
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            store,
            dataset: config.dataset,
            key_field: config.key_field,
            sync_every: config.sync_every.max(1),
            limits: config.limits,
            metrics: ServerMetrics::new(),
            shutdown: AtomicBool::new(false),
            max_connections: config.max_connections.max(1),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("resp-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(ServerError::Io)?;
        Ok(ServerHandle { addr, shared, accept_thread: Some(accept_thread) })
    }
}

/// A running server: the bound address plus shutdown/join controls.
/// Dropping the handle shuts the server down and joins its threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared wire-metrics registry (test/bench introspection).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Request a graceful shutdown (idempotent, non-blocking): stop
    /// accepting, let connections drain, sync the store.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// `true` once a shutdown has been requested (via this handle or a
    /// wire `SHUTDOWN`).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Block until the accept thread (and with it every connection thread)
    /// has exited and the store is synced. Call [`ServerHandle::shutdown`]
    /// first, or wait for a wire `SHUTDOWN`.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                connections.retain(|h| !h.is_finished());
                if shared.metrics.active_connections() >= shared.max_connections as u64 {
                    shared.metrics.connections_rejected.incr();
                    reject(stream);
                    continue;
                }
                shared.metrics.connection_opened();
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("resp-conn".to_string())
                    .spawn(move || serve_connection(stream, conn_shared));
                match spawned {
                    Ok(handle) => connections.push(handle),
                    Err(_) => shared.metrics.connection_closed(),
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_IDLE),
            Err(_) => std::thread::sleep(ACCEPT_IDLE),
        }
    }
    // Drain: connections notice the flag within one read timeout, finish
    // the requests they have buffered, flush, and exit.
    for handle in connections {
        let _ = handle.join();
    }
    // Every reply already reached (or is in the kernel buffer of) its
    // client; make the acknowledged writes durable.
    let _ = shared.store.sync(&shared.dataset);
}

/// Refuse a connection over the cap: one error frame, then close.
fn reject(mut stream: TcpStream) {
    let mut out = Vec::new();
    resp::encode(&Frame::error("max connections reached"), &mut out);
    let _ = stream.write_all(&out);
}

/// Per-connection command state: the open `SCAN` streams.
#[derive(Default)]
struct ConnState {
    cursors: HashMap<u64, docstore::DocCursor>,
    next_cursor_id: u64,
}

fn serve_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut conn = ConnState::default();
    let mut in_buf: Vec<u8> = Vec::new();
    let mut pos = 0usize;
    let mut out: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 << 10];
    'conn: loop {
        // Service every complete request already buffered (pipelining).
        loop {
            match resp::decode_request(&in_buf, pos, &shared.limits) {
                Ok(Some((args, next))) => {
                    pos = next;
                    if args.is_empty() {
                        continue; // blank inline line
                    }
                    let started = Instant::now();
                    let kind = CommandKind::classify(&args[0]);
                    shared.metrics.record_request(kind);
                    let reply = dispatch(&shared, &mut conn, kind, &args);
                    if matches!(reply, Frame::Error(_)) {
                        shared.metrics.errors.incr();
                    }
                    resp::encode(&reply, &mut out);
                    shared
                        .metrics
                        .record_latency(kind, started.elapsed().as_micros() as u64);
                    if out.len() >= FLUSH_THRESHOLD && flush(&mut stream, &mut out, &shared).is_err()
                    {
                        break 'conn;
                    }
                }
                Ok(None) => break, // torn frame: wait for more bytes
                Err(e) => {
                    // Framing is lost; reply once and close.
                    shared.metrics.errors.incr();
                    resp::encode(&Frame::error(e), &mut out);
                    let _ = flush(&mut stream, &mut out, &shared);
                    break 'conn;
                }
            }
        }
        if pos > 0 {
            in_buf.drain(..pos);
            pos = 0;
        }
        if flush(&mut stream, &mut out, &shared).is_err() {
            break;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break; // buffered requests were drained and flushed above
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // peer closed
            Ok(n) => {
                shared.metrics.bytes_in.add(n as u64);
                in_buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(_) => break,
        }
    }
    shared.metrics.connection_closed();
}

/// Blocking flush of the reply buffer — this is where a slow reader
/// backpressures its connection.
fn flush(stream: &mut TcpStream, out: &mut Vec<u8>, shared: &Shared) -> std::io::Result<()> {
    if out.is_empty() {
        return Ok(());
    }
    stream.write_all(out)?;
    shared.metrics.bytes_out.add(out.len() as u64);
    out.clear();
    Ok(())
}

/// Route one request to its command handler. Never panics: every failure
/// becomes an error frame.
fn dispatch(shared: &Shared, conn: &mut ConnState, kind: CommandKind, args: &[Vec<u8>]) -> Frame {
    match kind {
        CommandKind::Ping => match args.len() {
            1 => Frame::Simple("PONG".to_string()),
            2 => Frame::Bulk(args[1].clone()),
            _ => arity_error("PING"),
        },
        CommandKind::Set => cmd_set(shared, args),
        CommandKind::Get => cmd_get(shared, args),
        CommandKind::Del => cmd_del(shared, args),
        CommandKind::Mset => cmd_mset(shared, args),
        CommandKind::Scan => cmd_scan(shared, conn, args),
        CommandKind::Query => cmd_query(shared, args),
        CommandKind::Info => cmd_info(shared),
        CommandKind::Metrics => cmd_metrics(shared, args),
        CommandKind::Health => cmd_health(shared),
        CommandKind::Shutdown => {
            shared.shutdown.store(true, Ordering::Release);
            Frame::Simple("OK".to_string())
        }
        CommandKind::Other => Frame::error(format!(
            "unknown command '{}'",
            String::from_utf8_lossy(&args[0])
        )),
    }
}

fn arity_error(cmd: &str) -> Frame {
    Frame::error(format!("wrong number of arguments for '{cmd}'"))
}

/// Parse a wire key: a JSON atom (`7`, `"x"`, `2.5`, `true`) or, as a
/// convenience, a bare word taken as a string key.
fn parse_key(raw: &[u8]) -> Result<Value, String> {
    let text = std::str::from_utf8(raw).map_err(|_| "key must be UTF-8".to_string())?;
    match parse_json(text) {
        Ok(v) if v.is_atomic() && !v.is_null() => Ok(v),
        Ok(_) => Err(format!("key must be an atomic non-null value, got {text}")),
        Err(_) => Ok(Value::String(text.to_string())),
    }
}

/// Parse a document body and stamp the primary key into its key field
/// (inserted if absent, overwritten if it disagrees).
fn parse_doc(shared: &Shared, key: &Value, raw: &[u8]) -> Result<Value, String> {
    let text = std::str::from_utf8(raw).map_err(|_| "document must be UTF-8".to_string())?;
    let mut doc = parse_json(text).map_err(|e| format!("invalid JSON document: {e}"))?;
    match &mut doc {
        Value::Object(_) => {
            doc.set_field(shared.key_field.clone(), key.clone());
            Ok(doc)
        }
        _ => Err("document must be a JSON object".to_string()),
    }
}

fn cmd_set(shared: &Shared, args: &[Vec<u8>]) -> Frame {
    if args.len() != 3 {
        return arity_error("SET");
    }
    let key = match parse_key(&args[1]) {
        Ok(k) => k,
        Err(e) => return Frame::error(e),
    };
    let doc = match parse_doc(shared, &key, &args[2]) {
        Ok(d) => d,
        Err(e) => return Frame::error(e),
    };
    match shared.store.ingest(&shared.dataset, doc) {
        Ok(()) => Frame::Simple("OK".to_string()),
        Err(e) => Frame::error(e),
    }
}

fn cmd_get(shared: &Shared, args: &[Vec<u8>]) -> Frame {
    if args.len() != 2 {
        return arity_error("GET");
    }
    let key = match parse_key(&args[1]) {
        Ok(k) => k,
        Err(e) => return Frame::error(e),
    };
    match shared.store.get(&shared.dataset, &key) {
        Ok(Some(doc)) => Frame::bulk(to_json(&doc)),
        Ok(None) => Frame::Null,
        Err(e) => Frame::error(e),
    }
}

fn cmd_del(shared: &Shared, args: &[Vec<u8>]) -> Frame {
    if args.len() < 2 {
        return arity_error("DEL");
    }
    let mut deleted = 0i64;
    for raw in &args[1..] {
        let key = match parse_key(raw) {
            Ok(k) => k,
            Err(e) => return Frame::error(e),
        };
        // Match redis semantics: count only keys that existed.
        match shared.store.get(&shared.dataset, &key) {
            Ok(Some(_)) => match shared.store.delete(&shared.dataset, key) {
                Ok(()) => deleted += 1,
                Err(e) => return Frame::error(e),
            },
            Ok(None) => {}
            Err(e) => return Frame::error(e),
        }
    }
    Frame::Integer(deleted)
}

fn cmd_mset(shared: &Shared, args: &[Vec<u8>]) -> Frame {
    if args.len() < 3 || args.len() % 2 != 1 {
        return arity_error("MSET");
    }
    let mut docs = Vec::with_capacity((args.len() - 1) / 2);
    for pair in args[1..].chunks_exact(2) {
        let key = match parse_key(&pair[0]) {
            Ok(k) => k,
            Err(e) => return Frame::error(e),
        };
        match parse_doc(shared, &key, &pair[1]) {
            Ok(d) => docs.push(d),
            Err(e) => return Frame::error(e),
        }
    }
    let n = docs.len() as i64;
    // Group commit: one writer per shard, fsync every sync_every records
    // and once at the end — the reply acknowledges a durable batch.
    match shared.store.ingest_batch(&shared.dataset, docs, shared.sync_every) {
        Ok(_) => Frame::Integer(n),
        Err(e) => Frame::error(e),
    }
}

fn cmd_scan(shared: &Shared, conn: &mut ConnState, args: &[Vec<u8>]) -> Frame {
    if args.len() < 2 {
        return arity_error("SCAN");
    }
    let cursor_arg = match std::str::from_utf8(&args[1]).ok().and_then(|t| t.parse::<u64>().ok()) {
        Some(id) => id,
        None => return Frame::error("cursor must be a non-negative integer"),
    };
    let mut count = DEFAULT_SCAN_COUNT;
    let mut paths: Option<Vec<Path>> = None;
    let mut rest = args[2..].iter();
    while let Some(opt) = rest.next() {
        match opt.to_ascii_uppercase().as_slice() {
            b"COUNT" => {
                count = match rest
                    .next()
                    .and_then(|v| std::str::from_utf8(v).ok())
                    .and_then(|t| t.parse::<usize>().ok())
                    .filter(|n| *n > 0)
                {
                    Some(n) => n,
                    None => return Frame::error("COUNT needs a positive integer"),
                };
            }
            b"PATHS" => {
                let spec = match rest.next().and_then(|v| std::str::from_utf8(v).ok()) {
                    Some(s) => s,
                    None => return Frame::error("PATHS needs a comma-separated path list"),
                };
                paths = Some(spec.split(',').map(Path::parse).collect());
            }
            other => {
                return Frame::error(format!(
                    "unknown SCAN option '{}'",
                    String::from_utf8_lossy(other)
                ))
            }
        }
    }
    let (id, mut cursor) = if cursor_arg == 0 {
        if conn.cursors.len() >= MAX_CURSORS_PER_CONNECTION {
            return Frame::error("too many open cursors on this connection");
        }
        conn.next_cursor_id += 1;
        let cursor = match shared.store.scan_cursor(&shared.dataset, paths.as_deref()) {
            Ok(c) => c,
            Err(e) => return Frame::error(e),
        };
        (conn.next_cursor_id, cursor)
    } else {
        if paths.is_some() {
            return Frame::error("PATHS is only valid when opening a cursor (SCAN 0)");
        }
        match conn.cursors.remove(&cursor_arg) {
            Some(mut cursor) => {
                // Bounded staleness: re-pin fresh snapshots between chunks
                // so a slow stream doesn't hold retired components alive.
                let dataset = match shared.store.dataset(&shared.dataset) {
                    Ok(d) => d,
                    Err(e) => return Frame::error(e),
                };
                if let Err(e) = cursor.refresh(dataset) {
                    return Frame::error(e);
                }
                (cursor_arg, cursor)
            }
            None => return Frame::error(format!("no open cursor {cursor_arg}")),
        }
    };
    let mut items = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        match cursor.next() {
            Some(Ok((key, doc))) => items.push(Frame::Array(vec![
                Frame::bulk(to_json(&key)),
                Frame::bulk(to_json(&doc)),
            ])),
            Some(Err(e)) => return Frame::error(e),
            None => {
                // Exhausted: cursor id 0 tells the client the stream ended.
                return Frame::Array(vec![Frame::bulk("0"), Frame::Array(items)]);
            }
        }
    }
    conn.cursors.insert(id, cursor);
    Frame::Array(vec![Frame::bulk(id.to_string()), Frame::Array(items)])
}

/// Render one query result row as the wire JSON `{"group": ..., "aggs": [...]}`.
fn row_to_json(row: &QueryRow) -> String {
    let mut obj = Value::empty_object();
    obj.set_field("group", row.group.clone().unwrap_or(Value::Null));
    obj.set_field("aggs", Value::Array(row.aggs.clone()));
    to_json(&obj)
}

fn cmd_query(shared: &Shared, args: &[Vec<u8>]) -> Frame {
    if args.len() != 2 {
        return arity_error("QUERY");
    }
    let text = match std::str::from_utf8(&args[1]) {
        Ok(t) => t,
        Err(_) => return Frame::error("query spec must be UTF-8"),
    };
    let spec = match parse_json(text) {
        Ok(v) => v,
        Err(e) => return Frame::error(format!("invalid query spec JSON: {e}")),
    };
    let (query, mode) = match parse_query_spec(&spec) {
        Ok(parsed) => parsed,
        Err(e) => return Frame::error(e),
    };
    match shared.store.query(&shared.dataset, &query, mode) {
        Ok(rows) => Frame::Array(rows.iter().map(|r| Frame::bulk(row_to_json(r))).collect()),
        Err(e) => Frame::error(e),
    }
}

fn cmd_info(shared: &Shared) -> Frame {
    let dataset = shared.store.dataset(&shared.dataset);
    let mut text = String::new();
    text.push_str(&format!("dataset:{}\n", shared.dataset));
    text.push_str(&format!("key_field:{}\n", shared.key_field));
    if let Ok(ds) = dataset {
        text.push_str(&format!("shards:{}\n", ds.shard_count()));
        text.push_str(&format!("stored_bytes:{}\n", ds.total_stored_bytes()));
    }
    text.push_str(&format!(
        "connections_active:{}\n",
        shared.metrics.active_connections()
    ));
    text.push_str(&format!(
        "connections_accepted:{}\n",
        shared.metrics.connections_accepted.get()
    ));
    text.push_str(&format!("requests:{}\n", shared.metrics.requests.get()));
    Frame::bulk(text)
}

fn cmd_metrics(shared: &Shared, args: &[Vec<u8>]) -> Frame {
    let mut snap = match shared.store.metrics(&shared.dataset) {
        Ok(s) => s,
        Err(e) => return Frame::error(e),
    };
    shared.metrics.augment(&mut snap);
    let format = args.get(1).map(|a| a.to_ascii_uppercase());
    match format.as_deref() {
        None | Some(b"TEXT") => Frame::bulk(snap.to_text()),
        Some(b"JSON") => Frame::bulk(snap.to_json()),
        Some(other) => Frame::error(format!(
            "unknown METRICS format '{}' (TEXT or JSON)",
            String::from_utf8_lossy(other)
        )),
    }
}

fn cmd_health(shared: &Shared) -> Frame {
    let dataset = match shared.store.dataset(&shared.dataset) {
        Ok(d) => d,
        Err(e) => return Frame::error(e),
    };
    let mut text = String::new();
    let mut degraded = false;
    for (i, health) in dataset.health().iter().enumerate() {
        let state = format!("{:?}", health.worker);
        if health.last_error.is_some() {
            degraded = true;
        }
        text.push_str(&format!(
            "shard-{i:03}:{} pending={} stalls={}{}\n",
            state.to_lowercase(),
            health.pending_maintenance,
            health.stalls,
            match &health.last_error {
                Some(e) => format!(" last_error={e}"),
                None => String::new(),
            }
        ));
    }
    let mut reply = String::new();
    reply.push_str(if degraded { "degraded\n" } else { "ok\n" });
    reply.push_str(&text);
    Frame::bulk(reply)
}
