//! A RESP (redis-style) network front-end for the document store: TCP in,
//! documents, scans and analytical queries out.
//!
//! The crate is std-only — no async runtime. A [`Server`] owns a
//! [`docstore::Datastore`] and serves it with one thread per connection
//! (see [`server`] for the threading, backpressure and shutdown model);
//! [`RespClient`] is the matching minimal blocking client. The `server`
//! binary wraps [`Server`] with flags, and the bench crate's load
//! generator drives it for `BENCH_server.json`.
//!
//! ## Wire protocol
//!
//! Framing is RESP v2 (see [`resp`] for the grammar and the hardening
//! limits). Requests are arrays of bulk strings; inline `nc`-style text
//! lines also work. The command vocabulary:
//!
//! | command | reply | meaning |
//! |---------|-------|---------|
//! | `PING [msg]` | `+PONG` / echo | liveness probe |
//! | `SET key doc` | `+OK` | upsert a JSON document under a primary key |
//! | `GET key` | bulk JSON / null | point lookup |
//! | `DEL key [key ...]` | `:n` | delete; counts keys that existed |
//! | `MSET k1 d1 [k2 d2 ...]` | `:n` | group-committed batch ingest — the reply acknowledges a **durable** batch |
//! | `SCAN cursor [COUNT n] [PATHS p,...]` | `[next, [[key, doc], ...]]` | chunked key-ordered scan; `SCAN 0` opens, `next` = `0` ends; between chunks the server re-pins fresh snapshots (bounded staleness) |
//! | `QUERY spec` | array of bulk JSON rows | analytical query; [`queryspec`] documents the JSON spec grammar |
//! | `INFO` | bulk text | dataset name, shards, connection counts |
//! | `METRICS [TEXT\|JSON]` | bulk | engine metrics merged with the `server.*` wire metrics |
//! | `HEALTH` | bulk text | per-shard worker state, `ok`/`degraded` first line |
//! | `SHUTDOWN` | `+OK` | graceful drain: stop accepting, finish in-flight pipelines, sync the store |
//!
//! Keys are JSON atoms (`7`, `"alice"`, `2.5`); a bare word is taken as a
//! string key. Documents are JSON objects; the server stamps the primary
//! key into the dataset's key field. Errors come back as RESP error frames
//! (`-ERR ...`); malformed or over-limit frames get one error frame and the
//! connection closes (framing is lost at that point by definition).

#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod queryspec;
pub mod resp;
pub mod server;

pub use client::RespClient;
pub use metrics::{CommandKind, ServerMetrics};
pub use resp::{Frame, Limits, ProtocolError};
pub use server::{Server, ServerConfig, ServerError, ServerHandle};
