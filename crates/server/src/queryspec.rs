//! The `QUERY` command's wire encoding: a JSON document describing a
//! [`query::Query`], parsed with the store's own JSON parser.
//!
//! ## Spec grammar
//!
//! ```json
//! {
//!   "select": [ {"agg": "count"},
//!               {"agg": "max", "path": "score"},
//!               {"agg": "avg", "path": "likes", "on_element": true} ],
//!   "filter": EXPR,
//!   "unnest": "games",
//!   "group_by": "user.name",
//!   "group_by_element": false,
//!   "order_desc_by": 0,
//!   "order_by_key": false,
//!   "limit": 10,
//!   "mode": "compiled"
//! }
//! ```
//!
//! `select` is either a list of aggregate objects (`agg` ∈ `count`,
//! `count_non_null`, `max`, `min`, `sum`, `avg`, `max_length`; all but
//! `count` take a `path`) or a list of plain path strings — the raw-column
//! projection form (`SELECT p1, p2 ...`, one row per matching record).
//! Every other field is optional; `mode` defaults to `compiled`.
//!
//! `EXPR` is a predicate tree:
//!
//! ```json
//! {"and": [EXPR, ...]}                          {"or": [EXPR, ...]}
//! {"not": EXPR}                                 {"exists": "path"}
//! {"eq|lt|le|gt|ge": {"path": "p", "value": V}}
//! {"between": {"path": "p", "lo": V, "hi": V}}
//! {"contains": {"path": "tags", "value": V}}
//! {"length": {"path": "p", "op": "le", "len": 5}}
//! ```
//!
//! where `V` is any JSON scalar. Parse errors come back as wire error
//! frames with the offending fragment named.

use docmodel::{Path, Value};
use query::{Aggregate, CmpOp, ExecMode, Expr, Query};

/// Parse a `QUERY` spec document into a logical plan and execution mode.
pub fn parse_query_spec(spec: &Value) -> Result<(Query, ExecMode), String> {
    let fields = spec
        .as_object()
        .ok_or_else(|| "query spec must be a JSON object".to_string())?;
    let mut query = Query::new();
    let mut mode = ExecMode::Compiled;
    for (key, value) in fields {
        match key.as_str() {
            "select" => parse_select(value, &mut query)?,
            "filter" => query = query.with_filter(parse_expr(value)?),
            "unnest" => query = query.with_unnest(path_of(value, "unnest")?),
            "group_by" => {
                // group_by_element may have set the flag already; preserve it.
                let on_element = query.group_on_element;
                query = query.group_by(path_of(value, "group_by")?);
                query.group_on_element = on_element;
            }
            "group_by_element" => query.group_on_element = bool_of(value, "group_by_element")?,
            "order_desc_by" => {
                query = query.order_desc_by(usize_of(value, "order_desc_by")?);
            }
            "order_by_key" => {
                if bool_of(value, "order_by_key")? {
                    query = query.order_by_key();
                }
            }
            "limit" => query = query.with_limit(usize_of(value, "limit")?),
            "mode" => {
                mode = match value.as_str() {
                    Some("compiled") => ExecMode::Compiled,
                    Some("interpreted") => ExecMode::Interpreted,
                    other => {
                        return Err(format!(
                            "mode must be \"compiled\" or \"interpreted\", got {other:?}"
                        ))
                    }
                }
            }
            other => return Err(format!("unknown query spec field '{other}'")),
        }
    }
    Ok((query, mode))
}

fn parse_select(value: &Value, query: &mut Query) -> Result<(), String> {
    let items = value
        .as_array()
        .ok_or_else(|| "select must be an array".to_string())?;
    if items.is_empty() {
        return Err("select must not be empty".to_string());
    }
    if items.iter().all(|i| i.as_str().is_some()) {
        // Projection form: plain path strings.
        query.select_paths = items
            .iter()
            .map(|i| Path::parse(i.as_str().expect("checked")))
            .collect();
        return Ok(());
    }
    for item in items {
        let fields = item
            .as_object()
            .ok_or_else(|| "select entries must all be strings (projection) or all objects (aggregates)".to_string())?;
        let agg_name = fields
            .iter()
            .find(|(k, _)| k == "agg")
            .and_then(|(_, v)| v.as_str())
            .ok_or_else(|| "aggregate entry needs an \"agg\" name".to_string())?;
        let path = fields
            .iter()
            .find(|(k, _)| k == "path")
            .map(|(_, v)| path_of(v, "path"))
            .transpose()?;
        let on_element = fields
            .iter()
            .find(|(k, _)| k == "on_element")
            .map(|(_, v)| bool_of(v, "on_element"))
            .transpose()?
            .unwrap_or(false);
        for (key, _) in fields {
            if !matches!(key.as_str(), "agg" | "path" | "on_element") {
                return Err(format!("unknown aggregate field '{key}'"));
            }
        }
        let need_path = || {
            path.clone().ok_or_else(|| format!("aggregate \"{agg_name}\" needs a \"path\""))
        };
        let agg = match agg_name {
            "count" => Aggregate::Count,
            "count_non_null" => Aggregate::CountNonNull(need_path()?),
            "max" => Aggregate::Max(need_path()?),
            "min" => Aggregate::Min(need_path()?),
            "sum" => Aggregate::Sum(need_path()?),
            "avg" => Aggregate::Avg(need_path()?),
            "max_length" => Aggregate::MaxLength(need_path()?),
            other => return Err(format!("unknown aggregate \"{other}\"")),
        };
        if on_element {
            *query = std::mem::take(query).aggregate_element(agg);
        } else {
            *query = std::mem::take(query).aggregate(agg);
        }
    }
    Ok(())
}

/// Parse one predicate-tree node.
pub fn parse_expr(value: &Value) -> Result<Expr, String> {
    let fields = value
        .as_object()
        .ok_or_else(|| format!("filter node must be an object, got {value}"))?;
    if fields.len() != 1 {
        return Err(format!(
            "filter node must have exactly one operator key, got {} in {value}",
            fields.len()
        ));
    }
    let (op, body) = &fields[0];
    match op.as_str() {
        "and" | "or" => {
            let items = body
                .as_array()
                .ok_or_else(|| format!("\"{op}\" takes an array of filter nodes"))?;
            let parsed: Result<Vec<Expr>, String> = items.iter().map(parse_expr).collect();
            let parsed = parsed?;
            Ok(if op == "and" { Expr::and(parsed) } else { Expr::or(parsed) })
        }
        "not" => Ok(Expr::not(parse_expr(body)?)),
        "exists" => Ok(Expr::exists(path_of(body, "exists")?)),
        "eq" | "lt" | "le" | "gt" | "ge" => {
            let (path, cmp_value) = path_value_of(body, op)?;
            let cmp = match op.as_str() {
                "eq" => CmpOp::Eq,
                "lt" => CmpOp::Lt,
                "le" => CmpOp::Le,
                "gt" => CmpOp::Gt,
                _ => CmpOp::Ge,
            };
            Ok(Expr::Cmp { op: cmp, path, value: cmp_value })
        }
        "between" => {
            let path = field_path(body, "path", "between")?;
            let lo = field_value(body, "lo", "between")?;
            let hi = field_value(body, "hi", "between")?;
            Ok(Expr::between(path, lo, hi))
        }
        "contains" => {
            let (path, cmp_value) = path_value_of(body, "contains")?;
            Ok(Expr::contains(path, cmp_value))
        }
        "length" => {
            let path = field_path(body, "path", "length")?;
            let len = body
                .get_field("len")
                .and_then(Value::as_int)
                .ok_or_else(|| "\"length\" needs an integer \"len\"".to_string())?;
            let cmp_name = body
                .get_field("op")
                .and_then(Value::as_str)
                .ok_or_else(|| "\"length\" needs an \"op\"".to_string())?;
            let cmp = match cmp_name {
                "eq" => CmpOp::Eq,
                "lt" => CmpOp::Lt,
                "le" => CmpOp::Le,
                "gt" => CmpOp::Gt,
                "ge" => CmpOp::Ge,
                other => return Err(format!("unknown length op \"{other}\"")),
            };
            Ok(Expr::length(path, cmp, len))
        }
        other => Err(format!("unknown filter operator \"{other}\"")),
    }
}

fn path_of(value: &Value, what: &str) -> Result<Path, String> {
    value
        .as_str()
        .map(Path::parse)
        .ok_or_else(|| format!("\"{what}\" must be a path string, got {value}"))
}

fn bool_of(value: &Value, what: &str) -> Result<bool, String> {
    value
        .as_bool()
        .ok_or_else(|| format!("\"{what}\" must be a boolean, got {value}"))
}

fn usize_of(value: &Value, what: &str) -> Result<usize, String> {
    value
        .as_int()
        .filter(|n| *n >= 0)
        .map(|n| n as usize)
        .ok_or_else(|| format!("\"{what}\" must be a non-negative integer, got {value}"))
}

fn field_path(body: &Value, field: &str, op: &str) -> Result<Path, String> {
    body.get_field(field)
        .ok_or_else(|| format!("\"{op}\" needs a \"{field}\""))
        .and_then(|v| path_of(v, field))
}

fn field_value(body: &Value, field: &str, op: &str) -> Result<Value, String> {
    body.get_field(field)
        .cloned()
        .ok_or_else(|| format!("\"{op}\" needs a \"{field}\""))
}

fn path_value_of(body: &Value, op: &str) -> Result<(Path, Value), String> {
    Ok((field_path(body, "path", op)?, field_value(body, "value", op)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::parse_json;

    fn parse(text: &str) -> Result<(Query, ExecMode), String> {
        parse_query_spec(&parse_json(text).expect("valid JSON"))
    }

    #[test]
    fn aggregate_spec_roundtrips() {
        let (q, mode) = parse(
            r#"{"select": [{"agg": "count"}, {"agg": "max", "path": "score"}],
                "filter": {"and": [{"ge": {"path": "score", "value": 50}},
                                   {"exists": "user.name"}]},
                "group_by": "user.name",
                "order_desc_by": 0,
                "limit": 3,
                "mode": "interpreted"}"#,
        )
        .unwrap();
        assert_eq!(mode, ExecMode::Interpreted);
        assert_eq!(q.aggregates.len(), 2);
        assert_eq!(q.group_by, Some(Path::parse("user.name")));
        assert_eq!(q.limit, Some(3));
        assert_eq!(q.order_desc_by_agg, Some(0));
        assert!(q.filter.is_some());
    }

    #[test]
    fn projection_spec_roundtrips() {
        let (q, mode) = parse(
            r#"{"select": ["name.first", "score"],
                "filter": {"between": {"path": "score", "lo": 10, "hi": 20}},
                "order_by_key": true, "limit": 5}"#,
        )
        .unwrap();
        assert_eq!(mode, ExecMode::Compiled);
        assert_eq!(q.select_paths.len(), 2);
        assert!(q.order_by_key);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn unnest_and_element_aggregates() {
        let (q, _) = parse(
            r#"{"select": [{"agg": "avg", "path": "score", "on_element": true}],
                "unnest": "games", "group_by": "games", "group_by_element": true}"#,
        )
        .unwrap();
        assert!(q.unnest.is_some());
        assert!(q.group_on_element);
        assert!(q.aggregates[0].on_element);
    }

    #[test]
    fn every_filter_operator_parses() {
        for expr in [
            r#"{"eq": {"path": "a", "value": "x"}}"#,
            r#"{"lt": {"path": "a", "value": 1}}"#,
            r#"{"le": {"path": "a", "value": 1.5}}"#,
            r#"{"gt": {"path": "a", "value": 1}}"#,
            r#"{"ge": {"path": "a", "value": 1}}"#,
            r#"{"between": {"path": "a", "lo": 1, "hi": 9}}"#,
            r#"{"exists": "a.b"}"#,
            r#"{"contains": {"path": "tags", "value": "x"}}"#,
            r#"{"length": {"path": "tags", "op": "ge", "len": 2}}"#,
            r#"{"not": {"exists": "a"}}"#,
            r#"{"or": [{"exists": "a"}, {"exists": "b"}]}"#,
        ] {
            parse_expr(&parse_json(expr).unwrap()).unwrap_or_else(|e| panic!("{expr}: {e}"));
        }
    }

    #[test]
    fn bad_specs_name_the_problem() {
        for (text, needle) in [
            (r#"[1]"#, "must be a JSON object"),
            (r#"{"select": []}"#, "must not be empty"),
            (r#"{"select": [{"agg": "median", "path": "a"}]}"#, "unknown aggregate"),
            (r#"{"select": [{"agg": "max"}]}"#, "needs a \"path\""),
            (r#"{"select": [{"agg": "count"}], "mode": "turbo"}"#, "mode must be"),
            (r#"{"frobnicate": 1}"#, "unknown query spec field"),
            (r#"{"select": [{"agg": "count"}], "filter": {"xor": []}}"#, "unknown filter operator"),
            (r#"{"select": [{"agg": "count"}], "filter": {"eq": {"path": "a"}}}"#, "needs a \"value\""),
        ] {
            let err = parse(text).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }
}
