//! RESP (REdis Serialization Protocol, v2) framing: an incremental,
//! allocation-bounded decoder and a frame encoder.
//!
//! ## Grammar
//!
//! Every frame starts with a one-byte type tag and ends with `\r\n`:
//!
//! ```text
//! frame   = simple | error | integer | bulk | array
//! simple  = "+" line CRLF                 ; e.g. +OK\r\n
//! error   = "-" line CRLF                 ; e.g. -ERR unknown command\r\n
//! integer = ":" [ "-" ] digits CRLF       ; e.g. :1000\r\n
//! bulk    = "$" length CRLF bytes CRLF    ; e.g. $5\r\nhello\r\n
//!         | "$-1" CRLF                    ; the null bulk string
//! array   = "*" count CRLF frame*         ; e.g. *2\r\n$3\r\nfoo\r\n:7\r\n
//!         | "*-1" CRLF                    ; the null array (decoded as Null)
//! ```
//!
//! Requests are arrays of bulk strings (`SET key value` ⇒
//! `*3\r\n$3\r\nSET\r\n$3\r\nkey\r\n$5\r\nvalue\r\n`). As a convenience for
//! `nc`-style debugging, [`decode_request`] also accepts *inline commands*:
//! a bare text line is split on whitespace into arguments.
//!
//! ## Incremental decoding and robustness
//!
//! [`decode`] / [`decode_request`] never consume a partial frame: they
//! return `Ok(None)` ("feed me more bytes") until a complete frame is
//! buffered, so torn frames split at arbitrary byte boundaries across reads
//! are handled by construction (the framing test suite splits every fixture
//! at every boundary). Malformed input returns a structured
//! [`ProtocolError`] instead of panicking, and declared bulk/array lengths
//! are validated against [`Limits`] **before** any buffer is grown — an
//! adversarial `$9999999999\r\n` header is rejected when its header is
//! parsed, not after an allocation.

use std::fmt;

/// One decoded RESP frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// `+...` simple string.
    Simple(String),
    /// `-...` error reply.
    Error(String),
    /// `:N` integer.
    Integer(i64),
    /// `$N` bulk string (arbitrary bytes).
    Bulk(Vec<u8>),
    /// `$-1` null bulk string (also decodes `*-1` null arrays).
    Null,
    /// `*N` array of frames.
    Array(Vec<Frame>),
}

impl Frame {
    /// Convenience: a bulk frame from UTF-8 text.
    pub fn bulk(text: impl Into<String>) -> Frame {
        Frame::Bulk(text.into().into_bytes())
    }

    /// Convenience: an `-ERR`-prefixed error frame.
    pub fn error(msg: impl fmt::Display) -> Frame {
        Frame::Error(format!("ERR {msg}"))
    }

    /// The bulk payload as UTF-8 text, if this is a bulk frame.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Frame::Bulk(bytes) => std::str::from_utf8(bytes).ok(),
            Frame::Simple(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer frame.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Frame::Integer(n) => Some(*n),
            _ => None,
        }
    }

    /// The array elements, if this is an array frame.
    pub fn as_array(&self) -> Option<&[Frame]> {
        match self {
            Frame::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The error message, if this is an error frame.
    pub fn as_error(&self) -> Option<&str> {
        match self {
            Frame::Error(msg) => Some(msg),
            _ => None,
        }
    }
}

/// Why a buffer failed to decode. Protocol errors are not recoverable
/// mid-stream (framing is lost); the server replies with an error frame and
/// closes the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A declared bulk-string length exceeds [`Limits::max_bulk_len`].
    BulkTooLarge {
        /// The declared length.
        declared: usize,
        /// The configured cap it exceeded.
        limit: usize,
    },
    /// A declared array element count exceeds [`Limits::max_array_len`].
    ArrayTooLarge {
        /// The declared element count.
        declared: usize,
        /// The configured cap it exceeded.
        limit: usize,
    },
    /// A `\r\n`-terminated header line exceeds [`Limits::max_line_len`]
    /// without terminating.
    LineTooLong,
    /// Arrays nested deeper than [`Limits::max_depth`].
    TooDeep,
    /// Anything else: bad type tag, non-numeric length, missing CRLF, ...
    Malformed(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BulkTooLarge { declared, limit } => {
                write!(f, "bulk string of {declared} bytes exceeds the {limit}-byte limit")
            }
            ProtocolError::ArrayTooLarge { declared, limit } => {
                write!(f, "array of {declared} elements exceeds the {limit}-element limit")
            }
            ProtocolError::LineTooLong => write!(f, "header line too long"),
            ProtocolError::TooDeep => write!(f, "arrays nested too deeply"),
            ProtocolError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Decoder hardening knobs. The defaults fit the document-store workload
/// (documents are kilobytes, pipelines are hundreds of commands).
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Largest accepted bulk-string payload, in bytes.
    pub max_bulk_len: usize,
    /// Largest accepted array element count.
    pub max_array_len: usize,
    /// Longest accepted header line (also caps inline commands).
    pub max_line_len: usize,
    /// Deepest accepted array nesting (requests are depth 1).
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_bulk_len: 8 << 20,
            max_array_len: 1 << 16,
            max_line_len: 64 << 10,
            max_depth: 8,
        }
    }
}

/// Decode result: the frame plus the number of bytes it consumed.
type Decoded<T> = Result<Option<(T, usize)>, ProtocolError>;

/// Find the first CRLF at or after `start`, respecting the line-length cap.
fn find_crlf(buf: &[u8], start: usize, limits: &Limits) -> Result<Option<usize>, ProtocolError> {
    let window = &buf[start..];
    match window.windows(2).position(|w| w == b"\r\n") {
        Some(i) if i > limits.max_line_len => Err(ProtocolError::LineTooLong),
        Some(i) => Ok(Some(start + i)),
        None if window.len() > limits.max_line_len => Err(ProtocolError::LineTooLong),
        None => Ok(None),
    }
}

/// Parse the integer payload of a header line (`:N`, `$N`, `*N`).
fn parse_len(line: &[u8], what: &str) -> Result<i64, ProtocolError> {
    let text = std::str::from_utf8(line)
        .map_err(|_| ProtocolError::Malformed(format!("non-UTF-8 {what} header")))?;
    text.parse::<i64>()
        .map_err(|_| ProtocolError::Malformed(format!("non-numeric {what} header '{text}'")))
}

/// Incrementally decode one frame starting at `buf[pos..]`. Returns
/// `Ok(None)` when the buffer holds only a prefix of a frame, and
/// `Ok(Some((frame, next_pos)))` once one is complete.
pub fn decode(buf: &[u8], pos: usize, limits: &Limits) -> Decoded<Frame> {
    decode_at_depth(buf, pos, limits, 0)
}

fn decode_at_depth(buf: &[u8], pos: usize, limits: &Limits, depth: usize) -> Decoded<Frame> {
    if depth > limits.max_depth {
        return Err(ProtocolError::TooDeep);
    }
    let Some(&tag) = buf.get(pos) else { return Ok(None) };
    let Some(line_end) = find_crlf(buf, pos + 1, limits)? else { return Ok(None) };
    let line = &buf[pos + 1..line_end];
    let after_line = line_end + 2;
    match tag {
        b'+' => {
            let text = std::str::from_utf8(line)
                .map_err(|_| ProtocolError::Malformed("non-UTF-8 simple string".into()))?;
            Ok(Some((Frame::Simple(text.to_string()), after_line)))
        }
        b'-' => {
            let text = std::str::from_utf8(line)
                .map_err(|_| ProtocolError::Malformed("non-UTF-8 error string".into()))?;
            Ok(Some((Frame::Error(text.to_string()), after_line)))
        }
        b':' => Ok(Some((Frame::Integer(parse_len(line, "integer")?), after_line))),
        b'$' => {
            let len = parse_len(line, "bulk length")?;
            if len == -1 {
                return Ok(Some((Frame::Null, after_line)));
            }
            if len < 0 {
                return Err(ProtocolError::Malformed(format!("negative bulk length {len}")));
            }
            let len = len as usize;
            // Reject before waiting for (or allocating) the payload.
            if len > limits.max_bulk_len {
                return Err(ProtocolError::BulkTooLarge { declared: len, limit: limits.max_bulk_len });
            }
            let end = after_line + len;
            if buf.len() < end + 2 {
                return Ok(None);
            }
            if &buf[end..end + 2] != b"\r\n" {
                return Err(ProtocolError::Malformed("bulk payload not CRLF-terminated".into()));
            }
            Ok(Some((Frame::Bulk(buf[after_line..end].to_vec()), end + 2)))
        }
        b'*' => {
            let count = parse_len(line, "array length")?;
            if count == -1 {
                return Ok(Some((Frame::Null, after_line)));
            }
            if count < 0 {
                return Err(ProtocolError::Malformed(format!("negative array length {count}")));
            }
            let count = count as usize;
            if count > limits.max_array_len {
                return Err(ProtocolError::ArrayTooLarge { declared: count, limit: limits.max_array_len });
            }
            let mut items = Vec::new();
            let mut cursor = after_line;
            for _ in 0..count {
                match decode_at_depth(buf, cursor, limits, depth + 1)? {
                    Some((frame, next)) => {
                        items.push(frame);
                        cursor = next;
                    }
                    None => return Ok(None),
                }
            }
            Ok(Some((Frame::Array(items), cursor)))
        }
        other => Err(ProtocolError::Malformed(format!(
            "unknown frame tag 0x{other:02x} ('{}')",
            (other as char).escape_default()
        ))),
    }
}

/// Incrementally decode one *request* — an array of bulk strings, or an
/// inline command line — into its argument list. `Ok(None)` means "feed me
/// more bytes"; empty inline lines are consumed and reported as empty
/// argument lists the caller should ignore.
pub fn decode_request(buf: &[u8], pos: usize, limits: &Limits) -> Decoded<Vec<Vec<u8>>> {
    let Some(&tag) = buf.get(pos) else { return Ok(None) };
    if tag == b'*' {
        return match decode(buf, pos, limits)? {
            Some((Frame::Array(items), next)) => {
                let mut args = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        Frame::Bulk(bytes) => args.push(bytes),
                        other => {
                            return Err(ProtocolError::Malformed(format!(
                                "request array element must be a bulk string, got {other:?}"
                            )))
                        }
                    }
                }
                Ok(Some((args, next)))
            }
            Some((Frame::Null, next)) => Ok(Some((Vec::new(), next))),
            Some(_) => unreachable!("'*' decodes to an array or null"),
            None => Ok(None),
        };
    }
    // Inline command: one whitespace-separated text line.
    let Some(line_end) = find_crlf(buf, pos, limits)? else {
        // Tolerate bare-\n line endings from interactive tools.
        if let Some(nl) = buf[pos..].iter().position(|&b| b == b'\n') {
            let line = &buf[pos..pos + nl];
            return Ok(inline_args(line)?.map(|args| (args, pos + nl + 1)));
        }
        if buf.len() - pos > limits.max_line_len {
            return Err(ProtocolError::LineTooLong);
        }
        return Ok(None);
    };
    let line = &buf[pos..line_end];
    Ok(inline_args(line)?.map(|args| (args, line_end + 2)))
}

fn inline_args(line: &[u8]) -> Result<Option<Vec<Vec<u8>>>, ProtocolError> {
    let text = std::str::from_utf8(line)
        .map_err(|_| ProtocolError::Malformed("non-UTF-8 inline command".into()))?;
    Ok(Some(
        text.split_ascii_whitespace().map(|w| w.as_bytes().to_vec()).collect(),
    ))
}

/// Append the wire encoding of `frame` to `out`.
pub fn encode(frame: &Frame, out: &mut Vec<u8>) {
    match frame {
        Frame::Simple(s) => {
            out.push(b'+');
            out.extend_from_slice(s.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        Frame::Error(s) => {
            out.push(b'-');
            out.extend_from_slice(s.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        Frame::Integer(n) => {
            out.push(b':');
            out.extend_from_slice(n.to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        Frame::Bulk(bytes) => {
            out.push(b'$');
            out.extend_from_slice(bytes.len().to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
            out.extend_from_slice(bytes);
            out.extend_from_slice(b"\r\n");
        }
        Frame::Null => out.extend_from_slice(b"$-1\r\n"),
        Frame::Array(items) => {
            out.push(b'*');
            out.extend_from_slice(items.len().to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
            for item in items {
                encode(item, out);
            }
        }
    }
}

/// Append the wire encoding of a request (array of bulk strings) to `out`.
pub fn encode_request<A: AsRef<[u8]>>(args: &[A], out: &mut Vec<u8>) {
    out.push(b'*');
    out.extend_from_slice(args.len().to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
    for arg in args {
        let bytes = arg.as_ref();
        out.push(b'$');
        out.extend_from_slice(bytes.len().to_string().as_bytes());
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(bytes);
        out.extend_from_slice(b"\r\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut wire = Vec::new();
        encode(&frame, &mut wire);
        let (decoded, used) = decode(&wire, 0, &Limits::default()).unwrap().unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(used, wire.len());
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Simple("OK".into()));
        roundtrip(Frame::Error("ERR boom".into()));
        roundtrip(Frame::Integer(-42));
        roundtrip(Frame::Bulk(b"hello\r\nworld".to_vec()));
        roundtrip(Frame::Null);
        roundtrip(Frame::Array(vec![
            Frame::bulk("GET"),
            Frame::Integer(7),
            Frame::Array(vec![Frame::Null]),
        ]));
    }

    #[test]
    fn requests_roundtrip_and_reject_non_bulk_elements() {
        let mut wire = Vec::new();
        encode_request(&[b"SET".as_slice(), b"k".as_slice(), b"{}".as_slice()], &mut wire);
        let (args, used) = decode_request(&wire, 0, &Limits::default()).unwrap().unwrap();
        assert_eq!(args, vec![b"SET".to_vec(), b"k".to_vec(), b"{}".to_vec()]);
        assert_eq!(used, wire.len());

        let err = decode_request(b"*1\r\n:5\r\n", 0, &Limits::default()).unwrap_err();
        assert!(matches!(err, ProtocolError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn inline_commands_split_on_whitespace() {
        let (args, used) =
            decode_request(b"PING  hello\r\nrest", 0, &Limits::default()).unwrap().unwrap();
        assert_eq!(args, vec![b"PING".to_vec(), b"hello".to_vec()]);
        assert_eq!(used, 13);
        // Bare-\n line endings work too.
        let (args, _) = decode_request(b"PING\nmore", 0, &Limits::default()).unwrap().unwrap();
        assert_eq!(args, vec![b"PING".to_vec()]);
    }

    #[test]
    fn oversized_declarations_fail_before_the_payload_arrives() {
        let limits = Limits { max_bulk_len: 16, ..Limits::default() };
        // Only the header is buffered: the declared size alone must reject.
        let err = decode(b"$1000000\r\n", 0, &limits).unwrap_err();
        assert_eq!(err, ProtocolError::BulkTooLarge { declared: 1_000_000, limit: 16 });

        let limits = Limits { max_array_len: 4, ..Limits::default() };
        let err = decode(b"*5000\r\n", 0, &limits).unwrap_err();
        assert_eq!(err, ProtocolError::ArrayTooLarge { declared: 5000, limit: 4 });
    }

    #[test]
    fn partial_frames_ask_for_more_bytes() {
        let mut wire = Vec::new();
        encode(
            &Frame::Array(vec![Frame::bulk("SCAN"), Frame::bulk("0")]),
            &mut wire,
        );
        for cut in 0..wire.len() {
            assert_eq!(
                decode(&wire[..cut], 0, &Limits::default()).unwrap(),
                None,
                "prefix of {cut} bytes must be incomplete"
            );
        }
        assert!(decode(&wire, 0, &Limits::default()).unwrap().is_some());
    }

    #[test]
    fn malformed_frames_error_instead_of_panicking() {
        let limits = Limits::default();
        for case in [
            b"$abc\r\n".as_slice(),
            b":12x\r\n",
            b"$5\r\nhelloXX",
            b"$-7\r\n",
            b"*-3\r\n",
        ] {
            // Feed enough bytes that the malformed part is visible.
            let mut padded = case.to_vec();
            padded.extend_from_slice(b"\r\n\r\n\r\n");
            assert!(
                decode(&padded, 0, &limits).is_err(),
                "{:?} must be rejected",
                String::from_utf8_lossy(case)
            );
        }
        // Unknown tag.
        assert!(decode(b"!weird\r\n", 0, &limits).is_err());
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let limits = Limits { max_depth: 3, ..Limits::default() };
        let mut wire = Vec::new();
        for _ in 0..6 {
            wire.extend_from_slice(b"*1\r\n");
        }
        wire.extend_from_slice(b":1\r\n");
        assert_eq!(decode(&wire, 0, &limits).unwrap_err(), ProtocolError::TooDeep);
    }
}
