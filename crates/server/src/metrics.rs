//! Wire-level telemetry: the `server.*` metric family.
//!
//! One [`ServerMetrics`] registry per server, shared by every connection
//! thread (all counters are the telemetry crate's relaxed atomics, so the
//! hot path pays a handful of `fetch_add`s per request). The registry folds
//! into the dataset's [`MetricsSnapshot`] — `METRICS` over the wire returns
//! one merged snapshot covering both the storage engine and the network
//! front-end:
//!
//! | metric | kind | meaning |
//! |--------|------|---------|
//! | `server.connections_accepted` | counter | connections ever accepted |
//! | `server.connections_rejected` | counter | connections refused at the cap |
//! | `server.connections_active`   | gauge   | currently open connections |
//! | `server.requests`             | counter | requests dispatched (all commands) |
//! | `server.errors`               | counter | error frames sent (incl. protocol errors) |
//! | `server.bytes_in` / `server.bytes_out` | counters | wire bytes read / written |
//! | `server.requests.<cmd>`       | counter | per-command request count |
//! | `server.latency.<cmd>_micros` | histogram | per-command service latency |
//!
//! Per-command counters exist for exactly the commands the server speaks
//! (see [`CommandKind`]); unknown commands land in `other`.
//!
//! The merged snapshot also carries the storage side's families — among
//! them the decoded-leaf cache's `cache.hits` / `cache.misses` /
//! `cache.evictions` counters and the `cache.resident_bytes` /
//! `cache.budget_bytes` / `cache.resident_leaves` gauges, present when the
//! served dataset was configured with a memory budget.

use std::sync::atomic::{AtomicU64, Ordering};

use telemetry::{Counter, Histogram, MetricsSnapshot};

/// The command vocabulary, used to index the per-command counters and
/// latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// `SET key doc` — document put.
    Set,
    /// `GET key` — point lookup.
    Get,
    /// `DEL key [key ...]` — point delete(s).
    Del,
    /// `MSET key doc [key doc ...]` — group-committed batch ingest.
    Mset,
    /// `SCAN cursor [COUNT n] [PATHS p,...]` — chunked streaming scan.
    Scan,
    /// `QUERY spec-json` — analytical query.
    Query,
    /// `INFO` — server facts.
    Info,
    /// `METRICS [TEXT|JSON]` — merged metrics snapshot.
    Metrics,
    /// `HEALTH` — per-shard health.
    Health,
    /// `PING [msg]` — liveness probe.
    Ping,
    /// `SHUTDOWN` — graceful drain.
    Shutdown,
    /// Anything the server does not understand.
    Other,
}

/// All command kinds, in rendering order.
pub const COMMAND_KINDS: [CommandKind; 12] = [
    CommandKind::Set,
    CommandKind::Get,
    CommandKind::Del,
    CommandKind::Mset,
    CommandKind::Scan,
    CommandKind::Query,
    CommandKind::Info,
    CommandKind::Metrics,
    CommandKind::Health,
    CommandKind::Ping,
    CommandKind::Shutdown,
    CommandKind::Other,
];

impl CommandKind {
    /// Classify a (case-insensitive) command name.
    pub fn classify(name: &[u8]) -> CommandKind {
        let mut upper = [0u8; 16];
        if name.is_empty() || name.len() > upper.len() {
            return CommandKind::Other;
        }
        for (dst, src) in upper.iter_mut().zip(name) {
            *dst = src.to_ascii_uppercase();
        }
        match &upper[..name.len()] {
            b"SET" => CommandKind::Set,
            b"GET" => CommandKind::Get,
            b"DEL" => CommandKind::Del,
            b"MSET" => CommandKind::Mset,
            b"SCAN" => CommandKind::Scan,
            b"QUERY" => CommandKind::Query,
            b"INFO" => CommandKind::Info,
            b"METRICS" => CommandKind::Metrics,
            b"HEALTH" => CommandKind::Health,
            b"PING" => CommandKind::Ping,
            b"SHUTDOWN" => CommandKind::Shutdown,
            _ => CommandKind::Other,
        }
    }

    /// Stable lowercase label used in metric names.
    pub fn label(self) -> &'static str {
        match self {
            CommandKind::Set => "set",
            CommandKind::Get => "get",
            CommandKind::Del => "del",
            CommandKind::Mset => "mset",
            CommandKind::Scan => "scan",
            CommandKind::Query => "query",
            CommandKind::Info => "info",
            CommandKind::Metrics => "metrics",
            CommandKind::Health => "health",
            CommandKind::Ping => "ping",
            CommandKind::Shutdown => "shutdown",
            CommandKind::Other => "other",
        }
    }

    fn index(self) -> usize {
        COMMAND_KINDS.iter().position(|k| *k == self).expect("kind listed")
    }
}

/// The server-wide wire metrics registry (see the module docs for the
/// metric family it exports).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections ever accepted.
    pub connections_accepted: Counter,
    /// Connections refused because the cap was reached.
    pub connections_rejected: Counter,
    /// Currently open connections.
    active: AtomicU64,
    /// Requests dispatched, all commands.
    pub requests: Counter,
    /// Error frames sent (command errors and protocol errors).
    pub errors: Counter,
    /// Bytes read off sockets.
    pub bytes_in: Counter,
    /// Bytes written to sockets.
    pub bytes_out: Counter,
    per_command: [Counter; COMMAND_KINDS.len()],
    latency: [Histogram; COMMAND_KINDS.len()],
}

impl ServerMetrics {
    /// A zeroed registry.
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    /// A connection opened.
    pub fn connection_opened(&self) {
        self.connections_accepted.incr();
        self.active.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection closed.
    pub fn connection_closed(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Currently open connections.
    pub fn active_connections(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// Count a dispatched request of the given kind.
    pub fn record_request(&self, kind: CommandKind) {
        self.requests.incr();
        self.per_command[kind.index()].incr();
    }

    /// Record a request's service latency.
    pub fn record_latency(&self, kind: CommandKind, micros: u64) {
        self.latency[kind.index()].record(micros);
    }

    /// Requests dispatched for one command kind.
    pub fn requests_for(&self, kind: CommandKind) -> u64 {
        self.per_command[kind.index()].get()
    }

    /// Fold the `server.*` family into a dataset metrics snapshot (the
    /// `METRICS` command's merged view). Counters and histograms append
    /// under their `server.`-prefixed names; the active-connection count
    /// lands as a gauge.
    pub fn augment(&self, snap: &mut MetricsSnapshot) {
        snap.push_counter("server.connections_accepted", self.connections_accepted.get());
        snap.push_counter("server.connections_rejected", self.connections_rejected.get());
        snap.push_counter("server.requests", self.requests.get());
        snap.push_counter("server.errors", self.errors.get());
        snap.push_counter("server.bytes_in", self.bytes_in.get());
        snap.push_counter("server.bytes_out", self.bytes_out.get());
        snap.push_gauge("server.connections_active", self.active.load(Ordering::Relaxed) as f64);
        for kind in COMMAND_KINDS {
            let count = self.per_command[kind.index()].get();
            let hist = self.latency[kind.index()].snapshot();
            // Untouched commands stay out of the snapshot to keep it tight.
            if count > 0 {
                snap.push_counter(&format!("server.requests.{}", kind.label()), count);
            }
            if hist.count > 0 {
                snap.histograms
                    .push((format!("server.latency.{}_micros", kind.label()), hist));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_is_case_insensitive_and_total() {
        assert_eq!(CommandKind::classify(b"set"), CommandKind::Set);
        assert_eq!(CommandKind::classify(b"ShUtDoWn"), CommandKind::Shutdown);
        assert_eq!(CommandKind::classify(b"FLUSHALL"), CommandKind::Other);
        assert_eq!(CommandKind::classify(b""), CommandKind::Other);
        assert_eq!(CommandKind::classify(&[0xff; 32]), CommandKind::Other);
    }

    #[test]
    fn augment_exports_the_server_family() {
        let m = ServerMetrics::new();
        m.connection_opened();
        m.record_request(CommandKind::Set);
        m.record_request(CommandKind::Set);
        m.record_request(CommandKind::Query);
        m.record_latency(CommandKind::Set, 120);
        m.bytes_in.add(64);
        m.bytes_out.add(128);

        let mut snap = MetricsSnapshot { dataset: "d".into(), shards: 1, ..Default::default() };
        m.augment(&mut snap);
        assert_eq!(snap.counter("server.requests"), 3);
        assert_eq!(snap.counter("server.requests.set"), 2);
        assert_eq!(snap.counter("server.requests.query"), 1);
        assert_eq!(snap.counter("server.requests.get"), 0, "untouched command absent");
        assert_eq!(snap.gauge("server.connections_active"), Some(1.0));
        assert_eq!(snap.histogram("server.latency.set_micros").unwrap().count, 1);
        assert!(snap.histogram("server.latency.query_micros").is_none());

        m.connection_closed();
        let mut snap = MetricsSnapshot::default();
        m.augment(&mut snap);
        assert_eq!(snap.gauge("server.connections_active"), Some(0.0));
    }
}
