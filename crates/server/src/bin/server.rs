//! The `server` binary: serve a document store over RESP/TCP.
//!
//! ```text
//! server [--addr HOST:PORT] [--dataset NAME] [--layout open|vb|apax|amax]
//!        [--shards N] [--dir PATH] [--max-conns N] [--background]
//!        [--sync-every N]
//! ```
//!
//! Without `--dir` the store is in-memory (useful for benchmarks); with it,
//! the dataset is durable and reopened across restarts. The process runs
//! until a client sends `SHUTDOWN`, then drains connections, syncs the
//! store, and exits.

use std::path::PathBuf;
use std::process::ExitCode;

use docstore::Layout;
use server::{Server, ServerConfig};

fn usage() -> &'static str {
    "usage: server [--addr HOST:PORT] [--dataset NAME] [--layout open|vb|apax|amax]\n\
     \x20             [--shards N] [--dir PATH] [--max-conns N] [--background]\n\
     \x20             [--sync-every N]"
}

fn parse_args() -> Result<ServerConfig, String> {
    let mut config = ServerConfig { addr: "127.0.0.1:6399".to_string(), ..ServerConfig::default() };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--dataset" => config.dataset = value("--dataset")?,
            "--layout" => {
                config.layout = match value("--layout")?.to_ascii_lowercase().as_str() {
                    "open" => Layout::Open,
                    "vb" => Layout::Vb,
                    "apax" => Layout::Apax,
                    "amax" => Layout::Amax,
                    other => return Err(format!("unknown layout '{other}'")),
                }
            }
            "--shards" => {
                config.shards = value("--shards")?
                    .parse()
                    .map_err(|_| "--shards needs an integer".to_string())?
            }
            "--dir" => config.durability_dir = Some(PathBuf::from(value("--dir")?)),
            "--max-conns" => {
                config.max_connections = value("--max-conns")?
                    .parse()
                    .map_err(|_| "--max-conns needs an integer".to_string())?
            }
            "--background" => config.background = true,
            "--sync-every" => {
                config.sync_every = value("--sync-every")?
                    .parse()
                    .map_err(|_| "--sync-every needs an integer".to_string())?
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let durable = config.durability_dir.is_some();
    let handle = match Server::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "listening on {} ({}); send SHUTDOWN to stop",
        handle.addr(),
        if durable { "durable" } else { "in-memory" }
    );
    handle.join();
    println!("drained and synced, bye");
    ExitCode::SUCCESS
}
