//! Property-based tests for the document model: arbitrary values survive a
//! print → parse round trip, and the total order really is a total order.

use docmodel::{parse_json, to_json, to_json_pretty, total_cmp, Value};
use proptest::prelude::*;
use std::cmp::Ordering;

/// Strategy producing arbitrary documents of bounded depth/size.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite doubles only: NaN/Inf intentionally do not round-trip
        // through JSON (they serialize as null).
        (-1e12f64..1e12f64).prop_map(Value::Double),
        "[a-zA-Z0-9 _\\-\u{00e9}\u{4e16}]{0,24}".prop_map(Value::String),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..6).prop_map(|fields| {
                // Deduplicate keys: objects keep one binding per key.
                let mut out: Vec<(String, Value)> = Vec::new();
                for (k, v) in fields {
                    if let Some(slot) = out.iter_mut().find(|(ek, _)| *ek == k) {
                        slot.1 = v;
                    } else {
                        out.push((k, v));
                    }
                }
                Value::Object(out)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(v in arb_value()) {
        let text = to_json(&v);
        let reparsed = parse_json(&text).expect("printed JSON must reparse");
        prop_assert_eq!(&reparsed, &v);
        let pretty = to_json_pretty(&v);
        let reparsed_pretty = parse_json(&pretty).expect("pretty JSON must reparse");
        prop_assert_eq!(&reparsed_pretty, &v);
    }

    #[test]
    fn total_order_is_reflexive_and_antisymmetric(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(total_cmp(&a, &a), Ordering::Equal);
        let ab = total_cmp(&a, &b);
        let ba = total_cmp(&b, &a);
        prop_assert_eq!(ab, ba.reverse());
    }

    #[test]
    fn total_order_is_transitive(mut vals in prop::collection::vec(arb_value(), 3)) {
        vals.sort_by(total_cmp);
        prop_assert!(total_cmp(&vals[0], &vals[1]) != Ordering::Greater);
        prop_assert!(total_cmp(&vals[1], &vals[2]) != Ordering::Greater);
        prop_assert!(total_cmp(&vals[0], &vals[2]) != Ordering::Greater);
    }

    #[test]
    fn atomic_count_matches_path_free_leaf_walk(v in arb_value()) {
        fn count(v: &Value) -> usize {
            match v {
                Value::Array(a) => a.iter().map(count).sum(),
                Value::Object(o) => o.iter().map(|(_, v)| count(v)).sum(),
                _ => 1,
            }
        }
        prop_assert_eq!(v.atomic_count(), count(&v));
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,64}") {
        // Errors are fine; panics are not.
        let _ = parse_json(&s);
    }
}
