//! Total ordering and hashing over [`Value`]s.
//!
//! LSM components keep records sorted by primary key; secondary indexes sort
//! by arbitrary field values; zone maps (the min/max prefixes on AMAX Page 0)
//! compare values of possibly different dynamic types. All of those need a
//! *total* order even though JSON values are only partially ordered, so we
//! define the usual document-store convention: values order first by a type
//! rank (null < bool < numbers < string < array < object), then within a
//! type by their natural order. Ints and doubles compare numerically as one
//! class, matching SQL++ comparison semantics.

use std::cmp::Ordering;

use crate::value::Value;

/// Rank used to order values of different dynamic types.
fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Double(_) => 2,
        Value::String(_) => 3,
        Value::Array(_) => 4,
        Value::Object(_) => 5,
    }
}

/// Compare two values under the document-store total order.
pub fn total_cmp(a: &Value, b: &Value) -> Ordering {
    let (ra, rb) = (type_rank(a), type_rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Double(x), Value::Double(y)) => x.total_cmp(y),
        (Value::Int(x), Value::Double(y)) => (*x as f64).total_cmp(y),
        (Value::Double(x), Value::Int(y)) => x.total_cmp(&(*y as f64)),
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) => {
            for (xe, ye) in x.iter().zip(y.iter()) {
                let c = total_cmp(xe, ye);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Object(x), Value::Object(y)) => {
            for ((xk, xv), (yk, yv)) in x.iter().zip(y.iter()) {
                let c = xk.cmp(yk);
                if c != Ordering::Equal {
                    return c;
                }
                let c = total_cmp(xv, yv);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        // Unreachable: ranks matched above.
        _ => Ordering::Equal,
    }
}

/// Extension trait exposing the total order as a method and providing a
/// totally-ordered wrapper for use as `BTreeMap` keys.
pub trait TotalOrd {
    /// Compare under the document-store total order.
    fn doc_cmp(&self, other: &Self) -> Ordering;
}

impl TotalOrd for Value {
    fn doc_cmp(&self, other: &Self) -> Ordering {
        total_cmp(self, other)
    }
}

/// A wrapper making [`Value`] usable as an ordered map key (e.g. memtable
/// keys, secondary index keys). Equality follows the same total order, so
/// `Int(1)` and `Double(1.0)` are treated as equal keys — the convention used
/// by SQL++ group-by and index lookups.
#[derive(Debug, Clone)]
pub struct OrderedValue(pub Value);

impl PartialEq for OrderedValue {
    fn eq(&self, other: &Self) -> bool {
        total_cmp(&self.0, &other.0) == Ordering::Equal
    }
}
impl Eq for OrderedValue {}
impl PartialOrd for OrderedValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedValue {
    fn cmp(&self, other: &Self) -> Ordering {
        total_cmp(&self.0, &other.0)
    }
}

impl From<Value> for OrderedValue {
    fn from(v: Value) -> Self {
        OrderedValue(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;
    use std::collections::BTreeMap;

    #[test]
    fn type_ranks_order_across_types() {
        let values = [
            Value::Null,
            Value::Bool(false),
            Value::Int(0),
            Value::from("a"),
            Value::Array(vec![]),
            Value::empty_object(),
        ];
        for w in values.windows(2) {
            assert_eq!(total_cmp(&w[0], &w[1]), Ordering::Less);
        }
    }

    #[test]
    fn numeric_comparison_across_int_and_double() {
        assert_eq!(total_cmp(&Value::Int(2), &Value::Double(2.0)), Ordering::Equal);
        assert_eq!(total_cmp(&Value::Int(2), &Value::Double(2.5)), Ordering::Less);
        assert_eq!(
            total_cmp(&Value::Double(-1.0), &Value::Int(3)),
            Ordering::Less
        );
    }

    #[test]
    fn string_and_bool_ordering() {
        assert_eq!(
            total_cmp(&Value::from("abc"), &Value::from("abd")),
            Ordering::Less
        );
        assert_eq!(
            total_cmp(&Value::Bool(false), &Value::Bool(true)),
            Ordering::Less
        );
    }

    #[test]
    fn array_lexicographic_ordering() {
        let a = doc!([1, 2]);
        let b = doc!([1, 2, 0]);
        let c = doc!([1, 3]);
        assert_eq!(total_cmp(&a, &b), Ordering::Less);
        assert_eq!(total_cmp(&b, &c), Ordering::Less);
        assert_eq!(total_cmp(&a, &a), Ordering::Equal);
    }

    #[test]
    fn object_field_order_matters() {
        let a = doc!({"a": 1, "b": 2});
        let b = doc!({"a": 1, "b": 3});
        assert_eq!(total_cmp(&a, &b), Ordering::Less);
        assert_eq!(total_cmp(&a, &a), Ordering::Equal);
    }

    #[test]
    fn ordered_value_works_as_map_key() {
        let mut m: BTreeMap<OrderedValue, i32> = BTreeMap::new();
        m.insert(Value::Int(5).into(), 1);
        m.insert(Value::Double(5.0).into(), 2); // same key under the total order
        m.insert(Value::from("z").into(), 3);
        assert_eq!(m.len(), 2);
        assert_eq!(m[&OrderedValue(Value::Int(5))], 2);
        let keys: Vec<_> = m.keys().map(|k| k.0.clone()).collect();
        assert_eq!(total_cmp(&keys[0], &keys[1]), Ordering::Less);
    }

    #[test]
    fn nan_double_has_a_stable_position() {
        // total_cmp on doubles is IEEE totalOrder: NaN sorts after +inf.
        assert_eq!(
            total_cmp(&Value::Double(f64::NAN), &Value::Double(f64::INFINITY)),
            Ordering::Greater
        );
    }
}
