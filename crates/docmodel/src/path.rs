//! Field paths: the addressing scheme for columns and query projections.
//!
//! A [`Path`] names a (possibly nested, possibly repeated) value inside a
//! document, e.g. `games[*].consoles[*]` from the paper's running example.
//! Paths are how the schema crate names inferred columns, how the shredder
//! maps atomic values to column writers, and how queries declare which
//! columns they need (so AMAX can read only those megapages).

use std::fmt;

use crate::value::Value;

/// One step of a [`Path`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathStep {
    /// Descend into an object field with this name.
    Field(String),
    /// Descend into *all* elements of an array (`[*]` in the paper's
    /// notation). Individual-index addressing is not needed by the columnar
    /// format: arrays are always shredded element-wise.
    AllElements,
    /// Descend into the branch of a union node with the given type name
    /// (e.g. `"string"` or `"object"`). Union steps are "logical guides" —
    /// they do not appear in the document text — but they are needed so that
    /// two columns coming from the two alternatives of a union have distinct
    /// path identities.
    Union(&'static str),
}

impl fmt::Display for PathStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathStep::Field(name) => write!(f, ".{name}"),
            PathStep::AllElements => write!(f, "[*]"),
            PathStep::Union(t) => write!(f, "<{t}>"),
        }
    }
}

/// A path from the record root to a value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Path {
    steps: Vec<PathStep>,
}

impl Path {
    /// The empty path (the record root).
    pub fn root() -> Path {
        Path { steps: Vec::new() }
    }

    /// Build a path from field names only (no array or union steps), e.g.
    /// `Path::fields(&["name", "first"])`.
    pub fn fields(names: &[&str]) -> Path {
        Path {
            steps: names
                .iter()
                .map(|n| PathStep::Field((*n).to_string()))
                .collect(),
        }
    }

    /// Parse a dotted/starred textual path such as `"games[*].title"` or
    /// `"name.first"`. This is the format used by the query API and the
    /// benchmark configuration files.
    pub fn parse(text: &str) -> Path {
        let mut steps = Vec::new();
        for part in text.split('.') {
            if part.is_empty() {
                continue;
            }
            let mut rest = part;
            // A component may carry one or more trailing "[*]" markers.
            while let Some(idx) = rest.find("[*]") {
                let (head, tail) = rest.split_at(idx);
                if !head.is_empty() {
                    steps.push(PathStep::Field(head.to_string()));
                }
                steps.push(PathStep::AllElements);
                rest = &tail[3..];
            }
            if !rest.is_empty() {
                steps.push(PathStep::Field(rest.to_string()));
            }
        }
        Path { steps }
    }

    /// The steps of the path, root-first.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` for the root path.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Append a field step.
    pub fn child(&self, name: &str) -> Path {
        let mut steps = self.steps.clone();
        steps.push(PathStep::Field(name.to_string()));
        Path { steps }
    }

    /// Append an `[*]` step.
    pub fn elements(&self) -> Path {
        let mut steps = self.steps.clone();
        steps.push(PathStep::AllElements);
        Path { steps }
    }

    /// Append a union-branch step.
    pub fn union_branch(&self, type_name: &'static str) -> Path {
        let mut steps = self.steps.clone();
        steps.push(PathStep::Union(type_name));
        Path { steps }
    }

    /// `true` if `self` is a prefix of (or equal to) `other`.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        other.steps.len() >= self.steps.len() && other.steps[..self.steps.len()] == self.steps[..]
    }

    /// Number of array (`[*]`) steps in the path — the column's *repetition
    /// depth*. A column under two nested arrays (e.g. `games[*].consoles[*]`)
    /// has repeated depth 2, which is also its `max-delimiter + 1` in the
    /// extended Dremel encoding.
    pub fn repeated_depth(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, PathStep::AllElements))
            .count()
    }

    /// Collect every value addressed by this path in `doc`. Array steps fan
    /// out over all elements; union steps match values whose dynamic type
    /// equals the branch name. Missing fields simply contribute nothing.
    pub fn evaluate<'a>(&self, doc: &'a Value) -> Vec<&'a Value> {
        let mut current: Vec<&'a Value> = vec![doc];
        for step in &self.steps {
            let mut next = Vec::with_capacity(current.len());
            for v in current {
                match step {
                    PathStep::Field(name) => {
                        if let Some(child) = v.get_field(name) {
                            next.push(child);
                        }
                    }
                    PathStep::AllElements => {
                        if let Some(elems) = v.as_array() {
                            next.extend(elems.iter());
                        }
                    }
                    PathStep::Union(type_name) => {
                        if v.kind().name() == *type_name {
                            next.push(v);
                        }
                    }
                }
            }
            current = next;
        }
        current
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, "$");
        }
        let mut first = true;
        for step in &self.steps {
            match step {
                PathStep::Field(name) => {
                    if first {
                        write!(f, "{name}")?;
                    } else {
                        write!(f, ".{name}")?;
                    }
                }
                PathStep::AllElements => write!(f, "[*]")?,
                PathStep::Union(t) => write!(f, "<{t}>")?,
            }
            first = false;
        }
        Ok(())
    }
}

impl From<&str> for Path {
    fn from(text: &str) -> Self {
        Path::parse(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    #[test]
    fn parse_and_display_roundtrip() {
        for text in [
            "id",
            "name.first",
            "games[*].title",
            "games[*].consoles[*]",
            "a.b.c",
        ] {
            let p = Path::parse(text);
            assert_eq!(p.to_string(), text);
        }
        assert_eq!(Path::root().to_string(), "$");
    }

    #[test]
    fn repeated_depth_counts_array_steps() {
        assert_eq!(Path::parse("id").repeated_depth(), 0);
        assert_eq!(Path::parse("games[*].title").repeated_depth(), 1);
        assert_eq!(Path::parse("games[*].consoles[*]").repeated_depth(), 2);
    }

    #[test]
    fn prefix_relation() {
        let a = Path::parse("games[*]");
        let b = Path::parse("games[*].title");
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(Path::root().is_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
    }

    #[test]
    fn evaluate_fans_out_over_arrays() {
        let rec = doc!({
            "id": 2,
            "name": {"first": "John", "last": "Smith"},
            "games": [
                {"title": "NBA", "consoles": ["PS4", "PC"]},
                {"title": "NFL", "consoles": ["XBOX"]}
            ]
        });
        let titles = Path::parse("games[*].title").evaluate(&rec);
        assert_eq!(titles.len(), 2);
        assert_eq!(titles[0].as_str(), Some("NBA"));
        let consoles = Path::parse("games[*].consoles[*]").evaluate(&rec);
        assert_eq!(consoles.len(), 3);
        assert!(Path::parse("missing.path").evaluate(&rec).is_empty());
    }

    #[test]
    fn evaluate_union_step_filters_by_type() {
        let rec = doc!({"name": "John"});
        let rec2 = doc!({"name": {"first": "Ann"}});
        let p = Path::parse("name").union_branch("string");
        assert_eq!(p.evaluate(&rec).len(), 1);
        assert_eq!(p.evaluate(&rec2).len(), 0);
    }

    #[test]
    fn builder_steps() {
        let p = Path::root().child("games").elements().child("title");
        assert_eq!(p, Path::parse("games[*].title"));
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(Path::root().is_empty());
    }
}
