//! # docmodel — schemaless document data model
//!
//! This crate provides the *logical* data model shared by every layer of the
//! reproduction: a JSON-like [`Value`] type that can represent the flexible,
//! schemaless documents a document store ingests, together with a JSON text
//! parser ([`parse_json`]), a printer ([`to_json`]), dotted field
//! [`path::Path`]s used by queries and schema inference, and a total ordering
//! over values used for primary keys and zone-map filters.
//!
//! Document stores (MongoDB, Couchbase, AsterixDB) do not require a schema:
//! two records of the same collection may disagree on which fields exist and
//! even on the *type* of a field. The model therefore allows arbitrary
//! heterogeneity — the schema crate later *infers* a structure (with union
//! nodes) from observed values.
//!
//! The model intentionally distinguishes `Null` (an explicit JSON `null`)
//! from a field that is simply absent. SQL++ — the query language of the
//! system the paper extends — makes the same distinction, and the extended
//! Dremel format encodes both through definition levels.

pub mod cmp;
pub mod parse;
pub mod path;
pub mod print;
pub mod value;

pub use cmp::{total_cmp, TotalOrd};
pub use parse::{parse_json, parse_json_stream, ParseError};
pub use path::{Path, PathStep};
pub use print::{to_json, to_json_pretty};
pub use value::{Value, ValueKind};

/// Convenience macro for building [`Value`] objects in tests and examples.
///
/// ```
/// use docmodel::doc;
/// let v = doc!({"id": 1, "name": {"first": "Ann"}, "tags": ["a", "b"]});
/// assert_eq!(v.get_path_str("name.first").unwrap().as_str(), Some("Ann"));
/// ```
#[macro_export]
macro_rules! doc {
    (null) => { $crate::Value::Null };
    ([ $( $elem:tt ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::doc!($elem) ),* ])
    };
    ({ $( $key:tt : $val:tt ),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::doc!($val)) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod macro_tests {
    use crate::Value;

    #[test]
    fn doc_macro_builds_nested_values() {
        let v = doc!({"id": 7, "nested": {"x": [1, 2, 3], "ok": true}, "n": null});
        assert_eq!(v.get_field("id"), Some(&Value::Int(7)));
        assert_eq!(
            v.get_path_str("nested.x").unwrap().as_array().unwrap().len(),
            3
        );
        assert_eq!(v.get_field("n"), Some(&Value::Null));
    }

    #[test]
    fn doc_macro_scalars() {
        assert_eq!(doc!(3.5), Value::Double(3.5));
        assert_eq!(doc!("hi"), Value::String("hi".to_string()));
        assert_eq!(doc!(false), Value::Bool(false));
    }
}
