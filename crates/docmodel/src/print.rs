//! JSON serialization of [`Value`]s.
//!
//! Two printers are provided: a compact one ([`to_json`]) used when measuring
//! raw input sizes and writing feed files, and a pretty printer
//! ([`to_json_pretty`]) for examples and debugging output.

use crate::value::Value;

/// Serialize a value to compact JSON (no extra whitespace).
pub fn to_json(value: &Value) -> String {
    let mut out = String::with_capacity(value.approx_size() * 2);
    write_value(value, &mut out);
    out
}

/// Serialize a value to indented, human-readable JSON.
pub fn to_json_pretty(value: &Value) -> String {
    let mut out = String::with_capacity(value.approx_size() * 2);
    write_pretty(value, &mut out, 0);
    out
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Double(d) => write_double(*d, out),
        Value::String(s) => write_string(s, out),
        Value::Array(elems) => {
            out.push('[');
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(e, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Value, out: &mut String, indent: usize) {
    match value {
        Value::Array(elems) if !elems.is_empty() => {
            out.push_str("[\n");
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(e, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(v, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_double(d: f64, out: &mut String) {
    if d.is_nan() || d.is_infinite() {
        // JSON has no NaN/Inf; document stores typically store them as null.
        out.push_str("null");
    } else if d == d.trunc() && d.abs() < 1e15 {
        // Keep a trailing ".0" so the value re-parses as a double, not an int.
        out.push_str(&format!("{d:.1}"));
    } else {
        out.push_str(&format!("{d}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_json;

    #[test]
    fn compact_output() {
        let v = parse_json(r#"{"a": [1, 2.5, "x"], "b": null}"#).unwrap();
        assert_eq!(to_json(&v), r#"{"a":[1,2.5,"x"],"b":null}"#);
    }

    #[test]
    fn doubles_keep_fraction_marker() {
        assert_eq!(to_json(&Value::Double(3.0)), "3.0");
        let reparsed = parse_json("3.0").unwrap();
        assert_eq!(reparsed, Value::Double(3.0));
    }

    #[test]
    fn non_finite_doubles_become_null() {
        assert_eq!(to_json(&Value::Double(f64::NAN)), "null");
        assert_eq!(to_json(&Value::Double(f64::INFINITY)), "null");
    }

    #[test]
    fn escapes_strings() {
        let v = Value::from("line\nbreak \"quoted\" \\ tab\t end\u{0001}");
        let printed = to_json(&v);
        assert_eq!(parse_json(&printed).unwrap(), v);
    }

    #[test]
    fn pretty_output_reparses() {
        let v = parse_json(r#"{"a": [1, {"b": [true, null]}], "c": {}}"#).unwrap();
        let pretty = to_json_pretty(&v);
        assert!(pretty.contains('\n'));
        assert_eq!(parse_json(&pretty).unwrap(), v);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_json(&Value::Array(vec![])), "[]");
        assert_eq!(to_json(&Value::empty_object()), "{}");
        assert_eq!(to_json_pretty(&Value::Array(vec![])), "[]");
    }
}
