//! A small, dependency-free JSON parser producing [`Value`]s.
//!
//! The parser is a straightforward recursive-descent scanner over the input
//! bytes. It supports the full JSON grammar (RFC 8259) with two pragmatic
//! extensions that show up in real document-store feeds:
//!
//! * integers that fit in `i64` parse to [`Value::Int`]; everything else
//!   (fractions, exponents, overflow) parses to [`Value::Double`], matching
//!   how AsterixDB's feed adapter types numbers;
//! * [`parse_json_stream`] accepts newline- or whitespace-delimited streams
//!   of documents ("JSON lines"), the usual shape of ingestion feeds.

use std::fmt;

use crate::value::Value;

/// Error produced when the input is not valid JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset at which the error was detected.
    pub offset: usize,
    /// Human readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a single JSON document into a [`Value`].
///
/// Trailing whitespace is allowed; trailing non-whitespace content is an
/// error (use [`parse_json_stream`] for feeds).
pub fn parse_json(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser::new(input);
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Parse a stream of whitespace-separated JSON documents (JSON lines).
pub fn parse_json_stream(input: &str) -> Result<Vec<Value>, ParseError> {
    let mut p = Parser::new(input);
    let mut out = Vec::new();
    loop {
        p.skip_ws();
        if p.pos == p.bytes.len() {
            break;
        }
        out.push(p.parse_value()?);
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') | Some(b'f') => self.parse_bool(),
            Some(b'n') => self.parse_null(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(format!("unexpected character '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            // Last binding wins for duplicate keys, as in most JSON readers.
            if let Some(slot) = fields.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = value;
            } else {
                fields.push((key, value));
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
        Ok(Value::Object(fields))
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elems));
        }
        loop {
            elems.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
        Ok(Value::Array(elems))
    }

    fn parse_bool(&mut self) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(Value::Bool(true))
        } else if self.bytes[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(Value::Bool(false))
        } else {
            Err(self.err("invalid literal (expected true/false)"))
        }
    }

    fn parse_null(&mut self) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            Ok(Value::Null)
        } else {
            Err(self.err("invalid literal (expected null)"))
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Double)
            .map_err(|_| self.err(format!("invalid number literal '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.bump().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => break,
                b'\\' => {
                    let esc = self.bump().ok_or_else(|| self.err("unterminated escape"))?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Handle surrogate pairs for characters outside the BMP.
                            if (0xD800..=0xDBFF).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                    );
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..=0xDFFF).contains(&cp) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid unicode escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(self.err(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume a full UTF-8 sequence starting at `b`.
                    let len = utf8_len(b);
                    if len == 1 {
                        out.push(b as char);
                    } else {
                        let end = self.pos - 1 + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated utf-8 sequence"));
                        }
                        let s = std::str::from_utf8(&self.bytes[self.pos - 1..end])
                            .map_err(|_| self.err("invalid utf-8 in string"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
        Ok(out)
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            cp = cp * 16 + digit;
        }
        Ok(cp)
    }
}

fn utf8_len(first_byte: u8) -> usize {
    if first_byte < 0x80 {
        1
    } else if first_byte >> 5 == 0b110 {
        2
    } else if first_byte >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::to_json;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("42").unwrap(), Value::Int(42));
        assert_eq!(parse_json("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse_json("3.25").unwrap(), Value::Double(3.25));
        assert_eq!(parse_json("1e3").unwrap(), Value::Double(1000.0));
        assert_eq!(parse_json("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_json("false").unwrap(), Value::Bool(false));
        assert_eq!(parse_json("null").unwrap(), Value::Null);
        assert_eq!(parse_json("\"hi\"").unwrap(), Value::from("hi"));
    }

    #[test]
    fn integer_overflow_falls_back_to_double() {
        let v = parse_json("99999999999999999999999").unwrap();
        assert!(matches!(v, Value::Double(_)));
    }

    #[test]
    fn parses_paper_figure4_record() {
        let text = r#"{
            "id": 2,
            "name": {"first": "John", "last": "Smith"},
            "games": [
                {"title": "NBA", "consoles": ["PS4", "PC"]},
                {"title": "NFL", "consoles": ["XBOX"]}
            ]
        }"#;
        let v = parse_json(text).unwrap();
        assert_eq!(v.get_field("id"), Some(&Value::Int(2)));
        let games = v.get_field("games").unwrap().as_array().unwrap();
        assert_eq!(games.len(), 2);
        assert_eq!(
            games[1].get_field("consoles").unwrap().as_array().unwrap()[0],
            Value::from("XBOX")
        );
    }

    #[test]
    fn handles_escapes_and_unicode() {
        let v = parse_json(r#""a\nb\t\"q\" é 😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\nb\t\"q\" é 😀");
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse_json(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get_field("a"), Some(&Value::Int(2)));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("tru").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("").is_err());
        assert!(parse_json("-").is_err());
    }

    #[test]
    fn stream_parsing() {
        let docs = parse_json_stream("{\"a\":1}\n{\"a\":2}\n  {\"a\":3}").unwrap();
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[2].get_field("a"), Some(&Value::Int(3)));
        assert!(parse_json_stream("").unwrap().is_empty());
    }

    #[test]
    fn roundtrip_print_parse() {
        let text = r#"{"id":1,"xs":[1,2.5,"s",null,true,{"k":[]}],"o":{}}"#;
        let v = parse_json(text).unwrap();
        let printed = to_json(&v);
        let reparsed = parse_json(&printed).unwrap();
        assert_eq!(v, reparsed);
    }
}
