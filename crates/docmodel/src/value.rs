//! The [`Value`] type: a JSON-like, schemaless document value.
//!
//! Objects preserve insertion order (a `Vec` of key/value pairs) because
//! document stores round-trip documents byte-for-byte as users wrote them and
//! because the schema-inference pass benefits from a stable field order.

use std::fmt;

/// The kind (dynamic type tag) of a [`Value`].
///
/// `ValueKind` is what the schema crate records in inferred schema leaves and
/// what union nodes discriminate on: two values with different kinds observed
/// under the same field force a union.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueKind {
    /// Explicit JSON `null`.
    Null,
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 double.
    Double,
    /// UTF-8 string.
    String,
    /// Ordered list of heterogeneous values.
    Array,
    /// Ordered set of key/value pairs.
    Object,
}

impl ValueKind {
    /// `true` for kinds that carry a scalar payload (everything but
    /// arrays/objects). Nulls are treated as atomic: they terminate a path.
    pub fn is_atomic(self) -> bool {
        !matches!(self, ValueKind::Array | ValueKind::Object)
    }

    /// Short lowercase name used by schema pretty-printing and union keys
    /// (mirrors the paper's Figure 6 where union children are keyed by the
    /// name of their type).
    pub fn name(self) -> &'static str {
        match self {
            ValueKind::Null => "null",
            ValueKind::Bool => "boolean",
            ValueKind::Int => "int",
            ValueKind::Double => "double",
            ValueKind::String => "string",
            ValueKind::Array => "array",
            ValueKind::Object => "object",
        }
    }
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A schemaless, JSON-like document value.
///
/// This is the logical representation used at ingestion time (before the
/// tuple compactor turns records into the vector-based physical format) and
/// at query time (after record assembly from columns).
#[derive(Debug, Clone, PartialEq)]
#[derive(Default)]
pub enum Value {
    /// Explicit `null`.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer. The paper's datasets use integer keys,
    /// timestamps, durations and sensor ids.
    Int(i64),
    /// Double-precision float (sensor readings, coordinates, ...).
    Double(f64),
    /// UTF-8 string.
    String(String),
    /// Array of (possibly heterogeneous) values.
    Array(Vec<Value>),
    /// Object: insertion-ordered key/value pairs. Keys are unique; the last
    /// binding wins when building with [`Value::set_field`].
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Dynamic type of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Null => ValueKind::Null,
            Value::Bool(_) => ValueKind::Bool,
            Value::Int(_) => ValueKind::Int,
            Value::Double(_) => ValueKind::Double,
            Value::String(_) => ValueKind::String,
            Value::Array(_) => ValueKind::Array,
            Value::Object(_) => ValueKind::Object,
        }
    }

    /// Empty object, the starting point for builder-style construction.
    pub fn empty_object() -> Value {
        Value::Object(Vec::new())
    }

    /// `true` if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` for atomic (non-nested) values, including `null`.
    pub fn is_atomic(&self) -> bool {
        self.kind().is_atomic()
    }

    /// Borrow as bool if the value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as i64 if the value is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Borrow as f64 if the value is numeric (int or double).
    ///
    /// Queries in the paper (e.g. `MAX(r.temp)`) aggregate over numeric
    /// columns regardless of whether a particular record stored an int or a
    /// double, so numeric widening lives here.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Borrow as &str if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Borrow the element slice if the value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a.as_slice()),
            _ => None,
        }
    }

    /// Borrow the field slice if the value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o.as_slice()),
            _ => None,
        }
    }

    /// Look up a top-level field of an object. Returns `None` both when the
    /// value is not an object and when the field is absent (missing).
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Set (or replace) a top-level field of an object. Panics if the value
    /// is not an object — the builder API is only meant for objects.
    pub fn set_field(&mut self, name: impl Into<String>, value: Value) -> &mut Value {
        let name = name.into();
        match self {
            Value::Object(fields) => {
                if let Some(slot) = fields.iter_mut().find(|(k, _)| *k == name) {
                    slot.1 = value;
                } else {
                    fields.push((name, value));
                }
            }
            other => panic!("set_field on non-object value: {:?}", other.kind()),
        }
        self
    }

    /// Builder-style variant of [`Value::set_field`].
    pub fn with_field(mut self, name: impl Into<String>, value: Value) -> Value {
        self.set_field(name, value);
        self
    }

    /// Navigate a dotted path such as `"name.first"` or
    /// `"entities.hashtags"`. Array steps are not supported by this
    /// string-based helper (use [`crate::Path`] for `[*]` semantics); it is a
    /// convenience for tests, examples and simple scalar projections.
    pub fn get_path_str(&self, dotted: &str) -> Option<&Value> {
        let mut cur = self;
        for step in dotted.split('.') {
            cur = cur.get_field(step)?;
        }
        Some(cur)
    }

    /// Number of key/value pairs (objects), elements (arrays), or 1 for
    /// atomic values. Used by workload generators and sanity checks.
    pub fn len(&self) -> usize {
        match self {
            Value::Array(a) => a.len(),
            Value::Object(o) => o.len(),
            _ => 1,
        }
    }

    /// `true` when an array/object has no children.
    pub fn is_empty(&self) -> bool {
        match self {
            Value::Array(a) => a.is_empty(),
            Value::Object(o) => o.is_empty(),
            _ => false,
        }
    }

    /// Rough number of bytes this value would occupy in a naive row
    /// serialization (used by the in-memory component budget accounting and
    /// by the data generators to hit target record sizes).
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Double(_) => 8,
            Value::String(s) => 4 + s.len(),
            Value::Array(a) => 4 + a.iter().map(Value::approx_size).sum::<usize>(),
            Value::Object(o) => {
                4 + o
                    .iter()
                    .map(|(k, v)| 2 + k.len() + v.approx_size())
                    .sum::<usize>()
            }
        }
    }

    /// Count of atomic (leaf) values in the document, counting `null`s.
    /// This is the number of (def-level, value) entries the shredder will
    /// emit across all columns for this record, modulo union bookkeeping.
    pub fn atomic_count(&self) -> usize {
        match self {
            Value::Array(a) => a.iter().map(Value::atomic_count).sum(),
            Value::Object(o) => o.iter().map(|(_, v)| v.atomic_count()).sum(),
            _ => 1,
        }
    }

    /// Maximum nesting depth: atomic values have depth 0, `{"a": [1]}` has
    /// depth 2. Used by tests and by the Open-format writer which needs a
    /// pointer per nesting level.
    pub fn depth(&self) -> usize {
        match self {
            Value::Array(a) => 1 + a.iter().map(Value::depth).max().unwrap_or(0),
            Value::Object(o) => 1 + o.iter().map(|(_, v)| v.depth()).max().unwrap_or(0),
            _ => 0,
        }
    }
}


impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<f64> for Value {
    fn from(d: f64) -> Self {
        Value::Double(d)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::print::to_json(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gamer_record() -> Value {
        // Record 2 from Figure 4a of the paper.
        Value::empty_object()
            .with_field("id", Value::Int(2))
            .with_field(
                "name",
                Value::empty_object()
                    .with_field("first", Value::from("John"))
                    .with_field("last", Value::from("Smith")),
            )
            .with_field(
                "games",
                Value::Array(vec![
                    Value::empty_object()
                        .with_field("title", Value::from("NBA"))
                        .with_field("consoles", Value::from(vec!["PS4", "PC"])),
                    Value::empty_object()
                        .with_field("title", Value::from("NFL"))
                        .with_field("consoles", Value::from(vec!["XBOX"])),
                ]),
            )
    }

    #[test]
    fn kind_reports_dynamic_type() {
        assert_eq!(Value::Null.kind(), ValueKind::Null);
        assert_eq!(Value::Bool(true).kind(), ValueKind::Bool);
        assert_eq!(Value::Int(1).kind(), ValueKind::Int);
        assert_eq!(Value::Double(1.5).kind(), ValueKind::Double);
        assert_eq!(Value::from("x").kind(), ValueKind::String);
        assert_eq!(Value::Array(vec![]).kind(), ValueKind::Array);
        assert_eq!(Value::empty_object().kind(), ValueKind::Object);
    }

    #[test]
    fn field_access_and_paths() {
        let rec = gamer_record();
        assert_eq!(rec.get_field("id"), Some(&Value::Int(2)));
        assert_eq!(
            rec.get_path_str("name.last").and_then(Value::as_str),
            Some("Smith")
        );
        assert!(rec.get_path_str("name.middle").is_none());
        assert!(rec.get_path_str("does.not.exist").is_none());
    }

    #[test]
    fn set_field_replaces_existing_binding() {
        let mut v = Value::empty_object();
        v.set_field("a", Value::Int(1));
        v.set_field("a", Value::Int(2));
        assert_eq!(v.as_object().unwrap().len(), 1);
        assert_eq!(v.get_field("a"), Some(&Value::Int(2)));
    }

    #[test]
    #[should_panic(expected = "set_field on non-object")]
    fn set_field_panics_on_scalar() {
        let mut v = Value::Int(3);
        v.set_field("a", Value::Null);
    }

    #[test]
    fn numeric_widening() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("x").as_f64(), None);
    }

    #[test]
    fn structural_metrics() {
        let rec = gamer_record();
        // id, first, last, 2 titles, 3 consoles = 8 atomic values.
        assert_eq!(rec.atomic_count(), 8);
        assert_eq!(rec.depth(), 4); // root obj -> games array -> element obj -> consoles array
        assert!(rec.approx_size() > 0);
        assert!(!rec.is_empty());
        assert!(Value::Array(vec![]).is_empty());
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from(5u32), Value::Int(5));
        assert_eq!(Value::from(Some(7i64)), Value::Int(7));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
        assert_eq!(
            Value::from(vec![1i64, 2]),
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
    }
}
