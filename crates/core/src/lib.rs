//! # docstore — the public facade
//!
//! A small, user-facing API over the whole stack: create a [`Datastore`],
//! declare datasets with a storage layout, feed them JSON documents, and run
//! compositional analytical queries. This is the surface a downstream user
//! of the reproduction would program against; the examples in the repository
//! root use nothing else.
//!
//! Every dataset is a [`ShardedDataset`]: one or more [`LsmDataset`]
//! partitions, hash-partitioned by primary key. With `shards(1)` (the
//! default) it behaves exactly like a single LSM dataset; with more shards,
//! ingestion can run in parallel across partitions
//! ([`Datastore::ingest_parallel`], or [`Datastore::ingest_batch`] for
//! group-committed durable ingest) and queries fan out over the shards with
//! exact partial-aggregate merging. Query execution goes through
//! [`query::QueryEngine`]: the planner picks the access path — full scan,
//! key-only scan, or a secondary-index range probe when the filter implies a
//! range on the indexed path — and [`Datastore::explain`] shows the chosen
//! plan.
//!
//! Execution **streams**: scans pull the LSM merge cursor one record at a
//! time (memory bounded by one decoded leaf per component, not the
//! dataset), so `LIMIT`ed queries stop reading early. Two result shapes are
//! available — aggregate rows, and raw-column projections
//! ([`query::Query::select_paths`]: one key-ordered row per matching
//! record) — plus a cursor API for callers that want to iterate records
//! themselves: [`Datastore::scan_cursor`] / [`ShardedDataset::cursor`]
//! yield `(key, record)` pairs in global key order by k-way-merging the
//! per-shard snapshot streams.
//!
//! ```
//! use docstore::{Datastore, DatasetOptions, Layout};
//! use query::{Aggregate, ExecMode, Expr, Query};
//!
//! let mut store = Datastore::new();
//! store
//!     .create_dataset("gamers", DatasetOptions::new(Layout::Amax).key("id"))
//!     .unwrap();
//! store
//!     .ingest_json("gamers", r#"
//!         {"id": 1, "name": {"first": "Ann"}, "score": 62, "games": [{"title": "NBA"}]}
//!         {"id": 2, "name": {"first": "Bo"}, "score": 38}
//!     "#)
//!     .unwrap();
//! store.flush("gamers").unwrap();
//!
//! // SELECT name.first, COUNT(*), MAX(score), AVG(score) WHERE score >= 50 ...
//! let q = Query::select([
//!         Aggregate::Count,
//!         Aggregate::Max(docstore::Path::parse("score")),
//!         Aggregate::Avg(docstore::Path::parse("score")),
//!     ])
//!     .with_filter(Expr::ge("score", 50))
//!     .group_by("name.first");
//! let rows = store.query("gamers", &q, ExecMode::Compiled).unwrap();
//! assert_eq!(rows.len(), 1);
//! assert_eq!(rows[0].aggs[0], docstore::Value::Int(1));
//! assert!(store.explain("gamers", &q).unwrap().contains("full scan"));
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use docmodel::parse_json;
use lsm::{DatasetConfig, IngestStats, LsmDataset, Snapshot};
use query::{ExecMode, Query, QueryEngine, QueryRow};
use storage::pagestore::IoStats;
use telemetry::{Event, MetricsSnapshot};

pub use docmodel::{doc, Path, Value};
pub use lsm::{
    CompactionSpec, DatasetHealth, ReclaimReport, TieringPolicy, WorkerPool, WorkerState,
};
pub use query::{Aggregate, AnalyzeReport, Expr};
pub use storage::LayoutKind as Layout;
pub use storage::{LeafCache, LeafCacheStats};

/// Error type of the facade: storage-engine failures, query-layer failures
/// (plan validation vs. decode, see [`query::Error`]), and facade-level API
/// misuse are kept apart so callers can react differently.
#[derive(Debug)]
pub enum Error {
    /// The storage engine (LSM, persistence, page decode) failed.
    Store(lsm::LsmError),
    /// The query layer rejected the plan or failed executing it.
    Query(query::Error),
    /// The facade was misused: unknown dataset, duplicate name, invalid
    /// JSON, missing primary key, ...
    Api(String),
}

impl Error {
    /// A facade-level API-misuse error.
    pub fn api(msg: impl Into<String>) -> Error {
        Error::Api(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Store(e) => write!(f, "storage error: {e}"),
            Error::Query(e) => write!(f, "{e}"),
            Error::Api(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Store(e) => Some(e),
            Error::Query(e) => Some(e),
            Error::Api(_) => None,
        }
    }
}

impl From<lsm::LsmError> for Error {
    fn from(e: lsm::LsmError) -> Error {
        Error::Store(e)
    }
}

impl From<query::Error> for Error {
    fn from(e: query::Error) -> Error {
        Error::Query(e)
    }
}

/// Result alias of the facade.
pub type Result<T> = std::result::Result<T, Error>;

/// Options for creating a dataset.
#[derive(Debug, Clone)]
pub struct DatasetOptions {
    /// Storage layout for on-disk components.
    pub layout: Layout,
    /// Primary-key field name (default `"id"`).
    pub key_field: String,
    /// Memtable budget in bytes before a flush is triggered (per shard).
    pub memtable_budget: usize,
    /// Simulated disk page size.
    pub page_size: usize,
    /// Optional secondary index path.
    pub secondary_index: Option<Path>,
    /// Page-level compression.
    pub compress_pages: bool,
    /// Number of hash partitions (default 1).
    pub shards: usize,
    /// Run flushes/merges on the datastore's shared background worker pool.
    pub background: bool,
    /// With `background`: how many sealed memtables may queue per shard
    /// before ingestion is backpressured.
    pub max_sealed: usize,
    /// Record metrics and lifecycle events per shard (default on).
    pub telemetry: bool,
    /// Compaction strategy and knobs (default: the paper's tiering policy).
    pub compaction: CompactionSpec,
    /// Process-wide memory budget for the dataset, in bytes (0 = none).
    /// See [`DatasetOptions::memory_budget`].
    pub memory_budget: usize,
}

impl DatasetOptions {
    /// Defaults mirroring the paper's setup, scaled down.
    pub fn new(layout: Layout) -> DatasetOptions {
        DatasetOptions {
            layout,
            key_field: "id".to_string(),
            memtable_budget: 4 << 20,
            page_size: 128 * 1024,
            secondary_index: None,
            compress_pages: true,
            shards: 1,
            background: false,
            max_sealed: 2,
            telemetry: true,
            compaction: CompactionSpec::default(),
            memory_budget: 0,
        }
    }

    /// Set the primary-key field.
    pub fn key(mut self, key: impl Into<String>) -> Self {
        self.key_field = key.into();
        self
    }

    /// Set the memtable budget.
    pub fn memtable_budget(mut self, bytes: usize) -> Self {
        self.memtable_budget = bytes;
        self
    }

    /// Set the page size.
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes;
        self
    }

    /// Declare a secondary index on a path.
    pub fn secondary_index(mut self, path: impl Into<Path>) -> Self {
        self.secondary_index = Some(path.into());
        self
    }

    /// Hash-partition the dataset by primary key across `n` shards.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Run flushes and merges in the background. All shards of all
    /// background datasets in a [`Datastore`] share one [`WorkerPool`]
    /// (flushes beat merges; FIFO within a priority) instead of spawning a
    /// thread per shard.
    pub fn background(mut self, on: bool) -> Self {
        self.background = on;
        self
    }

    /// Bound the per-shard sealed-memtable queue (ingest backpressure).
    pub fn max_sealed(mut self, n: usize) -> Self {
        self.max_sealed = n.max(1);
        self
    }

    /// Enable or disable per-shard telemetry (metrics + event tracing).
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Select the compaction strategy (tiered, leveled, or lazy-leveled).
    pub fn compaction(mut self, spec: CompactionSpec) -> Self {
        self.compaction = spec;
        self
    }

    /// Put the dataset's memory consumers under one process-wide budget of
    /// `bytes`: **half** funds a shared decoded-leaf cache (one
    /// [`LeafCache`] `Arc`'d across every shard — warm leaves are served
    /// without page reads or re-assembly), a **quarter** funds the page
    /// buffer caches, and a **quarter** funds the memtables; the page and
    /// memtable quarters are split evenly across shards, with small floors
    /// so tiny budgets stay operable. Overrides
    /// [`memtable_budget`](DatasetOptions::memtable_budget) and the default
    /// buffer-cache size; the per-shard slice (`bytes / shards`) is
    /// persisted in durable manifests so
    /// [`Datastore::reopen_dataset`] restores the same caching behaviour.
    /// `0` (the default) configures no budget and no leaf cache.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    fn to_config(
        &self,
        name: &str,
        pool: Option<&lsm::PoolHandle>,
        leaf_cache: Option<&Arc<LeafCache>>,
    ) -> DatasetConfig {
        let mut config = DatasetConfig::new(name, self.layout)
            .with_key_field(self.key_field.clone())
            .with_memtable_budget(self.memtable_budget)
            .with_page_size(self.page_size)
            .with_background(self.background)
            .with_max_sealed(self.max_sealed)
            .with_telemetry(self.telemetry)
            .with_compaction(self.compaction);
        config.compress_pages = self.compress_pages;
        if self.memory_budget > 0 {
            // The budget split documented on `memory_budget`: half the
            // budget went to the shared leaf cache (built once by the
            // caller), a quarter each to page caches and memtables, divided
            // evenly across shards with floors for tiny budgets.
            let shards = self.shards.max(1);
            let quarter_per_shard = self.memory_budget / 4 / shards;
            config = config
                .with_memory_budget(self.memory_budget / shards)
                .with_memtable_budget(quarter_per_shard.max(64 << 10))
                .with_cache_pages((quarter_per_shard / self.page_size.max(1)).max(8));
        }
        if let Some(cache) = leaf_cache {
            config = config.with_leaf_cache(cache.clone());
        }
        if let Some(p) = &self.secondary_index {
            config = config.with_secondary_index(p.clone());
        }
        if let Some(pool) = pool {
            config = config.with_pool(pool.clone());
        }
        config
    }
}

/// The shared decoded-leaf cache a dataset's options call for: half the
/// memory budget, one cache `Arc`'d across every shard. `None` when no
/// budget is configured.
fn leaf_cache_for(options: &DatasetOptions) -> Option<Arc<LeafCache>> {
    (options.memory_budget > 0).then(|| Arc::new(LeafCache::new(options.memory_budget / 2)))
}

/// Stable FNV-1a hash of a primary key's canonical rendering, used to route
/// records to shards. Keys are atomic values, so the rendering is unique.
fn key_hash(key: &Value) -> u64 {
    let rendered = key.to_string();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in rendered.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A dataset hash-partitioned by primary key across N [`LsmDataset`] shards.
///
/// Every record lives on exactly one shard (determined by its key), so
/// point operations touch one partition, parallel ingest partitions the
/// batch, and fan-out queries merge disjoint partial aggregates.
pub struct ShardedDataset {
    key_field: String,
    shards: Vec<LsmDataset>,
    /// The shared decoded-leaf cache every shard reads through. `None`
    /// when the dataset has no memory budget configured.
    leaf_cache: Option<Arc<LeafCache>>,
}

impl ShardedDataset {
    fn from_shards(
        key_field: String,
        shards: Vec<LsmDataset>,
        leaf_cache: Option<Arc<LeafCache>>,
    ) -> ShardedDataset {
        assert!(!shards.is_empty(), "a dataset needs at least one shard");
        ShardedDataset { key_field, shards, leaf_cache }
    }

    /// The shared decoded-leaf cache, when a memory budget is configured
    /// (see [`DatasetOptions::memory_budget`]). One cache serves every
    /// shard; [`LeafCache::stats`] reports its residency and traffic.
    pub fn leaf_cache(&self) -> Option<&Arc<LeafCache>> {
        self.leaf_cache.as_ref()
    }

    /// Number of hash partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The underlying partitions, in shard order.
    pub fn shards(&self) -> &[LsmDataset] {
        &self.shards
    }

    /// Index of the shard that owns `key`.
    pub fn shard_index_for(&self, key: &Value) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        (key_hash(key) % self.shards.len() as u64) as usize
    }

    /// The shard that owns `key`.
    pub fn shard_for(&self, key: &Value) -> &LsmDataset {
        &self.shards[self.shard_index_for(key)]
    }

    fn extract_key(&self, record: &Value) -> Result<Value> {
        record
            .get_field(&self.key_field)
            .filter(|v| v.is_atomic() && !v.is_null())
            .cloned()
            .ok_or_else(|| {
                Error::api(format!(
                    "record lacks an atomic primary key field '{}'",
                    self.key_field
                ))
            })
    }

    /// Partition a batch of documents by owning shard.
    fn partition(&self, docs: Vec<Value>) -> Result<Vec<Vec<Value>>> {
        let mut partitions: Vec<Vec<Value>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for doc in docs {
            let key = self.extract_key(&doc)?;
            partitions[self.shard_index_for(&key)].push(doc);
        }
        Ok(partitions)
    }

    /// Insert one record into the shard owning its key.
    pub fn insert(&self, record: Value) -> Result<()> {
        let key = self.extract_key(&record)?;
        Ok(self.shard_for(&key).insert(record)?)
    }

    /// Insert a batch, partitioning it by shard and ingesting every
    /// partition on its own thread. With background workers enabled this is
    /// the fully parallel ingest path: N writer threads, N flush workers.
    pub fn ingest_parallel(&self, docs: Vec<Value>) -> Result<usize> {
        self.ingest_batch(docs, 0)
    }

    /// Group-committed batch ingest: partition the batch by shard, ingest
    /// every partition on its own thread, and — when `sync_every > 0` —
    /// fsync the shard's WAL after every `sync_every` records, plus once at
    /// the end of the batch. This is how a durable service acknowledges
    /// client batches without hand-rolling per-K-records `sync()` loops;
    /// for in-memory datasets the syncs are no-ops.
    pub fn ingest_batch(&self, docs: Vec<Value>, sync_every: usize) -> Result<usize> {
        fn ingest_one(
            shard: &LsmDataset,
            batch: Vec<Value>,
            sync_every: usize,
        ) -> lsm::Result<()> {
            for (i, doc) in batch.into_iter().enumerate() {
                shard.insert(doc)?;
                if sync_every > 0 && (i + 1) % sync_every == 0 {
                    shard.sync()?;
                }
            }
            if sync_every > 0 {
                shard.sync()?;
            }
            Ok(())
        }

        if self.shards.len() == 1 {
            let n = docs.len();
            ingest_one(&self.shards[0], docs, sync_every)?;
            return Ok(n);
        }
        let partitions = self.partition(docs)?;
        let n = partitions.iter().map(Vec::len).sum();
        let results: Vec<lsm::Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .into_iter()
                .zip(self.shards.iter())
                .map(|(batch, shard)| scope.spawn(move || ingest_one(shard, batch, sync_every)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard ingest thread panicked"))
                .collect()
        });
        for result in results {
            result?;
        }
        Ok(n)
    }

    /// Delete the record with the given key.
    pub fn delete(&self, key: Value) -> Result<()> {
        Ok(self.shard_for(&key).delete(key)?)
    }

    /// Point lookup by primary key.
    pub fn get(&self, key: &Value) -> Result<Option<Value>> {
        Ok(self.shard_for(key).lookup(key, None)?)
    }

    /// Consistent per-shard snapshots for fan-out query execution.
    pub fn snapshots(&self) -> Vec<Snapshot> {
        self.shards.iter().map(LsmDataset::snapshot).collect()
    }

    /// A streaming cursor over the whole dataset: live `(key, record)`
    /// pairs in global key order, built by k-way-merging every shard's
    /// snapshot cursor (shards partition by key, so the merge is exact).
    /// Memory stays bounded by one decoded leaf per component per shard —
    /// never the dataset — and dropping the cursor early leaves unread
    /// leaves unread. Only the projected paths are assembled from columnar
    /// components (`None` = full records).
    pub fn cursor(&self, projection: Option<&[Path]>) -> Result<DocCursor> {
        let mut cursors = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            cursors.push(shard.snapshot().cursor(projection)?);
        }
        let heads = cursors.iter().map(|_| None).collect();
        Ok(DocCursor {
            cursors,
            heads,
            projection: projection.map(<[Path]>::to_vec),
            last_key: None,
        })
    }

    /// Run a query: the planner makes its cost-based access-path choice
    /// (scan, key-only scan, or secondary-index range probe, using the
    /// per-component statistics), fans it out over the shards (one thread
    /// each) and merges the partial aggregates exactly.
    pub fn query(&self, query: &Query, mode: ExecMode) -> Result<Vec<QueryRow>> {
        self.query_with_options(query, mode, query::PlannerOptions::default())
    }

    /// Like [`ShardedDataset::query`], with explicit planner options (e.g.
    /// [`query::AccessPathChoice::ForceScan`] to bypass the cost model, or
    /// zone-map pruning disabled for differential testing).
    pub fn query_with_options(
        &self,
        query: &Query,
        mode: ExecMode,
        options: query::PlannerOptions,
    ) -> Result<Vec<QueryRow>> {
        let refs: Vec<&LsmDataset> = self.shards.iter().collect();
        Ok(QueryEngine::with_options(mode, options).execute(&refs[..], query)?)
    }

    /// Render the physical plan a query would execute with (`EXPLAIN`):
    /// access path, cost estimate, pushed-down projection.
    pub fn explain(&self, query: &Query) -> Result<String> {
        self.explain_with_options(query, query::PlannerOptions::default())
    }

    /// Like [`ShardedDataset::explain`], with explicit planner options.
    pub fn explain_with_options(
        &self,
        query: &Query,
        options: query::PlannerOptions,
    ) -> Result<String> {
        let refs: Vec<&LsmDataset> = self.shards.iter().collect();
        Ok(QueryEngine::with_options(ExecMode::Compiled, options).explain(&refs[..], query)?)
    }

    /// Plan and *execute* a query, returning the plan annotated with actual
    /// execution counters (`EXPLAIN ANALYZE`): rows pulled, pages read per
    /// shard, components pruned vs. scanned, the early-termination point,
    /// and wall time — plus the result rows, identical to
    /// [`ShardedDataset::query`]'s. Shards run sequentially so each
    /// shard's I/O delta is exact.
    pub fn explain_analyze(&self, query: &Query, mode: ExecMode) -> Result<AnalyzeReport> {
        self.explain_analyze_with_options(query, mode, query::PlannerOptions::default())
    }

    /// Like [`ShardedDataset::explain_analyze`], with explicit planner
    /// options.
    pub fn explain_analyze_with_options(
        &self,
        query: &Query,
        mode: ExecMode,
        options: query::PlannerOptions,
    ) -> Result<AnalyzeReport> {
        let refs: Vec<&LsmDataset> = self.shards.iter().collect();
        Ok(QueryEngine::with_options(mode, options).explain_analyze(&refs[..], query)?)
    }

    /// The dataset's base name (shard partitions append `/shard-NNN`).
    pub fn name(&self) -> String {
        let full = &self.shards[0].config().name;
        full.split('/').next().unwrap_or(full).to_string()
    }

    /// A merged metrics snapshot across every shard: counters and
    /// histograms add, additive gauges sum, and the derived `amp.*` gauges
    /// are recomputed over the shard totals. Export with
    /// [`MetricsSnapshot::to_text`] or [`MetricsSnapshot::to_json`].
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut shards = self.shards.iter();
        let mut merged = shards.next().expect("at least one shard").metrics();
        for shard in shards {
            merged.merge(&shard.metrics());
        }
        merged.dataset = self.name();
        // Residency gauges describe the one shared cache, so they are
        // pushed once, after the per-shard merge (which sums gauges);
        // the per-shard `cache.hits/misses/evictions` counters do add.
        if let Some(cache) = &self.leaf_cache {
            let stats = cache.stats();
            merged.push_gauge("cache.resident_bytes", stats.resident_bytes as f64);
            // Residency counts *distinct physical leaves*: a leaf cached as
            // both entries and chunks must not gauge as two leaves.
            merged.push_gauge(
                "cache.resident_leaves",
                stats.resident_distinct_leaves as f64,
            );
            merged.push_gauge("cache.budget_bytes", stats.capacity_bytes as f64);
        }
        merged.with_derived_gauges()
    }

    /// Per-shard health: worker state, last background error, pending
    /// maintenance depth, backpressure stalls. In shard order.
    pub fn health(&self) -> Vec<DatasetHealth> {
        self.shards.iter().map(LsmDataset::health).collect()
    }

    /// The most recent `n` lifecycle events across every shard, merged by
    /// timestamp (oldest first); each entry carries its shard index.
    pub fn recent_events(&self, n: usize) -> Vec<(usize, Event)> {
        let mut all: Vec<(usize, Event)> = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            all.extend(shard.recent_events(n).into_iter().map(|e| (i, e)));
        }
        all.sort_by_key(|(shard, e)| (e.unix_micros, *shard, e.seq));
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }

    /// Flush every shard (drains background workers).
    pub fn flush(&self) -> Result<()> {
        for shard in &self.shards {
            shard.flush()?;
        }
        Ok(())
    }

    /// Flush and merge every shard down to one component.
    pub fn compact(&self) -> Result<()> {
        for shard in &self.shards {
            shard.compact_fully()?;
        }
        Ok(())
    }

    /// Reclaim dead page-file space on every shard (see
    /// [`LsmDataset::reclaim_space`]): live pages are packed downward and
    /// the freed tail of each shard's page file is truncated. Returns the
    /// shard reports summed.
    pub fn reclaim_space(&self) -> Result<ReclaimReport> {
        let mut total = ReclaimReport::default();
        for shard in &self.shards {
            let report = shard.reclaim_space()?;
            total.components_rewritten += report.components_rewritten;
            total.pages_moved += report.pages_moved;
            total.pages_reclaimed += report.pages_reclaimed;
        }
        Ok(total)
    }

    /// Force acknowledged WAL records to the device on every shard.
    pub fn sync(&self) -> Result<()> {
        for shard in &self.shards {
            shard.sync()?;
        }
        Ok(())
    }

    /// Combined ingestion counters across shards.
    pub fn stats(&self) -> IngestStats {
        self.shards
            .iter()
            .fold(IngestStats::default(), |acc, s| acc.merged_with(&s.stats()))
    }

    /// Combined I/O counters across shards.
    pub fn io_stats(&self) -> IoStats {
        let mut total = IoStats::default();
        for shard in &self.shards {
            let s = shard.io_stats();
            total.pages_read += s.pages_read;
            total.pages_written += s.pages_written;
            total.bytes_read += s.bytes_read;
            total.bytes_written += s.bytes_written;
            total.cache_hits += s.cache_hits;
            total.records_assembled += s.records_assembled;
            total.leaf_cache_hits += s.leaf_cache_hits;
            total.leaf_cache_misses += s.leaf_cache_misses;
            total.leaf_cache_evictions += s.leaf_cache_evictions;
        }
        total
    }

    /// Combined on-disk footprint across shards.
    pub fn total_stored_bytes(&self) -> u64 {
        self.shards.iter().map(LsmDataset::total_stored_bytes).sum()
    }

    /// Total live records across shards.
    pub fn count(&self) -> Result<usize> {
        let mut total = 0;
        for shard in &self.shards {
            total += shard.count()?;
        }
        Ok(total)
    }

    /// The inferred schema, taken from the shard that has observed the most
    /// columns (shards see disjoint key ranges of the same document stream,
    /// so their schemas converge as ingestion proceeds).
    pub fn schema(&self) -> schema::Schema {
        self.shards
            .iter()
            .map(LsmDataset::schema)
            .max_by_key(schema::Schema::column_count)
            .expect("a dataset has at least one shard")
    }
}

/// A streaming, key-ordered scan over a (possibly sharded) dataset: the
/// per-shard snapshot cursors, k-way merged by primary key. Fully owned —
/// the underlying snapshots pin their components, so flushes and merges
/// racing the iteration never disturb it. See [`ShardedDataset::cursor`].
///
/// The pinned snapshots keep retired components (and their pages) alive for
/// as long as the cursor exists; an iteration that pauses for a long time —
/// a network client draining a `SCAN` in chunks — can call
/// [`DocCursor::refresh`] between chunks to trade snapshot stability for
/// bounded staleness.
pub struct DocCursor {
    cursors: Vec<lsm::ScanCursor>,
    heads: Vec<Option<(Value, Value)>>,
    /// The projection the cursor was opened with (re-applied on refresh).
    projection: Option<Vec<Path>>,
    /// The last key yielded by `next()` — where a refresh resumes from.
    last_key: Option<Value>,
}

impl DocCursor {
    /// High-water mark of entries decoded and buffered across every shard's
    /// cursor so far — the streaming scan's peak memory, in records.
    pub fn peak_buffered(&self) -> usize {
        self.cursors.iter().map(lsm::ScanCursor::peak_buffered).sum()
    }

    /// Re-pin the cursor on **fresh** per-shard snapshots of `dataset` and
    /// resume just past the last key already yielded.
    ///
    /// A `DocCursor` pins one snapshot per shard for its whole lifetime, so
    /// components retired by merges while the iteration is paused cannot
    /// release their pages until the cursor drops. Long chunked streams
    /// (the RESP server's `SCAN`) call this between chunks: the old
    /// snapshots are released, new ones are pinned, and the stream resumes
    /// at the smallest live key greater than the last one delivered.
    ///
    /// Semantics change from *snapshot-stable* to *bounded-staleness*: keys
    /// not yet reached reflect writes that happened since the cursor was
    /// opened (updates are seen, deleted keys disappear, new keys appear) —
    /// but the stream stays strictly key-ascending and never repeats or
    /// skips a live key. The skip to the resume point is key-only: no
    /// record in the already-delivered prefix is re-assembled.
    ///
    /// `dataset` must be the dataset the cursor was opened on (same shard
    /// count and hash routing); passing another one gives meaningless
    /// results.
    pub fn refresh(&mut self, dataset: &ShardedDataset) -> Result<()> {
        // Release the old pins *before* taking fresh snapshots, not after:
        // holding them across the re-pin kept every retired component (its
        // pages and cached decoded leaves) alive through the refresh, and
        // on an error path the stale pins survived in `self`. Buffered
        // heads are intentionally discarded with them: they were never
        // yielded, and the fresh cursors (skipped just past `last_key`)
        // re-deliver their keys' newest versions.
        self.cursors.clear();
        self.heads.clear();
        let projection = self.projection.as_deref();
        let mut cursors = Vec::with_capacity(dataset.shards.len());
        for shard in &dataset.shards {
            let mut cursor = shard.snapshot().cursor(projection)?;
            if let Some(last) = &self.last_key {
                cursor.skip_to(last)?;
            }
            cursors.push(cursor);
        }
        self.heads = cursors.iter().map(|_| None).collect();
        self.cursors = cursors;
        Ok(())
    }

    fn fill_heads(&mut self) -> Result<()> {
        for (cursor, head) in self.cursors.iter_mut().zip(self.heads.iter_mut()) {
            if head.is_none() {
                if let Some(entry) = cursor.next() {
                    *head = Some(entry?);
                }
            }
        }
        Ok(())
    }
}

impl Iterator for DocCursor {
    type Item = Result<(Value, Value)>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Err(e) = self.fill_heads() {
            return Some(Err(e));
        }
        // Shards partition by key: the smallest head is globally next and
        // unique, so plain min-selection merges the streams exactly.
        let mut best: Option<usize> = None;
        for (i, head) in self.heads.iter().enumerate() {
            let Some((key, _)) = head else { continue };
            match best {
                None => best = Some(i),
                Some(b) => {
                    let (best_key, _) = self.heads[b].as_ref().expect("head filled");
                    if docmodel::total_cmp(key, best_key) == std::cmp::Ordering::Less {
                        best = Some(i);
                    }
                }
            }
        }
        let best = best?;
        let entry = self.heads[best].take().expect("best head present");
        self.last_key = Some(entry.0.clone());
        Some(Ok(entry))
    }
}

/// A collection of named datasets — the facade over the LSM engine.
#[derive(Default)]
pub struct Datastore {
    // Field order is load-bearing: datasets drop (and quiesce their
    // background rounds) before the pool joins its worker threads.
    datasets: HashMap<String, ShardedDataset>,
    /// One background flush/merge worker pool shared by every dataset
    /// shard with `background(true)`; created lazily on first use.
    pool: Option<WorkerPool>,
}

impl Datastore {
    /// Create an empty datastore.
    pub fn new() -> Datastore {
        Datastore::default()
    }

    /// The shared worker pool, spawning it on first use: a few threads
    /// serve every background dataset in the store, instead of one thread
    /// per shard.
    fn shared_pool(&mut self) -> &WorkerPool {
        self.pool.get_or_insert_with(|| {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .clamp(2, 8);
            WorkerPool::new(threads)
        })
    }

    /// Create a dataset. Fails if the name is taken.
    pub fn create_dataset(&mut self, name: &str, options: DatasetOptions) -> Result<()> {
        if self.datasets.contains_key(name) {
            return Err(Error::api(format!("dataset '{name}' already exists")));
        }
        let pool = options.background.then(|| self.shared_pool().handle());
        let leaf_cache = leaf_cache_for(&options);
        let shards: Vec<LsmDataset> = (0..options.shards)
            .map(|i| {
                let shard_name = if options.shards == 1 {
                    name.to_string()
                } else {
                    format!("{name}/shard-{i:03}")
                };
                LsmDataset::new(options.to_config(
                    &shard_name,
                    pool.as_ref(),
                    leaf_cache.as_ref(),
                ))
            })
            .collect();
        self.datasets.insert(
            name.to_string(),
            ShardedDataset::from_shards(options.key_field.clone(), shards, leaf_cache),
        );
        Ok(())
    }

    /// Open a **durable** dataset rooted at `dir`, creating the directory on
    /// first use and recovering it (manifest + WAL replay) on every later
    /// one. Acknowledged writes to this dataset survive restarts. With
    /// `shards(n > 1)` every shard lives in its own `shard-NNN` subdirectory.
    pub fn open_dataset(
        &mut self,
        name: &str,
        dir: impl AsRef<std::path::Path>,
        options: DatasetOptions,
    ) -> Result<()> {
        if self.datasets.contains_key(name) {
            return Err(Error::api(format!("dataset '{name}' already exists")));
        }
        let dir = dir.as_ref();
        let pool = options.background.then(|| self.shared_pool().handle());
        let leaf_cache = leaf_cache_for(&options);
        let mut shards = Vec::with_capacity(options.shards);
        for i in 0..options.shards {
            let (shard_name, shard_dir) = if options.shards == 1 {
                (name.to_string(), dir.to_path_buf())
            } else {
                (
                    format!("{name}/shard-{i:03}"),
                    dir.join(format!("shard-{i:03}")),
                )
            };
            shards.push(LsmDataset::open(
                shard_dir,
                options.to_config(&shard_name, pool.as_ref(), leaf_cache.as_ref()),
            )?);
        }
        self.datasets.insert(
            name.to_string(),
            ShardedDataset::from_shards(options.key_field.clone(), shards, leaf_cache),
        );
        Ok(())
    }

    /// Reopen a durable dataset from its directory alone, using the
    /// configuration persisted in its manifests. Detects the sharded layout
    /// (`shard-NNN` subdirectories) automatically.
    pub fn reopen_dataset(
        &mut self,
        name: &str,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<()> {
        if self.datasets.contains_key(name) {
            return Err(Error::api(format!("dataset '{name}' already exists")));
        }
        let dir = dir.as_ref();
        let mut shard_dirs: Vec<std::path::PathBuf> = Vec::new();
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir()
                    && entry
                        .file_name()
                        .to_str()
                        .map(|n| n.starts_with("shard-"))
                        .unwrap_or(false)
                {
                    shard_dirs.push(path);
                }
            }
        }
        // Sort by the parsed shard index, not the path string: lexicographic
        // order diverges from numeric order once ids outgrow the zero
        // padding (shard-1000 would sort before shard-101), and shard order
        // must match creation order for hash routing to find records.
        shard_dirs.sort_by_key(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_prefix("shard-"))
                .and_then(|n| n.parse::<u64>().ok())
                .unwrap_or(u64::MAX)
        });
        let dirs = if shard_dirs.is_empty() {
            vec![dir.to_path_buf()]
        } else {
            shard_dirs
        };
        // Rebuild the shared leaf cache before any shard opens: the sum of
        // the persisted per-shard budget slices is the dataset budget, and
        // half of it funds one cache attached to every shard — the same
        // split `memory_budget` applied at creation.
        let mut total_budget = 0usize;
        for shard_dir in &dirs {
            total_budget += LsmDataset::peek_persisted_config(shard_dir)?.memory_budget;
        }
        let leaf_cache =
            (total_budget > 0).then(|| Arc::new(LeafCache::new(total_budget / 2)));
        let shards = dirs
            .into_iter()
            .map(|shard_dir| match &leaf_cache {
                Some(cache) => LsmDataset::reopen_with_leaf_cache(shard_dir, cache.clone()),
                None => LsmDataset::reopen(shard_dir),
            })
            .collect::<lsm::Result<Vec<_>>>()?;
        let key_field = shards[0].config().key_field.clone();
        self.datasets.insert(
            name.to_string(),
            ShardedDataset::from_shards(key_field, shards, leaf_cache),
        );
        Ok(())
    }

    /// Force a dataset's acknowledged WAL records to the device (group
    /// commit). No-op for in-memory datasets.
    pub fn sync(&self, dataset: &str) -> Result<()> {
        self.dataset(dataset)?.sync()
    }

    /// Borrow a dataset.
    pub fn dataset(&self, name: &str) -> Result<&ShardedDataset> {
        self.datasets
            .get(name)
            .ok_or_else(|| Error::api(format!("unknown dataset '{name}'")))
    }

    /// Mutably borrow a dataset.
    pub fn dataset_mut(&mut self, name: &str) -> Result<&mut ShardedDataset> {
        self.datasets
            .get_mut(name)
            .ok_or_else(|| Error::api(format!("unknown dataset '{name}'")))
    }

    /// Names of all datasets.
    pub fn dataset_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.datasets.keys().cloned().collect();
        names.sort();
        names
    }

    /// Insert one document (as a [`Value`]).
    pub fn ingest(&self, dataset: &str, doc: Value) -> Result<()> {
        self.dataset(dataset)?.insert(doc)
    }

    /// Parse and insert one JSON document (or a whitespace-separated stream).
    pub fn ingest_json(&self, dataset: &str, json: &str) -> Result<usize> {
        let docs = docmodel::parse_json_stream(json)
            .map_err(|e| Error::api(format!("invalid JSON: {e}")))?;
        let n = docs.len();
        let ds = self.dataset(dataset)?;
        for doc in docs {
            ds.insert(doc)?;
        }
        Ok(n)
    }

    /// Insert many documents.
    pub fn ingest_all(&self, dataset: &str, docs: impl IntoIterator<Item = Value>) -> Result<usize> {
        let ds = self.dataset(dataset)?;
        let mut n = 0;
        for doc in docs {
            ds.insert(doc)?;
            n += 1;
        }
        Ok(n)
    }

    /// Insert a batch through the parallel, per-shard ingest path.
    pub fn ingest_parallel(&self, dataset: &str, docs: Vec<Value>) -> Result<usize> {
        self.dataset(dataset)?.ingest_parallel(docs)
    }

    /// Group-committed batch ingest: one writer thread per shard, WAL fsync
    /// every `sync_every` records (and once at the end). See
    /// [`ShardedDataset::ingest_batch`].
    pub fn ingest_batch(
        &self,
        dataset: &str,
        docs: Vec<Value>,
        sync_every: usize,
    ) -> Result<usize> {
        self.dataset(dataset)?.ingest_batch(docs, sync_every)
    }

    /// Delete a record by key.
    pub fn delete(&self, dataset: &str, key: Value) -> Result<()> {
        self.dataset(dataset)?.delete(key)
    }

    /// Force-flush the in-memory component(s), draining background workers.
    pub fn flush(&self, dataset: &str) -> Result<()> {
        self.dataset(dataset)?.flush()
    }

    /// Flush and merge everything down to one component per shard.
    pub fn compact(&self, dataset: &str) -> Result<()> {
        self.dataset(dataset)?.compact()
    }

    /// Run a query (planner-routed access path, fan-out over shards,
    /// partial-aggregate merge).
    pub fn query(&self, dataset: &str, query: &Query, mode: ExecMode) -> Result<Vec<QueryRow>> {
        self.dataset(dataset)?.query(query, mode)
    }

    /// Render the physical plan a query would execute with (`EXPLAIN`): the
    /// chosen access path and the pushed-down projection.
    pub fn explain(&self, dataset: &str, query: &Query) -> Result<String> {
        self.dataset(dataset)?.explain(query)
    }

    /// Execute a query and return the plan annotated with actual execution
    /// counters (`EXPLAIN ANALYZE`). See [`ShardedDataset::explain_analyze`].
    pub fn explain_analyze(
        &self,
        dataset: &str,
        query: &Query,
        mode: ExecMode,
    ) -> Result<AnalyzeReport> {
        self.dataset(dataset)?.explain_analyze(query, mode)
    }

    /// A dataset's metrics snapshot, merged over its shards. Export as
    /// aligned text ([`MetricsSnapshot::to_text`]) or JSON
    /// ([`MetricsSnapshot::to_json`]).
    pub fn metrics(&self, dataset: &str) -> Result<MetricsSnapshot> {
        Ok(self.dataset(dataset)?.metrics())
    }

    /// Health of every dataset in the store: per-shard worker state, last
    /// background error, and pending maintenance depth, keyed by dataset
    /// name (sorted).
    pub fn health(&self) -> Vec<(String, Vec<DatasetHealth>)> {
        self.dataset_names()
            .into_iter()
            .map(|name| {
                let health = self.datasets[&name].health();
                (name, health)
            })
            .collect()
    }

    /// Point lookup by primary key.
    pub fn get(&self, dataset: &str, key: &Value) -> Result<Option<Value>> {
        self.dataset(dataset)?.get(key)
    }

    /// A streaming cursor over a dataset's live records in key order (see
    /// [`ShardedDataset::cursor`]): bounded memory, early drop reads no
    /// further pages. The cursor owns consistent snapshots, so concurrent
    /// ingestion never disturbs an in-flight iteration.
    pub fn scan_cursor(
        &self,
        dataset: &str,
        projection: Option<&[Path]>,
    ) -> Result<DocCursor> {
        self.dataset(dataset)?.cursor(projection)
    }

    /// Parse a single JSON document into a [`Value`] (re-export convenience).
    pub fn parse(json: &str) -> Result<Value> {
        parse_json(json).map_err(|e| Error::api(format!("invalid JSON: {e}")))
    }

    /// Ingestion statistics of a dataset (summed over shards).
    pub fn ingest_stats(&self, dataset: &str) -> Result<IngestStats> {
        Ok(self.dataset(dataset)?.stats())
    }

    /// I/O statistics of a dataset's simulated disk(s).
    pub fn io_stats(&self, dataset: &str) -> Result<IoStats> {
        Ok(self.dataset(dataset)?.io_stats())
    }

    /// On-disk footprint of a dataset (primary index plus index structures).
    pub fn stored_bytes(&self, dataset: &str) -> Result<u64> {
        Ok(self.dataset(dataset)?.total_stored_bytes())
    }

    /// The inferred schema of a dataset, pretty-printed.
    pub fn describe_schema(&self, dataset: &str) -> Result<String> {
        Ok(self.dataset(dataset)?.schema().describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_facade_roundtrip() {
        let mut store = Datastore::new();
        store
            .create_dataset(
                "tweets",
                DatasetOptions::new(Layout::Amax)
                    .key("id")
                    .memtable_budget(32 * 1024)
                    .page_size(8 * 1024),
            )
            .unwrap();
        assert!(store.create_dataset("tweets", DatasetOptions::new(Layout::Vb)).is_err());

        for i in 0..200i64 {
            store
                .ingest(
                    "tweets",
                    doc!({"id": i, "likes": (i % 10), "user": {"name": (format!("u{}", i % 5))}}),
                )
                .unwrap();
        }
        store.flush("tweets").unwrap();

        let count = store
            .query("tweets", &Query::count_star(), ExecMode::Compiled)
            .unwrap();
        assert_eq!(count[0].agg(), &Value::Int(200));

        let top = store
            .query(
                "tweets",
                &Query::select([
                    Aggregate::Max(Path::parse("likes")),
                    Aggregate::Avg(Path::parse("likes")),
                ])
                .group_by("user.name")
                .top_k(3),
                ExecMode::Interpreted,
            )
            .unwrap();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].aggs.len(), 2);

        let rec = store.get("tweets", &Value::Int(42)).unwrap().unwrap();
        assert_eq!(rec.get_field("likes"), Some(&Value::Int(2)));
        assert!(store.stored_bytes("tweets").unwrap() > 0);
        assert!(store.describe_schema("tweets").unwrap().contains("user"));
        assert_eq!(store.dataset_names(), vec!["tweets".to_string()]);
    }

    #[test]
    fn sharded_dataset_partitions_and_agrees_with_single_shard() {
        let mut store = Datastore::new();
        store
            .create_dataset(
                "sharded",
                DatasetOptions::new(Layout::Amax)
                    .memtable_budget(16 * 1024)
                    .page_size(8 * 1024)
                    .shards(4)
                    .background(true),
            )
            .unwrap();
        store
            .create_dataset(
                "single",
                DatasetOptions::new(Layout::Amax)
                    .memtable_budget(16 * 1024)
                    .page_size(8 * 1024),
            )
            .unwrap();

        let docs: Vec<Value> = (0..500i64)
            .map(|i| doc!({"id": i, "grp": (format!("g{}", i % 9)), "score": (i % 100)}))
            .collect();
        store.ingest_parallel("sharded", docs.clone()).unwrap();
        store.ingest_all("single", docs).unwrap();
        store.flush("sharded").unwrap();
        store.flush("single").unwrap();

        // Records are spread across shards (with 500 keys and 4 shards every
        // shard must own some).
        let sharded = store.dataset("sharded").unwrap();
        assert_eq!(sharded.shard_count(), 4);
        for shard in sharded.shards() {
            assert!(shard.count().unwrap() > 0, "every shard owns records");
        }
        assert_eq!(sharded.count().unwrap(), 500);

        // Fan-out queries agree with the unsharded reference, including the
        // mergeable AVG partials.
        for q in [
            Query::count_star(),
            Query::select([
                Aggregate::Count,
                Aggregate::Max(Path::parse("score")),
                Aggregate::Avg(Path::parse("score")),
            ])
            .group_by("grp")
            .top_k(4),
        ] {
            let a = store.query("sharded", &q, ExecMode::Compiled).unwrap();
            let b = store.query("single", &q, ExecMode::Compiled).unwrap();
            assert_eq!(a, b);
        }
        // The sharded plan advertises the fan-out.
        let plan = store
            .explain("sharded", &Query::count_star().group_by("grp"))
            .unwrap();
        assert!(plan.contains("shards     : 4"), "{plan}");

        // Point operations route to the owning shard.
        assert!(store.get("sharded", &Value::Int(123)).unwrap().is_some());
        store.delete("sharded", Value::Int(123)).unwrap();
        store.flush("sharded").unwrap();
        assert!(store.get("sharded", &Value::Int(123)).unwrap().is_none());
        assert_eq!(sharded.count().unwrap(), 499);
    }

    #[test]
    fn durable_dataset_survives_reopen_through_facade() {
        let dir = std::env::temp_dir()
            .join(format!("docstore-facade-tests-{}", std::process::id()))
            .join("durable");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut store = Datastore::new();
            store
                .open_dataset(
                    "events",
                    &dir,
                    DatasetOptions::new(Layout::Amax).page_size(8 * 1024),
                )
                .unwrap();
            store
                .ingest_json("events", "{\"id\": 1, \"kind\": \"created\"}\n{\"id\": 2, \"kind\": \"deleted\"}")
                .unwrap();
            store.delete("events", Value::Int(2)).unwrap();
            store.flush("events").unwrap();
            store
                .ingest_json("events", "{\"id\": 3, \"kind\": \"unflushed\"}")
                .unwrap();
            store.sync("events").unwrap();
            // Dropped without a final flush: id 3 lives only in the WAL.
        }
        let mut store = Datastore::new();
        store.reopen_dataset("events", &dir).unwrap();
        assert!(store.create_dataset("events", DatasetOptions::new(Layout::Vb)).is_err());
        let count = store
            .query("events", &Query::count_star(), ExecMode::Compiled)
            .unwrap();
        assert_eq!(count[0].agg(), &Value::Int(2));
        assert!(store.get("events", &Value::Int(2)).unwrap().is_none());
        let recovered = store.get("events", &Value::Int(3)).unwrap().unwrap();
        assert_eq!(recovered.get_field("kind"), Some(&Value::from("unflushed")));
    }

    #[test]
    fn durable_sharded_dataset_reopens_every_shard() {
        let dir = std::env::temp_dir()
            .join(format!("docstore-facade-tests-{}", std::process::id()))
            .join("durable-sharded");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut store = Datastore::new();
            store
                .open_dataset(
                    "events",
                    &dir,
                    DatasetOptions::new(Layout::Amax)
                        .page_size(8 * 1024)
                        .memtable_budget(16 * 1024)
                        .shards(3)
                        .background(true),
                )
                .unwrap();
            let docs: Vec<Value> = (0..300i64).map(|i| doc!({"id": i, "v": (i * 2)})).collect();
            // Group-committed batch ingest: fsync every 64 records per shard.
            assert_eq!(store.ingest_batch("events", docs, 64).unwrap(), 300);
            store.flush("events").unwrap();
        }
        let mut store = Datastore::new();
        store.reopen_dataset("events", &dir).unwrap();
        assert_eq!(store.dataset("events").unwrap().shard_count(), 3);
        let count = store
            .query("events", &Query::count_star(), ExecMode::Compiled)
            .unwrap();
        assert_eq!(count[0].agg(), &Value::Int(300));
        let rec = store.get("events", &Value::Int(217)).unwrap().unwrap();
        assert_eq!(rec.get_field("v"), Some(&Value::Int(434)));
    }

    #[test]
    fn sharded_index_probe_fans_out_and_matches_scan() {
        // The planner's index-probe path must work through the sharded
        // dataset: every shard probes its own timestamp index and the
        // partials merge to the scan answer.
        let mut store = Datastore::new();
        for (name, shards) in [("sharded", 4), ("single", 1)] {
            store
                .create_dataset(
                    name,
                    DatasetOptions::new(Layout::Amax)
                        .memtable_budget(16 * 1024)
                        .page_size(8 * 1024)
                        .shards(shards)
                        .secondary_index("ts"),
                )
                .unwrap();
        }
        let docs: Vec<Value> = (0..400i64)
            .map(|i| doc!({"id": i, "ts": (1000 + i), "grp": (format!("g{}", i % 5)), "score": (i % 100)}))
            .collect();
        store.ingest_parallel("sharded", docs.clone()).unwrap();
        store.ingest_all("single", docs).unwrap();
        store.flush("sharded").unwrap();
        store.flush("single").unwrap();

        let q = Query::select([
            Aggregate::Count,
            Aggregate::Max(Path::parse("score")),
            Aggregate::Avg(Path::parse("score")),
        ])
        .with_filter(Expr::between("ts", 1100, 1299))
        .group_by("grp");

        // Forced through the index, the plan probes and fans out; the
        // default (cost-based) plan shows its estimate either way.
        let force_index =
            query::PlannerOptions::with_access_path(query::AccessPathChoice::ForceIndex);
        let plan = store
            .dataset("sharded")
            .unwrap()
            .explain_with_options(&q, force_index)
            .unwrap();
        assert!(plan.contains("secondary-index range probe on `ts`"), "{plan}");
        assert!(plan.contains("shards     : 4"), "{plan}");
        let plan = store.explain("sharded", &q).unwrap();
        assert!(plan.contains("selectivity"), "{plan}");

        for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
            let single = store.query("single", &q, mode).unwrap();
            // Every access-path policy agrees, sharded or not.
            for choice in [
                query::AccessPathChoice::Auto,
                query::AccessPathChoice::ForceIndex,
                query::AccessPathChoice::ForceScan,
            ] {
                let options = query::PlannerOptions::with_access_path(choice);
                let sharded = store
                    .dataset("sharded")
                    .unwrap()
                    .query_with_options(&q, mode, options)
                    .unwrap();
                assert_eq!(sharded, single, "{mode:?} {choice:?}");
            }
            let sharded = store.query("sharded", &q, mode).unwrap();
            assert_eq!(sharded.iter().map(|r| r.aggs[0].as_int().unwrap()).sum::<i64>(), 200);
        }
    }

    #[test]
    fn raw_select_and_cursor_stream_through_the_facade() {
        let mut store = Datastore::new();
        store
            .create_dataset(
                "events",
                DatasetOptions::new(Layout::Amax)
                    .memtable_budget(16 * 1024)
                    .page_size(8 * 1024)
                    .shards(3),
            )
            .unwrap();
        let docs: Vec<Value> = (0..200i64)
            .map(|i| doc!({"id": i, "kind": (format!("k{}", i % 4)), "size": (i % 50)}))
            .collect();
        store.ingest_parallel("events", docs).unwrap();
        store.flush("events").unwrap();

        // Raw-column SELECT with ORDER BY key LIMIT: rows come back in
        // global key order across the three shards.
        let q = Query::select_paths(["kind", "size"])
            .with_filter(Expr::ge("size", 10))
            .order_by_key()
            .with_limit(5);
        let rows = store.query("events", &q, ExecMode::Compiled).unwrap();
        assert_eq!(rows.len(), 5);
        let keys: Vec<i64> = rows.iter().map(|r| r.group.as_ref().unwrap().as_int().unwrap()).collect();
        assert_eq!(keys, vec![10, 11, 12, 13, 14]);
        assert_eq!(rows[0].aggs.len(), 2);
        let plan = store.explain("events", &q).unwrap();
        assert!(plan.contains("SELECT kind, size"), "{plan}");
        assert!(plan.contains("key ASC LIMIT 5"), "{plan}");
        assert!(plan.contains("key-ordered row streams"), "{plan}");

        // The streaming cursor merges the per-shard streams in key order
        // and supports early drop.
        let mut cursor = store.scan_cursor("events", None).unwrap();
        let mut seen = Vec::new();
        for entry in cursor.by_ref().take(10) {
            let (key, doc) = entry.unwrap();
            assert_eq!(doc.get_field("id"), Some(&key));
            seen.push(key.as_int().unwrap());
        }
        assert_eq!(seen, (0..10).collect::<Vec<i64>>());
        drop(cursor);
        // Projection-aware: only the requested column is assembled.
        let projection = [Path::parse("size")];
        let (key, doc) = store
            .scan_cursor("events", Some(&projection))
            .unwrap()
            .next()
            .unwrap()
            .unwrap();
        assert_eq!(key, Value::Int(0));
        assert!(doc.get_field("size").is_some());
        assert!(doc.get_field("kind").is_none(), "unprojected column absent");
    }

    #[test]
    fn cursor_refresh_resumes_past_delivered_prefix_with_fresh_state() {
        let mut store = Datastore::new();
        store
            .create_dataset(
                "stream",
                DatasetOptions::new(Layout::Amax)
                    .memtable_budget(16 * 1024)
                    .page_size(8 * 1024)
                    .shards(3),
            )
            .unwrap();
        let docs: Vec<Value> = (0..300i64).map(|i| doc!({"id": i, "v": i})).collect();
        store.ingest_parallel("stream", docs).unwrap();
        store.flush("stream").unwrap();

        let ds = store.dataset("stream").unwrap();
        let mut cursor = ds.cursor(None).unwrap();
        let first: Vec<i64> = cursor
            .by_ref()
            .take(100)
            .map(|e| e.unwrap().0.as_int().unwrap())
            .collect();
        assert_eq!(first, (0..100).collect::<Vec<i64>>());

        // Mutate the dataset while the cursor is paused: update a key in the
        // undelivered region, delete another, append new tail keys, and
        // compact so the original components are retired.
        ds.insert(doc!({"id": (150i64), "v": (-1i64)})).unwrap();
        ds.delete(Value::Int(200)).unwrap();
        ds.insert(doc!({"id": (300i64), "v": (300i64)})).unwrap();
        store.compact("stream").unwrap();

        // Without refresh the pinned snapshots would still show the old
        // state; after refresh the continuation reflects it, resumes
        // strictly after key 99, and stays ascending and duplicate-free.
        cursor.refresh(ds).unwrap();
        let rest: Vec<(i64, i64)> = cursor
            .map(|e| {
                let (k, d) = e.unwrap();
                (k.as_int().unwrap(), d.get_field("v").unwrap().as_int().unwrap())
            })
            .collect();
        let keys: Vec<i64> = rest.iter().map(|(k, _)| *k).collect();
        let expected: Vec<i64> =
            (100..=300).filter(|k| *k != 200).collect();
        assert_eq!(keys, expected);
        let updated = rest.iter().find(|(k, _)| *k == 150).unwrap();
        assert_eq!(updated.1, -1, "refresh must surface the post-pause update");
    }

    #[test]
    fn query_errors_keep_their_kind_through_the_facade() {
        let mut store = Datastore::new();
        store
            .create_dataset("d", DatasetOptions::new(Layout::Amax).page_size(8 * 1024))
            .unwrap();
        // Plan validation error.
        let err = store.query("d", &Query::new(), ExecMode::Compiled).unwrap_err();
        assert!(matches!(err, Error::Query(query::Error::InvalidPlan(_))), "{err:?}");
        // Facade-level error.
        let err = store.query("nope", &Query::count_star(), ExecMode::Compiled).unwrap_err();
        assert!(matches!(err, Error::Api(_)), "{err:?}");
        assert!(err.to_string().contains("unknown dataset"));
    }

    #[test]
    fn json_ingestion_and_deletes() {
        let mut store = Datastore::new();
        store
            .create_dataset("d", DatasetOptions::new(Layout::Apax).page_size(8 * 1024))
            .unwrap();
        let n = store
            .ingest_json("d", "{\"id\": 1, \"v\": 1}\n{\"id\": 2, \"v\": \"two\"}")
            .unwrap();
        assert_eq!(n, 2);
        assert!(store.ingest_json("d", "not json").is_err());
        store.delete("d", Value::Int(1)).unwrap();
        store.compact("d").unwrap();
        assert!(store.get("d", &Value::Int(1)).unwrap().is_none());
        assert!(store.get("d", &Value::Int(2)).unwrap().is_some());
        assert!(store.query("nope", &Query::count_star(), ExecMode::Compiled).is_err());
    }

    #[test]
    fn telemetry_flows_through_the_facade() {
        let mut store = Datastore::new();
        store
            .create_dataset(
                "obs",
                DatasetOptions::new(Layout::Amax)
                    .memtable_budget(16 * 1024)
                    .page_size(8 * 1024)
                    .shards(3),
            )
            .unwrap();
        let docs: Vec<Value> = (0..300i64)
            .map(|i| doc!({"id": i, "grp": (format!("g{}", i % 5)), "score": (i % 100)}))
            .collect();
        store.ingest_all("obs", docs).unwrap();
        store.flush("obs").unwrap();

        // Merged metrics: counters sum across shards; the amp gauges are
        // recomputed over the merged totals (never summed per shard).
        let metrics = store.metrics("obs").unwrap();
        assert_eq!(metrics.dataset, "obs");
        assert_eq!(metrics.shards, 3);
        assert_eq!(metrics.counter("ingest.records"), 300);
        assert!(metrics.counter("flush.count") >= 3, "every shard flushed");
        let write_amp = metrics.gauge("amp.write").unwrap();
        let expected = metrics.counter("storage.bytes_written") as f64
            / metrics.counter("ingest.bytes") as f64;
        assert!((write_amp - expected).abs() < 1e-9, "{write_amp} vs {expected}");
        assert!(metrics.to_json().contains("\"shards\": 3"));

        // Health: one entry per shard, all idle-inline and error-free.
        let health = store.health();
        assert_eq!(health.len(), 1);
        let (name, shards) = &health[0];
        assert_eq!(name, "obs");
        assert_eq!(shards.len(), 3);
        for h in shards {
            assert_eq!(h.worker, lsm::WorkerState::Inline);
            assert!(h.last_error.is_none());
        }

        // Events: merged across shards, tagged with their shard index.
        let events = store.dataset("obs").unwrap().recent_events(64);
        assert!(events.iter().any(|(_, e)| e.kind.label() == "flush_end"));
        let shard_ids: std::collections::BTreeSet<usize> =
            events.iter().map(|(i, _)| *i).collect();
        assert_eq!(shard_ids.len(), 3, "every shard contributed events");

        // EXPLAIN ANALYZE through the facade: same rows as query(), exact
        // early-termination point for a limited key-ordered select.
        let q = Query::select_paths(["score"]).order_by_key().with_limit(7);
        let expected = store.query("obs", &q, ExecMode::Compiled).unwrap();
        let report = store.explain_analyze("obs", &q, ExecMode::Compiled).unwrap();
        assert_eq!(report.rows, expected);
        assert_eq!(report.shards.len(), 3);
        assert_eq!(report.early_termination(), Some(report.rows_pulled()));
        assert!(report.rows_pulled() < 300, "LIMIT 7 must not drain 300 records");
        assert!(report.describe().contains("analyze[shard 1]"), "{}", report.describe());

        // Telemetry off: the dataset still answers, the registry stays dark.
        store
            .create_dataset(
                "dark",
                DatasetOptions::new(Layout::Vb).page_size(8 * 1024).telemetry(false),
            )
            .unwrap();
        store.ingest("dark", doc!({"id": 1, "v": 2})).unwrap();
        store.flush("dark").unwrap();
        let metrics = store.metrics("dark").unwrap();
        assert_eq!(metrics.counter("ingest.records"), 0);
        assert!(store.dataset("dark").unwrap().recent_events(16).is_empty());
        assert_eq!(store.get("dark", &Value::Int(1)).unwrap().unwrap().get_field("v"), Some(&Value::Int(2)));
    }

    #[test]
    fn memory_budget_makes_warm_rescans_free_and_shows_in_explain() {
        let mut store = Datastore::new();
        store
            .create_dataset(
                "warm",
                DatasetOptions::new(Layout::Amax)
                    .memtable_budget(16 * 1024)
                    .page_size(8 * 1024)
                    .shards(2)
                    .memory_budget(16 << 20),
            )
            .unwrap();
        let docs: Vec<Value> = (0..400i64)
            .map(|i| doc!({"id": i, "score": (i % 100), "grp": (format!("g{}", i % 4))}))
            .collect();
        store.ingest_all("warm", docs).unwrap();
        store.flush("warm").unwrap();

        let ds = store.dataset("warm").unwrap();
        let cache = ds.leaf_cache().expect("budget configures a shared cache");
        assert_eq!(cache.capacity_bytes(), 8 << 20, "half the budget funds the cache");

        // Cold run: every leaf is a miss and pages are read.
        let q = Query::count_star().with_filter(Expr::ge("score", 0));
        let cold = store.explain_analyze("warm", &q, ExecMode::Compiled).unwrap();
        assert_eq!(cold.rows[0].agg(), &Value::Int(400));
        assert!(cold.cache_misses() > 0, "{cold:?}");
        assert_eq!(cold.cache_hits(), 0);

        // Warm re-run: cache hits == leaves touched (the cold misses),
        // zero misses, zero pages read — the acceptance criterion.
        let warm = store.explain_analyze("warm", &q, ExecMode::Compiled).unwrap();
        assert_eq!(warm.rows, cold.rows);
        assert_eq!(warm.cache_hits(), cold.cache_misses());
        assert_eq!(warm.cache_misses(), 0);
        assert_eq!(warm.pages_read(), 0, "{}", warm.describe());
        assert!(warm.describe().contains("cache hits"), "{}", warm.describe());

        // The planner now sees the resident leaves and discounts the scan.
        let plan = store.explain("warm", &q).unwrap();
        assert!(plan.contains("cache discount"), "{plan}");

        // Telemetry: per-shard counters summed, residency gauges pushed
        // once for the one shared cache.
        let metrics = ds.metrics();
        assert_eq!(metrics.counter("cache.hits"), cache.stats().hits);
        assert_eq!(metrics.counter("cache.misses"), cache.stats().misses);
        assert_eq!(metrics.gauge("cache.budget_bytes"), Some((8 << 20) as f64));
        let resident = metrics.gauge("cache.resident_bytes").unwrap();
        assert!(resident > 0.0 && resident <= (8 << 20) as f64, "{resident}");
    }

    #[test]
    fn cursor_refresh_releases_retired_components_promptly() {
        let mut store = Datastore::new();
        store
            .create_dataset(
                "churn",
                DatasetOptions::new(Layout::Amax)
                    .memtable_budget(16 * 1024)
                    .page_size(8 * 1024)
                    .shards(2)
                    .memory_budget(16 << 20),
            )
            .unwrap();
        let docs: Vec<Value> = (0..300i64).map(|i| doc!({"id": i, "v": i})).collect();
        store.ingest_all("churn", docs).unwrap();
        store.flush("churn").unwrap();
        let ds = store.dataset("churn").unwrap();
        let cache = ds.leaf_cache().unwrap().clone();

        // Warm the cache through a full scan, then pause mid-stream with a
        // second cursor pinning the current components.
        let full: Vec<i64> = ds
            .cursor(None)
            .unwrap()
            .map(|e| e.unwrap().0.as_int().unwrap())
            .collect();
        assert_eq!(full.len(), 300);
        let mut cursor = ds.cursor(None).unwrap();
        for _ in 0..50 {
            cursor.next().unwrap().unwrap();
        }

        // Retire the pinned components: flush new data and merge down.
        // (Unpinned intermediates may already invalidate here; the *pinned*
        // components' leaves must still be resident.)
        ds.insert(doc!({"id": (300i64), "v": (300i64)})).unwrap();
        store.compact("churn").unwrap();
        let before = cache.stats();
        assert!(
            before.resident_leaves > 0,
            "pinned snapshots must keep the retired components' leaves alive: {before:?}"
        );

        // refresh() drops the old pins *before* re-pinning: the retired
        // components drop on the spot and invalidate their cached leaves.
        cursor.refresh(ds).unwrap();
        assert!(
            cache.stats().invalidations > before.invalidations,
            "refresh must release retired components promptly: {:?}",
            cache.stats()
        );
        // The resumed stream is still exact.
        let rest: Vec<i64> = cursor.map(|e| e.unwrap().0.as_int().unwrap()).collect();
        assert_eq!(rest, (50..=300).collect::<Vec<i64>>());
    }

    #[test]
    fn concurrent_readers_share_the_cache_and_match_the_oracle() {
        let mut store = Datastore::new();
        store
            .create_dataset(
                "fleet",
                DatasetOptions::new(Layout::Amax)
                    .memtable_budget(16 * 1024)
                    .page_size(8 * 1024)
                    .shards(2)
                    .memory_budget(4 << 20),
            )
            .unwrap();
        let n = 400i64;
        let docs: Vec<Value> = (0..n).map(|i| doc!({"id": i, "v": (i * 3)})).collect();
        store.ingest_all("fleet", docs).unwrap();
        store.flush("fleet").unwrap();
        let ds = store.dataset("fleet").unwrap();
        let cache = ds.leaf_cache().unwrap();

        // A fleet of readers: half run key-ordered range scans, half run
        // point reads, all through the one shared cache. Every result is
        // checked against the arithmetic oracle.
        std::thread::scope(|scope| {
            for t in 0..6u64 {
                scope.spawn(move || {
                    if t % 2 == 0 {
                        for round in 0..3 {
                            let keys: Vec<i64> = ds
                                .cursor(None)
                                .unwrap()
                                .map(|e| {
                                    let (k, d) = e.unwrap();
                                    let (k, v) = (
                                        k.as_int().unwrap(),
                                        d.get_field("v").unwrap().as_int().unwrap(),
                                    );
                                    assert_eq!(v, k * 3, "round {round}");
                                    k
                                })
                                .collect();
                            assert_eq!(keys, (0..n).collect::<Vec<i64>>());
                        }
                    } else {
                        for i in 0..200u64 {
                            let key = ((i * 7919 + t * 31) % n as u64) as i64;
                            let rec = ds.get(&Value::Int(key)).unwrap().unwrap();
                            assert_eq!(rec.get_field("v"), Some(&Value::Int(key * 3)));
                        }
                    }
                });
            }
        });

        // Residency stays bounded by the budgeted capacity throughout (the
        // cache never admits past its capacity, so the final state is as
        // good as a peak: no moment could exceed it).
        let stats = cache.stats();
        assert!(stats.resident_bytes <= stats.capacity_bytes, "{stats:?}");
        assert!(stats.hits > 0, "concurrent readers must share warm leaves");

        // Monotone hit rate on a re-scanned hot range: a second identical
        // scan can only raise the hit fraction.
        let rate = |s: LeafCacheStats| s.hits as f64 / (s.hits + s.misses).max(1) as f64;
        let q = Query::count_star().with_filter(Expr::between("id", 0, 99));
        ds.query(&q, ExecMode::Compiled).unwrap();
        let first = rate(cache.stats());
        ds.query(&q, ExecMode::Compiled).unwrap();
        let second = rate(cache.stats());
        assert!(second >= first, "hit rate must be monotone: {first} -> {second}");
    }

    #[test]
    fn reopened_sharded_dataset_rebuilds_one_shared_cache() {
        let dir = std::env::temp_dir()
            .join(format!("docstore-facade-tests-{}", std::process::id()))
            .join("durable-budget");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut store = Datastore::new();
            store
                .open_dataset(
                    "events",
                    &dir,
                    DatasetOptions::new(Layout::Amax)
                        .page_size(8 * 1024)
                        .memtable_budget(16 * 1024)
                        .shards(2)
                        .memory_budget(16 << 20),
                )
                .unwrap();
            let docs: Vec<Value> = (0..200i64).map(|i| doc!({"id": i, "v": i})).collect();
            store.ingest_all("events", docs).unwrap();
            store.flush("events").unwrap();
        }
        let mut store = Datastore::new();
        store.reopen_dataset("events", &dir).unwrap();
        let ds = store.dataset("events").unwrap();
        // The per-shard budget slices (8 MiB each) sum back to the dataset
        // budget; half funds the one rebuilt shared cache.
        let cache = ds.leaf_cache().expect("persisted budget rebuilds the cache");
        assert_eq!(cache.capacity_bytes(), 8 << 20);
        let q = Query::count_star().with_filter(Expr::ge("v", 0));
        let cold = ds.explain_analyze(&q, ExecMode::Compiled).unwrap();
        assert_eq!(cold.rows[0].agg(), &Value::Int(200));
        let warm = ds.explain_analyze(&q, ExecMode::Compiled).unwrap();
        assert_eq!(warm.pages_read(), 0, "{}", warm.describe());
        assert_eq!(warm.cache_hits(), cold.cache_misses());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
