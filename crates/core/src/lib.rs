//! # docstore — the public facade
//!
//! A small, user-facing API over the whole stack: create a [`Datastore`],
//! declare datasets with a storage layout, feed them JSON documents, and run
//! analytical queries in either execution mode. This is the surface a
//! downstream user of the reproduction would program against; the examples
//! in the repository root use nothing else.
//!
//! ```
//! use docstore::{Datastore, DatasetOptions, Layout};
//! use query::{ExecMode, Query};
//!
//! let mut store = Datastore::new();
//! store
//!     .create_dataset("gamers", DatasetOptions::new(Layout::Amax).key("id"))
//!     .unwrap();
//! store
//!     .ingest_json("gamers", r#"{"id": 1, "name": {"first": "Ann"}, "games": [{"title": "NBA"}]}"#)
//!     .unwrap();
//! store.flush("gamers").unwrap();
//! let rows = store
//!     .query("gamers", &Query::count_star(), ExecMode::Compiled)
//!     .unwrap();
//! assert_eq!(rows[0].agg, docstore::Value::Int(1));
//! ```

use std::collections::HashMap;

use docmodel::parse_json;
use lsm::{DatasetConfig, IngestStats, LsmDataset};
use query::{ExecMode, Query, QueryRow};
use storage::pagestore::IoStats;

pub use docmodel::{doc, Path, Value};
pub use lsm::TieringPolicy;
pub use storage::LayoutKind as Layout;

/// Error type of the facade.
pub type Error = encoding::DecodeError;
/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Options for creating a dataset.
#[derive(Debug, Clone)]
pub struct DatasetOptions {
    /// Storage layout for on-disk components.
    pub layout: Layout,
    /// Primary-key field name (default `"id"`).
    pub key_field: String,
    /// Memtable budget in bytes before a flush is triggered.
    pub memtable_budget: usize,
    /// Simulated disk page size.
    pub page_size: usize,
    /// Optional secondary index path.
    pub secondary_index: Option<Path>,
    /// Page-level compression.
    pub compress_pages: bool,
}

impl DatasetOptions {
    /// Defaults mirroring the paper's setup, scaled down.
    pub fn new(layout: Layout) -> DatasetOptions {
        DatasetOptions {
            layout,
            key_field: "id".to_string(),
            memtable_budget: 4 << 20,
            page_size: 128 * 1024,
            secondary_index: None,
            compress_pages: true,
        }
    }

    /// Set the primary-key field.
    pub fn key(mut self, key: impl Into<String>) -> Self {
        self.key_field = key.into();
        self
    }

    /// Set the memtable budget.
    pub fn memtable_budget(mut self, bytes: usize) -> Self {
        self.memtable_budget = bytes;
        self
    }

    /// Set the page size.
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes;
        self
    }

    /// Declare a secondary index on a path.
    pub fn secondary_index(mut self, path: impl Into<Path>) -> Self {
        self.secondary_index = Some(path.into());
        self
    }

    fn to_config(&self, name: &str) -> DatasetConfig {
        let mut config = DatasetConfig::new(name, self.layout)
            .with_key_field(self.key_field.clone())
            .with_memtable_budget(self.memtable_budget)
            .with_page_size(self.page_size);
        config.compress_pages = self.compress_pages;
        if let Some(p) = &self.secondary_index {
            config = config.with_secondary_index(p.clone());
        }
        config
    }
}

/// A collection of named datasets — the facade over the LSM engine.
#[derive(Default)]
pub struct Datastore {
    datasets: HashMap<String, LsmDataset>,
}

impl Datastore {
    /// Create an empty datastore.
    pub fn new() -> Datastore {
        Datastore::default()
    }

    /// Create a dataset. Fails if the name is taken.
    pub fn create_dataset(&mut self, name: &str, options: DatasetOptions) -> Result<()> {
        if self.datasets.contains_key(name) {
            return Err(Error::new(format!("dataset '{name}' already exists")));
        }
        let dataset = LsmDataset::new(options.to_config(name));
        self.datasets.insert(name.to_string(), dataset);
        Ok(())
    }

    /// Open a **durable** dataset rooted at `dir`, creating the directory on
    /// first use and recovering it (manifest + WAL replay) on every later
    /// one. Acknowledged writes to this dataset survive restarts.
    pub fn open_dataset(
        &mut self,
        name: &str,
        dir: impl AsRef<std::path::Path>,
        options: DatasetOptions,
    ) -> Result<()> {
        if self.datasets.contains_key(name) {
            return Err(Error::new(format!("dataset '{name}' already exists")));
        }
        let dataset = LsmDataset::open(dir, options.to_config(name))?;
        self.datasets.insert(name.to_string(), dataset);
        Ok(())
    }

    /// Reopen a durable dataset from its directory alone, using the
    /// configuration persisted in its manifest.
    pub fn reopen_dataset(
        &mut self,
        name: &str,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<()> {
        if self.datasets.contains_key(name) {
            return Err(Error::new(format!("dataset '{name}' already exists")));
        }
        let dataset = LsmDataset::reopen(dir)?;
        self.datasets.insert(name.to_string(), dataset);
        Ok(())
    }

    /// Force a dataset's acknowledged WAL records to the device (group
    /// commit). No-op for in-memory datasets.
    pub fn sync(&mut self, dataset: &str) -> Result<()> {
        self.dataset_mut(dataset)?.sync()
    }

    /// Borrow a dataset.
    pub fn dataset(&self, name: &str) -> Result<&LsmDataset> {
        self.datasets
            .get(name)
            .ok_or_else(|| Error::new(format!("unknown dataset '{name}'")))
    }

    /// Mutably borrow a dataset.
    pub fn dataset_mut(&mut self, name: &str) -> Result<&mut LsmDataset> {
        self.datasets
            .get_mut(name)
            .ok_or_else(|| Error::new(format!("unknown dataset '{name}'")))
    }

    /// Names of all datasets.
    pub fn dataset_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.datasets.keys().cloned().collect();
        names.sort();
        names
    }

    /// Insert one document (as a [`Value`]).
    pub fn ingest(&mut self, dataset: &str, doc: Value) -> Result<()> {
        self.dataset_mut(dataset)?.insert(doc)
    }

    /// Parse and insert one JSON document (or a whitespace-separated stream).
    pub fn ingest_json(&mut self, dataset: &str, json: &str) -> Result<usize> {
        let docs = docmodel::parse_json_stream(json)
            .map_err(|e| Error::new(format!("invalid JSON: {e}")))?;
        let n = docs.len();
        let ds = self.dataset_mut(dataset)?;
        for doc in docs {
            ds.insert(doc)?;
        }
        Ok(n)
    }

    /// Insert many documents.
    pub fn ingest_all(&mut self, dataset: &str, docs: impl IntoIterator<Item = Value>) -> Result<usize> {
        let ds = self.dataset_mut(dataset)?;
        let mut n = 0;
        for doc in docs {
            ds.insert(doc)?;
            n += 1;
        }
        Ok(n)
    }

    /// Delete a record by key.
    pub fn delete(&mut self, dataset: &str, key: Value) -> Result<()> {
        self.dataset_mut(dataset)?.delete(key)
    }

    /// Force-flush the in-memory component.
    pub fn flush(&mut self, dataset: &str) -> Result<()> {
        self.dataset_mut(dataset)?.flush()
    }

    /// Flush and merge everything down to one component.
    pub fn compact(&mut self, dataset: &str) -> Result<()> {
        self.dataset_mut(dataset)?.compact_fully()
    }

    /// Run a query.
    pub fn query(&self, dataset: &str, query: &Query, mode: ExecMode) -> Result<Vec<QueryRow>> {
        query::run(self.dataset(dataset)?, query, mode)
    }

    /// Point lookup by primary key.
    pub fn get(&self, dataset: &str, key: &Value) -> Result<Option<Value>> {
        self.dataset(dataset)?.lookup(key, None)
    }

    /// Parse a single JSON document into a [`Value`] (re-export convenience).
    pub fn parse(json: &str) -> Result<Value> {
        parse_json(json).map_err(|e| Error::new(format!("invalid JSON: {e}")))
    }

    /// Ingestion statistics of a dataset.
    pub fn ingest_stats(&self, dataset: &str) -> Result<IngestStats> {
        Ok(self.dataset(dataset)?.stats())
    }

    /// I/O statistics of a dataset's simulated disk.
    pub fn io_stats(&self, dataset: &str) -> Result<IoStats> {
        Ok(self.dataset(dataset)?.io_stats())
    }

    /// On-disk footprint of a dataset (primary index plus index structures).
    pub fn stored_bytes(&self, dataset: &str) -> Result<u64> {
        Ok(self.dataset(dataset)?.total_stored_bytes())
    }

    /// The inferred schema of a dataset, pretty-printed.
    pub fn describe_schema(&self, dataset: &str) -> Result<String> {
        Ok(self.dataset(dataset)?.schema().describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use query::Aggregate;

    #[test]
    fn end_to_end_facade_roundtrip() {
        let mut store = Datastore::new();
        store
            .create_dataset(
                "tweets",
                DatasetOptions::new(Layout::Amax)
                    .key("id")
                    .memtable_budget(32 * 1024)
                    .page_size(8 * 1024),
            )
            .unwrap();
        assert!(store.create_dataset("tweets", DatasetOptions::new(Layout::Vb)).is_err());

        for i in 0..200i64 {
            store
                .ingest(
                    "tweets",
                    doc!({"id": i, "likes": (i % 10), "user": {"name": (format!("u{}", i % 5))}}),
                )
                .unwrap();
        }
        store.flush("tweets").unwrap();

        let count = store
            .query("tweets", &Query::count_star(), ExecMode::Compiled)
            .unwrap();
        assert_eq!(count[0].agg, Value::Int(200));

        let top = store
            .query(
                "tweets",
                &Query::count_star()
                    .group_by(Path::parse("user.name"))
                    .aggregate(Aggregate::Max(Path::parse("likes")))
                    .top_k(3),
                ExecMode::Interpreted,
            )
            .unwrap();
        assert_eq!(top.len(), 3);

        let rec = store.get("tweets", &Value::Int(42)).unwrap().unwrap();
        assert_eq!(rec.get_field("likes"), Some(&Value::Int(2)));
        assert!(store.stored_bytes("tweets").unwrap() > 0);
        assert!(store.describe_schema("tweets").unwrap().contains("user"));
        assert_eq!(store.dataset_names(), vec!["tweets".to_string()]);
    }

    #[test]
    fn durable_dataset_survives_reopen_through_facade() {
        let dir = std::env::temp_dir()
            .join(format!("docstore-facade-tests-{}", std::process::id()))
            .join("durable");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut store = Datastore::new();
            store
                .open_dataset(
                    "events",
                    &dir,
                    DatasetOptions::new(Layout::Amax).page_size(8 * 1024),
                )
                .unwrap();
            store
                .ingest_json("events", "{\"id\": 1, \"kind\": \"created\"}\n{\"id\": 2, \"kind\": \"deleted\"}")
                .unwrap();
            store.delete("events", Value::Int(2)).unwrap();
            store.flush("events").unwrap();
            store
                .ingest_json("events", "{\"id\": 3, \"kind\": \"unflushed\"}")
                .unwrap();
            store.sync("events").unwrap();
            // Dropped without a final flush: id 3 lives only in the WAL.
        }
        let mut store = Datastore::new();
        store.reopen_dataset("events", &dir).unwrap();
        assert!(store.create_dataset("events", DatasetOptions::new(Layout::Vb)).is_err());
        let count = store
            .query("events", &Query::count_star(), ExecMode::Compiled)
            .unwrap();
        assert_eq!(count[0].agg, Value::Int(2));
        assert!(store.get("events", &Value::Int(2)).unwrap().is_none());
        let recovered = store.get("events", &Value::Int(3)).unwrap().unwrap();
        assert_eq!(recovered.get_field("kind"), Some(&Value::from("unflushed")));
    }

    #[test]
    fn json_ingestion_and_deletes() {
        let mut store = Datastore::new();
        store
            .create_dataset("d", DatasetOptions::new(Layout::Apax).page_size(8 * 1024))
            .unwrap();
        let n = store
            .ingest_json("d", "{\"id\": 1, \"v\": 1}\n{\"id\": 2, \"v\": \"two\"}")
            .unwrap();
        assert_eq!(n, 2);
        assert!(store.ingest_json("d", "not json").is_err());
        store.delete("d", Value::Int(1)).unwrap();
        store.compact("d").unwrap();
        assert!(store.get("d", &Value::Int(1)).unwrap().is_none());
        assert!(store.get("d", &Value::Int(2)).unwrap().is_some());
        assert!(store.query("nope", &Query::count_star(), ExecMode::Compiled).is_err());
    }
}
