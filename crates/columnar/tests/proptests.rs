//! Property-based tests: shredding then assembling arbitrary "clean"
//! documents is the identity (up to object field order), and encoded chunks
//! round-trip byte-exactly.

use std::sync::Arc;

use columnar::{Assembler, ColumnChunk, ColumnCursor, Shredder};
use docmodel::Value;
use proptest::prelude::*;
use schema::SchemaBuilder;

/// Arbitrary documents with no nulls, no empty containers and consistent
/// key field: exactly the fragment for which shred→assemble is lossless
/// (nulls and empty objects intentionally assemble as absent — see the
/// targeted unit tests for those semantics).
fn arb_clean_value(depth: u32) -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e9f64..1e9f64).prop_map(Value::Double),
        "[a-z0-9]{0,12}".prop_map(Value::String),
    ];
    leaf.prop_recursive(depth, 48, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Value::Array),
            prop::collection::vec(("[a-e]{1,3}", inner), 1..4).prop_map(|fields| {
                let mut out: Vec<(String, Value)> = Vec::new();
                for (k, v) in fields {
                    if !out.iter().any(|(ek, _)| *ek == k) {
                        out.push((k, v));
                    }
                }
                Value::Object(out)
            }),
        ]
    })
}

fn arb_record() -> impl Strategy<Value = Value> {
    (1i64..1_000_000, prop::collection::vec(("[a-e]{1,3}", arb_clean_value(3)), 0..5)).prop_map(
        |(id, fields)| {
            let mut obj = vec![("id".to_string(), Value::Int(id))];
            for (k, v) in fields {
                if k != "id" && !obj.iter().any(|(ek, _)| *ek == k) {
                    obj.push((k, v));
                }
            }
            Value::Object(obj)
        },
    )
}

fn sort_fields(v: &Value) -> Value {
    match v {
        Value::Object(fields) => {
            let mut fs: Vec<(String, Value)> = fields
                .iter()
                .map(|(k, v)| (k.clone(), sort_fields(v)))
                .collect();
            fs.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(fs)
        }
        Value::Array(elems) => Value::Array(elems.iter().map(sort_fields).collect()),
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shred_assemble_is_identity_on_clean_documents(records in prop::collection::vec(arb_record(), 1..12)) {
        let mut builder = SchemaBuilder::new(Some("id".to_string()));
        builder.observe_all(records.iter());
        let schema = builder.into_schema();

        let mut shredder = Shredder::new(&schema);
        for r in &records {
            shredder.shred(r);
        }
        let batch = shredder.finish();

        // Encode and decode every chunk (the on-disk byte path) before
        // assembling, so the whole pipeline is covered.
        let mut cursors = Vec::new();
        for chunk in &batch.columns {
            let mut buf = Vec::new();
            chunk.encode(&mut buf);
            let mut pos = 0;
            let decoded = ColumnChunk::decode(chunk.spec.clone(), &buf, &mut pos).unwrap();
            prop_assert_eq!(&decoded, chunk);
            cursors.push(ColumnCursor::new(Arc::new(decoded)));
        }

        let mut assembler = Assembler::new(&schema, cursors, batch.record_count);
        for original in &records {
            let assembled = assembler.next_record().unwrap().unwrap();
            prop_assert_eq!(sort_fields(&assembled), sort_fields(original));
        }
        prop_assert!(assembler.next_record().is_none());
    }

    #[test]
    fn skip_then_assemble_matches_direct_assembly(records in prop::collection::vec(arb_record(), 2..10), skip in 1usize..8) {
        let mut builder = SchemaBuilder::new(Some("id".to_string()));
        builder.observe_all(records.iter());
        let schema = builder.into_schema();
        let mut shredder = Shredder::new(&schema);
        for r in &records {
            shredder.shred(r);
        }
        let batch = shredder.finish();
        let skip = skip.min(records.len() - 1);

        let cursors: Vec<_> = batch
            .columns
            .iter()
            .map(|c| ColumnCursor::new(Arc::new(c.clone())))
            .collect();
        let mut assembler = Assembler::new(&schema, cursors, batch.record_count);
        assembler.skip_records(skip);
        let next = assembler.next_record().unwrap().unwrap();
        prop_assert_eq!(sort_fields(&next), sort_fields(&records[skip]));
    }
}
