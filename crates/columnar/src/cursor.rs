//! Column cursors: entry-at-a-time iteration over a [`ColumnChunk`].
//!
//! Cursors are what the LSM read path and the assembler work with. They
//! support the batched skipping described in §4.4: during reconciliation,
//! records overridden by newer components are *counted* and all affected
//! cursors are advanced in one go, per column, instead of being decoded and
//! discarded one value at a time.

use std::sync::Arc;

use docmodel::Value;
use schema::ColumnSpec;

use crate::chunk::ColumnChunk;

/// A cursor over one column chunk.
#[derive(Debug, Clone)]
pub struct ColumnCursor {
    chunk: Arc<ColumnChunk>,
    def_pos: usize,
    value_pos: usize,
}

impl ColumnCursor {
    /// Create a cursor positioned at the first entry.
    pub fn new(chunk: Arc<ColumnChunk>) -> ColumnCursor {
        ColumnCursor {
            chunk,
            def_pos: 0,
            value_pos: 0,
        }
    }

    /// The column's metadata.
    pub fn spec(&self) -> &ColumnSpec {
        &self.chunk.spec
    }

    /// Number of entries not yet consumed.
    pub fn remaining_entries(&self) -> usize {
        self.chunk.defs.len() - self.def_pos
    }

    /// `true` when every entry has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.def_pos >= self.chunk.defs.len()
    }

    /// Peek at the next entry's definition level without consuming it.
    pub fn peek_def(&self) -> Option<u16> {
        self.chunk.defs.get(self.def_pos).copied()
    }

    /// Consume the next entry, returning `(definition level, value)`. The
    /// value is present when the definition level equals the column maximum —
    /// or always, for the primary-key column (anti-matter entries store the
    /// deleted key at definition level 0, §3.2.3).
    pub fn next_entry(&mut self) -> Option<(u16, Option<Value>)> {
        let def = *self.chunk.defs.get(self.def_pos)?;
        self.def_pos += 1;
        let has_value = if self.chunk.spec.is_key {
            true
        } else {
            def == self.chunk.spec.max_def
        };
        let value = if has_value {
            let v = self.chunk.values.get(self.value_pos);
            self.value_pos += 1;
            Some(v)
        } else {
            None
        };
        Some((def, value))
    }

    /// Consume the next entry, discarding its value (cheaper bookkeeping for
    /// absent/delimiter consumption during assembly).
    pub fn skip_entry(&mut self) {
        if let Some(def) = self.chunk.defs.get(self.def_pos).copied() {
            self.def_pos += 1;
            if self.chunk.spec.is_key || def == self.chunk.spec.max_def {
                self.value_pos += 1;
            }
        }
    }

    /// Skip the entries of exactly one record, using the column's
    /// record-boundary rules:
    ///
    /// * a non-repeated column contributes exactly one entry per record;
    /// * a repeated column contributes a single entry when its outermost
    ///   array is absent (definition level below the array's level),
    ///   otherwise a run of entries terminated by the delimiter `0`.
    pub fn skip_record(&mut self) {
        if self.is_exhausted() {
            return;
        }
        if !self.chunk.spec.is_repeated() {
            self.skip_entry();
            return;
        }
        let outer_level = self.chunk.spec.array_levels[0];
        let first = self.chunk.defs[self.def_pos];
        self.skip_entry();
        if first < outer_level {
            // The outermost array is absent: a single entry covers the record.
            return;
        }
        // The outermost array is present (possibly empty): the shredder
        // always terminates the record segment with delimiter 0, and no
        // content entry mid-record can have definition level 0.
        while let Some(def) = self.peek_def() {
            self.skip_entry();
            if def == 0 {
                break;
            }
        }
    }

    /// Skip `n` records (the batched advance used by LSM reconciliation).
    pub fn skip_records(&mut self, n: usize) {
        for _ in 0..n {
            if self.is_exhausted() {
                break;
            }
            self.skip_record();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shred::shred_records;
    use docmodel::{doc, Path};
    use schema::SchemaBuilder;

    fn gamer_cursors() -> Vec<ColumnCursor> {
        let records = vec![
            doc!({"id": 0, "games": [{"title": "NFL"}]}),
            doc!({
                "id": 1,
                "name": {"last": "Brown"},
                "games": [{"title": "FIFA", "consoles": ["PC", "PS4"]}]
            }),
            doc!({
                "id": 2,
                "name": {"first": "John", "last": "Smith"},
                "games": [
                    {"title": "NBA", "consoles": ["PS4", "PC"]},
                    {"title": "NFL", "consoles": ["XBOX"]}
                ]
            }),
            doc!({"id": 3}),
        ];
        let mut b = SchemaBuilder::new(Some("id".to_string()));
        b.observe_all(records.iter());
        let schema = b.into_schema();
        let batch = shred_records(&schema, &records);
        batch
            .columns
            .into_iter()
            .map(|c| ColumnCursor::new(Arc::new(c)))
            .collect()
    }

    fn cursor_for(cursors: &[ColumnCursor], path: &str) -> ColumnCursor {
        cursors
            .iter()
            .find(|c| c.spec().path == Path::parse(path))
            .unwrap()
            .clone()
    }

    #[test]
    fn next_entry_walks_defs_and_values() {
        let cursors = gamer_cursors();
        let mut titles = cursor_for(&cursors, "games[*].title");
        let mut seen_values = Vec::new();
        let mut seen_defs = Vec::new();
        while let Some((def, value)) = titles.next_entry() {
            seen_defs.push(def);
            if let Some(v) = value {
                seen_values.push(v);
            }
        }
        assert_eq!(seen_defs, vec![3, 0, 3, 0, 3, 3, 0, 0]);
        assert_eq!(
            seen_values,
            vec![
                Value::from("NFL"),
                Value::from("FIFA"),
                Value::from("NBA"),
                Value::from("NFL")
            ]
        );
        assert!(titles.is_exhausted());
        assert!(titles.next_entry().is_none());
    }

    #[test]
    fn key_cursor_returns_values_at_def_zero() {
        let records = [doc!({"id": 10})];
        let mut b = SchemaBuilder::new(Some("id".to_string()));
        b.observe_all(records.iter());
        let schema = b.into_schema();
        let mut shredder = crate::shred::Shredder::new(&schema);
        shredder.shred(&records[0]);
        shredder.shred_antimatter(&Value::Int(99));
        let batch = shredder.finish();
        let key_chunk = batch.columns.into_iter().find(|c| c.spec.is_key).unwrap();
        let mut cur = ColumnCursor::new(Arc::new(key_chunk));
        assert_eq!(cur.next_entry(), Some((1, Some(Value::Int(10)))));
        assert_eq!(cur.next_entry(), Some((0, Some(Value::Int(99)))));
    }

    #[test]
    fn skip_record_respects_boundaries() {
        let cursors = gamer_cursors();

        // Non-repeated column: one entry per record.
        let mut first = cursor_for(&cursors, "name.first");
        first.skip_records(2);
        assert_eq!(first.next_entry(), Some((2, Some(Value::from("John")))));

        // Repeated column: records span variable numbers of entries.
        let mut consoles = cursor_for(&cursors, "games[*].consoles[*]");
        consoles.skip_records(2); // records 0 and 1
        let mut defs = Vec::new();
        let mut values = Vec::new();
        while let Some((d, v)) = consoles.next_entry() {
            defs.push(d);
            if let Some(v) = v {
                values.push(v);
            }
            if d == 0 {
                break; // end of record 2
            }
        }
        assert_eq!(defs, vec![4, 4, 1, 4, 0]);
        assert_eq!(
            values,
            vec![Value::from("PS4"), Value::from("PC"), Value::from("XBOX")]
        );
    }

    #[test]
    fn skip_all_records_exhausts_cursor() {
        let cursors = gamer_cursors();
        for mut cur in cursors {
            cur.skip_records(4);
            assert!(cur.is_exhausted(), "column {} not exhausted", cur.spec().path);
            cur.skip_records(3); // further skips are harmless
            assert!(cur.next_entry().is_none());
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let cursors = gamer_cursors();
        let mut id = cursor_for(&cursors, "id");
        assert_eq!(id.peek_def(), Some(1));
        assert_eq!(id.peek_def(), Some(1));
        assert_eq!(id.remaining_entries(), 4);
        id.next_entry();
        assert_eq!(id.remaining_entries(), 3);
    }
}
