//! The record-assembly automaton: columns back to documents.
//!
//! Assembly is schema-driven, mirrors the shredder's walk, and supports
//! *projection push-down*: the assembler only touches the cursors it was
//! given, so a query that needs two columns never decodes (or, for AMAX,
//! never even reads) the other hundreds of columns.
//!
//! Array reconstruction uses the delimiter semantics of §3.2.1:
//!
//! * at the position of an array, the next definition level of any descendant
//!   column tells whether the array is absent (`def < array level`), empty
//!   (`def == array level`) or has elements (`def > array level`);
//! * while iterating elements, an entry whose value is `<=` the array's
//!   nesting depth is a delimiter: equal means "this array ends here",
//!   smaller means an enclosing array ends at the same point (the subsumed
//!   delimiter is consumed by that enclosing array's loop).
//!
//! ## Caveat: empty arrays need a materialised item column
//!
//! The "array present but empty" definition level lives on the array's
//! *item* column. A record whose array was only ever seen empty produces no
//! item column at all (the schema has no item node to shred into), so
//! reassembly cannot distinguish the empty array from an absent field: the
//! empty array survives **only when some record in the same component
//! materialised the column**. Downstream, `EXISTS` on an always-empty array
//! path is therefore schema-dependent — a storage-layout property, not an
//! engine bug. The targeted regression lives in
//! `storage::component::tests::empty_array_reassembly_is_schema_dependent`;
//! the query differential suites avoid generating always-empty arrays for
//! the same reason.

use std::collections::HashMap;

use docmodel::Value;
use schema::node::SchemaNode;
use schema::{ColumnId, NodeId, Schema};

use crate::cursor::ColumnCursor;
use crate::{ColumnarError, Result};

/// Assembles records from a set of column cursors.
///
/// The assembler owns a clone of the schema (schemas are cheap: a node table)
/// so it can be stored inside long-lived streaming cursors — the lazy leaf
/// buffers of `storage`'s component cursors — without borrowing the component.
pub struct Assembler {
    schema: Schema,
    cursors: HashMap<ColumnId, ColumnCursor>,
    /// For every schema node, the included leaf columns in its subtree.
    leaves_under: HashMap<NodeId, Vec<ColumnId>>,
    records_remaining: usize,
}

impl Assembler {
    /// Create an assembler over the given cursors. Only the columns present
    /// in `cursors` are assembled (projection push-down); `record_count` is
    /// the number of records the cursors cover.
    pub fn new(schema: &Schema, cursors: Vec<ColumnCursor>, record_count: usize) -> Self {
        let cursors: HashMap<ColumnId, ColumnCursor> =
            cursors.into_iter().map(|c| (c.spec().id, c)).collect();
        let mut leaves_under = HashMap::new();
        collect_included_leaves(schema, schema.root(), &cursors, &mut leaves_under);
        Assembler {
            schema: schema.clone(),
            cursors,
            leaves_under,
            records_remaining: record_count,
        }
    }

    /// Number of records still to be assembled.
    pub fn records_remaining(&self) -> usize {
        self.records_remaining
    }

    /// Assemble the next record, or `None` when all records were consumed.
    /// The result contains only the projected fields; records whose projected
    /// fields are all absent assemble to an empty object.
    pub fn next_record(&mut self) -> Option<Result<Value>> {
        if self.records_remaining == 0 {
            return None;
        }
        self.records_remaining -= 1;
        Some(self.assemble_record())
    }

    /// Skip `n` records without assembling them (batched reconciliation).
    pub fn skip_records(&mut self, n: usize) {
        let n = n.min(self.records_remaining);
        for cursor in self.cursors.values_mut() {
            cursor.skip_records(n);
        }
        self.records_remaining -= n;
    }

    fn assemble_record(&mut self) -> Result<Value> {
        let root = self.schema.root();
        let mut fields: Vec<(String, Value)> = Vec::new();
        let root_fields: Vec<(String, NodeId)> = match self.schema.node(root) {
            SchemaNode::Object { fields } => fields.clone(),
            _ => unreachable!("schema root is always an object"),
        };
        for (name, child) in root_fields {
            if !self.has_included_leaves(child) {
                continue;
            }
            if let Some(value) = self.assemble_value(child, 1, 0)? {
                fields.push((name, value));
            }
        }
        Ok(Value::Object(fields))
    }

    fn has_included_leaves(&self, node: NodeId) -> bool {
        self.leaves_under
            .get(&node)
            .map(|l| !l.is_empty())
            .unwrap_or(false)
    }

    fn representative_leaf(&self, node: NodeId) -> Option<ColumnId> {
        self.leaves_under.get(&node).and_then(|l| l.first().copied())
    }

    /// Assemble the value at `node` for the current structural position,
    /// consuming exactly this position's entries from every included leaf
    /// beneath it. Returns `None` when the value is absent.
    fn assemble_value(
        &mut self,
        node: NodeId,
        level: u16,
        array_depth: u16,
    ) -> Result<Option<Value>> {
        match self.schema.node(node) {
            SchemaNode::Atomic { .. } => {
                let cursor = self
                    .cursors
                    .get_mut(&node)
                    .expect("included leaf has a cursor");
                let (def, value) = cursor
                    .next_entry()
                    .ok_or_else(|| ColumnarError::new("column exhausted mid-record"))?;
                let spec_max = cursor.spec().max_def;
                if def == spec_max {
                    Ok(value)
                } else {
                    Ok(None)
                }
            }
            SchemaNode::Object { fields } => {
                let fields: Vec<(String, NodeId)> = fields.clone();
                let mut out: Vec<(String, Value)> = Vec::new();
                let mut any_present = false;
                for (name, child) in fields {
                    if !self.has_included_leaves(child) {
                        continue;
                    }
                    if let Some(v) = self.assemble_value(child, level + 1, array_depth)? {
                        any_present = true;
                        out.push((name, v));
                    }
                }
                if any_present {
                    Ok(Some(Value::Object(out)))
                } else {
                    Ok(None)
                }
            }
            SchemaNode::Union { branches } => {
                let branches: Vec<NodeId> = branches.iter().map(|(_, c)| *c).collect();
                let mut result: Option<Value> = None;
                for child in branches {
                    if !self.has_included_leaves(child) {
                        continue;
                    }
                    // Every branch consumes its entries; at most one yields a
                    // value (§3.2.2: a single alternative is present).
                    let v = self.assemble_value(child, level, array_depth)?;
                    if result.is_none() {
                        result = v;
                    }
                }
                Ok(result)
            }
            SchemaNode::Array { item } => {
                let Some(item) = *item else { return Ok(None) };
                if !self.has_included_leaves(item) {
                    return Ok(None);
                }
                let repr = self
                    .representative_leaf(item)
                    .expect("non-empty leaf set has a representative");
                // Classify the array from the *maximum* next definition level
                // across the included leaves: a single leaf is not enough when
                // the array's items are a union, because the absent-branch
                // marker of one branch coincides with the empty-array level.
                let next_def = self.max_peek_under(node)?;
                if next_def < level {
                    // Array absent (or something above it absent).
                    self.consume_one_entry_under(node);
                    return Ok(None);
                }
                if next_def == level {
                    // Array present but empty (or, under a projection that
                    // excludes some union branches, an array none of whose
                    // elements belong to the projected branches). The
                    // outermost array's record segment always ends with the
                    // delimiter 0, so consume up to and including it to keep
                    // every column aligned.
                    if array_depth == 0 {
                        self.consume_until_record_end_under(node);
                    } else {
                        self.consume_one_entry_under(node);
                    }
                    return Ok(Some(Value::Array(Vec::new())));
                }
                // Non-empty: iterate elements.
                let mut elems = Vec::new();
                loop {
                    let elem = self.assemble_value(item, level + 1, array_depth + 1)?;
                    elems.push(elem.unwrap_or_else(|| absent_element_placeholder(&self.schema, item)));
                    match self
                        .cursors
                        .get(&repr)
                        .and_then(ColumnCursor::peek_def)
                    {
                        None => break, // stream ends with the record
                        Some(v) if v < array_depth => {
                            // An enclosing array ends here; it will consume
                            // the (subsumed) delimiter.
                            break;
                        }
                        Some(v) if v == array_depth => {
                            // This array's end delimiter: consume it from
                            // every leaf beneath this array.
                            self.consume_one_entry_under(node);
                            break;
                        }
                        Some(_) => {
                            // Next element of this array.
                        }
                    }
                }
                Ok(Some(Value::Array(elems)))
            }
        }
    }

    /// Consume exactly one entry (an absent marker, an empty-array marker or
    /// a delimiter) from every included leaf column beneath `node`.
    fn consume_one_entry_under(&mut self, node: NodeId) {
        if let Some(leaves) = self.leaves_under.get(&node) {
            for leaf in leaves {
                if let Some(cursor) = self.cursors.get_mut(leaf) {
                    cursor.skip_entry();
                }
            }
        }
    }

    /// Consume every remaining entry of the current record segment (up to and
    /// including the terminating delimiter 0) from every included leaf
    /// beneath `node`. Only used at the outermost array depth, where the
    /// shredder guarantees the terminator exists whenever the array is present.
    fn consume_until_record_end_under(&mut self, node: NodeId) {
        if let Some(leaves) = self.leaves_under.get(&node) {
            for leaf in leaves {
                if let Some(cursor) = self.cursors.get_mut(leaf) {
                    while let Some(def) = cursor.peek_def() {
                        cursor.skip_entry();
                        if def == 0 {
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Maximum next definition level across the included leaves under `node`.
    fn max_peek_under(&self, node: NodeId) -> Result<u16> {
        let leaves = self
            .leaves_under
            .get(&node)
            .ok_or_else(|| ColumnarError::new("unknown schema node during assembly"))?;
        let mut max = None;
        for leaf in leaves {
            if let Some(cursor) = self.cursors.get(leaf) {
                let def = cursor
                    .peek_def()
                    .ok_or_else(|| ColumnarError::new("column exhausted at array position"))?;
                max = Some(max.map_or(def, |m: u16| m.max(def)));
            }
        }
        max.ok_or_else(|| ColumnarError::new("array node has no projected columns"))
    }
}

/// Placeholder for an array element whose projected subtree is entirely
/// absent: an empty object when the element is an object, `null` otherwise
/// (the shredder never emits elements that were `null`, so this only shows up
/// under projections or for elements whose only fields were null).
fn absent_element_placeholder(schema: &Schema, item: NodeId) -> Value {
    match schema.node(item) {
        SchemaNode::Object { .. } => Value::Object(Vec::new()),
        _ => Value::Null,
    }
}

fn collect_included_leaves(
    schema: &Schema,
    node: NodeId,
    cursors: &HashMap<ColumnId, ColumnCursor>,
    out: &mut HashMap<NodeId, Vec<ColumnId>>,
) -> Vec<ColumnId> {
    let leaves: Vec<ColumnId> = match schema.node(node) {
        SchemaNode::Atomic { .. } => {
            if cursors.contains_key(&node) {
                vec![node]
            } else {
                Vec::new()
            }
        }
        SchemaNode::Object { fields } => fields
            .iter()
            .flat_map(|(_, c)| collect_included_leaves(schema, *c, cursors, out))
            .collect(),
        SchemaNode::Array { item } => item
            .map(|c| collect_included_leaves(schema, c, cursors, out))
            .unwrap_or_default(),
        SchemaNode::Union { branches } => branches
            .iter()
            .flat_map(|(_, c)| collect_included_leaves(schema, *c, cursors, out))
            .collect(),
    };
    out.insert(node, leaves.clone());
    leaves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shred::{shred_records, ShreddedBatch};
    use docmodel::{doc, Path};
    use schema::SchemaBuilder;
    use std::sync::Arc;

    fn build(records: &[Value], key: Option<&str>) -> (Schema, ShreddedBatch) {
        let mut b = SchemaBuilder::new(key.map(str::to_string));
        b.observe_all(records.iter());
        let schema = b.into_schema();
        let batch = shred_records(&schema, records);
        (schema, batch)
    }

    fn all_cursors(batch: &ShreddedBatch) -> Vec<ColumnCursor> {
        batch
            .columns
            .iter()
            .map(|c| ColumnCursor::new(Arc::new(c.clone())))
            .collect()
    }

    fn assemble_all(schema: &Schema, batch: &ShreddedBatch) -> Vec<Value> {
        let mut asm = Assembler::new(schema, all_cursors(batch), batch.record_count);
        let mut out = Vec::new();
        while let Some(r) = asm.next_record() {
            out.push(r.unwrap());
        }
        out
    }

    /// Order-insensitive comparison of documents (assembly restores fields in
    /// schema order, which may differ from the input order).
    fn assert_equivalent(a: &Value, b: &Value) {
        fn normalize(v: &Value) -> Value {
            match v {
                Value::Object(fields) => {
                    let mut fs: Vec<(String, Value)> = fields
                        .iter()
                        .map(|(k, v)| (k.clone(), normalize(v)))
                        .collect();
                    fs.sort_by(|x, y| x.0.cmp(&y.0));
                    Value::Object(fs)
                }
                Value::Array(elems) => Value::Array(elems.iter().map(normalize).collect()),
                other => other.clone(),
            }
        }
        assert_eq!(normalize(a), normalize(b), "\nleft:  {a}\nright: {b}");
    }

    #[test]
    fn roundtrip_figure4_records() {
        let records = vec![
            doc!({"id": 0, "games": [{"title": "NFL"}]}),
            doc!({
                "id": 1,
                "name": {"last": "Brown"},
                "games": [{"title": "FIFA", "consoles": ["PC", "PS4"]}]
            }),
            doc!({
                "id": 2,
                "name": {"first": "John", "last": "Smith"},
                "games": [
                    {"title": "NBA", "consoles": ["PS4", "PC"]},
                    {"title": "NFL", "consoles": ["XBOX"]}
                ]
            }),
            doc!({"id": 3}),
        ];
        let (schema, batch) = build(&records, Some("id"));
        let assembled = assemble_all(&schema, &batch);
        assert_eq!(assembled.len(), 4);
        for (orig, back) in records.iter().zip(&assembled) {
            assert_equivalent(orig, back);
        }
    }

    #[test]
    fn roundtrip_figure6_heterogeneous_records() {
        let records = vec![
            doc!({"name": "John", "games": ["NBA", ["FIFA", "PES"], "NFL"]}),
            doc!({"name": {"first": "Ann", "last": "Brown"}, "games": ["NFL", "NBA"]}),
        ];
        let (schema, batch) = build(&records, None);
        let assembled = assemble_all(&schema, &batch);
        for (orig, back) in records.iter().zip(&assembled) {
            assert_equivalent(orig, back);
        }
    }

    #[test]
    fn roundtrip_empty_and_nested_arrays() {
        let records = vec![
            doc!({"id": 1, "xs": []}),
            doc!({"id": 2, "xs": [[1, 2], [3]]}),
            doc!({"id": 3, "xs": [[]]}),
            doc!({"id": 4}),
            doc!({"id": 5, "xs": [[4]]}),
        ];
        let (schema, batch) = build(&records, Some("id"));
        let assembled = assemble_all(&schema, &batch);
        for (orig, back) in records.iter().zip(&assembled) {
            assert_equivalent(orig, back);
        }
    }

    #[test]
    fn roundtrip_mixed_types_and_scalars() {
        let records = vec![
            doc!({"id": 1, "v": 10, "meta": {"tag": "a", "score": 1.5, "ok": true}}),
            doc!({"id": 2, "v": "ten", "meta": {"tag": "b", "score": 2.5, "ok": false}}),
            doc!({"id": 3, "v": [1, 2], "extra": "only here"}),
            doc!({"id": 4, "v": {"nested": 1}}),
        ];
        let (schema, batch) = build(&records, Some("id"));
        let assembled = assemble_all(&schema, &batch);
        for (orig, back) in records.iter().zip(&assembled) {
            assert_equivalent(orig, back);
        }
    }

    #[test]
    fn nulls_and_missing_fields_assemble_as_absent() {
        let records = vec![
            doc!({"id": 1, "a": null, "b": 2}),
            doc!({"id": 2, "b": null}),
        ];
        let (schema, batch) = build(&records, Some("id"));
        let assembled = assemble_all(&schema, &batch);
        assert_equivalent(&assembled[0], &doc!({"id": 1, "b": 2}));
        assert_equivalent(&assembled[1], &doc!({"id": 2}));
    }

    #[test]
    fn projection_only_touches_requested_columns() {
        let records = vec![
            doc!({"id": 0, "games": [{"title": "NFL"}]}),
            doc!({
                "id": 1,
                "name": {"last": "Brown"},
                "games": [{"title": "FIFA", "consoles": ["PC", "PS4"]}]
            }),
            doc!({"id": 3}),
        ];
        let (schema, batch) = build(&records, Some("id"));
        // Project only games[*].title (plus nothing else).
        let title_cursor = batch
            .columns
            .iter()
            .find(|c| c.spec.path == Path::parse("games[*].title"))
            .map(|c| ColumnCursor::new(Arc::new(c.clone())))
            .unwrap();
        let mut asm = Assembler::new(&schema, vec![title_cursor], batch.record_count);
        let r0 = asm.next_record().unwrap().unwrap();
        assert_equivalent(&r0, &doc!({"games": [{"title": "NFL"}]}));
        let r1 = asm.next_record().unwrap().unwrap();
        assert_equivalent(&r1, &doc!({"games": [{"title": "FIFA"}]}));
        let r2 = asm.next_record().unwrap().unwrap();
        assert_equivalent(&r2, &doc!({}));
        assert!(asm.next_record().is_none());
    }

    #[test]
    fn skip_records_keeps_alignment() {
        let records = vec![
            doc!({"id": 0, "games": [{"title": "A"}, {"title": "B"}]}),
            doc!({"id": 1, "games": [{"title": "C"}]}),
            doc!({"id": 2, "games": [{"title": "D"}, {"title": "E"}, {"title": "F"}]}),
        ];
        let (schema, batch) = build(&records, Some("id"));
        let mut asm = Assembler::new(&schema, all_cursors(&batch), batch.record_count);
        asm.skip_records(2);
        assert_eq!(asm.records_remaining(), 1);
        let r2 = asm.next_record().unwrap().unwrap();
        assert_equivalent(&r2, &records[2]);
        assert!(asm.next_record().is_none());
    }

    #[test]
    fn antimatter_records_assemble_empty() {
        let records = [doc!({"id": 1, "x": "a"})];
        let mut b = SchemaBuilder::new(Some("id".to_string()));
        b.observe_all(records.iter());
        let schema = b.into_schema();
        let mut shredder = crate::shred::Shredder::new(&schema);
        shredder.shred(&records[0]);
        shredder.shred_antimatter(&Value::Int(42));
        let batch = shredder.finish();
        let mut asm = Assembler::new(&schema, all_cursors(&batch), batch.record_count);
        let first = asm.next_record().unwrap().unwrap();
        assert_equivalent(&first, &records[0]);
        // Anti-matter: the key column's def is 0, so the record assembles to
        // an empty object (the LSM layer uses the key cursor to recognise the
        // tombstone and never surfaces it to queries).
        let tomb = asm.next_record().unwrap().unwrap();
        assert_equivalent(&tomb, &doc!({}));
    }
}
