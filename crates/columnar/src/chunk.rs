//! Column chunks: one column's definition levels and values.
//!
//! A [`ColumnChunk`] is the unit that page writers place into APAX minipages
//! or AMAX megapages: the encoded definition levels followed by the encoded
//! values, matching the minipage layout of Figure 8 (size, value count,
//! encoded definition levels, encoded values).

use docmodel::Value;
use encoding::{bitpack, bytesenc, delta, plain, rle, varint, DecodeError, Encoding};
use schema::{AtomicType, ColumnSpec};

use crate::Result;

/// Typed value storage for one column chunk. Only entries whose definition
/// level equals the column's maximum carry a value — except for the
/// primary-key column, where every entry carries the key (anti-matter
/// entries store the deleted key with definition level 0, §3.2.3).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnValues {
    /// Boolean values.
    Bool(Vec<bool>),
    /// Integer values.
    Int(Vec<i64>),
    /// Double values.
    Double(Vec<f64>),
    /// String values.
    String(Vec<String>),
}

impl ColumnValues {
    /// An empty value vector of the given type.
    pub fn empty(ty: AtomicType) -> ColumnValues {
        match ty {
            AtomicType::Bool => ColumnValues::Bool(Vec::new()),
            AtomicType::Int => ColumnValues::Int(Vec::new()),
            AtomicType::Double => ColumnValues::Double(Vec::new()),
            AtomicType::String => ColumnValues::String(Vec::new()),
        }
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        match self {
            ColumnValues::Bool(v) => v.len(),
            ColumnValues::Int(v) => v.len(),
            ColumnValues::Double(v) => v.len(),
            ColumnValues::String(v) => v.len(),
        }
    }

    /// `true` when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The type of the stored values.
    pub fn ty(&self) -> AtomicType {
        match self {
            ColumnValues::Bool(_) => AtomicType::Bool,
            ColumnValues::Int(_) => AtomicType::Int,
            ColumnValues::Double(_) => AtomicType::Double,
            ColumnValues::String(_) => AtomicType::String,
        }
    }

    /// Append a value; the value must match the column type (the shredder
    /// guarantees this because it routes through the schema).
    pub fn push(&mut self, value: &Value) {
        match (self, value) {
            (ColumnValues::Bool(v), Value::Bool(b)) => v.push(*b),
            (ColumnValues::Int(v), Value::Int(i)) => v.push(*i),
            (ColumnValues::Double(v), Value::Double(d)) => v.push(*d),
            (ColumnValues::String(v), Value::String(s)) => v.push(s.clone()),
            (this, other) => panic!(
                "column of type {:?} cannot store value of kind {:?}",
                this.ty(),
                other.kind()
            ),
        }
    }

    /// Read the value at `index` as a [`Value`].
    pub fn get(&self, index: usize) -> Value {
        match self {
            ColumnValues::Bool(v) => Value::Bool(v[index]),
            ColumnValues::Int(v) => Value::Int(v[index]),
            ColumnValues::Double(v) => Value::Double(v[index]),
            ColumnValues::String(v) => Value::String(v[index].clone()),
        }
    }

    /// Rough in-memory footprint in bytes, used by the flush writers to size
    /// temporary buffers.
    pub fn approx_bytes(&self) -> usize {
        match self {
            ColumnValues::Bool(v) => v.len(),
            ColumnValues::Int(v) => v.len() * 8,
            ColumnValues::Double(v) => v.len() * 8,
            ColumnValues::String(v) => v.iter().map(|s| s.len() + 4).sum(),
        }
    }

    /// Minimum and maximum stored value (as [`Value`]s), used for the AMAX
    /// Page-0 zone maps. `None` when the chunk has no values.
    pub fn min_max(&self) -> Option<(Value, Value)> {
        fn mm<T: PartialOrd + Clone>(v: &[T]) -> Option<(T, T)> {
            let mut it = v.iter();
            let first = it.next()?.clone();
            let mut min = first.clone();
            let mut max = first;
            for x in it {
                if *x < min {
                    min = x.clone();
                }
                if *x > max {
                    max = x.clone();
                }
            }
            Some((min, max))
        }
        match self {
            ColumnValues::Bool(v) => mm(v).map(|(a, b)| (Value::Bool(a), Value::Bool(b))),
            ColumnValues::Int(v) => mm(v).map(|(a, b)| (Value::Int(a), Value::Int(b))),
            ColumnValues::Double(v) => mm(v).map(|(a, b)| (Value::Double(a), Value::Double(b))),
            ColumnValues::String(v) => {
                mm(v).map(|(a, b)| (Value::String(a), Value::String(b)))
            }
        }
    }
}

/// One column's data for a batch of records: the definition-level stream
/// (including delimiters) and the values.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnChunk {
    /// The column's schema-derived metadata.
    pub spec: ColumnSpec,
    /// Definition-level stream (content entries and delimiters).
    pub defs: Vec<u16>,
    /// Values for entries at the maximum definition level (every entry for
    /// the primary-key column).
    pub values: ColumnValues,
}

impl ColumnChunk {
    /// An empty chunk for the given column.
    pub fn new(spec: ColumnSpec) -> ColumnChunk {
        let values = ColumnValues::empty(spec.ty);
        ColumnChunk {
            spec,
            defs: Vec::new(),
            values,
        }
    }

    /// Number of (definition level) entries.
    pub fn entry_count(&self) -> usize {
        self.defs.len()
    }

    /// Rough in-memory footprint (defs + values).
    pub fn approx_bytes(&self) -> usize {
        self.defs.len() * 2 + self.values.approx_bytes()
    }

    /// Encode the chunk into `out` using the paper's encoding set:
    /// RLE/bit-packed definition levels, delta-packed integers, adaptive
    /// delta strings, plain doubles and bit-vector booleans.
    ///
    /// Layout:
    /// ```text
    /// varint entry_count
    /// varint value_count
    /// u8     def bit width
    /// varint encoded-defs length | defs bytes
    /// u8     value encoding tag  | values bytes
    /// ```
    pub fn encode(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, self.defs.len() as u64);
        varint::write_u64(out, self.values.len() as u64);
        let width = bitpack::bit_width(u64::from(self.spec.max_def.max(1)));
        out.push(width as u8);

        let mut def_bytes = Vec::with_capacity(self.defs.len() / 4 + 8);
        let defs_u64: Vec<u64> = self.defs.iter().map(|&d| u64::from(d)).collect();
        rle::encode(&defs_u64, width, &mut def_bytes);
        varint::write_u64(out, def_bytes.len() as u64);
        out.extend_from_slice(&def_bytes);

        match &self.values {
            ColumnValues::Bool(v) => {
                out.push(Encoding::Plain.tag());
                plain::encode_bool_column(v, out);
            }
            ColumnValues::Int(v) => {
                out.push(Encoding::DeltaBinaryPacked.tag());
                delta::encode(v, out);
            }
            ColumnValues::Double(v) => {
                out.push(Encoding::Plain.tag());
                plain::encode_f64_column(v, out);
            }
            ColumnValues::String(v) => {
                let (enc, bytes) = bytesenc::encode_adaptive(v);
                out.push(enc.tag());
                out.extend_from_slice(&bytes);
            }
        }
    }

    /// Encoded size without keeping the buffer (used by page writers to
    /// decide when a page is full).
    pub fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }

    /// Decode a chunk previously produced by [`ColumnChunk::encode`]. The
    /// caller supplies the [`ColumnSpec`] (persisted in the component's
    /// schema) so the right value decoder is used.
    pub fn decode(spec: ColumnSpec, buf: &[u8], pos: &mut usize) -> Result<ColumnChunk> {
        let entry_count = varint::read_u64(buf, pos)? as usize;
        let value_count = varint::read_u64(buf, pos)? as usize;
        let width = u32::from(*buf.get(*pos).ok_or_else(|| DecodeError::new("truncated chunk"))?);
        *pos += 1;
        let def_len = varint::read_u64(buf, pos)? as usize;
        let def_end = pos
            .checked_add(def_len)
            .ok_or_else(|| DecodeError::new("def length overflow"))?;
        if def_end > buf.len() {
            return Err(DecodeError::new("truncated definition levels"));
        }
        let mut def_pos = *pos;
        let defs_u64 = rle::decode(&buf[..def_end], &mut def_pos, entry_count, width)?;
        let defs: Vec<u16> = defs_u64.iter().map(|&d| d as u16).collect();
        *pos = def_end;

        let enc = Encoding::from_tag(*buf.get(*pos).ok_or_else(|| DecodeError::new("truncated chunk"))?)?;
        *pos += 1;
        let values = match spec.ty {
            AtomicType::Bool => ColumnValues::Bool(plain::decode_bool_column(buf, pos)?),
            AtomicType::Int => ColumnValues::Int(delta::decode(buf, pos)?),
            AtomicType::Double => ColumnValues::Double(plain::decode_f64_column(buf, pos)?),
            AtomicType::String => {
                let raw = bytesenc::decode_adaptive(enc, buf, pos)?;
                let mut strings = Vec::with_capacity(raw.len());
                for b in raw {
                    strings.push(
                        String::from_utf8(b)
                            .map_err(|_| DecodeError::new("invalid utf-8 in string column"))?,
                    );
                }
                ColumnValues::String(strings)
            }
        };
        if values.len() != value_count {
            return Err(DecodeError::new(format!(
                "value count mismatch: header {value_count}, decoded {}",
                values.len()
            )));
        }
        Ok(ColumnChunk { spec, defs, values })
    }

    /// Min/max of the stored values for zone-map filtering.
    pub fn min_max(&self) -> Option<(Value, Value)> {
        self.values.min_max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::Path;
    use schema::AtomicType;

    fn spec(ty: AtomicType, max_def: u16) -> ColumnSpec {
        ColumnSpec {
            id: 7,
            path: Path::parse("x"),
            ty,
            max_def,
            array_levels: vec![],
            is_key: false,
        }
    }

    #[test]
    fn int_chunk_roundtrip() {
        let mut chunk = ColumnChunk::new(spec(AtomicType::Int, 1));
        for i in 0..1000i64 {
            if i % 7 == 0 {
                chunk.defs.push(0);
            } else {
                chunk.defs.push(1);
                chunk.values.push(&Value::Int(i * 3));
            }
        }
        let mut buf = Vec::new();
        chunk.encode(&mut buf);
        let mut pos = 0;
        let back = ColumnChunk::decode(chunk.spec.clone(), &buf, &mut pos).unwrap();
        assert_eq!(back, chunk);
        assert_eq!(pos, buf.len());
        assert_eq!(chunk.encoded_len(), buf.len());
    }

    #[test]
    fn string_chunk_roundtrip() {
        let mut chunk = ColumnChunk::new(spec(AtomicType::String, 3));
        let words = ["NBA", "NFL", "FIFA", "PES"];
        for i in 0..500 {
            chunk.defs.push(3);
            chunk.values.push(&Value::from(words[i % words.len()]));
            if i % 10 == 0 {
                chunk.defs.push(0); // delimiter entries carry no value
            }
        }
        let mut buf = Vec::new();
        chunk.encode(&mut buf);
        let mut pos = 0;
        let back = ColumnChunk::decode(chunk.spec.clone(), &buf, &mut pos).unwrap();
        assert_eq!(back, chunk);
    }

    #[test]
    fn double_and_bool_chunks_roundtrip() {
        let mut d = ColumnChunk::new(spec(AtomicType::Double, 2));
        let mut b = ColumnChunk::new(spec(AtomicType::Bool, 1));
        for i in 0..300 {
            d.defs.push(2);
            d.values.push(&Value::Double(i as f64 * 0.5));
            b.defs.push(1);
            b.values.push(&Value::Bool(i % 3 == 0));
        }
        for chunk in [&d, &b] {
            let mut buf = Vec::new();
            chunk.encode(&mut buf);
            let mut pos = 0;
            let back = ColumnChunk::decode(chunk.spec.clone(), &buf, &mut pos).unwrap();
            assert_eq!(&back, chunk);
        }
    }

    #[test]
    fn min_max_statistics() {
        let mut chunk = ColumnChunk::new(spec(AtomicType::Int, 1));
        for v in [5i64, -3, 12, 7] {
            chunk.defs.push(1);
            chunk.values.push(&Value::Int(v));
        }
        let (min, max) = chunk.min_max().unwrap();
        assert_eq!(min, Value::Int(-3));
        assert_eq!(max, Value::Int(12));

        let empty = ColumnChunk::new(spec(AtomicType::String, 1));
        assert!(empty.min_max().is_none());
    }

    #[test]
    fn corrupted_chunk_is_an_error() {
        let mut chunk = ColumnChunk::new(spec(AtomicType::Int, 1));
        for i in 0..50 {
            chunk.defs.push(1);
            chunk.values.push(&Value::Int(i));
        }
        let mut buf = Vec::new();
        chunk.encode(&mut buf);
        for cut in [1usize, 3, buf.len() / 2] {
            let mut pos = 0;
            assert!(ColumnChunk::decode(chunk.spec.clone(), &buf[..cut], &mut pos).is_err());
        }
    }

    #[test]
    #[should_panic(expected = "cannot store value")]
    fn pushing_wrong_type_panics() {
        let mut values = ColumnValues::empty(AtomicType::Int);
        values.push(&Value::from("not an int"));
    }

    #[test]
    fn values_accessors() {
        let mut v = ColumnValues::empty(AtomicType::String);
        assert!(v.is_empty());
        v.push(&Value::from("a"));
        v.push(&Value::from("b"));
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(1), Value::from("b"));
        assert_eq!(v.ty(), AtomicType::String);
        assert!(v.approx_bytes() > 0);
    }
}
