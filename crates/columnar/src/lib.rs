//! # columnar — the extended Dremel format
//!
//! This crate implements the paper's §3: a columnar representation for
//! schemaless, nested, heterogeneous documents that
//!
//! * keeps Dremel's **definition levels** (how much of a column's path is
//!   present in a given record),
//! * replaces Dremel's repetition levels with **delimiters** embedded in the
//!   definition-level stream (§3.2.1) — a delimiter value `k` marks the end
//!   of the enclosing array at nesting depth `k`, and an inner delimiter is
//!   subsumed when an outer array ends at the same point,
//! * supports **union types** so a field may hold different types in
//!   different records (§3.2.2): each union branch is its own column, and
//!   when one branch is present the sibling branches record an "absent"
//!   definition level one below the union's level,
//! * encodes LSM **anti-matter** through the primary-key column's definition
//!   level (0 = tombstone, 1 = record, §3.2.3).
//!
//! The pieces:
//!
//! * [`chunk`] — [`ColumnChunk`]: one column's definition levels and values,
//!   with encode/decode to the byte representation stored inside APAX
//!   minipages and AMAX megapages, plus min/max statistics for zone maps;
//! * [`shred`] — [`Shredder`]: schema-driven decomposition of records into
//!   column chunks (the "columnize while inferring the schema" pass of the
//!   tuple compactor);
//! * [`cursor`] — [`ColumnCursor`]: entry-at-a-time iteration with
//!   record-boundary awareness and batch skipping (used by LSM
//!   reconciliation, §4.4);
//! * [`assemble`] — [`Assembler`]: the record-assembly automaton that stitches
//!   columns back into documents, with projection push-down so queries only
//!   touch (and only decode) the columns they need.

pub mod assemble;
pub mod chunk;
pub mod cursor;
pub mod shred;

pub use assemble::Assembler;
pub use chunk::{ColumnChunk, ColumnValues};
pub use cursor::ColumnCursor;
pub use shred::{ShreddedBatch, Shredder};

/// Error type shared by the columnar readers.
pub type ColumnarError = encoding::DecodeError;
/// Result alias.
pub type Result<T> = std::result::Result<T, ColumnarError>;
