//! The shredder: schema-driven decomposition of records into columns.
//!
//! The shredder walks a record and the inferred schema *together* and emits,
//! for every atomic leaf (column), a stream of definition-level entries plus
//! values. The walk implements the paper's extended Dremel semantics:
//!
//! * a leaf whose path is fully present records its maximum definition level
//!   and a value;
//! * a leaf whose path is cut short (missing field, `null`, absent union
//!   branch) records the definition level of the deepest present ancestor —
//!   for an absent union branch that is the level *above* the union, because
//!   union nodes are logical guides that do not count (§3.2.2);
//! * when a non-empty array instance at nesting depth `k` ends, a delimiter
//!   entry with value `k` is appended to every column beneath it; if an
//!   enclosing array ends at the same point the inner delimiter is replaced
//!   by the outer one ("the delimiter 0 also encompasses the inner delimiter
//!   1", §3.2.1);
//! * `null` array elements are dropped (they carry no type and the flexible
//!   data model gives them no column to live in);
//! * anti-matter entries record the deleted key with definition level 0 on
//!   the primary-key column and an "absent" entry on every other column
//!   (§3.2.3), keeping all columns aligned record-by-record.

use std::collections::HashMap;

use docmodel::Value;
use schema::node::{BranchKind, SchemaNode};
use schema::{columns_of, ColumnId, NodeId, Schema};

use crate::chunk::ColumnChunk;

/// The result of shredding a batch of records: one chunk per column plus the
/// number of records covered.
#[derive(Debug, Clone)]
pub struct ShreddedBatch {
    /// Column chunks, in the order produced by [`schema::columns_of`] (the
    /// primary-key column first).
    pub columns: Vec<ColumnChunk>,
    /// Number of records (including anti-matter entries) in the batch.
    pub record_count: usize,
}

impl ShreddedBatch {
    /// Find a chunk by column id.
    pub fn column(&self, id: ColumnId) -> Option<&ColumnChunk> {
        self.columns.iter().find(|c| c.spec.id == id)
    }

    /// Total in-memory footprint of all chunks.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(ColumnChunk::approx_bytes).sum()
    }
}

/// What the walk passes down for each schema node while shredding a record.
#[derive(Clone, Copy)]
enum Slot<'v> {
    /// The value at this position is present (and is not `null`).
    Present(&'v Value),
    /// Nothing is present at or below this position; every leaf beneath
    /// records the given definition level.
    Absent(u16),
}

/// Schema-driven shredder. Create one per flush (or per page batch), feed it
/// records, then call [`Shredder::finish`].
pub struct Shredder<'s> {
    schema: &'s Schema,
    columns: Vec<ColumnChunk>,
    index_of: HashMap<ColumnId, usize>,
    /// For every schema node, the indexes (into `columns`) of the atomic
    /// leaves in its subtree. Used to broadcast absent entries and delimiters.
    leaves_under: HashMap<NodeId, Vec<usize>>,
    /// Per column: whether the last entry appended for the current record was
    /// a delimiter (needed for the subsumption rule).
    last_was_delim: Vec<bool>,
    record_count: usize,
}

impl<'s> Shredder<'s> {
    /// Create a shredder for the given (already inferred) schema.
    pub fn new(schema: &'s Schema) -> Shredder<'s> {
        let specs = columns_of(schema);
        let mut index_of = HashMap::with_capacity(specs.len());
        let mut columns = Vec::with_capacity(specs.len());
        for (i, spec) in specs.into_iter().enumerate() {
            index_of.insert(spec.id, i);
            columns.push(ColumnChunk::new(spec));
        }
        let mut leaves_under = HashMap::new();
        collect_leaves(schema, schema.root(), &index_of, &mut leaves_under);
        let n = columns.len();
        Shredder {
            schema,
            columns,
            index_of,
            leaves_under,
            last_was_delim: vec![false; n],
            record_count: 0,
        }
    }

    /// Number of records shredded so far.
    pub fn record_count(&self) -> usize {
        self.record_count
    }

    /// Current in-memory footprint of the accumulated chunks.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(ColumnChunk::approx_bytes).sum()
    }

    /// Shred one record. The record must be an object; its fields must be
    /// covered by the schema (which is guaranteed when the schema was
    /// inferred from the same records, as the tuple compactor does).
    pub fn shred(&mut self, record: &Value) {
        self.record_count += 1;
        self.last_was_delim.iter_mut().for_each(|b| *b = false);
        self.walk(self.schema.root(), 0, 0, Slot::Present(record));
    }

    /// Shred an anti-matter (delete) entry for `key`: the primary-key column
    /// records the key with definition level 0, every other column records an
    /// absent entry so that record alignment is preserved.
    pub fn shred_antimatter(&mut self, key: &Value) {
        self.record_count += 1;
        self.last_was_delim.iter_mut().for_each(|b| *b = false);
        for chunk in &mut self.columns {
            chunk.defs.push(0);
            if chunk.spec.is_key {
                chunk.values.push(key);
            }
        }
    }

    /// Finish shredding and return the accumulated batch.
    pub fn finish(self) -> ShreddedBatch {
        ShreddedBatch {
            columns: self.columns,
            record_count: self.record_count,
        }
    }

    /// Take the accumulated chunks, leaving the shredder empty and ready for
    /// the next page's worth of records (APAX writers reuse their temporary
    /// buffers this way, §4.5.1).
    pub fn take_batch(&mut self) -> ShreddedBatch {
        let specs: Vec<_> = self.columns.iter().map(|c| c.spec.clone()).collect();
        let columns = std::mem::replace(
            &mut self.columns,
            specs.into_iter().map(ColumnChunk::new).collect(),
        );
        let record_count = self.record_count;
        self.record_count = 0;
        self.last_was_delim.iter_mut().for_each(|b| *b = false);
        ShreddedBatch {
            columns,
            record_count,
        }
    }

    fn walk(&mut self, node_id: NodeId, level: u16, array_depth: u16, slot: Slot<'_>) {
        match self.schema.node(node_id) {
            SchemaNode::Atomic { ty } => {
                let Some(&idx) = self.index_of.get(&node_id) else {
                    return;
                };
                let chunk = &mut self.columns[idx];
                match slot {
                    Slot::Present(v) if ty.matches(v) => {
                        chunk.defs.push(chunk.spec.max_def);
                        chunk.values.push(v);
                    }
                    Slot::Present(_) => {
                        // Type mismatch without a union: only possible when a
                        // record not covered by the schema is shredded; treat
                        // the value as absent at its parent's level.
                        chunk.defs.push(level.saturating_sub(1));
                        if chunk.spec.is_key {
                            chunk.values.push(&Value::Int(0));
                        }
                    }
                    Slot::Absent(def) => {
                        chunk.defs.push(def);
                        if chunk.spec.is_key {
                            // The key column stores a value for every entry;
                            // an absent key only arises for malformed input.
                            chunk.values.push(&Value::Int(0));
                        }
                    }
                }
                self.last_was_delim[idx] = false;
            }
            SchemaNode::Object { fields } => {
                // Clone the field list (names + ids) to release the borrow on
                // the schema; field lists are short.
                let fields: Vec<(String, NodeId)> = fields.clone();
                match slot {
                    Slot::Present(Value::Object(record_fields)) => {
                        for (name, child) in &fields {
                            let child_value = record_fields
                                .iter()
                                .find(|(k, _)| k == name)
                                .map(|(_, v)| v)
                                .filter(|v| !v.is_null());
                            let child_slot = match child_value {
                                Some(v) => Slot::Present(v),
                                None => Slot::Absent(level),
                            };
                            self.walk(*child, level + 1, array_depth, child_slot);
                        }
                    }
                    Slot::Present(_) => {
                        // Kind mismatch without a union (see Atomic case).
                        for (_, child) in &fields {
                            self.walk(
                                *child,
                                level + 1,
                                array_depth,
                                Slot::Absent(level.saturating_sub(1)),
                            );
                        }
                    }
                    Slot::Absent(def) => {
                        for (_, child) in &fields {
                            self.walk(*child, level + 1, array_depth, Slot::Absent(def));
                        }
                    }
                }
            }
            SchemaNode::Array { item } => {
                let Some(item) = *item else { return };
                match slot {
                    Slot::Present(Value::Array(elems)) => {
                        // Null elements carry no type information and are dropped.
                        let elems: Vec<&Value> = elems.iter().filter(|e| !e.is_null()).collect();
                        if elems.is_empty() {
                            // Present but empty: one entry at the array's own level.
                            self.walk(item, level + 1, array_depth + 1, Slot::Absent(level));
                            // The outermost array always terminates its record
                            // segment with delimiter 0 when it is present, so
                            // that a single column's record boundary is
                            // unambiguous (see ColumnCursor::skip_record).
                            if array_depth == 0 {
                                self.emit_delimiter(node_id, 0);
                            }
                        } else {
                            for elem in elems {
                                self.walk(item, level + 1, array_depth + 1, Slot::Present(elem));
                            }
                            self.emit_delimiter(node_id, array_depth);
                        }
                    }
                    Slot::Present(_) => {
                        self.walk(
                            item,
                            level + 1,
                            array_depth + 1,
                            Slot::Absent(level.saturating_sub(1)),
                        );
                    }
                    Slot::Absent(def) => {
                        self.walk(item, level + 1, array_depth + 1, Slot::Absent(def));
                    }
                }
            }
            SchemaNode::Union { branches } => {
                let branches: Vec<(BranchKind, NodeId)> = branches.clone();
                match slot {
                    Slot::Present(v) => {
                        let value_kind = BranchKind::of(v);
                        for (kind, child) in &branches {
                            if Some(*kind) == value_kind {
                                self.walk(*child, level, array_depth, Slot::Present(v));
                            } else {
                                // Absent branch: the level above the union,
                                // because unions are logical guides (§3.2.2).
                                self.walk(
                                    *child,
                                    level,
                                    array_depth,
                                    Slot::Absent(level.saturating_sub(1)),
                                );
                            }
                        }
                    }
                    Slot::Absent(def) => {
                        for (_, child) in &branches {
                            self.walk(*child, level, array_depth, Slot::Absent(def));
                        }
                    }
                }
            }
        }
    }

    /// A non-empty array instance at nesting depth `k` just ended: append
    /// delimiter `k` to every column beneath it, replacing a deeper delimiter
    /// that was just emitted (the subsumption rule).
    fn emit_delimiter(&mut self, array_node: NodeId, k: u16) {
        let Some(leaf_indexes) = self.leaves_under.get(&array_node) else {
            return;
        };
        for &idx in leaf_indexes {
            let chunk = &mut self.columns[idx];
            if self.last_was_delim[idx] {
                let last = chunk
                    .defs
                    .last_mut()
                    .expect("delimiter flag implies at least one entry");
                debug_assert!(*last > k, "delimiters must close outward");
                *last = k;
            } else {
                chunk.defs.push(k);
                self.last_was_delim[idx] = true;
            }
        }
    }
}

/// Convenience: shred a batch of records against a schema in one call.
pub fn shred_records(schema: &Schema, records: &[Value]) -> ShreddedBatch {
    let mut shredder = Shredder::new(schema);
    for r in records {
        shredder.shred(r);
    }
    shredder.finish()
}

fn collect_leaves(
    schema: &Schema,
    node: NodeId,
    index_of: &HashMap<ColumnId, usize>,
    out: &mut HashMap<NodeId, Vec<usize>>,
) -> Vec<usize> {
    let leaves: Vec<usize> = match schema.node(node) {
        SchemaNode::Atomic { .. } => index_of.get(&node).copied().into_iter().collect(),
        SchemaNode::Object { fields } => fields
            .iter()
            .flat_map(|(_, c)| collect_leaves(schema, *c, index_of, out))
            .collect(),
        SchemaNode::Array { item } => item
            .map(|c| collect_leaves(schema, c, index_of, out))
            .unwrap_or_default(),
        SchemaNode::Union { branches } => branches
            .iter()
            .flat_map(|(_, c)| collect_leaves(schema, *c, index_of, out))
            .collect(),
    };
    out.insert(node, leaves.clone());
    leaves
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::doc;
    use schema::SchemaBuilder;

    /// The four records of Figure 4a.
    fn gamer_records() -> Vec<Value> {
        vec![
            doc!({"id": 0, "games": [{"title": "NFL"}]}),
            doc!({
                "id": 1,
                "name": {"last": "Brown"},
                "games": [{"title": "FIFA", "consoles": ["PC", "PS4"]}]
            }),
            doc!({
                "id": 2,
                "name": {"first": "John", "last": "Smith"},
                "games": [
                    {"title": "NBA", "consoles": ["PS4", "PC"]},
                    {"title": "NFL", "consoles": ["XBOX"]}
                ]
            }),
            doc!({"id": 3}),
        ]
    }

    fn shred_gamers() -> (Schema, ShreddedBatch) {
        let records = gamer_records();
        let mut b = SchemaBuilder::new(Some("id".to_string()));
        b.observe_all(records.iter());
        let schema = b.into_schema();
        let batch = shred_records(&schema, &records);
        (schema, batch)
    }

    fn chunk_by_path<'a>(batch: &'a ShreddedBatch, path: &str) -> &'a ColumnChunk {
        batch
            .columns
            .iter()
            .find(|c| c.spec.path.to_string() == path)
            .unwrap_or_else(|| panic!("no column {path}"))
    }

    #[test]
    fn figure5_titles_stream() {
        // games[*].title: 3 NFL | 0 -- | 3 FIFA | 0 -- | 3 NBA | 3 NFL | 0 -- | 0 NULL
        let (_, batch) = shred_gamers();
        let titles = chunk_by_path(&batch, "games[*].title");
        assert_eq!(titles.defs, vec![3, 0, 3, 0, 3, 3, 0, 0]);
        assert_eq!(
            titles.values,
            crate::chunk::ColumnValues::String(vec![
                "NFL".into(),
                "FIFA".into(),
                "NBA".into(),
                "NFL".into()
            ])
        );
    }

    #[test]
    fn figure5_consoles_stream() {
        // games[*].consoles[*]:
        // 2 NULL | 0 -- | 4 PC | 4 PS4 | 0 -- | 4 PS4 | 4 PC | 1 -- | 4 XBOX | 0 -- | 0 NULL
        let (_, batch) = shred_gamers();
        let consoles = chunk_by_path(&batch, "games[*].consoles[*]");
        assert_eq!(consoles.defs, vec![2, 0, 4, 4, 0, 4, 4, 1, 4, 0, 0]);
        assert_eq!(
            consoles.values,
            crate::chunk::ColumnValues::String(vec![
                "PC".into(),
                "PS4".into(),
                "PS4".into(),
                "PC".into(),
                "XBOX".into()
            ])
        );
    }

    #[test]
    fn figure4_name_columns() {
        // name.first: 0 NULL | 1 NULL | 2 John | 0 NULL
        // name.last:  0 NULL | 2 Brown | 2 Smith | 0 NULL
        let (_, batch) = shred_gamers();
        let first = chunk_by_path(&batch, "name.first");
        assert_eq!(first.defs, vec![0, 1, 2, 0]);
        let last = chunk_by_path(&batch, "name.last");
        assert_eq!(last.defs, vec![0, 2, 2, 0]);
        assert_eq!(
            last.values,
            crate::chunk::ColumnValues::String(vec!["Brown".into(), "Smith".into()])
        );
    }

    #[test]
    fn key_column_stores_every_record() {
        let (_, batch) = shred_gamers();
        let id = chunk_by_path(&batch, "id");
        assert!(id.spec.is_key);
        assert_eq!(id.defs, vec![1, 1, 1, 1]);
        assert_eq!(
            id.values,
            crate::chunk::ColumnValues::Int(vec![0, 1, 2, 3])
        );
        assert_eq!(batch.record_count, 4);
    }

    #[test]
    fn figure7_union_columns() {
        // The two records of Figure 6 and their columnar representation in
        // Figure 7.
        let records = vec![
            doc!({"name": "John", "games": ["NBA", ["FIFA", "PES"], "NFL"]}),
            doc!({"name": {"first": "Ann", "last": "Brown"}, "games": ["NFL", "NBA"]}),
        ];
        let mut b = SchemaBuilder::new(None);
        b.observe_all(records.iter());
        let schema = b.into_schema();
        let batch = shred_records(&schema, &records);

        // Column 1: name<string> — 1 John | 0 NULL
        let name_str = chunk_by_path(&batch, "name<string>");
        assert_eq!(name_str.defs, vec![1, 0]);
        // Column 2: name<object>.first — 0 NULL | 2 Ann
        let first = chunk_by_path(&batch, "name<object>.first");
        assert_eq!(first.defs, vec![0, 2]);
        // Column 3: name<object>.last — 0 NULL | 2 Brown
        let last = chunk_by_path(&batch, "name<object>.last");
        assert_eq!(last.defs, vec![0, 2]);
        // Column 4: games[*]<string> — 2 NBA | 1 NULL | 2 NFL | 0 -- | 2 NFL | 2 NBA | 0 --
        let games_str = chunk_by_path(&batch, "games[*]<string>");
        assert_eq!(games_str.defs, vec![2, 1, 2, 0, 2, 2, 0]);
        assert_eq!(
            games_str.values,
            crate::chunk::ColumnValues::String(vec![
                "NBA".into(),
                "NFL".into(),
                "NFL".into(),
                "NBA".into()
            ])
        );
        // Column 5: games[*]<array>[*] —
        // 1 NULL | 3 FIFA | 3 PES | 1 -- | 1 NULL | 0 -- | 1 NULL | 1 NULL | 0 --
        let games_arr = chunk_by_path(&batch, "games[*]<array>[*]");
        assert_eq!(games_arr.defs, vec![1, 3, 3, 1, 1, 0, 1, 1, 0]);
        assert_eq!(
            games_arr.values,
            crate::chunk::ColumnValues::String(vec!["FIFA".into(), "PES".into()])
        );
    }

    #[test]
    fn antimatter_entries_align_all_columns() {
        let records = gamer_records();
        let mut b = SchemaBuilder::new(Some("id".to_string()));
        b.observe_all(records.iter());
        let schema = b.into_schema();
        let mut shredder = Shredder::new(&schema);
        shredder.shred(&records[0]);
        shredder.shred_antimatter(&Value::Int(7));
        shredder.shred(&records[3]);
        let batch = shredder.finish();
        assert_eq!(batch.record_count, 3);

        let id = chunk_by_path(&batch, "id");
        assert_eq!(id.defs, vec![1, 0, 1]);
        assert_eq!(id.values, crate::chunk::ColumnValues::Int(vec![0, 7, 3]));

        // Every non-key column has exactly one entry per record.
        let first = chunk_by_path(&batch, "name.first");
        assert_eq!(first.defs.len(), 3);
        let titles = chunk_by_path(&batch, "games[*].title");
        // Record 0 contributes 2 entries (value + delimiter); the anti-matter
        // and the empty record contribute 1 each.
        assert_eq!(titles.defs, vec![3, 0, 0, 0]);
    }

    #[test]
    fn empty_and_nested_arrays() {
        let records = vec![
            doc!({"id": 1, "xs": []}),
            doc!({"id": 2, "xs": [[1, 2], [3]]}),
            doc!({"id": 3, "xs": [[]]}),
            doc!({"id": 4}),
            doc!({"id": 5, "xs": [[4]]}),
        ];
        let mut b = SchemaBuilder::new(Some("id".to_string()));
        b.observe_all(records.iter());
        let schema = b.into_schema();
        let batch = shred_records(&schema, &records);
        let xs = chunk_by_path(&batch, "xs[*][*]");
        // Record 1: xs empty -> def 1 then the record-terminating <0>.
        // Record 2: 3,3,<1>,3,<0>. Record 3: inner empty -> def 2, then <0>.
        // Record 4: missing -> 0. Record 5: 3,<0>.
        assert_eq!(
            xs.defs,
            vec![1, 0, 3, 3, 1, 3, 0, 2, 0, 0, 3, 0]
        );
        assert_eq!(
            xs.values,
            crate::chunk::ColumnValues::Int(vec![1, 2, 3, 4])
        );
    }

    #[test]
    fn null_array_elements_are_dropped() {
        let records = vec![doc!({"id": 1, "xs": [1, null, 2]}), doc!({"id": 2, "xs": [null]})];
        let mut b = SchemaBuilder::new(Some("id".to_string()));
        b.observe_all(records.iter());
        let schema = b.into_schema();
        let batch = shred_records(&schema, &records);
        let xs = chunk_by_path(&batch, "xs[*]");
        // Record 1: 2 values then delimiter; record 2: all elements null ->
        // behaves like an empty array (def 1 followed by the terminator).
        assert_eq!(xs.defs, vec![2, 2, 0, 1, 0]);
    }

    #[test]
    fn take_batch_resets_the_shredder() {
        let records = gamer_records();
        let mut b = SchemaBuilder::new(Some("id".to_string()));
        b.observe_all(records.iter());
        let schema = b.into_schema();
        let mut shredder = Shredder::new(&schema);
        shredder.shred(&records[0]);
        let first = shredder.take_batch();
        assert_eq!(first.record_count, 1);
        assert_eq!(shredder.record_count(), 0);
        shredder.shred(&records[1]);
        shredder.shred(&records[2]);
        let second = shredder.take_batch();
        assert_eq!(second.record_count, 2);
        // The chunks of the two batches are independent.
        assert_eq!(chunk_by_path(&first, "id").defs.len(), 1);
        assert_eq!(chunk_by_path(&second, "id").defs.len(), 2);
    }

    #[test]
    fn shredded_batch_lookup_and_size() {
        let (schema, batch) = shred_gamers();
        let key = schema::key_column(&schema).unwrap();
        assert!(batch.column(key.id).is_some());
        assert!(batch.column(9999).is_none());
        assert!(batch.approx_bytes() > 0);
    }
}
