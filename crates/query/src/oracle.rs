//! The materialised batch oracle: the seed engine's "materialise then
//! process" execution model, preserved verbatim for differential testing.
//!
//! The production engines stream — the access stage is a cursor and every
//! operator pulls one record at a time ([`crate::physical`]'s pipeline
//! docs). This module keeps the *old* model alive: scan the whole snapshot
//! into a `Vec`, run each operator as a full-batch pass, and only then
//! order/limit. Answers must be identical; only the memory profile (and the
//! pages a limited scan touches) may differ. The streaming differential
//! suite (`crates/query/tests/streaming.rs`) and the `--only streaming`
//! bench experiment both lean on it.
//!
//! The oracle ignores zone maps and never terminates early — it is the
//! pruning-free, limit-after-the-fact upper bound the streaming paths are
//! compared against.

use docmodel::{Path, Value};
use lsm::Snapshot;

use crate::physical::{self, finalize, key_count_partials, new_states, GroupPartials, PlanContext};
use crate::plan::{Query, QueryRow};
use crate::{AccessPath, PlannerOptions, Result};

/// Execute `query` against `snapshot` with the materialised batch model:
/// full scan into a `Vec`, batch-at-a-time operators, order/limit last.
pub fn execute_batch(snapshot: &Snapshot, query: &Query) -> Result<Vec<QueryRow>> {
    // Plan against a bare-snapshot context: validation, projection pushdown
    /* and the KeyOnlyScan fast path apply; probes cannot (no index). */
    let ctx = PlanContext::for_snapshot(snapshot);
    let plan = physical::plan(query, &ctx, &PlannerOptions::default())?;

    // The materialisation the streaming refactor removed: the whole
    // reconciled snapshot as one batch (entries keep their primary key for
    // the projection form's output order).
    let mut batch: Vec<(Value, Value)> = Vec::new();
    for entry in snapshot.cursor(plan.projection.as_deref())? {
        batch.push(entry?);
    }

    if matches!(plan.access, AccessPath::KeyOnlyScan) {
        return Ok(finalize(key_count_partials(batch.len(), &plan), &plan));
    }

    // Batch filter pass.
    if let Some(filter) = &plan.filter {
        batch.retain(|(_, doc)| filter.matches(doc));
    }

    if let Some(paths) = &plan.select_paths {
        // Batch projection pass, then limit (no early termination here).
        let mut rows: Vec<QueryRow> = batch
            .into_iter()
            .map(|(key, doc)| QueryRow {
                group: Some(key),
                aggs: paths
                    .iter()
                    .map(|p| {
                        p.evaluate(&doc)
                            .first()
                            .map(|v| (*v).clone())
                            .unwrap_or(Value::Null)
                    })
                    .collect(),
            })
            .collect();
        if let Some(k) = plan.limit {
            rows.truncate(k);
        }
        return Ok(rows);
    }

    // Batch unnest pass: one `(record, element)` pair per element.
    let unnested: Vec<(Value, Option<Value>)> = match &plan.unnest {
        None => batch.into_iter().map(|(_, doc)| (doc, None)).collect(),
        Some(path) => {
            let mut out = Vec::new();
            for (_, doc) in batch {
                let elements: Vec<Value> = path
                    .evaluate(&doc)
                    .into_iter()
                    .flat_map(|v| match v {
                        Value::Array(elems) => elems.clone(),
                        other => vec![other.clone()],
                    })
                    .collect();
                for element in elements {
                    out.push((doc.clone(), Some(element)));
                }
            }
            out
        }
    };

    // Batch aggregation pass over the fully materialised pairs.
    let resolve = |record: &Value, element: Option<&Value>, on_element: bool, path: &Path| {
        let base = if on_element { element? } else { record };
        if path.is_empty() {
            Some(base.clone())
        } else {
            path.evaluate(base).first().map(|v| (*v).clone())
        }
    };
    let mut groups = GroupPartials::new();
    for (record, element) in &unnested {
        let key = match &plan.group_by {
            Some(p) => {
                match resolve(record, element.as_ref(), plan.group_on_element, p) {
                    Some(k) => Some(docmodel::cmp::OrderedValue(k)),
                    None => continue,
                }
            }
            None => None,
        };
        let states = groups.entry(key).or_insert_with(|| new_states(&plan));
        for (state, spec) in states.iter_mut().zip(&plan.aggregates) {
            let input = spec
                .agg
                .path()
                .and_then(|p| resolve(record, element.as_ref(), spec.on_element, p));
            state.update(input.as_ref());
        }
    }
    Ok(finalize(groups, &plan))
}
