//! The predicate expression tree.
//!
//! [`Expr`] replaces the closed `Predicate` enum of the original query layer
//! with a compositional boolean algebra: comparison leaves ([`CmpOp`]),
//! existence/containment/length tests, and arbitrary `AND`/`OR`/`NOT`
//! combinations. Expressions are evaluated against whole records with
//! *existential* path semantics (a comparison holds if **some** value
//! addressed by the path satisfies it — SQL++'s `SOME ... SATISFIES`), which
//! is also what a secondary index answers: the index maps every indexed
//! value to its record, so a range probe returns exactly the records where
//! some indexed value falls in the range.
//!
//! Besides evaluation, the tree supports the two static analyses the planner
//! needs:
//!
//! * [`Expr::collect_paths`] — every record-rooted path the expression
//!   reads, the input to projection pushdown;
//! * [`Expr::implied_bounds`] — the tightest value range `R` on a given path
//!   such that the expression *implies* `path ∈ R`. When the path is covered
//!   by a secondary index, probing `R` yields a superset of the matching
//!   records and the full expression is re-applied as a residual filter, so
//!   index routing is always safe.

use std::cmp::Ordering;
use std::fmt;
use std::ops::Bound;

use docmodel::{total_cmp, Path, Value};

/// A comparison operator for [`Expr::Cmp`] and [`Expr::Length`] leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal (under the document total order, so `1 = 1.0`).
    Eq,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// `true` when `ord` (the ordering of `lhs` relative to `rhs`) satisfies
    /// the operator.
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator satisfied by exactly the orderings this one rejects, or
    /// `None` for `Eq` (the algebra has no `Ne`).
    pub fn negated(self) -> Option<CmpOp> {
        match self {
            CmpOp::Eq => None,
            CmpOp::Lt => Some(CmpOp::Ge),
            CmpOp::Le => Some(CmpOp::Gt),
            CmpOp::Gt => Some(CmpOp::Le),
            CmpOp::Ge => Some(CmpOp::Lt),
        }
    }

    /// The SQL rendering used by `EXPLAIN` output.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A filter predicate over a record: a boolean expression tree.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Conjunction. The empty conjunction is `true`.
    And(Vec<Expr>),
    /// Disjunction. The empty disjunction is `false`.
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// `SOME v IN path SATISFIES v <op> value` — existential comparison over
    /// every value the path addresses.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Record-rooted path to the tested value(s).
        path: Path,
        /// Constant to compare against.
        value: Value,
    },
    /// `path IS NOT MISSING` — the path addresses at least one value
    /// (explicit `null` counts as existing).
    Exists(Path),
    /// `SOME v IN path SATISFIES v = value`, additionally descending into an
    /// array addressed by the path (so `tags` and `tags[*]` both work).
    Contains {
        /// Path to the array (or repeated value).
        path: Path,
        /// Value at least one element must equal.
        value: Value,
    },
    /// `LENGTH(path) <op> len` — string length in characters, array length
    /// in elements; other value kinds never match.
    Length {
        /// Path to the measured value(s).
        path: Path,
        /// Comparison operator applied to the length.
        op: CmpOp,
        /// Constant length to compare against.
        len: i64,
    },
}

impl Expr {
    /// `path = value`.
    pub fn eq(path: impl Into<Path>, value: impl Into<Value>) -> Expr {
        Expr::Cmp { op: CmpOp::Eq, path: path.into(), value: value.into() }
    }

    /// `path < value`.
    pub fn lt(path: impl Into<Path>, value: impl Into<Value>) -> Expr {
        Expr::Cmp { op: CmpOp::Lt, path: path.into(), value: value.into() }
    }

    /// `path <= value`.
    pub fn le(path: impl Into<Path>, value: impl Into<Value>) -> Expr {
        Expr::Cmp { op: CmpOp::Le, path: path.into(), value: value.into() }
    }

    /// `path > value`.
    pub fn gt(path: impl Into<Path>, value: impl Into<Value>) -> Expr {
        Expr::Cmp { op: CmpOp::Gt, path: path.into(), value: value.into() }
    }

    /// `path >= value`.
    pub fn ge(path: impl Into<Path>, value: impl Into<Value>) -> Expr {
        Expr::Cmp { op: CmpOp::Ge, path: path.into(), value: value.into() }
    }

    /// `lo <= path <= hi` (the inclusive range of the paper's queries).
    pub fn between(path: impl Into<Path>, lo: impl Into<Value>, hi: impl Into<Value>) -> Expr {
        let path = path.into();
        Expr::And(vec![Expr::ge(path.clone(), lo), Expr::le(path, hi)])
    }

    /// `path IS NOT MISSING`.
    pub fn exists(path: impl Into<Path>) -> Expr {
        Expr::Exists(path.into())
    }

    /// `SOME v IN path SATISFIES v = value`.
    pub fn contains(path: impl Into<Path>, value: impl Into<Value>) -> Expr {
        Expr::Contains { path: path.into(), value: value.into() }
    }

    /// `LENGTH(path) <op> len`.
    pub fn length(path: impl Into<Path>, op: CmpOp, len: i64) -> Expr {
        Expr::Length { path: path.into(), op, len }
    }

    /// Conjunction of several expressions.
    pub fn and(exprs: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::And(exprs.into_iter().collect())
    }

    /// Disjunction of several expressions.
    pub fn or(exprs: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::Or(exprs.into_iter().collect())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(expr: Expr) -> Expr {
        Expr::Not(Box::new(expr))
    }

    /// Evaluate the expression against a record.
    pub fn matches(&self, doc: &Value) -> bool {
        match self {
            Expr::And(children) => children.iter().all(|c| c.matches(doc)),
            Expr::Or(children) => children.iter().any(|c| c.matches(doc)),
            Expr::Not(inner) => !inner.matches(doc),
            Expr::Cmp { op, path, value } => path
                .evaluate(doc)
                .iter()
                .any(|v| op.matches(total_cmp(v, value))),
            Expr::Exists(path) => !path.evaluate(doc).is_empty(),
            Expr::Contains { path, value } => path.evaluate(doc).iter().any(|v| match v {
                Value::Array(elems) => elems
                    .iter()
                    .any(|e| total_cmp(e, value) == Ordering::Equal),
                other => total_cmp(other, value) == Ordering::Equal,
            }),
            Expr::Length { path, op, len } => path.evaluate(doc).iter().any(|v| {
                value_length(v).is_some_and(|l| op.matches(l.cmp(len)))
            }),
        }
    }

    /// Planner-side simplification: an **equivalent** expression (same
    /// [`Expr::matches`] verdict on every document) that is flatter and
    /// pushes negations inward, so the planner's static analyses
    /// ([`Expr::implied_bounds`], zone maps) see through boolean noise:
    ///
    /// * **constant folding** — nested `AND`s/`OR`s are flattened, `TRUE`
    ///   (the empty conjunction) disappears from conjunctions and
    ///   annihilates disjunctions, dually for `FALSE`; single-child
    ///   `AND`/`OR` unwrap;
    /// * **double negation** — `NOT NOT e` → `e` (this is what lets a
    ///   `NOT NOT BETWEEN` drive an index probe);
    /// * **De Morgan push-in** — `NOT (a AND b)` → `NOT a OR NOT b` and
    ///   dually, recursively;
    /// * **comparison negation** — on a *single-valued* path (no `[*]`
    ///   step), `NOT (p < c)` → `p >= c OR NOT EXISTS(p)`. The
    ///   `NOT EXISTS` disjunct is required for equivalence: comparisons are
    ///   existential, so a record *missing* `p` satisfies the negation but
    ///   not the flipped comparison. On multi-valued paths the negation of
    ///   "some element satisfies" is "every element fails", which the
    ///   algebra cannot express — the `NOT` stays put. `NOT (p = c)` also
    ///   stays (no `Ne` operator).
    ///
    /// The planner simplifies every filter before access-path selection and
    /// stores the simplified tree in the physical plan, so `EXPLAIN` shows
    /// it and the residual filter evaluates the simpler form.
    pub fn simplify(&self) -> Expr {
        match self {
            Expr::And(children) => {
                let mut out = Vec::new();
                for child in children {
                    match child.simplify() {
                        Expr::And(grand) => out.extend(grand), // flatten; TRUE vanishes
                        Expr::Or(grand) if grand.is_empty() => return Expr::Or(Vec::new()),
                        other => out.push(other),
                    }
                }
                if out.len() == 1 {
                    out.pop().expect("one child")
                } else {
                    Expr::And(out)
                }
            }
            Expr::Or(children) => {
                let mut out = Vec::new();
                for child in children {
                    match child.simplify() {
                        Expr::Or(grand) => out.extend(grand), // flatten; FALSE vanishes
                        Expr::And(grand) if grand.is_empty() => return Expr::And(Vec::new()),
                        other => out.push(other),
                    }
                }
                if out.len() == 1 {
                    out.pop().expect("one child")
                } else {
                    Expr::Or(out)
                }
            }
            Expr::Not(inner) => Expr::simplify_negation(inner),
            leaf => leaf.clone(),
        }
    }

    /// Simplify `NOT inner`, pushing the negation as deep as soundness
    /// allows (see [`Expr::simplify`]).
    fn simplify_negation(inner: &Expr) -> Expr {
        match inner {
            Expr::Not(doubly) => doubly.simplify(),
            Expr::And(children) => {
                Expr::Or(children.iter().map(Expr::simplify_negation).collect()).simplify()
            }
            Expr::Or(children) => {
                Expr::And(children.iter().map(Expr::simplify_negation).collect()).simplify()
            }
            Expr::Cmp { op, path, value } if path.repeated_depth() == 0 => {
                match op.negated() {
                    // ¬(∃v∈p: v op c) on a single-valued path: either the
                    // one value fails the comparison, or there is no value.
                    Some(negated) => Expr::Or(vec![
                        Expr::Cmp {
                            op: negated,
                            path: path.clone(),
                            value: value.clone(),
                        },
                        Expr::Not(Box::new(Expr::Exists(path.clone()))),
                    ]),
                    None => Expr::Not(Box::new(inner.simplify())),
                }
            }
            other => Expr::Not(Box::new(other.simplify())),
        }
    }

    /// Append every record-rooted path the expression reads to `out`
    /// (deduplicated) — the columns projection pushdown must assemble for the
    /// filter to be evaluable.
    pub fn collect_paths(&self, out: &mut Vec<Path>) {
        let mut add = |p: &Path| {
            if !out.contains(p) {
                out.push(p.clone());
            }
        };
        match self {
            Expr::And(children) | Expr::Or(children) => {
                for c in children {
                    c.collect_paths(out);
                }
            }
            Expr::Not(inner) => inner.collect_paths(out),
            Expr::Cmp { path, .. }
            | Expr::Exists(path)
            | Expr::Contains { path, .. }
            | Expr::Length { path, .. } => add(path),
        }
    }

    /// Bounds `(lo, hi)` such that `self` implies
    /// `∃v ∈ path: v ∈ (lo, hi)` under the document total order, or `None`
    /// when the expression implies no bound on `path` — the soundness
    /// condition for probing a secondary index on `path` and re-applying the
    /// expression as a residual filter.
    ///
    /// Conjunctions intersect the bounds their children imply **only for
    /// single-valued paths** (no `[*]` step): with existential semantics a
    /// multi-valued path may satisfy each conjunct with a *different*
    /// witness (`ts = [100, 200]` matches `ts[*] >= 120 AND ts[*] <= 180`
    /// with witnesses 200 and 100, neither in the intersection), so there
    /// the conjunction keeps one child's bounds, which any witness of that
    /// child satisfies. Disjunctions require *every* branch to bound the
    /// path and take the union hull (an over-approximation, made exact
    /// again by the residual filter); negations and non-comparison leaves
    /// are conservatively unbounded.
    pub fn implied_bounds(&self, path: &Path) -> Option<(Bound<Value>, Bound<Value>)> {
        match self {
            Expr::Cmp { op, path: p, value } if p == path => Some(match op {
                CmpOp::Eq => (Bound::Included(value.clone()), Bound::Included(value.clone())),
                CmpOp::Ge => (Bound::Included(value.clone()), Bound::Unbounded),
                CmpOp::Gt => (Bound::Excluded(value.clone()), Bound::Unbounded),
                CmpOp::Le => (Bound::Unbounded, Bound::Included(value.clone())),
                CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(value.clone())),
            }),
            Expr::And(children) => {
                // Field/union steps address at most one value per record, so
                // a single witness must satisfy every conjunct and the
                // intersection is sound. Array steps fan out; see above.
                let single_valued = path.repeated_depth() == 0;
                let mut acc: Option<(Bound<Value>, Bound<Value>)> = None;
                for child in children {
                    if let Some(bounds) = child.implied_bounds(path) {
                        acc = Some(match acc {
                            None => bounds,
                            Some(prev) if single_valued => intersect_bounds(prev, bounds),
                            Some(prev) => prev,
                        });
                    }
                }
                acc
            }
            Expr::Or(children) => {
                if children.is_empty() {
                    return None;
                }
                let mut acc: Option<(Bound<Value>, Bound<Value>)> = None;
                for child in children {
                    let bounds = child.implied_bounds(path)?;
                    acc = Some(match acc {
                        None => bounds,
                        Some(prev) => union_bounds(prev, bounds),
                    });
                }
                acc
            }
            _ => None,
        }
    }
}

/// `LENGTH(v)`: characters for strings, elements for arrays, `None` for
/// every other kind (the comparison then never matches).
fn value_length(v: &Value) -> Option<i64> {
    match v {
        Value::String(s) => Some(s.chars().count() as i64),
        Value::Array(a) => Some(a.len() as i64),
        _ => None,
    }
}

/// Intersection of two ranges: tightest lower bound, tightest upper bound.
fn intersect_bounds(
    a: (Bound<Value>, Bound<Value>),
    b: (Bound<Value>, Bound<Value>),
) -> (Bound<Value>, Bound<Value>) {
    (tighter_lo(a.0, b.0), tighter_hi(a.1, b.1))
}

/// Union hull of two ranges: loosest lower bound, loosest upper bound.
fn union_bounds(
    a: (Bound<Value>, Bound<Value>),
    b: (Bound<Value>, Bound<Value>),
) -> (Bound<Value>, Bound<Value>) {
    (looser_lo(a.0, b.0), looser_hi(a.1, b.1))
}

fn tighter_lo(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match total_cmp(x, y) {
                Ordering::Greater => a,
                Ordering::Less => b,
                // Equal values: the excluded bound is tighter.
                Ordering::Equal => {
                    if matches!(a, Bound::Excluded(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

fn tighter_hi(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match total_cmp(x, y) {
                Ordering::Less => a,
                Ordering::Greater => b,
                Ordering::Equal => {
                    if matches!(a, Bound::Excluded(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

fn looser_lo(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    match (&a, &b) {
        (Bound::Unbounded, _) | (_, Bound::Unbounded) => Bound::Unbounded,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match total_cmp(x, y) {
                Ordering::Less => a,
                Ordering::Greater => b,
                Ordering::Equal => {
                    if matches!(a, Bound::Included(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

fn looser_hi(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    match (&a, &b) {
        (Bound::Unbounded, _) | (_, Bound::Unbounded) => Bound::Unbounded,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match total_cmp(x, y) {
                Ordering::Greater => a,
                Ordering::Less => b,
                Ordering::Equal => {
                    if matches!(a, Bound::Included(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::And(children) => write_joined(f, children, " AND ", "TRUE"),
            Expr::Or(children) => write_joined(f, children, " OR ", "FALSE"),
            Expr::Not(inner) => write!(f, "NOT {inner}"),
            Expr::Cmp { op, path, value } => write!(f, "{path} {} {value}", op.symbol()),
            Expr::Exists(path) => write!(f, "EXISTS({path})"),
            Expr::Contains { path, value } => write!(f, "CONTAINS({path}, {value})"),
            Expr::Length { path, op, len } => {
                write!(f, "LENGTH({path}) {} {len}", op.symbol())
            }
        }
    }
}

fn write_joined(
    f: &mut fmt::Formatter<'_>,
    children: &[Expr],
    sep: &str,
    empty: &str,
) -> fmt::Result {
    if children.is_empty() {
        return f.write_str(empty);
    }
    write!(f, "(")?;
    for (i, child) in children.iter().enumerate() {
        if i > 0 {
            f.write_str(sep)?;
        }
        write!(f, "{child}")?;
    }
    write!(f, ")")
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::doc;

    fn record() -> Value {
        doc!({"age": 30, "tags": ["jobs", "rust"], "d": 599, "text": "hello"})
    }

    #[test]
    fn comparison_leaves_evaluate_existentially() {
        let rec = record();
        assert!(Expr::ge("age", 30).matches(&rec));
        assert!(!Expr::ge("d", 600).matches(&rec));
        assert!(Expr::lt("age", 31).matches(&rec));
        assert!(Expr::eq("age", 30).matches(&rec));
        assert!(Expr::eq("age", Value::Double(30.0)).matches(&rec), "numeric widening");
        assert!(Expr::between("age", 20, 40).matches(&rec));
        assert!(!Expr::between("age", 31, 40).matches(&rec));
        // Missing paths never satisfy a comparison.
        assert!(!Expr::eq("missing", 1).matches(&rec));
    }

    #[test]
    fn boolean_combinators() {
        let rec = record();
        assert!(Expr::and([Expr::ge("age", 20), Expr::exists("tags")]).matches(&rec));
        assert!(!Expr::and([Expr::ge("age", 20), Expr::exists("nope")]).matches(&rec));
        assert!(Expr::or([Expr::ge("age", 99), Expr::exists("tags")]).matches(&rec));
        assert!(Expr::not(Expr::ge("age", 99)).matches(&rec));
        // Identity elements.
        assert!(Expr::and([]).matches(&rec));
        assert!(!Expr::or([]).matches(&rec));
    }

    #[test]
    fn contains_descends_into_arrays_with_and_without_star() {
        let rec = record();
        assert!(Expr::contains("tags[*]", "jobs").matches(&rec));
        assert!(Expr::contains("tags", "jobs").matches(&rec));
        assert!(!Expr::contains("tags", "none").matches(&rec));
    }

    #[test]
    fn length_measures_strings_and_arrays() {
        let rec = record();
        assert!(Expr::length("text", CmpOp::Eq, 5).matches(&rec));
        assert!(Expr::length("tags", CmpOp::Ge, 2).matches(&rec));
        assert!(!Expr::length("age", CmpOp::Eq, 2).matches(&rec), "ints have no length");
    }

    #[test]
    fn collect_paths_deduplicates() {
        let e = Expr::and([
            Expr::ge("score", 50),
            Expr::or([Expr::exists("tags"), Expr::le("score", 90)]),
        ]);
        let mut paths = Vec::new();
        e.collect_paths(&mut paths);
        let rendered: Vec<String> = paths.iter().map(|p| p.to_string()).collect();
        assert_eq!(rendered, vec!["score".to_string(), "tags".to_string()]);
    }

    #[test]
    fn implied_bounds_from_conjunctions() {
        let p = Path::parse("score");
        let e = Expr::and([Expr::ge("score", 50), Expr::lt("score", 90), Expr::exists("tags")]);
        let (lo, hi) = e.implied_bounds(&p).unwrap();
        assert_eq!(lo, Bound::Included(Value::Int(50)));
        assert_eq!(hi, Bound::Excluded(Value::Int(90)));
        // Eq implies a point range.
        let (lo, hi) = Expr::eq("score", 7).implied_bounds(&p).unwrap();
        assert_eq!(lo, Bound::Included(Value::Int(7)));
        assert_eq!(hi, Bound::Included(Value::Int(7)));
        // Tighter of two lower bounds wins.
        let (lo, _) = Expr::and([Expr::ge("score", 10), Expr::gt("score", 10)])
            .implied_bounds(&p)
            .unwrap();
        assert_eq!(lo, Bound::Excluded(Value::Int(10)));
    }

    #[test]
    fn implied_bounds_never_intersect_on_multi_valued_paths() {
        // `ts = [100, 200]` satisfies `ts[*] >= 120 AND ts[*] <= 180` with
        // two different witnesses; intersecting to [120, 180] would make an
        // index probe miss the record. The conjunction must keep one
        // child's (individually sound) bounds instead.
        let p = Path::parse("ts[*]");
        let e = Expr::between("ts[*]", 120, 180);
        let rec = doc!({"ts": [100, 200]});
        assert!(e.matches(&rec));
        let (lo, hi) = e.implied_bounds(&p).unwrap();
        assert_eq!(lo, Bound::Included(Value::Int(120)));
        assert_eq!(hi, Bound::Unbounded, "no intersection across conjuncts");
        // Both the lone witness values satisfy the kept bound's range.
        assert!(matches!(hi, Bound::Unbounded));
    }

    #[test]
    fn implied_bounds_from_disjunctions_take_the_hull() {
        let p = Path::parse("score");
        let e = Expr::or([Expr::eq("score", 5), Expr::between("score", 10, 20)]);
        let (lo, hi) = e.implied_bounds(&p).unwrap();
        assert_eq!(lo, Bound::Included(Value::Int(5)));
        assert_eq!(hi, Bound::Included(Value::Int(20)));
        // A branch that does not bound the path poisons the disjunction.
        let e = Expr::or([Expr::eq("score", 5), Expr::exists("tags")]);
        assert!(e.implied_bounds(&p).is_none());
        // Negation is conservatively unbounded.
        assert!(Expr::not(Expr::eq("score", 5)).implied_bounds(&p).is_none());
    }

    #[test]
    fn simplify_folds_constants_and_flattens() {
        // Nested AND flattens, the empty AND (TRUE) disappears.
        let e = Expr::and([
            Expr::and([Expr::ge("a", 1), Expr::and([])]),
            Expr::lt("a", 9),
        ]);
        assert_eq!(e.simplify().to_string(), "(a >= 1 AND a < 9)");
        // FALSE annihilates a conjunction; TRUE annihilates a disjunction.
        let e = Expr::and([Expr::ge("a", 1), Expr::or([])]);
        assert!(matches!(e.simplify(), Expr::Or(v) if v.is_empty()));
        let e = Expr::or([Expr::ge("a", 1), Expr::and([])]);
        assert!(matches!(e.simplify(), Expr::And(v) if v.is_empty()));
        // Single-child wrappers unwrap.
        assert_eq!(Expr::and([Expr::ge("a", 1)]).simplify().to_string(), "a >= 1");
    }

    #[test]
    fn simplify_eliminates_double_negation_enabling_bounds() {
        let e = Expr::not(Expr::not(Expr::between("score", 10, 20)));
        let s = e.simplify();
        let p = Path::parse("score");
        let (lo, hi) = s.implied_bounds(&p).expect("double negation must expose bounds");
        assert_eq!(lo, Bound::Included(Value::Int(10)));
        assert_eq!(hi, Bound::Included(Value::Int(20)));
        assert!(e.implied_bounds(&p).is_none(), "unsimplified NOT is opaque");
    }

    #[test]
    fn simplify_pushes_not_through_de_morgan_and_comparisons() {
        // NOT (a < 5 AND EXISTS(t)) → (a >= 5 OR NOT EXISTS(a)) OR NOT EXISTS(t).
        let e = Expr::not(Expr::and([Expr::lt("a", 5), Expr::exists("t")]));
        let s = e.simplify();
        let text = s.to_string();
        assert!(text.contains("a >= 5"), "{text}");
        assert!(text.contains("NOT EXISTS(t)"), "{text}");
        assert!(!text.contains("NOT a"), "{text}");
        // The NOT EXISTS guard is what keeps missing paths equivalent.
        assert!(text.contains("NOT EXISTS(a)"), "{text}");
    }

    #[test]
    fn simplify_preserves_matches_on_tricky_records() {
        let records = [
            doc!({"a": 3, "t": 1}),
            doc!({"a": 7}),
            doc!({"t": 1}),                // `a` missing
            doc!({"a": [1, 9]}),           // `a` unexpectedly multi-valued
            doc!({}),
        ];
        let exprs = [
            Expr::not(Expr::lt("a", 5)),
            Expr::not(Expr::not(Expr::ge("a", 5))),
            Expr::not(Expr::and([Expr::lt("a", 5), Expr::exists("t")])),
            Expr::not(Expr::or([Expr::eq("a", 3), Expr::gt("a", 6)])),
            Expr::not(Expr::contains("a", 9)),
            Expr::not(Expr::Cmp {
                op: CmpOp::Lt,
                path: Path::parse("a[*]"),
                value: Value::Int(5),
            }),
            Expr::and([Expr::or([]), Expr::ge("a", 1)]),
            Expr::or([Expr::and([]), Expr::ge("a", 1)]),
        ];
        for e in &exprs {
            let s = e.simplify();
            for rec in &records {
                assert_eq!(
                    e.matches(rec),
                    s.matches(rec),
                    "simplification changed `{e}` → `{s}` on {rec}"
                );
            }
        }
    }

    #[test]
    fn simplify_keeps_multi_valued_negations_opaque() {
        // ¬(some ts[*] < 5) is "every element ≥ 5" — not expressible, so the
        // NOT must stay (pushing it in would change answers).
        let e = Expr::not(Expr::Cmp {
            op: CmpOp::Lt,
            path: Path::parse("ts[*]"),
            value: Value::Int(5),
        });
        assert!(matches!(e.simplify(), Expr::Not(_)));
        // NOT (p = c) has no Ne to flip to.
        assert!(matches!(Expr::not(Expr::eq("a", 1)).simplify(), Expr::Not(_)));
    }

    #[test]
    fn display_renders_sql_like_text() {
        let e = Expr::and([Expr::ge("score", 50), Expr::exists("tags")]);
        assert_eq!(e.to_string(), "(score >= 50 AND EXISTS(tags))");
        assert_eq!(Expr::not(Expr::eq("a", 1)).to_string(), "NOT a = 1");
        assert_eq!(
            Expr::length("text", CmpOp::Gt, 3).to_string(),
            "LENGTH(text) > 3"
        );
    }
}
