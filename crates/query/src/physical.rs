//! The physical plan: what the planner lowers a logical [`Query`] to.
//!
//! Planning does three things, mirroring what AsterixDB's compiler does for
//! the paper's SQL++ queries:
//!
//! * **validation** — an empty select list, an element-scoped input without
//!   an `UNNEST`, or an out-of-range `ORDER BY` index are
//!   [`Error::InvalidPlan`](crate::Error)s, caught before any I/O happens;
//! * **projection pushdown** — the set of record-rooted paths the query
//!   touches is derived from the filter expression tree and the
//!   group/aggregate inputs, so columnar components assemble only those
//!   columns (§5 of the paper);
//! * **access-path selection** — `COUNT(*)`-only queries read primary keys
//!   alone ([`AccessPath::KeyOnlyScan`], Page 0 for AMAX); when the dataset
//!   has a secondary index and the filter *implies* a range on the indexed
//!   path ([`crate::Expr::implied_bounds`]), the plan probes the index and
//!   re-applies the filter as a residual ([`AccessPath::IndexRange`]);
//!   otherwise it scans ([`AccessPath::FullScan`]).
//!
//! The same physical plan is executed by both engines (interpreted operator
//! pipeline and fused/compiled loop) and, for sharded datasets, by the
//! per-shard fan-out: execution produces **mergeable partial aggregates**
//! (the crate-private `AggState`) per group, which are merged across shards
//! before finalisation — `AVG` carries `(sum, count)`, so the merged result
//! is exactly the single-dataset result.

use std::collections::BTreeMap;
use std::ops::Bound;

use docmodel::cmp::OrderedValue;
use docmodel::{total_cmp, Path, Value};
use lsm::LsmDataset;

use crate::expr::Expr;
use crate::plan::{AggSpec, Aggregate, Query, QueryRow};
use crate::{Error, Result};

/// What the planner knows about the execution target.
#[derive(Debug, Clone, Default)]
pub struct PlanContext {
    /// Path covered by a secondary index on every target partition, if any.
    pub secondary_index_on: Option<Path>,
    /// Number of partitions the plan will fan out over (1 = unsharded).
    pub shards: usize,
}

impl PlanContext {
    /// A context with no index and a single partition — what a bare
    /// [`lsm::Snapshot`] offers.
    pub fn scan_only() -> PlanContext {
        PlanContext { secondary_index_on: None, shards: 1 }
    }

    /// The context of one dataset: its configured secondary index, one
    /// partition.
    pub fn for_dataset(dataset: &LsmDataset) -> PlanContext {
        PlanContext {
            secondary_index_on: dataset.config().secondary_index_on.clone(),
            shards: 1,
        }
    }

    /// The context of a sharded dataset. The index is usable only when every
    /// shard maintains it on the same path.
    pub fn for_shards(shards: &[&LsmDataset]) -> PlanContext {
        let index = shards
            .first()
            .and_then(|s| s.config().secondary_index_on.clone())
            .filter(|path| {
                shards
                    .iter()
                    .all(|s| s.config().secondary_index_on.as_ref() == Some(path))
            });
        PlanContext { secondary_index_on: index, shards: shards.len().max(1) }
    }
}

/// Planner knobs. Defaults enable every optimisation; the benchmarks flip
/// them off to measure what each one buys.
#[derive(Debug, Clone, Copy)]
pub struct PlannerOptions {
    /// Push the derived projection down to the storage layer. Off, every
    /// column is assembled (the "read everything" baseline).
    pub projection_pushdown: bool,
    /// Route range-implying filters through the secondary index when one
    /// covers the filtered path. Off, such queries scan.
    pub use_secondary_index: bool,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions { projection_pushdown: true, use_secondary_index: true }
    }
}

/// How the plan acquires its input records.
#[derive(Debug, Clone)]
pub enum AccessPath {
    /// Scan the snapshot, assembling the pushed-down projection.
    FullScan,
    /// Read primary keys only — the `COUNT(*)` fast path (Page 0 for AMAX).
    KeyOnlyScan,
    /// Probe the secondary index over `[lo, hi]` and batch-lookup the
    /// qualifying records; the full filter still runs as a residual.
    IndexRange {
        /// The indexed path being probed.
        path: Path,
        /// Lower bound of the probe.
        lo: Bound<Value>,
        /// Upper bound of the probe.
        hi: Bound<Value>,
    },
}

/// A lowered, executable plan. Produced by [`plan`]; render it with
/// [`PhysicalPlan::describe`].
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// How input records are acquired.
    pub access: AccessPath,
    /// Pushed-down projection; `None` assembles full records (pushdown off).
    pub projection: Option<Vec<Path>>,
    /// Residual filter applied to every acquired record.
    pub filter: Option<Expr>,
    /// Array path to unnest, if any.
    pub unnest: Option<Path>,
    /// Grouping key path, if any.
    pub group_by: Option<Path>,
    /// Whether the grouping key is evaluated on the unnested element.
    pub group_on_element: bool,
    /// The select list.
    pub aggregates: Vec<AggSpec>,
    /// Sort groups descending by this aggregate index.
    pub order_desc_by_agg: Option<usize>,
    /// Row cap applied after sorting.
    pub limit: Option<usize>,
    /// Number of partitions the plan fans out over (for `describe`).
    pub shards: usize,
}

/// Lower a logical query to a physical plan for the given target context.
pub fn plan(query: &Query, ctx: &PlanContext, options: &PlannerOptions) -> Result<PhysicalPlan> {
    if query.aggregates.is_empty() {
        return Err(Error::invalid_plan(
            "the select list is empty: add at least one aggregate",
        ));
    }
    if query.unnest.is_none() {
        if query.group_on_element && query.group_by.is_some() {
            return Err(Error::invalid_plan(
                "GROUP BY on the unnested element requires an UNNEST clause",
            ));
        }
        if let Some(spec) = query.aggregates.iter().find(|s| s.on_element) {
            return Err(Error::invalid_plan(format!(
                "aggregate {} reads the unnested element but the query has no UNNEST clause",
                spec.agg.describe()
            )));
        }
    }
    if let Some(i) = query.order_desc_by_agg {
        if i >= query.aggregates.len() {
            return Err(Error::invalid_plan(format!(
                "ORDER BY references aggregate #{i} but the select list has {}",
                query.aggregates.len()
            )));
        }
    }

    let count_only = query.filter.is_none()
        && query.unnest.is_none()
        && query.group_by.is_none()
        && query
            .aggregates
            .iter()
            .all(|s| matches!(s.agg, Aggregate::Count));

    let access = if count_only {
        AccessPath::KeyOnlyScan
    } else {
        index_probe_for(query, ctx, options).unwrap_or(AccessPath::FullScan)
    };

    let projection = options
        .projection_pushdown
        .then(|| query.projection_paths());

    Ok(PhysicalPlan {
        access,
        projection,
        filter: query.filter.clone(),
        unnest: query.unnest.clone(),
        group_by: query.group_by.clone(),
        group_on_element: query.group_on_element,
        aggregates: query.aggregates.clone(),
        order_desc_by_agg: query.order_desc_by_agg,
        limit: query.limit,
        shards: ctx.shards.max(1),
    })
}

/// The index-probe access path, when the context has an index, routing is
/// enabled, and the filter implies a (at least one-sided) range on the
/// indexed path.
fn index_probe_for(
    query: &Query,
    ctx: &PlanContext,
    options: &PlannerOptions,
) -> Option<AccessPath> {
    if !options.use_secondary_index {
        return None;
    }
    let indexed = ctx.secondary_index_on.as_ref()?;
    let (lo, hi) = query.filter.as_ref()?.implied_bounds(indexed)?;
    if matches!((&lo, &hi), (Bound::Unbounded, Bound::Unbounded)) {
        return None;
    }
    Some(AccessPath::IndexRange { path: indexed.clone(), lo, hi })
}

impl AccessPath {
    /// One-line rendering for `EXPLAIN`.
    pub fn describe(&self) -> String {
        match self {
            AccessPath::FullScan => "full scan".to_string(),
            AccessPath::KeyOnlyScan => "key-only scan (COUNT(*) fast path)".to_string(),
            AccessPath::IndexRange { path, lo, hi } => {
                format!(
                    "secondary-index range probe on `{path}` over {}",
                    render_range(lo, hi)
                )
            }
        }
    }
}

fn render_range(lo: &Bound<Value>, hi: &Bound<Value>) -> String {
    let lo = match lo {
        Bound::Unbounded => "(-inf".to_string(),
        Bound::Included(v) => format!("[{v}"),
        Bound::Excluded(v) => format!("({v}"),
    };
    let hi = match hi {
        Bound::Unbounded => "+inf)".to_string(),
        Bound::Included(v) => format!("{v}]"),
        Bound::Excluded(v) => format!("{v})"),
    };
    format!("{lo}, {hi}")
}

impl PhysicalPlan {
    /// Render the plan as a multi-line `EXPLAIN` string.
    pub fn describe(&self) -> String {
        let select: Vec<String> = self.aggregates.iter().map(|s| s.agg.describe()).collect();
        let mut out = String::new();
        out.push_str(&format!("SELECT {}\n", select.join(", ")));
        out.push_str(&format!("  access     : {}\n", self.access.describe()));
        match &self.projection {
            Some(paths) if paths.is_empty() => {
                out.push_str("  projection : (keys only)\n");
            }
            Some(paths) => {
                let rendered: Vec<String> = paths.iter().map(|p| p.to_string()).collect();
                out.push_str(&format!("  projection : {}\n", rendered.join(", ")));
            }
            None => out.push_str("  projection : * (pushdown disabled)\n"),
        }
        match &self.filter {
            Some(f) => out.push_str(&format!("  filter     : {f}\n")),
            None => out.push_str("  filter     : -\n"),
        }
        match &self.unnest {
            Some(u) => out.push_str(&format!("  unnest     : {u}\n")),
            None => out.push_str("  unnest     : -\n"),
        }
        match &self.group_by {
            Some(g) => out.push_str(&format!(
                "  group by   : {g}{}\n",
                if self.group_on_element { " (on element)" } else { "" }
            )),
            None => out.push_str("  group by   : - (global aggregate)\n"),
        }
        match (self.order_desc_by_agg, self.limit) {
            (Some(i), Some(k)) => out.push_str(&format!(
                "  order/limit: {} DESC LIMIT {k}\n",
                self.aggregates[i].agg.describe()
            )),
            (Some(i), None) => out.push_str(&format!(
                "  order/limit: {} DESC\n",
                self.aggregates[i].agg.describe()
            )),
            (None, Some(k)) => out.push_str(&format!("  order/limit: LIMIT {k}\n")),
            (None, None) => out.push_str("  order/limit: -\n"),
        }
        if self.shards > 1 {
            out.push_str(&format!(
                "  shards     : {} (per-shard partial aggregates, exact merge)\n",
                self.shards
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Mergeable aggregate partials.
// ---------------------------------------------------------------------------

/// Running state of one aggregate over one group. Partials are *mergeable*:
/// combining the states of disjoint record sets gives exactly the state of
/// their union, which is what makes sharded fan-out exact (AVG carries
/// `(sum, count)`, not the finished mean).
#[derive(Debug, Clone)]
pub(crate) enum AggState {
    /// `COUNT(*)`.
    Count(u64),
    /// `COUNT(path)`.
    CountNonNull(u64),
    /// `MAX(path)`.
    Max(Option<Value>),
    /// `MIN(path)`.
    Min(Option<Value>),
    /// `SUM(path)`: exact integer sum plus a double accumulator.
    Sum {
        int_sum: i64,
        double_sum: f64,
        saw_double: bool,
        any: bool,
    },
    /// `AVG(path)`: the classic mergeable pair.
    Avg { sum: f64, count: u64 },
    /// `MAX(LENGTH(path))`.
    MaxLength(Option<i64>),
}

impl AggState {
    pub(crate) fn new(agg: &Aggregate) -> AggState {
        match agg {
            Aggregate::Count => AggState::Count(0),
            Aggregate::CountNonNull(_) => AggState::CountNonNull(0),
            Aggregate::Max(_) => AggState::Max(None),
            Aggregate::Min(_) => AggState::Min(None),
            Aggregate::Sum(_) => AggState::Sum {
                int_sum: 0,
                double_sum: 0.0,
                saw_double: false,
                any: false,
            },
            Aggregate::Avg(_) => AggState::Avg { sum: 0.0, count: 0 },
            Aggregate::MaxLength(_) => AggState::MaxLength(None),
        }
    }

    /// Fold one input value (the aggregate's resolved path value, `None`
    /// when the path is missing on this record/element).
    pub(crate) fn update(&mut self, input: Option<&Value>) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::CountNonNull(n) => {
                if input.is_some() {
                    *n += 1;
                }
            }
            AggState::Max(best) => {
                if let Some(v) = input {
                    if best
                        .as_ref()
                        .map(|b| total_cmp(v, b) == std::cmp::Ordering::Greater)
                        .unwrap_or(true)
                    {
                        *best = Some(v.clone());
                    }
                }
            }
            AggState::Min(best) => {
                if let Some(v) = input {
                    if best
                        .as_ref()
                        .map(|b| total_cmp(v, b) == std::cmp::Ordering::Less)
                        .unwrap_or(true)
                    {
                        *best = Some(v.clone());
                    }
                }
            }
            AggState::Sum { int_sum, double_sum, saw_double, any } => match input {
                Some(Value::Int(i)) => {
                    sum_add_int(int_sum, double_sum, saw_double, *i);
                    *any = true;
                }
                Some(Value::Double(d)) => {
                    *double_sum += d;
                    *saw_double = true;
                    *any = true;
                }
                _ => {}
            },
            AggState::Avg { sum, count } => {
                if let Some(x) = input.and_then(Value::as_f64) {
                    *sum += x;
                    *count += 1;
                }
            }
            AggState::MaxLength(best) => {
                if let Some(Value::String(s)) = input {
                    let len = s.chars().count() as i64;
                    if best.map(|b| len > b).unwrap_or(true) {
                        *best = Some(len);
                    }
                }
            }
        }
    }

    /// Merge another partial of the same aggregate (from a disjoint record
    /// set, e.g. another shard) into this one.
    pub(crate) fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::CountNonNull(a), AggState::CountNonNull(b)) => *a += b,
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(v) = b {
                    if a.as_ref()
                        .map(|x| total_cmp(&v, x) == std::cmp::Ordering::Greater)
                        .unwrap_or(true)
                    {
                        *a = Some(v);
                    }
                }
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(v) = b {
                    if a.as_ref()
                        .map(|x| total_cmp(&v, x) == std::cmp::Ordering::Less)
                        .unwrap_or(true)
                    {
                        *a = Some(v);
                    }
                }
            }
            (
                AggState::Sum { int_sum, double_sum, saw_double, any },
                AggState::Sum {
                    int_sum: i2,
                    double_sum: d2,
                    saw_double: s2,
                    any: a2,
                },
            ) => {
                sum_add_int(int_sum, double_sum, saw_double, i2);
                *double_sum += d2;
                *saw_double |= s2;
                *any |= a2;
            }
            (AggState::Avg { sum, count }, AggState::Avg { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            (AggState::MaxLength(a), AggState::MaxLength(b)) => {
                if let Some(v) = b {
                    if a.map(|x| v > x).unwrap_or(true) {
                        *a = Some(v);
                    }
                }
            }
            // Partials of the same plan position always share a variant.
            _ => unreachable!("merging partials of different aggregates"),
        }
    }

    /// Finish the aggregate: turn the partial into its output value.
    pub(crate) fn finish(&self) -> Value {
        match self {
            AggState::Count(n) | AggState::CountNonNull(n) => Value::Int(*n as i64),
            AggState::Max(best) | AggState::Min(best) => {
                best.clone().unwrap_or(Value::Null)
            }
            AggState::Sum { int_sum, double_sum, saw_double, any } => {
                if !any {
                    Value::Null
                } else if *saw_double {
                    Value::Double(*int_sum as f64 + double_sum)
                } else {
                    Value::Int(*int_sum)
                }
            }
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / *count as f64)
                }
            }
            AggState::MaxLength(best) => best.map(Value::Int).unwrap_or(Value::Null),
        }
    }
}

/// Add an integer to a `SUM` partial: exact while the running integer sum
/// fits an `i64`, widening to the double accumulator on overflow instead of
/// wrapping.
fn sum_add_int(int_sum: &mut i64, double_sum: &mut f64, saw_double: &mut bool, v: i64) {
    match int_sum.checked_add(v) {
        Some(s) => *int_sum = s,
        None => {
            *double_sum += *int_sum as f64 + v as f64;
            *int_sum = 0;
            *saw_double = true;
        }
    }
}

/// Per-group partial aggregate states, keyed by group value — what one
/// execution (one shard, one engine pass) produces.
pub(crate) type GroupPartials = BTreeMap<Option<OrderedValue>, Vec<AggState>>;

/// Fresh per-aggregate states for a new group.
pub(crate) fn new_states(plan: &PhysicalPlan) -> Vec<AggState> {
    plan.aggregates.iter().map(|s| AggState::new(&s.agg)).collect()
}

/// Partials for the key-only `COUNT(*)` fast path: one global group whose
/// `Count` states all equal `n`.
pub(crate) fn key_count_partials(n: usize, plan: &PhysicalPlan) -> GroupPartials {
    let mut groups = GroupPartials::new();
    let states = plan
        .aggregates
        .iter()
        .map(|_| AggState::Count(n as u64))
        .collect();
    groups.insert(None, states);
    groups
}

/// Merge the partials of one execution into the accumulator (group-wise,
/// aggregate-wise).
pub(crate) fn merge_partials(into: &mut GroupPartials, from: GroupPartials) {
    for (key, states) in from {
        match into.entry(key) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(states);
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                for (acc, s) in slot.get_mut().iter_mut().zip(states) {
                    acc.merge(s);
                }
            }
        }
    }
}

/// Turn merged partials into ordered, limited output rows.
pub(crate) fn finalize(groups: GroupPartials, plan: &PhysicalPlan) -> Vec<QueryRow> {
    let mut rows: Vec<QueryRow> = groups
        .into_iter()
        .map(|(key, states)| QueryRow {
            group: key.map(|k| k.0),
            aggs: states.iter().map(AggState::finish).collect(),
        })
        .collect();
    if plan.group_by.is_none() && rows.is_empty() {
        rows.push(QueryRow {
            group: None,
            aggs: new_states(plan).iter().map(AggState::finish).collect(),
        });
    }
    if let Some(i) = plan.order_desc_by_agg {
        rows.sort_by(|a, b| total_cmp(&b.aggs[i], &a.aggs[i]));
    }
    if let Some(k) = plan.limit {
        rows.truncate(k);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn planner_validates_the_select_list() {
        let ctx = PlanContext::scan_only();
        let opts = PlannerOptions::default();
        assert!(matches!(
            plan(&Query::new(), &ctx, &opts),
            Err(Error::InvalidPlan(_))
        ));
        let q = Query::new().aggregate_element(Aggregate::Max(Path::parse("x")));
        assert!(matches!(plan(&q, &ctx, &opts), Err(Error::InvalidPlan(_))));
        let q = Query::count_star().group_by_element(Path::parse("x"));
        assert!(matches!(plan(&q, &ctx, &opts), Err(Error::InvalidPlan(_))));
        let q = Query::count_star().order_desc_by(3);
        assert!(matches!(plan(&q, &ctx, &opts), Err(Error::InvalidPlan(_))));
    }

    #[test]
    fn count_star_plans_a_key_only_scan() {
        let p = plan(
            &Query::count_star(),
            &PlanContext::scan_only(),
            &PlannerOptions::default(),
        )
        .unwrap();
        assert!(matches!(p.access, AccessPath::KeyOnlyScan));
        assert_eq!(p.projection.as_deref(), Some(&[][..]));
        assert!(p.describe().contains("key-only scan"));
    }

    #[test]
    fn range_filters_route_through_a_covering_index() {
        let ctx = PlanContext {
            secondary_index_on: Some(Path::parse("score")),
            shards: 1,
        };
        let q = Query::count_star()
            .with_filter(Expr::and([Expr::ge("score", 50), Expr::exists("tags")]));
        let p = plan(&q, &ctx, &PlannerOptions::default()).unwrap();
        assert!(matches!(p.access, AccessPath::IndexRange { .. }));
        let text = p.describe();
        assert!(text.contains("secondary-index range probe on `score`"), "{text}");
        assert!(text.contains("[50, +inf)"), "{text}");
        // Routing disabled → scan.
        let p = plan(
            &q,
            &ctx,
            &PlannerOptions { use_secondary_index: false, ..Default::default() },
        )
        .unwrap();
        assert!(matches!(p.access, AccessPath::FullScan));
        // Filter on a different path → scan.
        let q = Query::count_star().with_filter(Expr::ge("other", 1));
        let p = plan(&q, &ctx, &PlannerOptions::default()).unwrap();
        assert!(matches!(p.access, AccessPath::FullScan));
    }

    #[test]
    fn pushdown_off_projects_everything() {
        let q = Query::count_star().with_filter(Expr::ge("score", 1));
        let p = plan(
            &q,
            &PlanContext::scan_only(),
            &PlannerOptions { projection_pushdown: false, ..Default::default() },
        )
        .unwrap();
        assert!(p.projection.is_none());
        assert!(p.describe().contains("pushdown disabled"));
    }

    #[test]
    fn avg_partials_merge_exactly() {
        let agg = Aggregate::Avg(Path::parse("x"));
        // Shard A: one value 0. Shard B: three values 100.
        let mut a = AggState::new(&agg);
        a.update(Some(&Value::Int(0)));
        let mut b = AggState::new(&agg);
        for _ in 0..3 {
            b.update(Some(&Value::Int(100)));
        }
        a.merge(b);
        // avg-of-avgs would be 50; the mergeable partial gives the true 75.
        assert_eq!(a.finish(), Value::Double(75.0));
        // Merging an empty partial is the identity.
        a.merge(AggState::new(&agg));
        assert_eq!(a.finish(), Value::Double(75.0));
        // An all-empty AVG finishes as NULL.
        assert_eq!(AggState::new(&agg).finish(), Value::Null);
    }

    #[test]
    fn sum_partials_keep_integers_exact() {
        let agg = Aggregate::Sum(Path::parse("x"));
        let mut a = AggState::new(&agg);
        a.update(Some(&Value::Int(7)));
        a.update(Some(&Value::from("ignored")));
        let mut b = AggState::new(&agg);
        b.update(Some(&Value::Int(5)));
        a.merge(b);
        assert_eq!(a.finish(), Value::Int(12));
        // A double anywhere widens the sum.
        a.update(Some(&Value::Double(0.5)));
        assert_eq!(a.finish(), Value::Double(12.5));
        assert_eq!(AggState::new(&agg).finish(), Value::Null);
    }

    #[test]
    fn sum_overflow_widens_to_double_instead_of_wrapping() {
        let agg = Aggregate::Sum(Path::parse("x"));
        let mut a = AggState::new(&agg);
        a.update(Some(&Value::Int(i64::MAX)));
        a.update(Some(&Value::Int(1)));
        match a.finish() {
            Value::Double(d) => assert!(d > i64::MAX as f64 * 0.99, "{d}"),
            other => panic!("overflowing SUM must widen, got {other:?}"),
        }
        // Same through a merge of two near-max partials.
        let mut b = AggState::new(&agg);
        b.update(Some(&Value::Int(i64::MAX)));
        let mut c = AggState::new(&agg);
        c.update(Some(&Value::Int(i64::MAX)));
        b.merge(c);
        match b.finish() {
            Value::Double(d) => assert!(d > i64::MAX as f64, "{d}"),
            other => panic!("overflowing merge must widen, got {other:?}"),
        }
    }
}
