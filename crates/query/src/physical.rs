//! The physical plan: what the planner lowers a logical [`Query`] to.
//!
//! Planning does four things, mirroring what AsterixDB's compiler does for
//! the paper's SQL++ queries:
//!
//! * **validation** — an empty select list, an element-scoped input without
//!   an `UNNEST`, or an out-of-range `ORDER BY` index are
//!   [`Error::InvalidPlan`](crate::Error)s, caught before any I/O happens;
//! * **projection pushdown** — the set of record-rooted paths the query
//!   touches is derived from the filter expression tree and the
//!   group/aggregate inputs, so columnar components assemble only those
//!   columns (§5 of the paper);
//! * **cost-based access-path selection** — `COUNT(*)`-only queries read
//!   primary keys alone ([`AccessPath::KeyOnlyScan`], Page 0 for AMAX); when
//!   the target has a secondary index and the filter *implies* a range on
//!   the indexed path ([`crate::Expr::implied_bounds`]), the planner
//!   *estimates* whether probing the index beats scanning (see the cost
//!   model below) and picks accordingly; [`AccessPathChoice::ForceIndex`] /
//!   [`AccessPathChoice::ForceScan`] override the estimate;
//! * **zone-map pruning** — components whose per-column statistics
//!   ([`storage::stats::ComponentStats`], collected at flush/merge time and
//!   persisted in the manifest) prove that *no record in the component can
//!   match the filter* are skipped entirely: the scan never reads one of
//!   their pages. See [`prune_flags`] for the statistics test and the
//!   reconciliation-safety rule.
//!
//! ## The cost model
//!
//! Both alternatives are priced in **pages touched**, the currency of the
//! paper's evaluation (its speedups are I/O reductions):
//!
//! * a scan costs the pages of every component the zone maps could not
//!   prune (projection narrows what is decoded, but relative ranking is
//!   unaffected);
//! * an index probe costs `estimated matching records × pages per lookup`,
//!   where a lookup may touch one leaf in every component (`Σ ceil(pages /
//!   leaves)`). Matching records are estimated per component by
//!   interpolating the probe range against the component's `[min, max]` and
//!   row counts — uniform within bounds, exact zero when disjoint,
//!   conservative (every row) when a column has no usable bounds.
//!
//! The crossover this reproduces is Figure 15: probes win at low
//! selectivity, scans win past roughly "one match per leaf". In-memory
//! records (active + sealed memtables) cost no pages on either path and are
//! excluded; components without statistics (recovered from a pre-stats
//! manifest) price as "every record matches", which safely biases toward
//! the scan. The chosen path and the estimate behind it are rendered by
//! [`PhysicalPlan::describe`] (`EXPLAIN`).
//!
//! ## The streaming operator pipeline
//!
//! Execution is **pull-based** end to end. The access stage opens a cursor —
//! the snapshot's k-way merge-reconcile cursor (`lsm::ScanCursor`, one
//! decoded leaf per component resident at a time) for scans, or the sorted
//! batched lookups of an index probe — and the pipelining operators
//! (filter → unnest → project → aggregate-or-emit) consume it one record at
//! a time. No operator materialises its input: memory is bounded by one
//! storage leaf per component plus the aggregation table (or, for
//! projection queries, the emitted rows). Both engines drive the same
//! pipeline shape — [`crate::interp`] as boxed operator objects with
//! per-tuple dynamic dispatch, [`crate::compiled`] as one fused,
//! pre-resolved loop — which is exactly the §5 contrast, now without the
//! O(dataset) staging batch.
//!
//! Two plan shapes exist:
//!
//! * **aggregate plans** produce mergeable per-group partials (the
//!   crate-private `AggState`), merged across shards before finalisation —
//!   `AVG` carries `(sum, count)`, so the merged result is exactly the
//!   single-dataset result;
//! * **projection plans** ([`crate::Query::select_paths`]) emit one
//!   key-ordered row per matching record. `LIMIT` is pushed *into* the
//!   pipeline: the cursor stops after the k-th match (`ORDER BY key LIMIT
//!   k` never decodes the tail leaves), and sharded fan-out k-way-merges
//!   the per-shard key-ordered row streams instead of concatenating
//!   batches.
//!
//! Filters are [`crate::Expr::simplify`]-ed before planning: constant
//! folding and `NOT` push-in run first, so access-path selection and the
//! zone maps see through `NOT NOT` and nested boolean noise, and `EXPLAIN`
//! shows the simplified tree.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use docmodel::cmp::OrderedValue;
use docmodel::{total_cmp, Path, Value};
use lsm::{LsmDataset, Snapshot};
use storage::component::{ColumnPredicate, Component, ComponentReader};
use storage::stats::ComponentStats;

use crate::expr::{CmpOp, Expr};
use crate::plan::{AggSpec, Aggregate, Query, QueryRow};
use crate::{Error, Result};

/// What the planner knows about one on-disk component of the target: the
/// cardinalities and statistics the cost model and the zone maps consume.
#[derive(Debug, Clone, Default)]
pub struct ComponentPlanInfo {
    /// Component id (for reporting which components were pruned).
    pub id: u64,
    /// Entries in the component (records plus anti-matter).
    pub records: u64,
    /// Physical pages the component occupies.
    pub pages: u64,
    /// Leaves (row/APAX pages, AMAX mega leaf nodes).
    pub leaves: u64,
    /// Smallest key (absent for an empty component).
    pub min_key: Option<Value>,
    /// Largest key (absent for an empty component).
    pub max_key: Option<Value>,
    /// Column statistics collected when the component was written. `None`
    /// for components recovered from a pre-stats manifest.
    pub stats: Option<Arc<ComponentStats>>,
    /// Decoded leaves of this component resident in the shared leaf cache
    /// at planning time (0 when no cache is configured). A cached leaf is
    /// served without touching any page, so the cost model discounts its
    /// share of the component's scan pages.
    pub cached_leaves: u64,
}

impl ComponentPlanInfo {
    /// Extract the planning view of one component.
    pub fn of(component: &Component) -> ComponentPlanInfo {
        let meta = component.meta();
        ComponentPlanInfo {
            id: meta.id,
            records: meta.record_count as u64,
            pages: meta.pages.len() as u64,
            leaves: component.leaf_count() as u64,
            min_key: meta.min_key.clone(),
            max_key: meta.max_key.clone(),
            stats: component.stats().cloned(),
            cached_leaves: component.cached_leaf_count() as u64,
        }
    }
}

/// What the planner knows about the execution target.
#[derive(Debug, Clone, Default)]
pub struct PlanContext {
    /// Path covered by a secondary index on every target partition, if any.
    pub secondary_index_on: Option<Path>,
    /// Number of partitions the plan will fan out over (1 = unsharded).
    pub shards: usize,
    /// The target's on-disk components (across every partition), oldest
    /// first per partition. Feeds the cost model; empty for synthetic
    /// contexts, which makes the planner treat the target as memtable-only.
    pub components: Vec<ComponentPlanInfo>,
    /// Records (and anti-matter) in memory across the target's partitions —
    /// active plus sealed memtables. They cost no *pages* on either access
    /// path, but a scan must CPU-filter every one of them while a probe
    /// touches only the matching ones; the cost model charges them at
    /// [`MEM_RECORD_PAGE_EQUIV`] page-equivalents each, which sharpens the
    /// Auto choice when much of the data still sits in memtables.
    pub in_memory_records: u64,
}

impl PlanContext {
    /// A context with no index, no statistics and a single partition.
    pub fn scan_only() -> PlanContext {
        PlanContext::default()
    }

    /// The context of one consistent snapshot: no secondary index (a bare
    /// snapshot cannot probe), but full component statistics.
    pub fn for_snapshot(snapshot: &Snapshot) -> PlanContext {
        PlanContext {
            secondary_index_on: None,
            shards: 1,
            components: snapshot
                .components()
                .iter()
                .map(|c| ComponentPlanInfo::of(c))
                .collect(),
            in_memory_records: snapshot.in_memory_entries() as u64,
        }
    }

    /// The context of several per-shard snapshots (scan-only fan-out).
    pub fn for_snapshots(snapshots: &[Snapshot]) -> PlanContext {
        let mut ctx = PlanContext {
            shards: snapshots.len().max(1),
            ..PlanContext::default()
        };
        for snapshot in snapshots {
            ctx.components.extend(
                snapshot.components().iter().map(|c| ComponentPlanInfo::of(c)),
            );
            ctx.in_memory_records += snapshot.in_memory_entries() as u64;
        }
        ctx
    }

    /// The context of one dataset: its configured secondary index, one
    /// partition, and the current components' statistics.
    pub fn for_dataset(dataset: &LsmDataset) -> PlanContext {
        PlanContext {
            secondary_index_on: dataset.config().secondary_index_on.clone(),
            shards: 1,
            components: dataset
                .components()
                .iter()
                .map(|c| ComponentPlanInfo::of(c))
                .collect(),
            in_memory_records: dataset.in_memory_entries() as u64,
        }
    }

    /// The context of a sharded dataset. The index is usable only when every
    /// shard maintains it on the same path; statistics aggregate over all
    /// shards.
    pub fn for_shards(shards: &[&LsmDataset]) -> PlanContext {
        let index = shards
            .first()
            .and_then(|s| s.config().secondary_index_on.clone())
            .filter(|path| {
                shards
                    .iter()
                    .all(|s| s.config().secondary_index_on.as_ref() == Some(path))
            });
        let mut ctx = PlanContext {
            secondary_index_on: index,
            shards: shards.len().max(1),
            ..PlanContext::default()
        };
        for shard in shards {
            ctx.components
                .extend(shard.components().iter().map(|c| ComponentPlanInfo::of(c)));
            ctx.in_memory_records += shard.in_memory_entries() as u64;
        }
        ctx
    }
}

/// CPU cost of filtering one in-memory record, in page-equivalents: the
/// currency that lets the cost model weigh memtable records (which cost no
/// I/O) against pages touched. Decoding and filtering ~64 in-memory records
/// is charged like reading one page — deliberately coarse; it only needs to
/// break ties near the fig. 15 crossover when data still sits in memtables.
pub const MEM_RECORD_PAGE_EQUIV: f64 = 1.0 / 64.0;

/// How the planner picks between a secondary-index probe and a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessPathChoice {
    /// Cost-based: estimate matching records from the component statistics
    /// and pick whichever path touches fewer pages (the fig. 15 crossover).
    #[default]
    Auto,
    /// Always probe the secondary index when the target has one and the
    /// filter implies a range on the indexed path (PR 3's fixed routing).
    ForceIndex,
    /// Never probe; range filters execute as (zone-map-pruned) scans.
    ForceScan,
}

impl AccessPathChoice {
    fn label(self) -> &'static str {
        match self {
            AccessPathChoice::Auto => "auto",
            AccessPathChoice::ForceIndex => "forced index",
            AccessPathChoice::ForceScan => "forced scan",
        }
    }
}

/// Planner knobs. Defaults enable every optimisation; the benchmarks and the
/// differential tests flip them to measure (and cross-check) what each one
/// buys.
#[derive(Debug, Clone, Copy)]
pub struct PlannerOptions {
    /// Push the derived projection down to the storage layer. Off, every
    /// column is assembled (the "read everything" baseline).
    pub projection_pushdown: bool,
    /// Scan-vs-index-probe policy (cost-based by default).
    pub access_path: AccessPathChoice,
    /// Skip components whose statistics prove no record can match the
    /// filter. Off, every component is scanned (the pruning oracle of the
    /// differential tests).
    pub zone_map_pruning: bool,
    /// Push the filter's sargable conjuncts (comparisons over single-valued
    /// scalar paths) into the scan: the storage cursor evaluates them on the
    /// filter columns of each key's reconciliation winner, skips
    /// non-matching records before assembly, and skips whole leaves whose
    /// zone maps prove no match. Off, the whole filter runs as the residual
    /// (the late-materialization baseline of the differential tests).
    pub filter_pushdown: bool,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            projection_pushdown: true,
            access_path: AccessPathChoice::Auto,
            zone_map_pruning: true,
            filter_pushdown: true,
        }
    }
}

impl PlannerOptions {
    /// Default options with the given access-path policy.
    pub fn with_access_path(choice: AccessPathChoice) -> PlannerOptions {
        PlannerOptions { access_path: choice, ..Default::default() }
    }
}

/// How the plan acquires its input records.
#[derive(Debug, Clone)]
pub enum AccessPath {
    /// Scan the snapshot, assembling the pushed-down projection.
    FullScan,
    /// Read primary keys only — the `COUNT(*)` fast path (Page 0 for AMAX).
    KeyOnlyScan,
    /// Probe the secondary index over `[lo, hi]` and batch-lookup the
    /// qualifying records; the full filter still runs as a residual.
    IndexRange {
        /// The indexed path being probed.
        path: Path,
        /// Lower bound of the probe.
        lo: Bound<Value>,
        /// Upper bound of the probe.
        hi: Bound<Value>,
    },
}

/// The planner's page-cost estimate behind an access-path decision,
/// rendered by `EXPLAIN`. All numbers are estimates from the per-component
/// statistics; they never affect the answer, only the chosen path.
#[derive(Debug, Clone)]
pub struct AccessEstimate {
    /// Estimated records matching the filter's implied range on the
    /// estimation path (disk components only).
    pub est_matching_records: f64,
    /// Live records across the target's components.
    pub disk_records: u64,
    /// `est_matching_records / disk_records` (0 when the target is empty).
    pub est_selectivity: f64,
    /// Pages a scan would touch after zone-map pruning.
    pub scan_pages: u64,
    /// Pages an index probe would touch (`None` when probing is impossible:
    /// no index, or no implied range on the indexed path).
    pub probe_pages: Option<f64>,
    /// In-memory records (active + sealed memtables) across the target.
    pub in_memory_records: u64,
    /// Total scan cost in page-equivalents: `scan_pages` plus the CPU term
    /// for filtering every in-memory record
    /// ([`MEM_RECORD_PAGE_EQUIV`] each).
    pub scan_cost: f64,
    /// Total probe cost in page-equivalents: `probe_pages` plus the CPU
    /// term for the estimated in-memory matches.
    pub probe_cost: Option<f64>,
    /// Components the zone maps expect to prune (planning-time estimate).
    pub pruned_components: usize,
    /// Total components across the target.
    pub total_components: usize,
    /// Decoded leaves resident in the shared leaf cache across the target's
    /// components at planning time (0 when no cache is configured).
    pub cached_leaves: u64,
    /// Scan pages the cost model discounted for cache residency — a cached
    /// leaf is served from the decoded-leaf cache and reads no pages.
    /// `scan_pages` is the already-discounted figure.
    pub cache_discount_pages: u64,
    /// The access-path policy that produced the decision.
    pub choice: AccessPathChoice,
}

impl AccessEstimate {
    /// One-line rendering for `EXPLAIN`.
    pub fn describe(&self) -> String {
        let probe = match self.probe_pages {
            Some(p) => format!("probe ~{:.0} pages", p),
            None => "probe impossible".to_string(),
        };
        let memtable = if self.in_memory_records > 0 {
            format!(
                ", memtable {} rec (cost scan ~{:.1} vs probe ~{})",
                self.in_memory_records,
                self.scan_cost,
                match self.probe_cost {
                    Some(c) => format!("{c:.1}"),
                    None => "-".to_string(),
                },
            )
        } else {
            String::new()
        };
        let cache = if self.cached_leaves > 0 {
            format!(
                ", cache discount ~{} pages ({} leaves resident)",
                self.cache_discount_pages, self.cached_leaves,
            )
        } else {
            String::new()
        };
        format!(
            "selectivity ~{:.2}% (~{:.0} of {} records), scan ~{} pages ({}/{} components zone-map pruned){}, {}{} [{}]",
            self.est_selectivity * 100.0,
            self.est_matching_records,
            self.disk_records,
            self.scan_pages,
            self.pruned_components,
            self.total_components,
            cache,
            probe,
            memtable,
            self.choice.label(),
        )
    }
}

/// A lowered, executable plan. Produced by [`plan`]; render it with
/// [`PhysicalPlan::describe`].
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// How input records are acquired.
    pub access: AccessPath,
    /// The cost estimate behind the access choice (`None` for filterless
    /// plans, where there is nothing to estimate).
    pub estimate: Option<AccessEstimate>,
    /// Whether execution may zone-map-prune components ([`prune_flags`]).
    pub zone_map_pruning: bool,
    /// Pushed-down projection; `None` assembles full records (pushdown off).
    pub projection: Option<Vec<Path>>,
    /// The full (simplified) filter — what the query means. Zone-map
    /// pruning, the cost estimate and the batch oracle all evaluate this;
    /// execution applies it as `pushed` (in the scan) plus `residual`
    /// (after assembly), a filter that folded to `TRUE` is dropped entirely.
    pub filter: Option<Expr>,
    /// Sargable conjuncts pushed into the scan ([`crate::physical`]'s
    /// late-materialization path): comparisons over single-valued scalar
    /// paths, evaluated by the storage cursor on the filter columns alone so
    /// non-matching records are never assembled. Empty when filter pushdown
    /// is off or the access path is not a full scan.
    pub pushed: Vec<ColumnPredicate>,
    /// The filter remainder execution evaluates on each assembled record:
    /// `filter` minus the `pushed` conjuncts. `filter ≡ pushed AND residual`
    /// always holds.
    pub residual: Option<Expr>,
    /// Array path to unnest, if any.
    pub unnest: Option<Path>,
    /// Grouping key path, if any.
    pub group_by: Option<Path>,
    /// Whether the grouping key is evaluated on the unnested element.
    pub group_on_element: bool,
    /// The select list (empty for projection plans).
    pub aggregates: Vec<AggSpec>,
    /// Raw-column projection plan: emit one key-ordered row per matching
    /// record with these paths' values (`None` = aggregate plan).
    pub select_paths: Option<Vec<Path>>,
    /// Sort groups descending by this aggregate index.
    pub order_desc_by_agg: Option<usize>,
    /// Projection rows are ordered by primary key ascending (free on the
    /// key-ordered merge cursor; with `limit`, execution terminates early).
    pub order_by_key: bool,
    /// Row cap. For aggregate plans it truncates the sorted groups; for
    /// projection plans it is pushed into the pipeline — per-partition scans
    /// stop at the k-th match.
    pub limit: Option<usize>,
    /// Number of partitions the plan fans out over (for `describe`).
    pub shards: usize,
}

impl PhysicalPlan {
    /// `true` for raw-column projection plans (one row per record), `false`
    /// for aggregate plans.
    pub fn is_projection(&self) -> bool {
        self.select_paths.is_some()
    }
}

/// Lower a logical query to a physical plan for the given target context.
pub fn plan(query: &Query, ctx: &PlanContext, options: &PlannerOptions) -> Result<PhysicalPlan> {
    let is_projection = !query.select_paths.is_empty();
    if is_projection {
        if !query.aggregates.is_empty() {
            return Err(Error::invalid_plan(
                "a query selects either aggregates or raw column paths, not both",
            ));
        }
        if query.unnest.is_some() || query.group_by.is_some() {
            return Err(Error::invalid_plan(
                "raw-column SELECT does not support UNNEST or GROUP BY",
            ));
        }
        if query.order_desc_by_agg.is_some() {
            return Err(Error::invalid_plan(
                "ORDER BY an aggregate needs an aggregate select list; raw-column SELECT orders by key",
            ));
        }
    } else {
        if query.aggregates.is_empty() {
            return Err(Error::invalid_plan(
                "the select list is empty: add at least one aggregate (or raw column paths)",
            ));
        }
        if query.order_by_key {
            return Err(Error::invalid_plan(
                "ORDER BY key applies to raw-column SELECT; aggregate queries order by an aggregate",
            ));
        }
        if query.unnest.is_none() {
            if query.group_on_element && query.group_by.is_some() {
                return Err(Error::invalid_plan(
                    "GROUP BY on the unnested element requires an UNNEST clause",
                ));
            }
            if let Some(spec) = query.aggregates.iter().find(|s| s.on_element) {
                return Err(Error::invalid_plan(format!(
                    "aggregate {} reads the unnested element but the query has no UNNEST clause",
                    spec.agg.describe()
                )));
            }
        }
        if let Some(i) = query.order_desc_by_agg {
            if i >= query.aggregates.len() {
                return Err(Error::invalid_plan(format!(
                    "ORDER BY references aggregate #{i} but the select list has {}",
                    query.aggregates.len()
                )));
            }
        }
    }

    // Expression simplification runs before every static analysis: constant
    // folding, flattening and NOT push-in (Expr::simplify). A filter that
    // folds to TRUE disappears; the simplified tree is what the access-path
    // estimate, the zone maps and the residual filter all see.
    let filter = query
        .filter
        .as_ref()
        .map(Expr::simplify)
        .filter(|f| !matches!(f, Expr::And(children) if children.is_empty()));

    let count_only = !is_projection
        && filter.is_none()
        && query.unnest.is_none()
        && query.group_by.is_none()
        && query
            .aggregates
            .iter()
            .all(|s| matches!(s.agg, Aggregate::Count));

    let probe = probe_candidate(filter.as_ref(), ctx);
    let projected_columns = options
        .projection_pushdown
        .then(|| query.projection_paths().len());
    let estimate = filter
        .as_ref()
        .filter(|_| !count_only)
        .map(|filter| estimate_access(filter, ctx, probe.as_ref(), options, projected_columns));

    let access = if count_only {
        AccessPath::KeyOnlyScan
    } else {
        let take_probe = match options.access_path {
            AccessPathChoice::ForceScan => false,
            AccessPathChoice::ForceIndex => probe.is_some(),
            AccessPathChoice::Auto => probe.is_some() && auto_prefers_probe(estimate.as_ref()),
        };
        if take_probe {
            let (path, lo, hi) = probe.expect("probe candidate checked above");
            AccessPath::IndexRange { path, lo, hi }
        } else {
            AccessPath::FullScan
        }
    };

    let projection = options
        .projection_pushdown
        .then(|| query.projection_paths());

    // The pushed/residual split applies only to full scans: a key-only scan
    // has no filter, and an index probe must re-check the *whole* filter on
    // every looked-up record (the probe range is an over-approximation).
    let (pushed, residual) =
        if options.filter_pushdown && matches!(access, AccessPath::FullScan) {
            split_pushdown(filter.as_ref())
        } else {
            (Vec::new(), filter.clone())
        };

    Ok(PhysicalPlan {
        access,
        estimate,
        zone_map_pruning: options.zone_map_pruning,
        projection,
        filter,
        pushed,
        residual,
        unnest: query.unnest.clone(),
        group_by: query.group_by.clone(),
        group_on_element: query.group_on_element,
        aggregates: query.aggregates.clone(),
        select_paths: is_projection.then(|| query.select_paths.clone()),
        order_desc_by_agg: query.order_desc_by_agg,
        order_by_key: query.order_by_key,
        limit: query.limit,
        shards: ctx.shards.max(1),
    })
}

/// Split the (simplified) filter into the sargable conjunction pushed into
/// the scan and the residual evaluated after assembly.
///
/// A conjunct is pushable exactly when it is a comparison over a
/// **single-valued scalar path** (no `[*]` step). Comparisons on repeated
/// paths stay residual — their existential semantics need the assembled
/// array (the PR 3 lesson), and leaf zone maps keep `[*]` paths
/// counts-only. Everything else (disjunctions, negations, `EXISTS`,
/// `CONTAINS`, `LENGTH`) also stays residual. The split is lossless:
/// `filter ≡ AND(pushed) AND residual`.
fn split_pushdown(filter: Option<&Expr>) -> (Vec<ColumnPredicate>, Option<Expr>) {
    let Some(filter) = filter else {
        return (Vec::new(), None);
    };
    let conjuncts: Vec<&Expr> = match filter {
        Expr::And(children) => children.iter().collect(),
        other => vec![other],
    };
    let mut pushed = Vec::new();
    let mut residual = Vec::new();
    for conjunct in conjuncts {
        match conjunct {
            Expr::Cmp { op, path, value } if path.repeated_depth() == 0 => {
                let (lo, hi) = match op {
                    CmpOp::Eq => (
                        Bound::Included(value.clone()),
                        Bound::Included(value.clone()),
                    ),
                    CmpOp::Ge => (Bound::Included(value.clone()), Bound::Unbounded),
                    CmpOp::Gt => (Bound::Excluded(value.clone()), Bound::Unbounded),
                    CmpOp::Le => (Bound::Unbounded, Bound::Included(value.clone())),
                    CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(value.clone())),
                };
                pushed.push(ColumnPredicate { path: path.clone(), lo, hi });
            }
            other => residual.push(other.clone()),
        }
    }
    let residual = match residual.len() {
        0 => None,
        1 => residual.pop(),
        _ => Some(Expr::And(residual)),
    };
    (pushed, residual)
}

/// The probe the index-range access path would execute, when the context has
/// an index and the (simplified) filter implies a (at least one-sided) range
/// on the indexed path. Whether it is *taken* is the access-path policy's
/// call.
fn probe_candidate(
    filter: Option<&Expr>,
    ctx: &PlanContext,
) -> Option<(Path, Bound<Value>, Bound<Value>)> {
    let indexed = ctx.secondary_index_on.as_ref()?;
    let (lo, hi) = filter?.implied_bounds(indexed)?;
    if matches!((&lo, &hi), (Bound::Unbounded, Bound::Unbounded)) {
        return None;
    }
    Some((indexed.clone(), lo, hi))
}

/// The cost-based decision: probe when its total estimate (pages plus the
/// memtable CPU term) undercuts the (zone-map-pruned) scan's. A fully
/// pruned scan over an empty memtable costs zero and always wins — it
/// touches nothing at all; ties also go to the scan.
fn auto_prefers_probe(estimate: Option<&AccessEstimate>) -> bool {
    match estimate {
        Some(est) => match est.probe_cost {
            Some(probe) => probe < est.scan_cost,
            None => false,
        },
        // No filter to estimate with (cannot happen for a probe candidate,
        // which requires a filter) — scan.
        None => false,
    }
}

// ---------------------------------------------------------------------------
// Zone-map pruning and the cost model.
// ---------------------------------------------------------------------------

/// Every path on which `filter` implies a value range — the zone-map test
/// set. Each entry `(p, lo, hi)` satisfies: a record matching `filter` has
/// *some* value at `p` inside `(lo, hi)` (see [`Expr::implied_bounds`]).
fn implied_ranges(filter: &Expr) -> Vec<(Path, Bound<Value>, Bound<Value>)> {
    let mut paths = Vec::new();
    filter.collect_paths(&mut paths);
    paths
        .into_iter()
        .filter_map(|p| {
            filter
                .implied_bounds(&p)
                .map(|(lo, hi)| (p, lo, hi))
        })
        .collect()
}

/// `true` when `[min, max]` cannot intersect the range `(lo, hi)`.
fn bounds_disjoint(
    min: &Value,
    max: &Value,
    lo: &Bound<Value>,
    hi: &Bound<Value>,
) -> bool {
    use std::cmp::Ordering::{Greater, Less};
    let above = match hi {
        Bound::Included(h) => total_cmp(h, min) == Less,
        Bound::Excluded(h) => total_cmp(h, min) != Greater,
        Bound::Unbounded => false,
    };
    let below = match lo {
        Bound::Included(l) => total_cmp(l, max) == Greater,
        Bound::Excluded(l) => total_cmp(l, max) != Less,
        Bound::Unbounded => false,
    };
    above || below
}

/// `true` when the component's statistics prove that no record in it can
/// match a filter with the given implied ranges: some range's path is
/// either absent from the component altogether (no record addresses any
/// value there — the existential filter cannot hold) or carries bounds
/// disjoint from the range.
fn stats_prove_no_match(
    stats: &ComponentStats,
    ranges: &[(Path, Bound<Value>, Bound<Value>)],
) -> bool {
    ranges.iter().any(|(path, lo, hi)| {
        match stats.column(&path.to_string()) {
            None => true,
            Some(col) if col.values == 0 => true,
            Some(col) => match (&col.min, &col.max) {
                (Some(min), Some(max)) => bounds_disjoint(min, max, lo, hi),
                _ => false,
            },
        }
    })
}

/// `true` when the two components cannot share a key (one of them is empty,
/// or their key ranges are disjoint).
fn key_ranges_disjoint(a: &ComponentPlanInfo, b: &ComponentPlanInfo) -> bool {
    match (&a.min_key, &a.max_key, &b.min_key, &b.max_key) {
        (Some(a_min), Some(a_max), Some(b_min), Some(b_max)) => {
            total_cmp(a_max, b_min) == std::cmp::Ordering::Less
                || total_cmp(b_max, a_min) == std::cmp::Ordering::Less
        }
        _ => true,
    }
}

/// Zone-map pruning decision for each component (aligned with `infos`,
/// oldest first): `true` = the scan may skip it.
///
/// Two conditions must hold:
///
/// 1. **No match** — the component's statistics prove no record in it can
///    satisfy the filter: some implied range's path is absent from the
///    component, or carries `[min, max]` bounds disjoint from the range
///    (components without statistics are never pruned).
/// 2. **Reconciliation safety** — the component's key range is disjoint
///    from every *older* component's. Scans reconcile newest-first, so
///    skipping a component whose keys also live in an older component would
///    resurrect the older (shadowed) versions — or drop the skipped
///    component's anti-matter — and change the answer. Memtables are newer
///    than every component and always scanned, so they never constrain
///    this rule.
pub fn prune_flags(
    infos: &[ComponentPlanInfo],
    filter: &Expr,
) -> Vec<bool> {
    let ranges = implied_ranges(filter);
    let mut flags = vec![false; infos.len()];
    if ranges.is_empty() {
        return flags;
    }
    for i in 0..infos.len() {
        let Some(stats) = infos[i].stats.as_deref() else {
            continue;
        };
        if !stats_prove_no_match(stats, &ranges) {
            continue;
        }
        flags[i] = infos[..i]
            .iter()
            .all(|older| key_ranges_disjoint(older, &infos[i]));
    }
    flags
}

/// The components of `snapshot` that a filtered scan would zone-map-prune,
/// by component id. Exposed so tests (and `EXPLAIN`-style tooling) can
/// observe pruning decisions directly — e.g. that they are identical before
/// and after a restart.
pub fn prunable_component_ids(snapshot: &Snapshot, filter: &Expr) -> Vec<u64> {
    let infos: Vec<ComponentPlanInfo> = snapshot
        .components()
        .iter()
        .map(|c| ComponentPlanInfo::of(c))
        .collect();
    prune_flags(&infos, filter)
        .into_iter()
        .zip(&infos)
        .filter_map(|(skip, info)| skip.then_some(info.id))
        .collect()
}

/// Estimated records of one component matching `(lo, hi)` on `path`:
/// 0 when provably disjoint or absent, a uniform interpolation against the
/// component's `[min, max]` for numeric bounds, and the conservative "every
/// row with the path" otherwise.
fn estimate_component_matches(
    stats: &ComponentStats,
    path: &Path,
    lo: &Bound<Value>,
    hi: &Bound<Value>,
) -> f64 {
    let Some(col) = stats.column(&path.to_string()) else {
        return 0.0;
    };
    let rows = col.rows as f64;
    let (Some(min), Some(max)) = (&col.min, &col.max) else {
        return rows;
    };
    if bounds_disjoint(min, max, lo, hi) {
        return 0.0;
    }
    let (Some(min_f), Some(max_f)) = (numeric(min), numeric(max)) else {
        return rows;
    };
    let lo_f = match lo {
        Bound::Included(v) | Bound::Excluded(v) => numeric(v).unwrap_or(min_f),
        Bound::Unbounded => min_f,
    }
    .max(min_f);
    let hi_f = match hi {
        Bound::Included(v) | Bound::Excluded(v) => numeric(v).unwrap_or(max_f),
        Bound::Unbounded => max_f,
    }
    .min(max_f);
    if hi_f < lo_f {
        return 0.0;
    }
    // Uniform-distribution interpolation. The +1 terms give integer point
    // ranges (`x = c`) the natural `rows / distinct-ish` estimate instead
    // of zero width; for doubles they are a harmless nudge.
    let fraction = ((hi_f - lo_f + 1.0) / (max_f - min_f + 1.0)).clamp(0.0, 1.0);
    (rows * fraction).max(1.0)
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Double(d) => Some(*d),
        _ => None,
    }
}

/// Build the access estimate for a filtered plan: zone-map-pruned scan
/// pages vs. probe pages, plus the selectivity display numbers. Estimation
/// uses the probe path when one exists, otherwise the filter's first
/// implied range. `projected_columns` is the pushed-down projection width
/// (`None` = every column is assembled), which scales the per-lookup cost:
/// a point lookup decodes one leaf's *projected* columns, so for a mega
/// leaf (AMAX) it touches roughly `leaf pages × projected / total columns`.
fn estimate_access(
    filter: &Expr,
    ctx: &PlanContext,
    probe: Option<&(Path, Bound<Value>, Bound<Value>)>,
    options: &PlannerOptions,
    projected_columns: Option<usize>,
) -> AccessEstimate {
    let flags = if options.zone_map_pruning {
        prune_flags(&ctx.components, filter)
    } else {
        vec![false; ctx.components.len()]
    };
    // The fraction of a component's data pages the projection touches —
    // applied identically to both sides of the comparison.
    let column_fraction = |c: &ComponentPlanInfo| match (projected_columns, c.stats.as_deref()) {
        (Some(projected), Some(stats)) => {
            (projected as f64 / stats.columns.len().max(1) as f64).min(1.0)
        }
        _ => 1.0,
    };
    // The fraction of a component's leaves already resident in the shared
    // decoded-leaf cache: those leaves are served without a page read, so
    // their share of the component's pages is discounted from the scan.
    let residency = |c: &ComponentPlanInfo| {
        (c.cached_leaves as f64 / c.leaves.max(1) as f64).min(1.0)
    };
    let mut raw_scan_pages = 0.0_f64;
    let mut discounted_scan_pages = 0.0_f64;
    for (c, skip) in ctx.components.iter().zip(&flags) {
        if *skip {
            continue;
        }
        // At least one page per leaf is always read (keys / page 0).
        let floor = c.leaves.min(c.pages) as f64;
        let base = (c.pages as f64 * column_fraction(c)).max(floor).round();
        raw_scan_pages += base;
        discounted_scan_pages += base * (1.0 - residency(c));
    }
    let scan_pages = discounted_scan_pages.round() as u64;
    let cache_discount_pages =
        (raw_scan_pages - discounted_scan_pages).round() as u64;
    let cached_leaves: u64 = ctx.components.iter().map(|c| c.cached_leaves).sum();
    let pruned = flags.iter().filter(|f| **f).count();
    let disk_records: u64 = ctx
        .components
        .iter()
        .map(|c| c.stats.as_deref().map(|s| s.live_records).unwrap_or(c.records))
        .sum();

    // The range driving the record estimate: the probe's, else the filter's
    // first implied range (for display), else "everything matches".
    let ranges;
    let est_range = match probe {
        Some(r) => Some(r),
        None => {
            ranges = implied_ranges(filter);
            ranges.first()
        }
    };
    let est_matching: f64 = match est_range {
        Some((path, lo, hi)) => ctx
            .components
            .iter()
            .map(|c| match c.stats.as_deref() {
                Some(stats) => estimate_component_matches(stats, path, lo, hi),
                // No statistics: price as "every record matches", which
                // safely biases the decision toward the scan.
                None => c.records as f64,
            })
            .sum(),
        None => disk_records as f64,
    };

    // One index lookup may touch one leaf in every component, decoding only
    // the projected columns of that leaf (at least one page: the key page).
    // A lookup that lands on a cached leaf reads nothing, so each
    // component's term carries the same residency discount as the scan.
    let pages_per_lookup: f64 = ctx
        .components
        .iter()
        .map(|c| {
            let leaf_pages = c.pages as f64 / c.leaves.max(1) as f64;
            (leaf_pages * column_fraction(c)).max(1.0) * (1.0 - residency(c))
        })
        .sum();
    let probe_pages = probe.map(|_| est_matching * pages_per_lookup);

    // The memtable-aware CPU term: a scan filters every in-memory record, a
    // probe touches only the estimated matching ones. In-memory selectivity
    // is assumed equal to the disk estimate; with no disk records to
    // estimate from, every in-memory record is assumed to match, which
    // safely biases toward the scan.
    let est_selectivity = if disk_records == 0 {
        0.0
    } else {
        (est_matching / disk_records as f64).clamp(0.0, 1.0)
    };
    let mem_records = ctx.in_memory_records as f64;
    let mem_fraction = if disk_records == 0 { 1.0 } else { est_selectivity };
    let scan_cost = scan_pages as f64 + mem_records * MEM_RECORD_PAGE_EQUIV;
    // Disk-side matches are already priced in pages (`pages_per_lookup`);
    // the CPU term covers only the in-memory matches a probe touches.
    let probe_cost = probe_pages
        .map(|pages| pages + mem_records * mem_fraction * MEM_RECORD_PAGE_EQUIV);

    AccessEstimate {
        est_matching_records: est_matching,
        disk_records,
        est_selectivity,
        scan_pages,
        probe_pages,
        in_memory_records: ctx.in_memory_records,
        scan_cost,
        probe_cost,
        pruned_components: pruned,
        total_components: ctx.components.len(),
        cached_leaves,
        cache_discount_pages,
        choice: options.access_path,
    }
}

impl AccessPath {
    /// One-line rendering for `EXPLAIN`.
    pub fn describe(&self) -> String {
        match self {
            AccessPath::FullScan => "full scan".to_string(),
            AccessPath::KeyOnlyScan => "key-only scan (COUNT(*) fast path)".to_string(),
            AccessPath::IndexRange { path, lo, hi } => {
                format!(
                    "secondary-index range probe on `{path}` over {}",
                    render_range(lo, hi)
                )
            }
        }
    }
}

fn render_range(lo: &Bound<Value>, hi: &Bound<Value>) -> String {
    let lo = match lo {
        Bound::Unbounded => "(-inf".to_string(),
        Bound::Included(v) => format!("[{v}"),
        Bound::Excluded(v) => format!("({v}"),
    };
    let hi = match hi {
        Bound::Unbounded => "+inf)".to_string(),
        Bound::Included(v) => format!("{v}]"),
        Bound::Excluded(v) => format!("{v})"),
    };
    format!("{lo}, {hi}")
}

impl PhysicalPlan {
    /// Render the plan as a multi-line `EXPLAIN` string.
    pub fn describe(&self) -> String {
        let select: Vec<String> = match &self.select_paths {
            Some(paths) => paths.iter().map(|p| p.to_string()).collect(),
            None => self.aggregates.iter().map(|s| s.agg.describe()).collect(),
        };
        let mut out = String::new();
        out.push_str(&format!("SELECT {}\n", select.join(", ")));
        out.push_str(&format!("  access     : {}\n", self.access.describe()));
        if let Some(est) = &self.estimate {
            out.push_str(&format!("  estimate   : {}\n", est.describe()));
        }
        match &self.projection {
            Some(paths) if paths.is_empty() => {
                out.push_str("  projection : (keys only)\n");
            }
            Some(paths) => {
                let rendered: Vec<String> = paths.iter().map(|p| p.to_string()).collect();
                out.push_str(&format!("  projection : {}\n", rendered.join(", ")));
            }
            None => out.push_str("  projection : * (pushdown disabled)\n"),
        }
        match &self.filter {
            Some(f) => out.push_str(&format!("  filter     : {f}\n")),
            None => out.push_str("  filter     : -\n"),
        }
        if self.filter.is_some() {
            if self.pushed.is_empty() {
                out.push_str("  pushed     : - (nothing sargable)\n");
            } else {
                let rendered: Vec<String> =
                    self.pushed.iter().map(|p| p.to_string()).collect();
                out.push_str(&format!("  pushed     : {}\n", rendered.join(" AND ")));
            }
            match &self.residual {
                Some(r) => out.push_str(&format!("  residual   : {r}\n")),
                None => out.push_str("  residual   : - (fully pushed)\n"),
            }
        }
        match &self.unnest {
            Some(u) => out.push_str(&format!("  unnest     : {u}\n")),
            None => out.push_str("  unnest     : -\n"),
        }
        match &self.group_by {
            Some(g) => out.push_str(&format!(
                "  group by   : {g}{}\n",
                if self.group_on_element { " (on element)" } else { "" }
            )),
            None => out.push_str("  group by   : - (global aggregate)\n"),
        }
        match (self.order_desc_by_agg, self.limit) {
            _ if self.order_by_key => match self.limit {
                Some(k) => out.push_str(&format!(
                    "  order/limit: key ASC LIMIT {k} (streaming early termination)\n"
                )),
                None => out.push_str("  order/limit: key ASC\n"),
            },
            (Some(i), Some(k)) => out.push_str(&format!(
                "  order/limit: {} DESC LIMIT {k}\n",
                self.aggregates[i].agg.describe()
            )),
            (Some(i), None) => out.push_str(&format!(
                "  order/limit: {} DESC\n",
                self.aggregates[i].agg.describe()
            )),
            (None, Some(k)) => out.push_str(&format!("  order/limit: LIMIT {k}\n")),
            (None, None) => out.push_str("  order/limit: -\n"),
        }
        if self.shards > 1 {
            if self.is_projection() {
                out.push_str(&format!(
                    "  shards     : {} (per-shard key-ordered row streams, k-way merge)\n",
                    self.shards
                ));
            } else {
                out.push_str(&format!(
                    "  shards     : {} (per-shard partial aggregates, exact merge)\n",
                    self.shards
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Mergeable aggregate partials.
// ---------------------------------------------------------------------------

/// Running state of one aggregate over one group. Partials are *mergeable*:
/// combining the states of disjoint record sets gives exactly the state of
/// their union, which is what makes sharded fan-out exact (AVG carries
/// `(sum, count)`, not the finished mean).
#[derive(Debug, Clone)]
pub(crate) enum AggState {
    /// `COUNT(*)`.
    Count(u64),
    /// `COUNT(path)`.
    CountNonNull(u64),
    /// `MAX(path)`.
    Max(Option<Value>),
    /// `MIN(path)`.
    Min(Option<Value>),
    /// `SUM(path)`: exact integer sum plus a double accumulator.
    Sum {
        int_sum: i64,
        double_sum: f64,
        saw_double: bool,
        any: bool,
    },
    /// `AVG(path)`: the classic mergeable pair.
    Avg { sum: f64, count: u64 },
    /// `MAX(LENGTH(path))`.
    MaxLength(Option<i64>),
}

impl AggState {
    pub(crate) fn new(agg: &Aggregate) -> AggState {
        match agg {
            Aggregate::Count => AggState::Count(0),
            Aggregate::CountNonNull(_) => AggState::CountNonNull(0),
            Aggregate::Max(_) => AggState::Max(None),
            Aggregate::Min(_) => AggState::Min(None),
            Aggregate::Sum(_) => AggState::Sum {
                int_sum: 0,
                double_sum: 0.0,
                saw_double: false,
                any: false,
            },
            Aggregate::Avg(_) => AggState::Avg { sum: 0.0, count: 0 },
            Aggregate::MaxLength(_) => AggState::MaxLength(None),
        }
    }

    /// Fold one input value (the aggregate's resolved path value, `None`
    /// when the path is missing on this record/element).
    pub(crate) fn update(&mut self, input: Option<&Value>) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::CountNonNull(n) => {
                if input.is_some() {
                    *n += 1;
                }
            }
            AggState::Max(best) => {
                if let Some(v) = input {
                    if best
                        .as_ref()
                        .map(|b| total_cmp(v, b) == std::cmp::Ordering::Greater)
                        .unwrap_or(true)
                    {
                        *best = Some(v.clone());
                    }
                }
            }
            AggState::Min(best) => {
                if let Some(v) = input {
                    if best
                        .as_ref()
                        .map(|b| total_cmp(v, b) == std::cmp::Ordering::Less)
                        .unwrap_or(true)
                    {
                        *best = Some(v.clone());
                    }
                }
            }
            AggState::Sum { int_sum, double_sum, saw_double, any } => match input {
                Some(Value::Int(i)) => {
                    sum_add_int(int_sum, double_sum, saw_double, *i);
                    *any = true;
                }
                Some(Value::Double(d)) => {
                    *double_sum += d;
                    *saw_double = true;
                    *any = true;
                }
                _ => {}
            },
            AggState::Avg { sum, count } => {
                if let Some(x) = input.and_then(Value::as_f64) {
                    *sum += x;
                    *count += 1;
                }
            }
            AggState::MaxLength(best) => {
                if let Some(Value::String(s)) = input {
                    let len = s.chars().count() as i64;
                    if best.map(|b| len > b).unwrap_or(true) {
                        *best = Some(len);
                    }
                }
            }
        }
    }

    /// Merge another partial of the same aggregate (from a disjoint record
    /// set, e.g. another shard) into this one.
    pub(crate) fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::CountNonNull(a), AggState::CountNonNull(b)) => *a += b,
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(v) = b {
                    if a.as_ref()
                        .map(|x| total_cmp(&v, x) == std::cmp::Ordering::Greater)
                        .unwrap_or(true)
                    {
                        *a = Some(v);
                    }
                }
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(v) = b {
                    if a.as_ref()
                        .map(|x| total_cmp(&v, x) == std::cmp::Ordering::Less)
                        .unwrap_or(true)
                    {
                        *a = Some(v);
                    }
                }
            }
            (
                AggState::Sum { int_sum, double_sum, saw_double, any },
                AggState::Sum {
                    int_sum: i2,
                    double_sum: d2,
                    saw_double: s2,
                    any: a2,
                },
            ) => {
                sum_add_int(int_sum, double_sum, saw_double, i2);
                *double_sum += d2;
                *saw_double |= s2;
                *any |= a2;
            }
            (AggState::Avg { sum, count }, AggState::Avg { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            (AggState::MaxLength(a), AggState::MaxLength(b)) => {
                if let Some(v) = b {
                    if a.map(|x| v > x).unwrap_or(true) {
                        *a = Some(v);
                    }
                }
            }
            // Partials of the same plan position always share a variant.
            _ => unreachable!("merging partials of different aggregates"),
        }
    }

    /// Finish the aggregate: turn the partial into its output value.
    pub(crate) fn finish(&self) -> Value {
        match self {
            AggState::Count(n) | AggState::CountNonNull(n) => Value::Int(*n as i64),
            AggState::Max(best) | AggState::Min(best) => {
                best.clone().unwrap_or(Value::Null)
            }
            AggState::Sum { int_sum, double_sum, saw_double, any } => {
                if !any {
                    Value::Null
                } else if *saw_double {
                    Value::Double(*int_sum as f64 + double_sum)
                } else {
                    Value::Int(*int_sum)
                }
            }
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / *count as f64)
                }
            }
            AggState::MaxLength(best) => best.map(Value::Int).unwrap_or(Value::Null),
        }
    }
}

/// Add an integer to a `SUM` partial: exact while the running integer sum
/// fits an `i64`, widening to the double accumulator on overflow instead of
/// wrapping.
fn sum_add_int(int_sum: &mut i64, double_sum: &mut f64, saw_double: &mut bool, v: i64) {
    match int_sum.checked_add(v) {
        Some(s) => *int_sum = s,
        None => {
            *double_sum += *int_sum as f64 + v as f64;
            *int_sum = 0;
            *saw_double = true;
        }
    }
}

/// Per-group partial aggregate states, keyed by group value — what one
/// execution (one shard, one engine pass) produces.
pub(crate) type GroupPartials = BTreeMap<Option<OrderedValue>, Vec<AggState>>;

/// Fresh per-aggregate states for a new group.
pub(crate) fn new_states(plan: &PhysicalPlan) -> Vec<AggState> {
    plan.aggregates.iter().map(|s| AggState::new(&s.agg)).collect()
}

/// Partials for the key-only `COUNT(*)` fast path: one global group whose
/// `Count` states all equal `n`.
pub(crate) fn key_count_partials(n: usize, plan: &PhysicalPlan) -> GroupPartials {
    let mut groups = GroupPartials::new();
    let states = plan
        .aggregates
        .iter()
        .map(|_| AggState::Count(n as u64))
        .collect();
    groups.insert(None, states);
    groups
}

/// Merge the partials of one execution into the accumulator (group-wise,
/// aggregate-wise).
pub(crate) fn merge_partials(into: &mut GroupPartials, from: GroupPartials) {
    for (key, states) in from {
        match into.entry(key) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(states);
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                for (acc, s) in slot.get_mut().iter_mut().zip(states) {
                    acc.merge(s);
                }
            }
        }
    }
}

/// Turn merged partials into ordered, limited output rows.
pub(crate) fn finalize(groups: GroupPartials, plan: &PhysicalPlan) -> Vec<QueryRow> {
    let mut rows: Vec<QueryRow> = groups
        .into_iter()
        .map(|(key, states)| QueryRow {
            group: key.map(|k| k.0),
            aggs: states.iter().map(AggState::finish).collect(),
        })
        .collect();
    if plan.group_by.is_none() && rows.is_empty() {
        rows.push(QueryRow {
            group: None,
            aggs: new_states(plan).iter().map(AggState::finish).collect(),
        });
    }
    if let Some(i) = plan.order_desc_by_agg {
        rows.sort_by(|a, b| total_cmp(&b.aggs[i], &a.aggs[i]));
    }
    if let Some(k) = plan.limit {
        rows.truncate(k);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn planner_validates_the_select_list() {
        let ctx = PlanContext::scan_only();
        let opts = PlannerOptions::default();
        assert!(matches!(
            plan(&Query::new(), &ctx, &opts),
            Err(Error::InvalidPlan(_))
        ));
        let q = Query::new().aggregate_element(Aggregate::Max(Path::parse("x")));
        assert!(matches!(plan(&q, &ctx, &opts), Err(Error::InvalidPlan(_))));
        let q = Query::count_star().group_by_element(Path::parse("x"));
        assert!(matches!(plan(&q, &ctx, &opts), Err(Error::InvalidPlan(_))));
        let q = Query::count_star().order_desc_by(3);
        assert!(matches!(plan(&q, &ctx, &opts), Err(Error::InvalidPlan(_))));
    }

    #[test]
    fn projection_plans_validate_and_render() {
        let ctx = PlanContext::scan_only();
        let opts = PlannerOptions::default();
        // Raw select: one row per record, key-ordered, limited.
        let q = Query::select_paths(["user.name", "score"])
            .with_filter(Expr::ge("score", 10))
            .order_by_key()
            .with_limit(5);
        let p = plan(&q, &ctx, &opts).unwrap();
        assert!(p.is_projection());
        assert!(matches!(p.access, AccessPath::FullScan));
        let text = p.describe();
        assert!(text.contains("SELECT user.name, score"), "{text}");
        assert!(text.contains("key ASC LIMIT 5"), "{text}");
        assert!(text.contains("streaming early termination"), "{text}");
        // The pushed-down projection covers the select paths and the filter.
        let projection = p.projection.as_deref().unwrap();
        assert!(projection.contains(&Path::parse("user.name")));
        assert!(projection.contains(&Path::parse("score")));

        // Mixing forms, or decorating the wrong form, is invalid.
        let mixed = Query::select([Aggregate::Count]);
        let mixed = Query { select_paths: vec![Path::parse("a")], ..mixed };
        assert!(matches!(plan(&mixed, &ctx, &opts), Err(Error::InvalidPlan(_))));
        let q = Query::select_paths(["a"]).with_unnest("tags");
        assert!(matches!(plan(&q, &ctx, &opts), Err(Error::InvalidPlan(_))));
        let q = Query::select_paths(["a"]).group_by("g");
        assert!(matches!(plan(&q, &ctx, &opts), Err(Error::InvalidPlan(_))));
        let q = Query::select_paths(["a"]).order_desc_by(0);
        assert!(matches!(plan(&q, &ctx, &opts), Err(Error::InvalidPlan(_))));
        let q = Query::count_star().order_by_key();
        assert!(matches!(plan(&q, &ctx, &opts), Err(Error::InvalidPlan(_))));
    }

    #[test]
    fn planner_simplifies_filters_before_access_selection() {
        // NOT NOT BETWEEN is opaque unsimplified; the planner must see
        // through it and route the probe (ROADMAP PR 3 leftover).
        let ctx = indexed_ctx(vec![comp(0, 1_000, 100, 10, (0, 999), (0, 999))]);
        let q = Query::count_star()
            .with_filter(Expr::not(Expr::not(Expr::between("score", 50, 52))));
        let p = plan(&q, &ctx, &PlannerOptions::default()).unwrap();
        assert!(matches!(p.access, AccessPath::IndexRange { .. }), "{:?}", p.access);
        let text = p.describe();
        assert!(!text.contains("NOT NOT"), "explain shows the simplified tree: {text}");
        assert!(text.contains("(score >= 50 AND score <= 52)"), "{text}");
        // A filter that folds to TRUE disappears: COUNT(*) takes the
        // key-only fast path.
        let q = Query::count_star().with_filter(Expr::and([]));
        let p = plan(&q, &ctx, &PlannerOptions::default()).unwrap();
        assert!(matches!(p.access, AccessPath::KeyOnlyScan));
        assert!(p.filter.is_none());
    }

    #[test]
    fn memtable_cpu_term_sharpens_the_auto_choice() {
        // Page costs alone say "scan" (probe ~120 pages vs scan ~100); a
        // large memtable the scan would have to chew through flips the
        // decision to the probe, whose CPU term only covers the matches.
        let q = Query::count_star().with_filter(Expr::between("score", 50, 61));
        let flushed = indexed_ctx(vec![comp(0, 1_000, 100, 10, (0, 999), (0, 999))]);
        let p = plan(&q, &flushed, &PlannerOptions::default()).unwrap();
        assert!(matches!(p.access, AccessPath::FullScan), "{:?}", p.access);

        let mut with_memtable = indexed_ctx(vec![comp(0, 1_000, 100, 10, (0, 999), (0, 999))]);
        with_memtable.in_memory_records = 4_000;
        let p = plan(&q, &with_memtable, &PlannerOptions::default()).unwrap();
        assert!(matches!(p.access, AccessPath::IndexRange { .. }), "{:?}", p.access);
        let est = p.estimate.as_ref().unwrap();
        assert_eq!(est.in_memory_records, 4_000);
        assert!(est.scan_cost > est.scan_pages as f64, "CPU term applied");
        assert!(est.probe_cost.unwrap() < est.scan_cost, "{est:?}");
        assert!(p.describe().contains("memtable 4000 rec"), "{}", p.describe());

        // An empty memtable leaves the page-only decision intact, and a
        // fully-pruned scan over an empty memtable still beats any probe.
        let pruned = indexed_ctx(vec![comp(0, 500, 50, 5, (0, 499), (0, 99))]);
        let q_far = Query::count_star().with_filter(Expr::between("score", 5_000, 5_010));
        let p = plan(&q_far, &pruned, &PlannerOptions::default()).unwrap();
        assert!(matches!(p.access, AccessPath::FullScan));
        assert_eq!(p.estimate.as_ref().unwrap().scan_cost, 0.0);
    }

    #[test]
    fn count_star_plans_a_key_only_scan() {
        let p = plan(
            &Query::count_star(),
            &PlanContext::scan_only(),
            &PlannerOptions::default(),
        )
        .unwrap();
        assert!(matches!(p.access, AccessPath::KeyOnlyScan));
        assert_eq!(p.projection.as_deref(), Some(&[][..]));
        assert!(p.describe().contains("key-only scan"));
    }

    /// A synthetic component: keys `key_range`, one `score` column uniform
    /// over `score_range`.
    fn comp(
        id: u64,
        records: u64,
        pages: u64,
        leaves: u64,
        key_range: (i64, i64),
        score_range: (i64, i64),
    ) -> ComponentPlanInfo {
        let mut columns = std::collections::BTreeMap::new();
        columns.insert(
            "score".to_string(),
            storage::stats::ColumnStats {
                rows: records,
                values: records,
                min: Some(Value::Int(score_range.0)),
                max: Some(Value::Int(score_range.1)),
            },
        );
        ComponentPlanInfo {
            id,
            records,
            pages,
            leaves,
            min_key: Some(Value::Int(key_range.0)),
            max_key: Some(Value::Int(key_range.1)),
            stats: Some(Arc::new(ComponentStats {
                live_records: records,
                columns,
            })),
            cached_leaves: 0,
        }
    }

    fn indexed_ctx(components: Vec<ComponentPlanInfo>) -> PlanContext {
        PlanContext {
            secondary_index_on: Some(Path::parse("score")),
            shards: 1,
            components,
            in_memory_records: 0,
        }
    }

    #[test]
    fn range_filters_route_through_a_covering_index() {
        let ctx = indexed_ctx(vec![comp(0, 1_000, 100, 10, (0, 999), (0, 999))]);
        // A tight range: the cost model must pick the probe on its own.
        let q = Query::count_star()
            .with_filter(Expr::and([Expr::between("score", 50, 52), Expr::exists("tags")]));
        let p = plan(&q, &ctx, &PlannerOptions::default()).unwrap();
        assert!(matches!(p.access, AccessPath::IndexRange { .. }));
        let text = p.describe();
        assert!(text.contains("secondary-index range probe on `score`"), "{text}");
        assert!(text.contains("[50, 52]"), "{text}");
        assert!(text.contains("estimate"), "{text}");
        // ForceScan overrides the cost model.
        let p = plan(
            &q,
            &ctx,
            &PlannerOptions::with_access_path(AccessPathChoice::ForceScan),
        )
        .unwrap();
        assert!(matches!(p.access, AccessPath::FullScan));
        // Filter on a different path → scan, even forced.
        let q = Query::count_star().with_filter(Expr::ge("other", 1));
        let p = plan(
            &q,
            &ctx,
            &PlannerOptions::with_access_path(AccessPathChoice::ForceIndex),
        )
        .unwrap();
        assert!(matches!(p.access, AccessPath::FullScan));
    }

    #[test]
    fn auto_crosses_over_from_probe_to_scan_with_selectivity() {
        let ctx = indexed_ctx(vec![comp(0, 1_000, 100, 10, (0, 999), (0, 999))]);
        // ~3 of 1000 records → ~30 probe pages < 100 scan pages → probe.
        let tight = Query::count_star().with_filter(Expr::between("score", 10, 12));
        let p = plan(&tight, &ctx, &PlannerOptions::default()).unwrap();
        assert!(matches!(p.access, AccessPath::IndexRange { .. }), "{:?}", p.access);
        // ~500 records → ~5000 probe pages > 100 scan pages → scan.
        let wide = Query::count_star().with_filter(Expr::ge("score", 500));
        let p = plan(&wide, &ctx, &PlannerOptions::default()).unwrap();
        assert!(matches!(p.access, AccessPath::FullScan), "{:?}", p.access);
        let est = p.estimate.as_ref().unwrap();
        assert!(est.est_selectivity > 0.4 && est.est_selectivity < 0.6, "{est:?}");
        // ForceIndex still probes at the same selectivity.
        let p = plan(
            &wide,
            &ctx,
            &PlannerOptions::with_access_path(AccessPathChoice::ForceIndex),
        )
        .unwrap();
        assert!(matches!(p.access, AccessPath::IndexRange { .. }));
    }

    #[test]
    fn fully_pruned_scans_beat_any_probe() {
        // Every component is disjoint from the filter: the zone maps prune
        // them all, the scan costs zero pages, and Auto must scan.
        let ctx = indexed_ctx(vec![
            comp(0, 500, 50, 5, (0, 499), (0, 99)),
            comp(1, 500, 50, 5, (500, 999), (100, 199)),
        ]);
        let q = Query::count_star().with_filter(Expr::between("score", 5_000, 5_010));
        let p = plan(&q, &ctx, &PlannerOptions::default()).unwrap();
        assert!(matches!(p.access, AccessPath::FullScan), "{:?}", p.access);
        let est = p.estimate.as_ref().unwrap();
        assert_eq!(est.scan_pages, 0);
        assert_eq!(est.pruned_components, 2);
        assert!(p.describe().contains("2/2 components zone-map pruned"));
    }

    #[test]
    fn cache_residency_discounts_scan_pages_and_shows_in_explain() {
        let cold = comp(0, 1_000, 100, 10, (0, 999), (0, 999));
        let mut warm = cold.clone();
        warm.cached_leaves = 5; // half the leaves decoded and resident
        let q = Query::count_star().with_filter(Expr::ge("score", 0));

        let p = plan(&q, &indexed_ctx(vec![cold]), &PlannerOptions::default()).unwrap();
        let cold_est = p.estimate.as_ref().unwrap();
        assert_eq!(cold_est.scan_pages, 100);
        assert_eq!(cold_est.cache_discount_pages, 0);
        assert!(!p.describe().contains("cache discount"));

        let p = plan(&q, &indexed_ctx(vec![warm.clone()]), &PlannerOptions::default())
            .unwrap();
        let warm_est = p.estimate.as_ref().unwrap();
        assert_eq!(warm_est.scan_pages, 50);
        assert_eq!(warm_est.cache_discount_pages, 50);
        assert_eq!(warm_est.cached_leaves, 5);
        let text = p.describe();
        assert!(text.contains("cache discount ~50 pages (5 leaves resident)"), "{text}");

        // A fully resident component scans for ~free.
        warm.cached_leaves = 10;
        let p = plan(&q, &indexed_ctx(vec![warm]), &PlannerOptions::default()).unwrap();
        assert_eq!(p.estimate.unwrap().scan_pages, 0);
    }

    #[test]
    fn prune_flags_respect_stats_and_older_key_overlap() {
        let filter = Expr::between("score", 0, 99);
        // Component 1 is score-disjoint and key-disjoint from the older
        // component 0 → prunable. Component 2 is score-disjoint but shares
        // keys with component 0 (it may shadow older versions) → kept.
        let infos = vec![
            comp(0, 100, 10, 2, (0, 99), (0, 99)),
            comp(1, 100, 10, 2, (100, 199), (500, 599)),
            comp(2, 100, 10, 2, (50, 149), (500, 599)),
        ];
        assert_eq!(prune_flags(&infos, &filter), vec![false, true, false]);
        // A missing column prunes outright (no record addresses the path);
        // the key-overlap rule still protects component 2.
        let absent = Expr::ge("nonexistent", 1);
        assert_eq!(prune_flags(&infos, &absent), vec![true, true, false]);
        // No implied range (pure EXISTS) → nothing prunable.
        let exists = Expr::exists("score");
        assert_eq!(prune_flags(&infos, &exists), vec![false, false, false]);
        // Components without stats are never pruned.
        let mut bare = comp(3, 10, 1, 1, (1_000, 1_010), (500, 599));
        bare.stats = None;
        assert_eq!(prune_flags(&[bare], &filter), vec![false]);
    }

    #[test]
    fn pushdown_off_projects_everything() {
        let q = Query::count_star().with_filter(Expr::ge("score", 1));
        let p = plan(
            &q,
            &PlanContext::scan_only(),
            &PlannerOptions { projection_pushdown: false, ..Default::default() },
        )
        .unwrap();
        assert!(p.projection.is_none());
        assert!(p.describe().contains("pushdown disabled"));
    }

    #[test]
    fn avg_partials_merge_exactly() {
        let agg = Aggregate::Avg(Path::parse("x"));
        // Shard A: one value 0. Shard B: three values 100.
        let mut a = AggState::new(&agg);
        a.update(Some(&Value::Int(0)));
        let mut b = AggState::new(&agg);
        for _ in 0..3 {
            b.update(Some(&Value::Int(100)));
        }
        a.merge(b);
        // avg-of-avgs would be 50; the mergeable partial gives the true 75.
        assert_eq!(a.finish(), Value::Double(75.0));
        // Merging an empty partial is the identity.
        a.merge(AggState::new(&agg));
        assert_eq!(a.finish(), Value::Double(75.0));
        // An all-empty AVG finishes as NULL.
        assert_eq!(AggState::new(&agg).finish(), Value::Null);
    }

    #[test]
    fn sum_partials_keep_integers_exact() {
        let agg = Aggregate::Sum(Path::parse("x"));
        let mut a = AggState::new(&agg);
        a.update(Some(&Value::Int(7)));
        a.update(Some(&Value::from("ignored")));
        let mut b = AggState::new(&agg);
        b.update(Some(&Value::Int(5)));
        a.merge(b);
        assert_eq!(a.finish(), Value::Int(12));
        // A double anywhere widens the sum.
        a.update(Some(&Value::Double(0.5)));
        assert_eq!(a.finish(), Value::Double(12.5));
        assert_eq!(AggState::new(&agg).finish(), Value::Null);
    }

    #[test]
    fn sum_overflow_widens_to_double_instead_of_wrapping() {
        let agg = Aggregate::Sum(Path::parse("x"));
        let mut a = AggState::new(&agg);
        a.update(Some(&Value::Int(i64::MAX)));
        a.update(Some(&Value::Int(1)));
        match a.finish() {
            Value::Double(d) => assert!(d > i64::MAX as f64 * 0.99, "{d}"),
            other => panic!("overflowing SUM must widen, got {other:?}"),
        }
        // Same through a merge of two near-max partials.
        let mut b = AggState::new(&agg);
        b.update(Some(&Value::Int(i64::MAX)));
        let mut c = AggState::new(&agg);
        c.update(Some(&Value::Int(i64::MAX)));
        b.merge(c);
        match b.finish() {
            Value::Double(d) => assert!(d > i64::MAX as f64, "{d}"),
            other => panic!("overflowing merge must widen, got {other:?}"),
        }
    }
}
