//! EXPLAIN ANALYZE — actual execution counters alongside the plan.
//!
//! [`QueryEngine::explain_analyze`](crate::QueryEngine::explain_analyze)
//! runs the query for real and returns an [`AnalyzeReport`]: the rendered
//! physical plan (exactly what [`explain`](crate::QueryEngine::explain)
//! produces), the query's actual rows, and one [`ShardAnalysis`] per
//! partition with the counters the plan's *estimates* promise:
//!
//! * **rows pulled** — records the operator pipeline actually drew from the
//!   access stage, counted by a thin wrapper around the streaming cursor
//!   (`CountingIter`); with `ORDER BY key LIMIT k` this is the
//!   early-termination point, not the dataset size;
//! * **pages/bytes read** — deltas of the underlying store's
//!   [`IoStats`](storage::pagestore::IoStats) around the partition's
//!   execution. Partitions run *sequentially* under analyze (unlike
//!   [`execute`](crate::QueryEngine::execute)'s thread-per-shard fan-out)
//!   so each shard's delta is exact even when shards share one store;
//! * **cache hits/misses** — decoded-leaf cache traffic during execution
//!   (same [`IoStats`](storage::pagestore::IoStats) deltas); a fully warm
//!   hot-range re-scan shows hits equal to the leaves touched and a
//!   pages-read delta of zero;
//! * **components scanned vs. pruned** — how many on-disk components the
//!   zone maps eliminated without reading a page;
//! * **filtered pre-assembly / leaves skipped** — late-materialization
//!   counters: reconciliation winners the pushed-down filter rejected
//!   before record assembly, and whole leaves whose zone maps proved no
//!   record could match (skipped before any page read). Both are exact
//!   [`IoStats`](storage::pagestore::IoStats) deltas and appear in the
//!   rendering only when nonzero.
//!
//! A key-only `COUNT(*)` never materialises records, so it reports zero
//! rows pulled and a complete (`exhausted`) stream; its cost shows up in
//! the page counters.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::plan::QueryRow;

/// Pull counters shared between the executing pipeline and the probe: how
/// many records the operators drew from the access stage, and whether they
/// drained it (a limited query that stops early leaves `exhausted` false).
#[derive(Default)]
pub(crate) struct PullStats {
    pulled: AtomicU64,
    exhausted: AtomicBool,
}

/// Wraps the access-stage record stream and counts what flows through it.
pub(crate) struct CountingIter<I> {
    inner: I,
    stats: Arc<PullStats>,
}

impl<I> CountingIter<I> {
    pub(crate) fn new(inner: I, stats: Arc<PullStats>) -> CountingIter<I> {
        CountingIter { inner, stats }
    }
}

impl<I: Iterator> Iterator for CountingIter<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        match self.inner.next() {
            Some(item) => {
                self.stats.pulled.fetch_add(1, Ordering::Relaxed);
                Some(item)
            }
            None => {
                self.stats.exhausted.store(true, Ordering::Relaxed);
                None
            }
        }
    }
}

/// Collection point for one partition's counters while it executes.
pub(crate) struct ExecProbe {
    pub(crate) pull: Arc<PullStats>,
    components_scanned: std::cell::Cell<usize>,
    components_pruned: std::cell::Cell<usize>,
}

impl ExecProbe {
    pub(crate) fn new() -> ExecProbe {
        ExecProbe {
            pull: Arc::new(PullStats::default()),
            components_scanned: std::cell::Cell::new(0),
            components_pruned: std::cell::Cell::new(0),
        }
    }

    /// Record the access path's component accounting.
    pub(crate) fn set_components(&self, scanned: usize, pruned: usize) {
        self.components_scanned.set(scanned);
        self.components_pruned.set(pruned);
    }

    /// Mark the stream complete for access paths that never route records
    /// through the counting iterator (key-only counts).
    pub(crate) fn mark_exhausted(&self) {
        self.pull.exhausted.store(true, Ordering::Relaxed);
    }

    /// Freeze the counters into the partition's report.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish(
        self,
        pages_read: u64,
        bytes_read: u64,
        cache_hits: u64,
        cache_misses: u64,
        records_filtered_pre_assembly: u64,
        leaves_skipped: u64,
        rows_out: usize,
    ) -> ShardAnalysis {
        ShardAnalysis {
            rows_pulled: self.pull.pulled.load(Ordering::Relaxed),
            exhausted: self.pull.exhausted.load(Ordering::Relaxed),
            pages_read,
            bytes_read,
            cache_hits,
            cache_misses,
            records_filtered_pre_assembly,
            leaves_skipped,
            components_scanned: self.components_scanned.get(),
            components_pruned: self.components_pruned.get(),
            rows_out,
        }
    }
}

/// Actual execution counters of one partition of an analyzed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAnalysis {
    /// Records the operator pipeline pulled from the access stage.
    pub rows_pulled: u64,
    /// Whether the access stream was drained. `false` means the query
    /// terminated early (`ORDER BY key LIMIT k` found its k rows).
    pub exhausted: bool,
    /// Pages read from the partition's store during execution
    /// ([`IoStats`](storage::pagestore::IoStats) delta).
    pub pages_read: u64,
    /// Bytes read from the partition's store during execution.
    pub bytes_read: u64,
    /// Decoded-leaf cache hits during execution (leaves served without a
    /// page read; 0 when the store has no leaf cache).
    pub cache_hits: u64,
    /// Decoded-leaf cache misses during execution (leaves decoded from
    /// pages and inserted into the cache).
    pub cache_misses: u64,
    /// Reconciliation winners the pushed-down filter rejected *before*
    /// assembly ([`IoStats`](storage::pagestore::IoStats) delta): their
    /// filter columns were decoded, nothing else.
    pub records_filtered_pre_assembly: u64,
    /// Whole leaves the pushed-down filter's zone maps skipped before any
    /// page read ([`IoStats`](storage::pagestore::IoStats) delta).
    pub leaves_skipped: u64,
    /// On-disk components the access path read.
    pub components_scanned: usize,
    /// Components skipped by zone-map pruning without any page read.
    pub components_pruned: usize,
    /// Rows (projection) or groups (aggregation) this partition produced
    /// before the cross-shard merge.
    pub rows_out: usize,
}

impl ShardAnalysis {
    /// The early-termination point: how many records had been pulled when
    /// the query stopped, or `None` when the stream ran to completion.
    pub fn early_termination(&self) -> Option<u64> {
        (!self.exhausted).then_some(self.rows_pulled)
    }
}

/// What [`QueryEngine::explain_analyze`](crate::QueryEngine::explain_analyze)
/// returns: the plan as `explain` renders it, the real result rows, and the
/// per-partition execution counters.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    /// The rendered physical plan (identical to `explain`'s output).
    pub plan: String,
    /// The query's actual result rows.
    pub rows: Vec<QueryRow>,
    /// Execution counters, one entry per partition in target order.
    pub shards: Vec<ShardAnalysis>,
    /// Wall-clock time of the whole analyzed execution (partitions run
    /// sequentially, so this is the sum of per-shard work).
    pub wall: Duration,
}

impl AnalyzeReport {
    /// Total records pulled from the access stage across partitions.
    pub fn rows_pulled(&self) -> u64 {
        self.shards.iter().map(|s| s.rows_pulled).sum()
    }

    /// Total pages read across partitions.
    pub fn pages_read(&self) -> u64 {
        self.shards.iter().map(|s| s.pages_read).sum()
    }

    /// Total bytes read across partitions.
    pub fn bytes_read(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes_read).sum()
    }

    /// Total decoded-leaf cache hits across partitions.
    pub fn cache_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.cache_hits).sum()
    }

    /// Total decoded-leaf cache misses across partitions.
    pub fn cache_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.cache_misses).sum()
    }

    /// Total reconciliation winners the pushed-down filter rejected before
    /// assembly, across partitions.
    pub fn records_filtered_pre_assembly(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.records_filtered_pre_assembly)
            .sum()
    }

    /// Total leaves the pushed-down filter's zone maps skipped before any
    /// page read, across partitions.
    pub fn leaves_skipped(&self) -> u64 {
        self.shards.iter().map(|s| s.leaves_skipped).sum()
    }

    /// Total components the access paths read.
    pub fn components_scanned(&self) -> usize {
        self.shards.iter().map(|s| s.components_scanned).sum()
    }

    /// Total components zone-map pruning eliminated.
    pub fn components_pruned(&self) -> usize {
        self.shards.iter().map(|s| s.components_pruned).sum()
    }

    /// The early-termination point across the whole run: total rows pulled,
    /// if any partition stopped before draining its stream.
    pub fn early_termination(&self) -> Option<u64> {
        self.shards
            .iter()
            .any(|s| !s.exhausted)
            .then(|| self.rows_pulled())
    }

    /// Render the plan with the actual-execution annotations appended —
    /// the EXPLAIN ANALYZE text.
    pub fn describe(&self) -> String {
        let mut out = self.plan.clone();
        if !out.ends_with('\n') {
            out.push('\n');
        }
        let termination = match self.early_termination() {
            Some(at) => format!("early termination after {at} rows pulled"),
            None => "stream exhausted".to_string(),
        };
        // Cache counters appear only when a decoded-leaf cache took part,
        // so cacheless stores keep their familiar one-line rendering.
        let cache = if self.cache_hits() + self.cache_misses() > 0 {
            format!(
                ", cache hits {} / misses {}",
                self.cache_hits(),
                self.cache_misses(),
            )
        } else {
            String::new()
        };
        // Likewise the pushdown counters: rendered only when the pushed
        // filter actually rejected records or skipped leaves.
        let pushdown = if self.records_filtered_pre_assembly() + self.leaves_skipped() > 0 {
            format!(
                ", filtered pre-assembly {}, leaves skipped {}",
                self.records_filtered_pre_assembly(),
                self.leaves_skipped(),
            )
        } else {
            String::new()
        };
        out.push_str(&format!(
            "analyze: wall {:?}, rows pulled {}, pages read {}{}{}, components scanned {} (pruned {}), output rows {}, {}\n",
            self.wall,
            self.rows_pulled(),
            self.pages_read(),
            cache,
            pushdown,
            self.components_scanned(),
            self.components_pruned(),
            self.rows.len(),
            termination,
        ));
        if self.shards.len() > 1 {
            for (i, s) in self.shards.iter().enumerate() {
                let cache = if s.cache_hits + s.cache_misses > 0 {
                    format!(", cache hits {} / misses {}", s.cache_hits, s.cache_misses)
                } else {
                    String::new()
                };
                let pushdown = if s.records_filtered_pre_assembly + s.leaves_skipped > 0 {
                    format!(
                        ", filtered pre-assembly {}, leaves skipped {}",
                        s.records_filtered_pre_assembly, s.leaves_skipped,
                    )
                } else {
                    String::new()
                };
                out.push_str(&format!(
                    "analyze[shard {i}]: rows pulled {}, pages read {}{}{}, components scanned {} (pruned {}), rows out {}{}\n",
                    s.rows_pulled,
                    s.pages_read,
                    cache,
                    pushdown,
                    s.components_scanned,
                    s.components_pruned,
                    s.rows_out,
                    if s.exhausted { "" } else { ", terminated early" },
                ));
            }
        }
        out
    }
}
