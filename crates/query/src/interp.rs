//! The interpreted engine: operator-at-a-time with materialisation.
//!
//! Every operator is a boxed trait object processing a fully materialised
//! batch of [`Value`] rows and producing a new, fully materialised batch —
//! the behaviour the paper attributes to the Hyracks batch model (tuples are
//! materialised between operators and nested values are re-assembled into
//! row form before operators can touch them). The per-tuple costs are
//! dynamic dispatch, repeated path resolution against schemaless values and
//! the intermediate allocations; these are precisely the overheads the
//! compiled mode removes.

use std::collections::BTreeMap;

use docmodel::cmp::OrderedValue;
use docmodel::{Path, Value};
use lsm::Snapshot;

use crate::plan::{Aggregate, Query, QueryRow};
use crate::Result;

/// A batch-at-a-time operator.
trait Operator {
    /// Consume an input batch, produce an output batch.
    fn execute(&self, input: Vec<Value>) -> Vec<Value>;
}

/// Filter operator: keeps rows matching the predicate.
struct FilterOp {
    predicate: crate::plan::Predicate,
}

impl Operator for FilterOp {
    fn execute(&self, input: Vec<Value>) -> Vec<Value> {
        let mut out = Vec::with_capacity(input.len());
        for row in input {
            if self.predicate.matches(&row) {
                out.push(row);
            }
        }
        out
    }
}

/// Unnest operator: produces one row per array element, carrying both the
/// original record (under `$record`) and the element (under `$element`) —
/// the row-major re-materialisation the interpreted engine pays for.
struct UnnestOp {
    path: Path,
}

impl Operator for UnnestOp {
    fn execute(&self, input: Vec<Value>) -> Vec<Value> {
        let mut out = Vec::new();
        for row in input {
            let elements: Vec<Value> = self
                .path
                .evaluate(&row)
                .into_iter()
                .flat_map(|v| match v {
                    Value::Array(elems) => elems.clone(),
                    other => vec![other.clone()],
                })
                .collect();
            for element in elements {
                out.push(Value::Object(vec![
                    ("$record".to_string(), row.clone()),
                    ("$element".to_string(), element),
                ]));
            }
        }
        out
    }
}

/// Identity projection: rebuilds each row keeping only the referenced paths
/// (simulating the PROJECT operator's copy).
struct ProjectOp {
    paths: Vec<Path>,
}

impl Operator for ProjectOp {
    fn execute(&self, input: Vec<Value>) -> Vec<Value> {
        input
            .into_iter()
            .map(|row| {
                let mut projected = Value::empty_object();
                for (i, path) in self.paths.iter().enumerate() {
                    if let Some(v) = path.evaluate(&row).first() {
                        projected.set_field(format!("${i}"), (*v).clone());
                    }
                }
                // Keep the original row alongside the projection so the
                // aggregation stage can still resolve arbitrary paths.
                projected.set_field("$row", row);
                projected
            })
            .collect()
    }
}

fn wrapped_path(on_element: bool, path: &Path) -> (bool, Path) {
    (on_element, path.clone())
}

fn resolve<'a>(row: &'a Value, on_element: bool, path: &Path, unnested: bool) -> Vec<&'a Value> {
    if !unnested {
        return path.evaluate(row);
    }
    let root = if on_element { "$element" } else { "$record" };
    match row.get_field("$row").and_then(|r| r.get_field(root)).or_else(|| row.get_field(root)) {
        Some(base) => {
            if path.is_empty() {
                vec![base]
            } else {
                path.evaluate(base)
            }
        }
        None => Vec::new(),
    }
}

/// Execute a query with the interpreted engine against a consistent
/// point-in-time snapshot.
pub fn run_interpreted(snapshot: &Snapshot, query: &Query) -> Result<Vec<QueryRow>> {
    // SCAN: assemble the projected columns into row-major records.
    let projection = query.projection_paths();
    let mut batch = snapshot.scan(Some(&projection))?;

    // Build the operator pipeline (dynamic dispatch per operator).
    let mut pipeline: Vec<Box<dyn Operator>> = Vec::new();
    if let Some(p) = &query.filter {
        pipeline.push(Box::new(FilterOp {
            predicate: p.clone(),
        }));
    }
    let unnested = query.unnest.is_some();
    if let Some(u) = &query.unnest {
        pipeline.push(Box::new(UnnestOp { path: u.clone() }));
    }
    if unnested {
        pipeline.push(Box::new(ProjectOp {
            paths: vec![Path::parse("$record"), Path::parse("$element")],
        }));
    }
    for op in &pipeline {
        batch = op.execute(batch);
    }

    // GROUP BY / aggregate (the pipeline breaker, shared with compiled mode
    // in spirit, but here it re-resolves paths per tuple).
    let group_key = query
        .group_by
        .as_ref()
        .map(|p| wrapped_path(query.group_on_element, p));
    let agg_input = query
        .agg
        .path()
        .map(|p| wrapped_path(query.agg_on_element, p));

    let mut groups: BTreeMap<Option<OrderedValue>, AggState> = BTreeMap::new();
    for row in &batch {
        let key = group_key.as_ref().and_then(|(on_element, path)| {
            resolve(row, *on_element, path, unnested)
                .first()
                .map(|v| OrderedValue((*v).clone()))
        });
        if group_key.is_some() && key.is_none() {
            continue; // grouping key absent: the record contributes no group
        }
        let input = agg_input
            .as_ref()
            .and_then(|(on_element, path)| {
                resolve(row, *on_element, path, unnested).first().copied().cloned()
            });
        groups
            .entry(key)
            .or_insert_with(|| AggState::new(&query.agg))
            .update(input.as_ref());
    }
    finalize(groups, query)
}

/// Shared aggregation state.
pub(crate) struct AggState {
    kind: Aggregate,
    count: u64,
    best: Option<Value>,
}

impl AggState {
    pub(crate) fn new(kind: &Aggregate) -> AggState {
        AggState {
            kind: kind.clone(),
            count: 0,
            best: None,
        }
    }

    pub(crate) fn update(&mut self, input: Option<&Value>) {
        match &self.kind {
            Aggregate::Count => self.count += 1,
            Aggregate::CountNonNull(_) => {
                if input.is_some() {
                    self.count += 1;
                }
            }
            Aggregate::Max(_) => {
                if let Some(v) = input {
                    if self
                        .best
                        .as_ref()
                        .map(|b| docmodel::total_cmp(v, b) == std::cmp::Ordering::Greater)
                        .unwrap_or(true)
                    {
                        self.best = Some(v.clone());
                    }
                }
            }
            Aggregate::Min(_) => {
                if let Some(v) = input {
                    if self
                        .best
                        .as_ref()
                        .map(|b| docmodel::total_cmp(v, b) == std::cmp::Ordering::Less)
                        .unwrap_or(true)
                    {
                        self.best = Some(v.clone());
                    }
                }
            }
            Aggregate::MaxLength(_) => {
                if let Some(Value::String(s)) = input {
                    let len = s.chars().count() as i64;
                    if self
                        .best
                        .as_ref()
                        .and_then(Value::as_int)
                        .map(|b| len > b)
                        .unwrap_or(true)
                    {
                        self.best = Some(Value::Int(len));
                    }
                }
            }
        }
    }

    pub(crate) fn finish(self) -> Value {
        match self.kind {
            Aggregate::Count | Aggregate::CountNonNull(_) => Value::Int(self.count as i64),
            _ => self.best.unwrap_or(Value::Null),
        }
    }
}

/// Turn grouped aggregation state into ordered, limited output rows.
pub(crate) fn finalize(
    groups: BTreeMap<Option<OrderedValue>, AggState>,
    query: &Query,
) -> Result<Vec<QueryRow>> {
    let mut rows: Vec<QueryRow> = groups
        .into_iter()
        .map(|(k, state)| QueryRow {
            group: k.map(|k| k.0),
            agg: state.finish(),
        })
        .collect();
    if query.group_by.is_none() && rows.is_empty() {
        rows.push(QueryRow {
            group: None,
            agg: AggState::new(&query.agg).finish(),
        });
    }
    if query.order_desc_by_agg {
        rows.sort_by(|a, b| docmodel::total_cmp(&b.agg, &a.agg));
    }
    if let Some(k) = query.limit {
        rows.truncate(k);
    }
    Ok(rows)
}
