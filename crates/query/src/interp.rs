//! The interpreted engine: operator-at-a-time with materialisation.
//!
//! Every operator is a boxed trait object processing a fully materialised
//! batch of [`Value`] rows and producing a new, fully materialised batch —
//! the behaviour the paper attributes to the Hyracks batch model (tuples are
//! materialised between operators and nested values are re-assembled into
//! row form before operators can touch them). The per-tuple costs are
//! dynamic dispatch, repeated path resolution against schemaless values and
//! the intermediate allocations; these are precisely the overheads the
//! compiled mode removes.
//!
//! The engine executes a [`PhysicalPlan`] (the access stage has already
//! produced the input batch) and emits mergeable per-group aggregate
//! partials; ordering and limiting happen after partials from every
//! partition are merged.

use docmodel::{Path, Value};

use crate::physical::{new_states, GroupPartials, PhysicalPlan};

/// A batch-at-a-time operator.
trait Operator {
    /// Consume an input batch, produce an output batch.
    fn execute(&self, input: Vec<Value>) -> Vec<Value>;
}

/// Filter operator: keeps rows matching the predicate expression.
struct FilterOp {
    predicate: crate::expr::Expr,
}

impl Operator for FilterOp {
    fn execute(&self, input: Vec<Value>) -> Vec<Value> {
        let mut out = Vec::with_capacity(input.len());
        for row in input {
            if self.predicate.matches(&row) {
                out.push(row);
            }
        }
        out
    }
}

/// Unnest operator: produces one row per array element, carrying both the
/// original record (under `$record`) and the element (under `$element`) —
/// the row-major re-materialisation the interpreted engine pays for.
struct UnnestOp {
    path: Path,
}

impl Operator for UnnestOp {
    fn execute(&self, input: Vec<Value>) -> Vec<Value> {
        let mut out = Vec::new();
        for row in input {
            let elements: Vec<Value> = self
                .path
                .evaluate(&row)
                .into_iter()
                .flat_map(|v| match v {
                    Value::Array(elems) => elems.clone(),
                    other => vec![other.clone()],
                })
                .collect();
            for element in elements {
                out.push(Value::Object(vec![
                    ("$record".to_string(), row.clone()),
                    ("$element".to_string(), element),
                ]));
            }
        }
        out
    }
}

/// Identity projection: rebuilds each row keeping only the referenced paths
/// (simulating the PROJECT operator's copy).
struct ProjectOp {
    paths: Vec<Path>,
}

impl Operator for ProjectOp {
    fn execute(&self, input: Vec<Value>) -> Vec<Value> {
        input
            .into_iter()
            .map(|row| {
                let mut projected = Value::empty_object();
                for (i, path) in self.paths.iter().enumerate() {
                    if let Some(v) = path.evaluate(&row).first() {
                        projected.set_field(format!("${i}"), (*v).clone());
                    }
                }
                // Keep the original row alongside the projection so the
                // aggregation stage can still resolve arbitrary paths.
                projected.set_field("$row", row);
                projected
            })
            .collect()
    }
}

fn resolve<'a>(row: &'a Value, on_element: bool, path: &Path, unnested: bool) -> Vec<&'a Value> {
    if !unnested {
        return path.evaluate(row);
    }
    let root = if on_element { "$element" } else { "$record" };
    match row
        .get_field("$row")
        .and_then(|r| r.get_field(root))
        .or_else(|| row.get_field(root))
    {
        Some(base) => {
            if path.is_empty() {
                vec![base]
            } else {
                path.evaluate(base)
            }
        }
        None => Vec::new(),
    }
}

/// Execute the pipelining part of a physical plan over a materialised input
/// batch, producing per-group aggregate partials. The per-tuple work —
/// operator dispatch, path re-resolution, intermediate batches — is the
/// interpretation overhead the paper measures.
pub(crate) fn run_batch(mut batch: Vec<Value>, plan: &PhysicalPlan) -> GroupPartials {
    // Build the operator pipeline (dynamic dispatch per operator).
    let mut pipeline: Vec<Box<dyn Operator>> = Vec::new();
    if let Some(p) = &plan.filter {
        pipeline.push(Box::new(FilterOp { predicate: p.clone() }));
    }
    let unnested = plan.unnest.is_some();
    if let Some(u) = &plan.unnest {
        pipeline.push(Box::new(UnnestOp { path: u.clone() }));
    }
    if unnested {
        pipeline.push(Box::new(ProjectOp {
            paths: vec![Path::parse("$record"), Path::parse("$element")],
        }));
    }
    for op in &pipeline {
        batch = op.execute(batch);
    }

    // GROUP BY / aggregate (the pipeline breaker, shared with compiled mode
    // in spirit, but here it re-resolves paths per tuple).
    let group_key = plan
        .group_by
        .as_ref()
        .map(|p| (plan.group_on_element, p.clone()));
    let agg_inputs: Vec<(bool, Option<Path>)> = plan
        .aggregates
        .iter()
        .map(|s| (s.on_element, s.agg.path().cloned()))
        .collect();

    let mut groups = GroupPartials::new();
    for row in &batch {
        let key = group_key.as_ref().and_then(|(on_element, path)| {
            resolve(row, *on_element, path, unnested)
                .first()
                .map(|v| docmodel::cmp::OrderedValue((*v).clone()))
        });
        if group_key.is_some() && key.is_none() {
            continue; // grouping key absent: the record contributes no group
        }
        let states = groups.entry(key).or_insert_with(|| new_states(plan));
        for (state, (on_element, path)) in states.iter_mut().zip(&agg_inputs) {
            let input = path.as_ref().and_then(|p| {
                resolve(row, *on_element, p, unnested)
                    .first()
                    .copied()
                    .cloned()
            });
            state.update(input.as_ref());
        }
    }
    groups
}
