//! The interpreted engine: operator-at-a-time with per-tuple dispatch.
//!
//! Every operator is a boxed trait object wrapping its input stream — the
//! classic Volcano shape. The pipeline *streams*: each operator pulls one
//! row at a time from its input, so memory stays bounded by the storage
//! cursor underneath (one decoded leaf per component) instead of the
//! full-batch materialisation the seed engine paid between operators. What
//! remains — and what the paper attributes to interpretation — is the
//! **per-tuple** cost: dynamic dispatch through `dyn Iterator` per operator
//! per row, repeated path resolution against schemaless values, and the
//! per-row `$record`/`$element` re-materialisation of the unnest. These are
//! precisely the overheads the compiled mode removes with its fused,
//! pre-resolved loop.
//!
//! The engine executes a [`PhysicalPlan`] over a record stream supplied by
//! the access stage and emits mergeable per-group aggregate partials;
//! ordering and limiting happen after partials from every partition are
//! merged. (Projection plans have no pipeline breaker and no per-tuple
//! interpretation contrast; both modes share one projection loop in the
//! engine crate root.)

use docmodel::{Path, Value};

use crate::physical::{new_states, GroupPartials, PhysicalPlan};
use crate::Result;

/// A boxed, streaming row source: what every operator consumes and
/// produces. The `Box<dyn ...>` is the interpretation overhead under
/// measurement — one virtual call per row per operator.
type RowStream<'a> = Box<dyn Iterator<Item = Result<Value>> + 'a>;

/// A streaming operator: wraps an input stream into an output stream.
trait Operator {
    /// Attach the operator to its input.
    fn open<'a>(&'a self, input: RowStream<'a>) -> RowStream<'a>;
}

/// Filter operator: keeps rows matching the predicate expression.
struct FilterOp {
    predicate: crate::expr::Expr,
}

impl Operator for FilterOp {
    fn open<'a>(&'a self, input: RowStream<'a>) -> RowStream<'a> {
        Box::new(input.filter(|row| match row {
            Ok(row) => self.predicate.matches(row),
            Err(_) => true, // errors pass through to the consumer
        }))
    }
}

/// Unnest operator: produces one row per array element, carrying both the
/// original record (under `$record`) and the element (under `$element`) —
/// the per-row re-materialisation the interpreted engine pays for.
struct UnnestOp {
    path: Path,
}

impl Operator for UnnestOp {
    fn open<'a>(&'a self, input: RowStream<'a>) -> RowStream<'a> {
        Box::new(input.flat_map(move |row| -> Vec<Result<Value>> {
            let row = match row {
                Ok(row) => row,
                Err(e) => return vec![Err(e)],
            };
            let elements: Vec<Value> = self
                .path
                .evaluate(&row)
                .into_iter()
                .flat_map(|v| match v {
                    Value::Array(elems) => elems.clone(),
                    other => vec![other.clone()],
                })
                .collect();
            elements
                .into_iter()
                .map(|element| {
                    Ok(Value::Object(vec![
                        ("$record".to_string(), row.clone()),
                        ("$element".to_string(), element),
                    ]))
                })
                .collect()
        }))
    }
}

/// Identity projection: rebuilds each row keeping only the referenced paths
/// (simulating the PROJECT operator's copy).
struct ProjectOp {
    paths: Vec<Path>,
}

impl Operator for ProjectOp {
    fn open<'a>(&'a self, input: RowStream<'a>) -> RowStream<'a> {
        Box::new(input.map(move |row| {
            let row = row?;
            let mut projected = Value::empty_object();
            for (i, path) in self.paths.iter().enumerate() {
                if let Some(v) = path.evaluate(&row).first() {
                    projected.set_field(format!("${i}"), (*v).clone());
                }
            }
            // Keep the original row alongside the projection so the
            // aggregation stage can still resolve arbitrary paths.
            projected.set_field("$row", row);
            Ok(projected)
        }))
    }
}

fn resolve<'a>(row: &'a Value, on_element: bool, path: &Path, unnested: bool) -> Vec<&'a Value> {
    if !unnested {
        return path.evaluate(row);
    }
    let root = if on_element { "$element" } else { "$record" };
    match row
        .get_field("$row")
        .and_then(|r| r.get_field(root))
        .or_else(|| row.get_field(root))
    {
        Some(base) => {
            if path.is_empty() {
                vec![base]
            } else {
                path.evaluate(base)
            }
        }
        None => Vec::new(),
    }
}

/// Execute the pipelining part of an aggregate plan over a streaming record
/// source, producing per-group aggregate partials. Rows flow through the
/// boxed operator chain one at a time; the per-tuple work — operator
/// dispatch, path re-resolution, the unnest's row rebuilding — is the
/// interpretation overhead the paper measures.
pub(crate) fn run_stream<'a>(
    input: impl Iterator<Item = Result<Value>> + 'a,
    plan: &PhysicalPlan,
) -> Result<GroupPartials> {
    // Build the operator pipeline (dynamic dispatch per operator per row).
    let mut pipeline: Vec<Box<dyn Operator>> = Vec::new();
    // The scan already applied the pushed conjuncts; only the residual
    // needs a filter operator (for non-scan access paths the whole filter
    // is the residual).
    if let Some(p) = &plan.residual {
        pipeline.push(Box::new(FilterOp { predicate: p.clone() }));
    }
    let unnested = plan.unnest.is_some();
    if let Some(u) = &plan.unnest {
        pipeline.push(Box::new(UnnestOp { path: u.clone() }));
    }
    if unnested {
        pipeline.push(Box::new(ProjectOp {
            paths: vec![Path::parse("$record"), Path::parse("$element")],
        }));
    }
    let mut stream: RowStream<'_> = Box::new(input);
    for op in &pipeline {
        stream = op.open(stream);
    }

    // GROUP BY / aggregate (the pipeline breaker, shared with compiled mode
    // in spirit, but here it re-resolves paths per tuple).
    let group_key = plan
        .group_by
        .as_ref()
        .map(|p| (plan.group_on_element, p.clone()));
    let agg_inputs: Vec<(bool, Option<Path>)> = plan
        .aggregates
        .iter()
        .map(|s| (s.on_element, s.agg.path().cloned()))
        .collect();

    let mut groups = GroupPartials::new();
    for row in stream {
        let row = row?;
        let key = group_key.as_ref().and_then(|(on_element, path)| {
            resolve(&row, *on_element, path, unnested)
                .first()
                .map(|v| docmodel::cmp::OrderedValue((*v).clone()))
        });
        if group_key.is_some() && key.is_none() {
            continue; // grouping key absent: the record contributes no group
        }
        let states = groups.entry(key).or_insert_with(|| new_states(plan));
        for (state, (on_element, path)) in states.iter_mut().zip(&agg_inputs) {
            let input = path.as_ref().and_then(|p| {
                resolve(&row, *on_element, p, unnested)
                    .first()
                    .copied()
                    .cloned()
            });
            state.update(input.as_ref());
        }
    }
    Ok(groups)
}

