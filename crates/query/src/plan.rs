//! The logical query plan.
//!
//! [`Query`] captures a compositional SELECT shape as data. Aggregate form:
//!
//! ```sql
//! SELECT   [g,] AGG1(x1), AGG2(x2), ...
//! FROM     dataset d [UNNEST d.p AS e]
//! [WHERE   expression]
//! [GROUP BY g]
//! [ORDER BY AGGi DESC LIMIT k]
//! ```
//!
//! and the raw-column (non-aggregate) projection form
//! ([`Query::select_paths`]):
//!
//! ```sql
//! SELECT   p1, p2, ...
//! FROM     dataset d
//! [WHERE   expression]
//! [ORDER BY key [LIMIT k]]
//! ```
//!
//! which emits **one row per matching record** — the row's `group` is the
//! record's primary key, its values are the projected paths. Because
//! execution streams the key-ordered merge cursor, `ORDER BY key LIMIT k`
//! stops after the k-th match without scanning the tail.
//!
//! The filter is an arbitrary [`Expr`] tree, the select list holds any
//! number of aggregates ([`AggSpec`]), and group/aggregate inputs may be
//! evaluated either on the record or on the unnested element. The logical
//! plan says nothing about *how* the query runs: the planner in
//! [`crate::physical`] lowers it to a physical plan that picks the access
//! path (scan, key-only scan, or secondary-index range probe), derives the
//! pushed-down projection, and routes sharded execution. A SQL++ parser is
//! out of scope for the reproduction (see DESIGN.md); the builder API
//! mirrors the paper's queries one-to-one and the benchmark harness
//! constructs plans directly.

use docmodel::{Path, Value};

use crate::expr::Expr;

/// Which execution engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Operator-at-a-time with materialisation between operators.
    Interpreted,
    /// Fused, pre-resolved single-pass pipeline ("code generation").
    Compiled,
}

/// The aggregate computed per group (or over the whole input).
#[derive(Debug, Clone)]
pub enum Aggregate {
    /// `COUNT(*)`.
    Count,
    /// `COUNT(path)` — counts records (or elements) where the path is present.
    CountNonNull(Path),
    /// `MAX(path)`.
    Max(Path),
    /// `MIN(path)`.
    Min(Path),
    /// `SUM(path)` — numeric sum; integer inputs stay exact `Int`s while
    /// the running sum fits an `i64`, any double input (or an integer
    /// overflow) widens the result to `Double`.
    Sum(Path),
    /// `AVG(path)` — numeric mean, carried as a mergeable `(sum, count)`
    /// partial so sharded fan-out stays exact.
    Avg(Path),
    /// `MAX(LENGTH(path))` — used by the "longest tweet" query.
    MaxLength(Path),
}

impl Aggregate {
    /// The path the aggregate reads, if any.
    pub fn path(&self) -> Option<&Path> {
        match self {
            Aggregate::Count => None,
            Aggregate::CountNonNull(p)
            | Aggregate::Max(p)
            | Aggregate::Min(p)
            | Aggregate::Sum(p)
            | Aggregate::Avg(p)
            | Aggregate::MaxLength(p) => Some(p),
        }
    }

    /// SQL-like rendering for `EXPLAIN` output.
    pub fn describe(&self) -> String {
        match self {
            Aggregate::Count => "COUNT(*)".to_string(),
            Aggregate::CountNonNull(p) => format!("COUNT({p})"),
            Aggregate::Max(p) => format!("MAX({p})"),
            Aggregate::Min(p) => format!("MIN({p})"),
            Aggregate::Sum(p) => format!("SUM({p})"),
            Aggregate::Avg(p) => format!("AVG({p})"),
            Aggregate::MaxLength(p) => format!("MAX(LENGTH({p}))"),
        }
    }
}

/// One aggregate of the select list, together with the scope its input is
/// evaluated in.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The aggregate function.
    pub agg: Aggregate,
    /// `true` when the input path is evaluated on the unnested element
    /// rather than the record.
    pub on_element: bool,
}

/// A logical query plan. Build one with [`Query::select`] /
/// [`Query::count_star`] and the builder methods, then hand it to a
/// [`crate::QueryEngine`].
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Optional filter expression, evaluated on records (before unnesting).
    pub filter: Option<Expr>,
    /// Optional array path to unnest; group/aggregate inputs flagged
    /// `on_element` are then evaluated on each unnested element.
    pub unnest: Option<Path>,
    /// Optional grouping key path.
    pub group_by: Option<Path>,
    /// Whether the grouping key is evaluated on the unnested element (`true`)
    /// or on the record (`false`).
    pub group_on_element: bool,
    /// The select list: one or more aggregates. Mutually exclusive with
    /// `select_paths`; the planner rejects a query with neither (or both).
    pub aggregates: Vec<AggSpec>,
    /// Raw-column projection: emit one row per matching record, projecting
    /// these paths (`group` = primary key). Mutually exclusive with
    /// `aggregates`, `unnest` and `group_by`.
    pub select_paths: Vec<Path>,
    /// Sort groups descending by the aggregate at this index (the paper's
    /// top-k queries order by their single aggregate).
    pub order_desc_by_agg: Option<usize>,
    /// Order projection rows by primary key ascending. Free on the streaming
    /// scan (the merge cursor is key-ordered), and with `limit` it makes
    /// execution stop after the k-th match. Projection queries only.
    pub order_by_key: bool,
    /// Keep only the first `k` groups (or projection rows) after sorting.
    pub limit: Option<usize>,
}

impl Query {
    /// An empty query with no aggregates yet; add them with
    /// [`Query::aggregate`] / [`Query::aggregate_element`].
    pub fn new() -> Query {
        Query::default()
    }

    /// `SELECT AGG1, AGG2, ... FROM dataset`, all evaluated on records.
    pub fn select(aggs: impl IntoIterator<Item = Aggregate>) -> Query {
        Query {
            aggregates: aggs
                .into_iter()
                .map(|agg| AggSpec { agg, on_element: false })
                .collect(),
            ..Query::default()
        }
    }

    /// `SELECT COUNT(*) FROM dataset`.
    pub fn count_star() -> Query {
        Query::select([Aggregate::Count])
    }

    /// `SELECT p1, p2, ... FROM dataset` — the raw-column projection form:
    /// one output row per matching record, `group` = the record's primary
    /// key, `aggs` = the projected paths' values (`Null` where a path is
    /// missing). Combine with [`Query::with_filter`],
    /// [`Query::order_by_key`] and [`Query::with_limit`].
    pub fn select_paths(paths: impl IntoIterator<Item = impl Into<Path>>) -> Query {
        Query {
            select_paths: paths.into_iter().map(Into::into).collect(),
            ..Query::default()
        }
    }

    /// Builder: set the filter expression.
    pub fn with_filter(mut self, expr: Expr) -> Query {
        self.filter = Some(expr);
        self
    }

    /// Builder: unnest an array path.
    pub fn with_unnest(mut self, p: impl Into<Path>) -> Query {
        self.unnest = Some(p.into());
        self
    }

    /// Builder: group by a record-rooted path.
    pub fn group_by(mut self, p: impl Into<Path>) -> Query {
        self.group_by = Some(p.into());
        self.group_on_element = false;
        self
    }

    /// Builder: group by a path evaluated on the unnested element (pass the
    /// empty path to group by the element itself).
    pub fn group_by_element(mut self, p: impl Into<Path>) -> Query {
        self.group_by = Some(p.into());
        self.group_on_element = true;
        self
    }

    /// Builder: append an aggregate evaluated on records.
    pub fn aggregate(mut self, agg: Aggregate) -> Query {
        self.aggregates.push(AggSpec { agg, on_element: false });
        self
    }

    /// Builder: append an aggregate whose input is evaluated on the unnested
    /// element.
    pub fn aggregate_element(mut self, agg: Aggregate) -> Query {
        self.aggregates.push(AggSpec { agg, on_element: true });
        self
    }

    /// Builder: order descending by the aggregate at `index` in the select
    /// list.
    pub fn order_desc_by(mut self, index: usize) -> Query {
        self.order_desc_by_agg = Some(index);
        self
    }

    /// Builder: order projection rows by primary key ascending. With
    /// [`Query::with_limit`], the streaming scan terminates after the k-th
    /// matching record (`ORDER BY key LIMIT k` never reads the tail).
    pub fn order_by_key(mut self) -> Query {
        self.order_by_key = true;
        self
    }

    /// Builder: cap the number of output rows.
    pub fn with_limit(mut self, k: usize) -> Query {
        self.limit = Some(k);
        self
    }

    /// Builder: order by the first aggregate descending (unless an explicit
    /// order was set) and keep the top `k` groups.
    pub fn top_k(mut self, k: usize) -> Query {
        if self.order_desc_by_agg.is_none() {
            self.order_desc_by_agg = Some(0);
        }
        self.limit = Some(k);
        self
    }

    /// The record-rooted paths this query needs — the projection the planner
    /// pushes down to the storage layer (so AMAX reads only these columns'
    /// megapages). Derived from the filter expression tree, the unnest path,
    /// and every group/aggregate input.
    pub fn projection_paths(&self) -> Vec<Path> {
        let mut paths = Vec::new();
        if let Some(f) = &self.filter {
            f.collect_paths(&mut paths);
        }
        let mut add = |p: &Path| {
            if !paths.contains(p) {
                paths.push(p.clone());
            }
        };
        for p in &self.select_paths {
            add(p);
        }
        if let Some(u) = &self.unnest {
            add(u);
        }
        if let Some(g) = &self.group_by {
            if self.group_on_element {
                if let Some(u) = &self.unnest {
                    add(&join_paths(u, g));
                }
            } else {
                add(g);
            }
        }
        for spec in &self.aggregates {
            if let Some(a) = spec.agg.path() {
                if spec.on_element {
                    if let Some(u) = &self.unnest {
                        add(&join_paths(u, a));
                    }
                } else {
                    add(a);
                }
            }
        }
        paths
    }

    /// Plan this query against `ctx` and render the resulting physical plan
    /// — the chosen access path, the pushed-down projection, and the
    /// operator chain.
    ///
    /// Plans with **default** [`crate::PlannerOptions`]; for the plan a
    /// specifically-configured engine would execute (pushdown or index
    /// routing disabled), use [`crate::QueryEngine::explain`], which uses
    /// the engine's own options.
    pub fn explain(&self, ctx: &crate::physical::PlanContext) -> crate::Result<String> {
        crate::physical::plan(self, ctx, &crate::physical::PlannerOptions::default())
            .map(|p| p.describe())
    }
}

/// Concatenate an unnest path and an element-relative path into one
/// record-rooted path (for projection purposes): `u[*] . rel`.
pub fn join_paths(unnest: &Path, relative: &Path) -> Path {
    let mut joined = unnest.elements();
    for step in relative.steps() {
        joined = match step {
            docmodel::PathStep::Field(name) => joined.child(name),
            docmodel::PathStep::AllElements => joined.elements(),
            docmodel::PathStep::Union(t) => joined.union_branch(t),
        };
    }
    joined
}

/// One output row: the group key (absent for global aggregates) and one
/// value per aggregate of the select list. For raw-column projection queries
/// ([`Query::select_paths`]) a row is one matching record: `group` holds the
/// record's primary key and `aggs` the projected paths' values, in
/// select-list order (`Null` where a path is missing on the record).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRow {
    /// Group key (`None` for a global aggregate); the record's primary key
    /// for projection queries.
    pub group: Option<Value>,
    /// Aggregate — or projected — values, in select-list order.
    pub aggs: Vec<Value>,
}

impl QueryRow {
    /// The first aggregate value — the whole row for single-aggregate
    /// queries, which most of the paper's workload is.
    pub fn agg(&self) -> &Value {
        &self.aggs[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn projection_paths_cover_all_referenced_columns() {
        let q = Query::count_star()
            .with_filter(Expr::and([
                Expr::ge("duration", 600),
                Expr::exists("caller"),
            ]))
            .with_unnest("readings")
            .group_by("sensor_id")
            .aggregate_element(Aggregate::Max(Path::parse("temp")))
            .aggregate_element(Aggregate::Avg(Path::parse("temp")))
            .top_k(10);
        let paths: Vec<String> = q.projection_paths().iter().map(|p| p.to_string()).collect();
        assert!(paths.contains(&"duration".to_string()));
        assert!(paths.contains(&"caller".to_string()));
        assert!(paths.contains(&"readings".to_string()));
        assert!(paths.contains(&"sensor_id".to_string()));
        assert!(paths.contains(&"readings[*].temp".to_string()));
        // Deduplicated: temp appears once despite two aggregates reading it.
        assert_eq!(paths.iter().filter(|p| p.contains("temp")).count(), 1);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.order_desc_by_agg, Some(0));
    }

    #[test]
    fn select_builds_multi_aggregate_plans() {
        let q = Query::select([
            Aggregate::Count,
            Aggregate::Max(Path::parse("score")),
            Aggregate::Avg(Path::parse("score")),
        ])
        .group_by("grp")
        .order_desc_by(1)
        .with_limit(3);
        assert_eq!(q.aggregates.len(), 3);
        assert_eq!(q.order_desc_by_agg, Some(1));
        assert_eq!(q.limit, Some(3));
        // top_k respects an explicit order.
        let q = q.top_k(5);
        assert_eq!(q.order_desc_by_agg, Some(1));
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn join_paths_concatenates() {
        let joined = join_paths(&Path::parse("games"), &Path::parse("consoles[*]"));
        assert_eq!(joined.to_string(), "games[*].consoles[*]");
        let identity = join_paths(&Path::parse("games"), &Path::root());
        assert_eq!(identity.to_string(), "games[*]");
    }

    #[test]
    fn aggregate_describe_renders_sql() {
        assert_eq!(Aggregate::Count.describe(), "COUNT(*)");
        assert_eq!(Aggregate::Avg(Path::parse("x")).describe(), "AVG(x)");
        assert_eq!(
            Aggregate::MaxLength(Path::parse("text")).describe(),
            "MAX(LENGTH(text))"
        );
    }
}
