//! The logical query plan.
//!
//! The evaluation's queries (Appendix A of the paper) all fit one shape:
//!
//! ```sql
//! SELECT   g, AGG(x)
//! FROM     dataset d [UNNEST d.p AS e]
//! [WHERE   predicate]
//! [GROUP BY g]
//! [ORDER BY AGG(x) DESC LIMIT k]
//! ```
//!
//! [`Query`] captures exactly that shape as data, which keeps the two
//! execution engines comparable: they run the *same* plan, only the execution
//! model differs. A SQL++ parser is out of scope for the reproduction (the
//! substitution is documented in DESIGN.md); the builder API mirrors the
//! paper's queries one-to-one and the benchmark harness constructs them.

use docmodel::{Path, Value};

/// Which execution engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Operator-at-a-time with materialisation between operators.
    Interpreted,
    /// Fused, pre-resolved single-pass pipeline ("code generation").
    Compiled,
}

/// A filter predicate over a record (or over an unnested element when
/// `on_element` is set).
#[derive(Debug, Clone)]
pub enum Predicate {
    /// `lo <= path <= hi` (numeric or string range).
    Range {
        /// Path to the tested value.
        path: Path,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// `path >= value`.
    GreaterEq {
        /// Path to the tested value.
        path: Path,
        /// Inclusive lower bound.
        value: Value,
    },
    /// `SOME x IN path SATISFIES x = value` (array containment, used by the
    /// hashtag query).
    Contains {
        /// Path to the array (or repeated value).
        path: Path,
        /// Value at least one element must equal.
        value: Value,
    },
}

impl Predicate {
    /// Evaluate the predicate against a document.
    pub fn matches(&self, doc: &Value) -> bool {
        match self {
            Predicate::Range { path, lo, hi } => path.evaluate(doc).iter().any(|v| {
                docmodel::total_cmp(v, lo) != std::cmp::Ordering::Less
                    && docmodel::total_cmp(v, hi) != std::cmp::Ordering::Greater
            }),
            Predicate::GreaterEq { path, value } => path
                .evaluate(doc)
                .iter()
                .any(|v| docmodel::total_cmp(v, value) != std::cmp::Ordering::Less),
            Predicate::Contains { path, value } => path
                .evaluate(doc)
                .iter()
                .any(|v| docmodel::total_cmp(v, value) == std::cmp::Ordering::Equal),
        }
    }

    /// The record-rooted path the predicate reads.
    pub fn path(&self) -> &Path {
        match self {
            Predicate::Range { path, .. }
            | Predicate::GreaterEq { path, .. }
            | Predicate::Contains { path, .. } => path,
        }
    }
}

/// The aggregate computed per group (or over the whole input).
#[derive(Debug, Clone)]
pub enum Aggregate {
    /// `COUNT(*)`.
    Count,
    /// `COUNT(path)` — counts records (or elements) where the path is present.
    CountNonNull(Path),
    /// `MAX(path)`.
    Max(Path),
    /// `MIN(path)`.
    Min(Path),
    /// `MAX(LENGTH(path))` — used by the "longest tweet" query.
    MaxLength(Path),
}

impl Aggregate {
    /// The path the aggregate reads, if any.
    pub fn path(&self) -> Option<&Path> {
        match self {
            Aggregate::Count => None,
            Aggregate::CountNonNull(p)
            | Aggregate::Max(p)
            | Aggregate::Min(p)
            | Aggregate::MaxLength(p) => Some(p),
        }
    }
}

/// A logical query plan.
#[derive(Debug, Clone)]
pub struct Query {
    /// Optional filter, evaluated on records.
    pub filter: Option<Predicate>,
    /// Optional array path to unnest; group/aggregate paths flagged
    /// `on_element` are then evaluated on each unnested element.
    pub unnest: Option<Path>,
    /// Optional grouping key path.
    pub group_by: Option<Path>,
    /// Whether the grouping key is evaluated on the unnested element (`true`)
    /// or on the record (`false`).
    pub group_on_element: bool,
    /// The aggregate.
    pub agg: Aggregate,
    /// Whether the aggregate input is evaluated on the unnested element.
    pub agg_on_element: bool,
    /// Sort groups by the aggregate, descending (the paper's top-k queries).
    pub order_desc_by_agg: bool,
    /// Keep only the first `k` groups after sorting.
    pub limit: Option<usize>,
}

impl Query {
    /// `SELECT COUNT(*) FROM dataset`.
    pub fn count_star() -> Query {
        Query {
            filter: None,
            unnest: None,
            group_by: None,
            group_on_element: false,
            agg: Aggregate::Count,
            agg_on_element: false,
            order_desc_by_agg: false,
            limit: None,
        }
    }

    /// Builder: set the filter.
    pub fn with_filter(mut self, p: Predicate) -> Query {
        self.filter = Some(p);
        self
    }

    /// Builder: unnest an array path.
    pub fn with_unnest(mut self, p: Path) -> Query {
        self.unnest = Some(p);
        self
    }

    /// Builder: group by a record-rooted path.
    pub fn group_by(mut self, p: Path) -> Query {
        self.group_by = Some(p);
        self.group_on_element = false;
        self
    }

    /// Builder: group by a path evaluated on the unnested element (pass the
    /// empty path to group by the element itself).
    pub fn group_by_element(mut self, p: Path) -> Query {
        self.group_by = Some(p);
        self.group_on_element = true;
        self
    }

    /// Builder: set the aggregate (evaluated on records).
    pub fn aggregate(mut self, agg: Aggregate) -> Query {
        self.agg = agg;
        self.agg_on_element = false;
        self
    }

    /// Builder: set the aggregate, evaluated on the unnested element.
    pub fn aggregate_element(mut self, agg: Aggregate) -> Query {
        self.agg = agg;
        self.agg_on_element = true;
        self
    }

    /// Builder: order by the aggregate descending and keep the top `k`.
    pub fn top_k(mut self, k: usize) -> Query {
        self.order_desc_by_agg = true;
        self.limit = Some(k);
        self
    }

    /// The record-rooted paths this query needs — the projection pushed down
    /// to the storage layer (so AMAX reads only these columns' megapages).
    pub fn projection_paths(&self) -> Vec<Path> {
        let mut paths = Vec::new();
        let mut add = |p: &Path| {
            if !paths.contains(p) {
                paths.push(p.clone());
            }
        };
        if let Some(f) = &self.filter {
            add(f.path());
        }
        if let Some(u) = &self.unnest {
            add(u);
        }
        if let Some(g) = &self.group_by {
            if self.group_on_element {
                if let Some(u) = &self.unnest {
                    add(&join_paths(u, g));
                }
            } else {
                add(g);
            }
        }
        if let Some(a) = self.agg.path() {
            if self.agg_on_element {
                if let Some(u) = &self.unnest {
                    add(&join_paths(u, a));
                }
            } else {
                add(a);
            }
        }
        paths
    }
}

/// Concatenate an unnest path and an element-relative path into one
/// record-rooted path (for projection purposes): `u[*] . rel`.
pub fn join_paths(unnest: &Path, relative: &Path) -> Path {
    let mut joined = unnest.elements();
    for step in relative.steps() {
        joined = match step {
            docmodel::PathStep::Field(name) => joined.child(name),
            docmodel::PathStep::AllElements => joined.elements(),
            docmodel::PathStep::Union(t) => joined.union_branch(t),
        };
    }
    joined
}

/// One output row: the group key (absent for global aggregates) and the
/// aggregate value.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRow {
    /// Group key, `None` for a global aggregate.
    pub group: Option<Value>,
    /// Aggregate value.
    pub agg: Value,
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::doc;

    #[test]
    fn predicates_evaluate_against_documents() {
        let doc = doc!({"age": 30, "tags": ["jobs", "rust"], "d": 599});
        assert!(Predicate::GreaterEq {
            path: Path::parse("age"),
            value: Value::Int(30)
        }
        .matches(&doc));
        assert!(!Predicate::GreaterEq {
            path: Path::parse("d"),
            value: Value::Int(600)
        }
        .matches(&doc));
        assert!(Predicate::Range {
            path: Path::parse("age"),
            lo: Value::Int(20),
            hi: Value::Int(40)
        }
        .matches(&doc));
        assert!(Predicate::Contains {
            path: Path::parse("tags[*]"),
            value: Value::from("jobs")
        }
        .matches(&doc));
        assert!(!Predicate::Contains {
            path: Path::parse("tags[*]"),
            value: Value::from("none")
        }
        .matches(&doc));
    }

    #[test]
    fn projection_paths_cover_all_referenced_columns() {
        let q = Query::count_star()
            .with_filter(Predicate::GreaterEq {
                path: Path::parse("duration"),
                value: Value::Int(600),
            })
            .with_unnest(Path::parse("readings"))
            .group_by(Path::parse("sensor_id"))
            .aggregate_element(Aggregate::Max(Path::parse("temp")))
            .top_k(10);
        let paths: Vec<String> = q.projection_paths().iter().map(|p| p.to_string()).collect();
        assert!(paths.contains(&"duration".to_string()));
        assert!(paths.contains(&"readings".to_string()));
        assert!(paths.contains(&"sensor_id".to_string()));
        assert!(paths.contains(&"readings[*].temp".to_string()));
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn join_paths_concatenates() {
        let joined = join_paths(&Path::parse("games"), &Path::parse("consoles[*]"));
        assert_eq!(joined.to_string(), "games[*].consoles[*]");
        let identity = join_paths(&Path::parse("games"), &Path::root());
        assert_eq!(identity.to_string(), "games[*]");
    }
}
