//! # query — analytical queries over LSM datasets, interpreted and compiled
//!
//! The paper's evaluation runs a small family of analytical queries
//! (COUNT(*), filtered counts, grouped aggregates over possibly-unnested
//! arrays, top-k by aggregate) against datasets stored in the four layouts,
//! and §5 shows that the *execution model* matters as much as the layout:
//! AsterixDB's interpreted, batch-at-a-time engine re-materialises tuples
//! between operators and re-assembles nested values, wiping out much of the
//! columnar I/O win, while generating code for the pipelining part of the
//! plan (Truffle in the paper) recovers it.
//!
//! This crate reproduces that contrast with two execution modes over the same
//! logical plan ([`Query`]):
//!
//! * [`interp::run_interpreted`] — a classic operator pipeline
//!   (scan → filter → unnest → project → group) where every operator is a
//!   boxed trait object that materialises its full output batch before the
//!   next operator runs;
//! * [`compiled::run_compiled`] — the "code generation" mode: the plan is
//!   lowered once into a fused, monomorphised pipeline with pre-resolved
//!   field accessors, and the data is processed in a single pass with no
//!   intermediate materialisation. Rust closure fusion stands in for the
//!   Truffle AST + JIT of the paper (see DESIGN.md §2); the property being
//!   measured — per-tuple interpretation overhead vs. specialised code — is
//!   the same.
//!
//! Group-by (the pipeline breaker) is executed by the engine itself in both
//! modes, exactly as in the paper where code generation stops at the first
//! pipeline breaker.
//!
//! ## Snapshots and sharded execution
//!
//! Both engines execute against an [`lsm::Snapshot`] — a consistent
//! point-in-time view that concurrent ingestion, flushes and merges cannot
//! disturb. [`run`] takes a snapshot implicitly; [`run_snapshot`] lets a
//! caller reuse one snapshot across several queries. [`run_sharded`]
//! fans a query out over the snapshots of N hash-partitioned shards (one
//! thread each), then merges the per-shard partial aggregates — counts sum,
//! max/min combine — before the global order-by/limit is applied. Because
//! shards partition by primary key, every group's partial aggregates are
//! disjoint record sets and the merged result equals a single-shard run.

pub mod compiled;
pub mod interp;
pub mod plan;

pub use compiled::run_compiled;
pub use interp::run_interpreted;
pub use plan::{Aggregate, ExecMode, Predicate, Query, QueryRow};

use std::collections::BTreeMap;

use docmodel::cmp::OrderedValue;
use docmodel::Value;
use lsm::{LsmDataset, Snapshot};

/// Error type for query execution.
pub type QueryError = encoding::DecodeError;
/// Result alias.
pub type Result<T> = std::result::Result<T, QueryError>;

/// Run a query in the given execution mode against a fresh snapshot of the
/// dataset.
pub fn run(dataset: &LsmDataset, query: &Query, mode: ExecMode) -> Result<Vec<QueryRow>> {
    run_snapshot(&dataset.snapshot(), query, mode)
}

/// Run a query in the given execution mode against an existing snapshot.
pub fn run_snapshot(snapshot: &Snapshot, query: &Query, mode: ExecMode) -> Result<Vec<QueryRow>> {
    match mode {
        ExecMode::Interpreted => run_interpreted(snapshot, query),
        ExecMode::Compiled => run_compiled(snapshot, query),
    }
}

/// Fan a query out over the snapshots of several hash-partitioned shards
/// (one thread per shard) and merge the partial aggregates into the final
/// result. The shards must partition records by primary key (no key on two
/// shards), which makes every aggregate in the plan mergeable.
pub fn run_sharded(
    snapshots: &[Snapshot],
    query: &Query,
    mode: ExecMode,
) -> Result<Vec<QueryRow>> {
    if snapshots.is_empty() {
        return Ok(Vec::new());
    }
    if snapshots.len() == 1 {
        return run_snapshot(&snapshots[0], query, mode);
    }
    // Per-shard partial plan: same filter/unnest/group/aggregate, but no
    // ordering or limit — a shard-local top-k could drop a group that wins
    // globally.
    let mut partial = query.clone();
    partial.order_desc_by_agg = false;
    partial.limit = None;

    let partials: Vec<Result<Vec<QueryRow>>> = std::thread::scope(|scope| {
        let partial = &partial;
        let handles: Vec<_> = snapshots
            .iter()
            .map(|snapshot| scope.spawn(move || run_snapshot(snapshot, partial, mode)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sharded query thread panicked"))
            .collect()
    });

    let mut groups: BTreeMap<Option<OrderedValue>, Value> = BTreeMap::new();
    for rows in partials {
        for row in rows? {
            let key = row.group.map(OrderedValue);
            match groups.entry(key) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(row.agg);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let merged = combine_agg(&query.agg, slot.get(), &row.agg);
                    *slot.get_mut() = merged;
                }
            }
        }
    }
    let mut rows: Vec<QueryRow> = groups
        .into_iter()
        .map(|(k, agg)| QueryRow {
            group: k.map(|k| k.0),
            agg,
        })
        .collect();
    if query.order_desc_by_agg {
        rows.sort_by(|a, b| docmodel::total_cmp(&b.agg, &a.agg));
    }
    if let Some(k) = query.limit {
        rows.truncate(k);
    }
    Ok(rows)
}

/// Merge two partial aggregate values for the same group. Counts sum;
/// max-style aggregates keep the larger value, min the smaller. `Null`
/// (an aggregate that saw no input on one shard) never beats a real value.
fn combine_agg(agg: &Aggregate, a: &Value, b: &Value) -> Value {
    match agg {
        Aggregate::Count | Aggregate::CountNonNull(_) => {
            Value::Int(a.as_int().unwrap_or(0) + b.as_int().unwrap_or(0))
        }
        Aggregate::Max(_) | Aggregate::MaxLength(_) => match (a.is_null(), b.is_null()) {
            (true, _) => b.clone(),
            (_, true) => a.clone(),
            _ => {
                if docmodel::total_cmp(a, b) == std::cmp::Ordering::Less {
                    b.clone()
                } else {
                    a.clone()
                }
            }
        },
        Aggregate::Min(_) => match (a.is_null(), b.is_null()) {
            (true, _) => b.clone(),
            (_, true) => a.clone(),
            _ => {
                if docmodel::total_cmp(a, b) == std::cmp::Ordering::Greater {
                    b.clone()
                } else {
                    a.clone()
                }
            }
        },
    }
}

/// Answer a range query through the dataset's secondary index and aggregate
/// the qualifying records with the query's aggregate/group-by. Used by the
/// secondary-index experiments (Figures 15 and 16).
pub fn run_with_secondary_index(
    dataset: &LsmDataset,
    lo: &Value,
    hi: &Value,
    query: &Query,
) -> Result<Vec<QueryRow>> {
    let projection = query.projection_paths();
    let docs = dataset.secondary_range(lo, hi, Some(&projection))?;
    compiled::aggregate_docs(docs.iter(), query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::{doc, Path};
    use lsm::{DatasetConfig, LsmDataset};
    use storage::LayoutKind;

    fn shard_datasets(n: usize) -> Vec<LsmDataset> {
        let shards: Vec<LsmDataset> = (0..n)
            .map(|i| {
                LsmDataset::new(
                    DatasetConfig::new(format!("shard-{i}"), LayoutKind::Amax)
                        .with_memtable_budget(16 * 1024)
                        .with_page_size(8 * 1024),
                )
            })
            .collect();
        for i in 0..400i64 {
            let shard = &shards[(i as usize) % n];
            shard
                .insert(doc!({
                    "id": i,
                    "grp": (format!("g{}", i % 7)),
                    "score": (i % 100),
                }))
                .unwrap();
        }
        for shard in &shards {
            shard.flush().unwrap();
        }
        shards
    }

    fn reference_dataset() -> LsmDataset {
        let ds = LsmDataset::new(
            DatasetConfig::new("all", LayoutKind::Amax)
                .with_memtable_budget(16 * 1024)
                .with_page_size(8 * 1024),
        );
        for i in 0..400i64 {
            ds.insert(doc!({
                "id": i,
                "grp": (format!("g{}", i % 7)),
                "score": (i % 100),
            }))
            .unwrap();
        }
        ds.flush().unwrap();
        ds
    }

    #[test]
    fn sharded_execution_matches_single_shard() {
        let shards = shard_datasets(4);
        let reference = reference_dataset();
        let queries = [Query::count_star(),
            Query::count_star().group_by(Path::parse("grp")),
            Query::count_star()
                .group_by(Path::parse("grp"))
                .aggregate(Aggregate::Max(Path::parse("score")))
                .top_k(3),
            Query::count_star()
                .group_by(Path::parse("grp"))
                .aggregate(Aggregate::Min(Path::parse("score"))),
            Query::count_star().with_filter(Predicate::GreaterEq {
                path: Path::parse("score"),
                value: Value::Int(50),
            })];
        for (i, q) in queries.iter().enumerate() {
            for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
                let snapshots: Vec<_> = shards.iter().map(|s| s.snapshot()).collect();
                let sharded = run_sharded(&snapshots, q, mode).unwrap();
                let single = run(&reference, q, mode).unwrap();
                assert_eq!(sharded, single, "query {i} ({mode:?})");
            }
        }
    }

    #[test]
    fn empty_and_single_shard_cases() {
        assert!(run_sharded(&[], &Query::count_star(), ExecMode::Compiled)
            .unwrap()
            .is_empty());
        let shards = shard_datasets(1);
        let snapshots: Vec<_> = shards.iter().map(|s| s.snapshot()).collect();
        let rows = run_sharded(&snapshots, &Query::count_star(), ExecMode::Compiled).unwrap();
        assert_eq!(rows[0].agg, Value::Int(400));
    }
}
