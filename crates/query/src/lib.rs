//! # query — compositional analytical queries over LSM datasets
//!
//! The paper's evaluation runs a family of analytical queries (COUNT(*),
//! filtered counts, grouped aggregates over possibly-unnested arrays, top-k
//! by aggregate) against datasets stored in the four layouts, and §5 shows
//! that the *execution model* matters as much as the layout. This crate
//! reproduces that contrast behind a compositional query API:
//!
//! * [`Query`] — the logical plan: a predicate [`Expr`] tree
//!   (`AND`/`OR`/`NOT` over comparisons, `EXISTS`, `CONTAINS`, `LENGTH`), an
//!   optional `UNNEST`, an optional group key, and **any number of
//!   aggregates** per query ([`Aggregate`], including `SUM`/`AVG` with
//!   mergeable `(sum, count)` partials);
//! * [`physical`] — the planner: validates the logical plan, derives the
//!   pushed-down projection from the expression tree, and makes a
//!   **cost-based** access-path choice — full scan, key-only scan for
//!   `COUNT(*)`, or a secondary-index range probe — by estimating matching
//!   records from each component's column statistics (the fig. 15
//!   scan-vs-probe crossover; [`AccessPathChoice`] forces either path).
//!   Scans additionally **zone-map-prune**: a component whose statistics
//!   prove no record can match the filter is skipped without reading a
//!   single page. [`Query::explain`] renders the chosen
//!   [`physical::PhysicalPlan`] including the estimate;
//! * [`QueryEngine`] — the single execution entry point:
//!   [`QueryEngine::execute`] accepts any [`QueryTarget`] (a snapshot, a
//!   dataset, per-shard snapshots, or sharded datasets) and routes the same
//!   physical plan through the right access path, fanning out one thread per
//!   shard and merging per-group partial aggregates exactly.
//!
//! Execution **streams** end to end: the access stage is the LSM snapshot's
//! k-way merge-reconcile cursor (one decoded leaf per component in memory,
//! never the dataset) and every operator pulls one record at a time, so a
//! limited query stops reading as soon as its answer is complete. Besides
//! aggregates, the plan supports **raw-column `SELECT`**
//! ([`Query::select_paths`]): one key-ordered row per matching record, with
//! `ORDER BY key LIMIT k` terminating after the k-th match without
//! scanning the tail. The seed's materialise-then-process model survives
//! only as the differential-testing [`oracle`].
//!
//! Two execution modes run every plan ([`ExecMode`]):
//!
//! * [`ExecMode::Interpreted`] — a classic operator pipeline
//!   (scan → filter → unnest → project → group) where every operator is a
//!   boxed trait object pulling rows through dynamic dispatch, re-resolving
//!   paths per tuple;
//! * [`ExecMode::Compiled`] — the "code generation" mode: the plan is
//!   lowered once into a fused, monomorphised pipeline with pre-resolved
//!   field accessors, and the data is processed in a single pass. Rust
//!   closure fusion stands in for the Truffle AST + JIT of the paper (see
//!   DESIGN.md §2); the property being measured — per-tuple interpretation
//!   overhead vs. specialised code — is the same.
//!
//! Group-by (the pipeline breaker) is executed by the engine itself in both
//! modes, exactly as in the paper where code generation stops at the first
//! pipeline breaker.
//!
//! ```
//! use docmodel::{doc, Path};
//! use lsm::{DatasetConfig, LsmDataset};
//! use query::{Aggregate, ExecMode, Expr, Query, QueryEngine};
//! use storage::LayoutKind;
//!
//! let ds = LsmDataset::new(DatasetConfig::new("scores", LayoutKind::Amax));
//! for i in 0..100i64 {
//!     ds.insert(doc!({"id": i, "grp": (format!("g{}", i % 3)), "score": (i % 10)})).unwrap();
//! }
//! ds.flush().unwrap();
//!
//! // SELECT grp, COUNT(*), MAX(score), AVG(score) WHERE score >= 5 GROUP BY grp
//! let q = Query::select([
//!         Aggregate::Count,
//!         Aggregate::Max(Path::parse("score")),
//!         Aggregate::Avg(Path::parse("score")),
//!     ])
//!     .with_filter(Expr::ge("score", 5))
//!     .group_by("grp");
//! let rows = QueryEngine::new(ExecMode::Compiled).execute(&ds, &q).unwrap();
//! assert_eq!(rows.len(), 3);
//! assert_eq!(rows[0].aggs.len(), 3);
//! ```
//!
//! ## Snapshots and sharded execution
//!
//! Both engines execute against [`lsm::Snapshot`]s — consistent
//! point-in-time views that concurrent ingestion, flushes and merges cannot
//! disturb. A sharded target fans the plan out over the partitions (one
//! thread each) and merges the per-shard **partial aggregates** — counts
//! sum, max/min combine, `SUM`/`AVG` carry exact `(sum, count)` partials —
//! before the global order-by/limit is applied. Because shards partition by
//! primary key, every group's partials come from disjoint record sets and
//! the merged result equals a single-dataset run. Index-probe plans fan out
//! the same way: each shard probes its own secondary index and contributes
//! partials.

pub mod analyze;
pub mod compiled;
pub mod expr;
pub mod interp;
pub mod oracle;
pub mod physical;
pub mod plan;

pub use analyze::{AnalyzeReport, ShardAnalysis};
pub use expr::{CmpOp, Expr};
pub use physical::{
    AccessEstimate, AccessPath, AccessPathChoice, ComponentPlanInfo, PhysicalPlan, PlanContext,
    PlannerOptions,
};
pub use plan::{AggSpec, Aggregate, ExecMode, Query, QueryRow};

use std::fmt;
use std::ops::Bound;
use std::sync::Arc;
use std::time::Instant;

use docmodel::Value;
use lsm::{LsmDataset, Snapshot};
use storage::pagestore::IoStats;

use analyze::{CountingIter, ExecProbe};
use physical::{finalize, key_count_partials, merge_partials, GroupPartials};

/// Error type of the query layer: plan validation failures are separated
/// from storage/decode failures, so callers can tell a malformed query from
/// a broken dataset.
#[derive(Debug)]
pub enum Error {
    /// The logical plan failed the planner's validation.
    InvalidPlan(String),
    /// The storage layer failed while reading (page decode, I/O, missing
    /// index).
    Storage(encoding::DecodeError),
}

impl Error {
    /// A plan-validation error.
    pub fn invalid_plan(msg: impl Into<String>) -> Error {
        Error::InvalidPlan(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidPlan(msg) => write!(f, "invalid query plan: {msg}"),
            Error::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::InvalidPlan(_) => None,
            Error::Storage(e) => Some(e),
        }
    }
}

impl From<encoding::DecodeError> for Error {
    fn from(e: encoding::DecodeError) -> Error {
        Error::Storage(e)
    }
}

/// Result alias of the query layer.
pub type Result<T> = std::result::Result<T, Error>;

/// What a query executes against: one consistent snapshot, one dataset
/// (enabling index probes), or the partitions of a sharded dataset.
///
/// Constructed implicitly via `From` — pass `&snapshot`, `&dataset`,
/// `&snapshots[..]` or `&shards[..]` straight to [`QueryEngine::execute`].
pub enum QueryTarget<'a> {
    /// A single consistent snapshot. Index probes are unavailable (a
    /// snapshot carries no secondary index), so plans fall back to scans.
    Snapshot(&'a Snapshot),
    /// A single dataset: snapshots are taken as needed and the dataset's
    /// secondary index is available to the planner.
    Dataset(&'a LsmDataset),
    /// Per-shard snapshots of a hash-partitioned dataset (scan-only).
    Snapshots(&'a [Snapshot]),
    /// The partitions of a hash-partitioned dataset; every access path,
    /// including index probes, fans out with partial-aggregate merging.
    Shards(&'a [&'a LsmDataset]),
}

impl<'a> From<&'a Snapshot> for QueryTarget<'a> {
    fn from(s: &'a Snapshot) -> Self {
        QueryTarget::Snapshot(s)
    }
}
impl<'a> From<&'a LsmDataset> for QueryTarget<'a> {
    fn from(d: &'a LsmDataset) -> Self {
        QueryTarget::Dataset(d)
    }
}
impl<'a> From<&'a [Snapshot]> for QueryTarget<'a> {
    fn from(s: &'a [Snapshot]) -> Self {
        QueryTarget::Snapshots(s)
    }
}
impl<'a> From<&'a [&'a LsmDataset]> for QueryTarget<'a> {
    fn from(s: &'a [&'a LsmDataset]) -> Self {
        QueryTarget::Shards(s)
    }
}

impl QueryTarget<'_> {
    fn plan_context(&self) -> PlanContext {
        match self {
            QueryTarget::Snapshot(s) => PlanContext::for_snapshot(s),
            QueryTarget::Snapshots(s) => PlanContext::for_snapshots(s),
            QueryTarget::Dataset(d) => PlanContext::for_dataset(d),
            QueryTarget::Shards(shards) => PlanContext::for_shards(shards),
        }
    }
}

/// The execution entry point: plans a [`Query`] for its target and runs the
/// physical plan in the configured [`ExecMode`], routing between full scans,
/// key-only scans, secondary-index range probes and sharded fan-out.
#[derive(Debug, Clone, Copy)]
pub struct QueryEngine {
    mode: ExecMode,
    options: PlannerOptions,
}

impl QueryEngine {
    /// An engine with default planner options (all optimisations on).
    pub fn new(mode: ExecMode) -> QueryEngine {
        QueryEngine { mode, options: PlannerOptions::default() }
    }

    /// An engine with explicit planner options (the benchmarks flip
    /// projection pushdown and index routing off to measure them).
    pub fn with_options(mode: ExecMode, options: PlannerOptions) -> QueryEngine {
        QueryEngine { mode, options }
    }

    /// The configured execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Plan and execute a query against any [`QueryTarget`].
    pub fn execute<'a>(
        &self,
        target: impl Into<QueryTarget<'a>>,
        query: &Query,
    ) -> Result<Vec<QueryRow>> {
        let target = target.into();
        let plan = physical::plan(query, &target.plan_context(), &self.options)?;
        // An empty shard list has no partitions to aggregate over — return
        // no rows rather than a default global aggregate.
        if matches!(&target, QueryTarget::Snapshots([]) | QueryTarget::Shards([])) {
            return Ok(Vec::new());
        }
        let output = match target {
            QueryTarget::Snapshot(snapshot) => self.output_for_snapshot(snapshot, &plan, None)?,
            QueryTarget::Dataset(dataset) => self.output_for_dataset(dataset, &plan, None)?,
            QueryTarget::Snapshots(snapshots) => {
                self.fan_out(snapshots, &plan, |engine, snapshot, plan| {
                    engine.output_for_snapshot(snapshot, plan, None)
                })?
            }
            QueryTarget::Shards(shards) => {
                self.fan_out(shards, &plan, |engine, dataset, plan| {
                    engine.output_for_dataset(dataset, plan, None)
                })?
            }
        };
        Ok(match output {
            ExecOutput::Groups(partials) => finalize(partials, &plan),
            ExecOutput::Rows(rows) => rows,
        })
    }

    /// Plan a query for the target and render the physical plan (`EXPLAIN`):
    /// the chosen access path, the pushed-down projection, and the operator
    /// chain.
    pub fn explain<'a>(
        &self,
        target: impl Into<QueryTarget<'a>>,
        query: &Query,
    ) -> Result<String> {
        let target = target.into();
        physical::plan(query, &target.plan_context(), &self.options).map(|p| p.describe())
    }

    /// Plan the query, *execute it for real*, and return the plan annotated
    /// with actual execution counters (`EXPLAIN ANALYZE`): rows the pipeline
    /// pulled from the access stage, pages read (I/O-stats deltas), how many
    /// components zone maps pruned vs. scanned, the early-termination point
    /// of limited queries, and wall time — plus the query's result rows, so
    /// analyzing never costs a second execution.
    ///
    /// Partitions run sequentially (not thread-per-shard) so each shard's
    /// I/O delta is exact even when shards share one page store; the merged
    /// result rows equal [`QueryEngine::execute`]'s.
    pub fn explain_analyze<'a>(
        &self,
        target: impl Into<QueryTarget<'a>>,
        query: &Query,
    ) -> Result<AnalyzeReport> {
        let target = target.into();
        let plan = physical::plan(query, &target.plan_context(), &self.options)?;
        let plan_text = plan.describe();
        let started = Instant::now();
        let mut analyses: Vec<ShardAnalysis> = Vec::new();
        let mut outputs: Vec<ExecOutput> = Vec::new();
        {
            let mut run_one = |io: &dyn Fn() -> Option<IoStats>,
                               exec: &dyn Fn(&ExecProbe) -> Result<ExecOutput>|
             -> Result<()> {
                let probe = ExecProbe::new();
                let before = io();
                let output = exec(&probe)?;
                let after = io();
                let (pages, bytes, hits, misses, filtered, skipped) = match (before, after) {
                    (Some(b), Some(a)) => (
                        a.pages_read.saturating_sub(b.pages_read),
                        a.bytes_read.saturating_sub(b.bytes_read),
                        a.leaf_cache_hits.saturating_sub(b.leaf_cache_hits),
                        a.leaf_cache_misses.saturating_sub(b.leaf_cache_misses),
                        a.records_filtered_pre_assembly
                            .saturating_sub(b.records_filtered_pre_assembly),
                        a.leaves_skipped.saturating_sub(b.leaves_skipped),
                    ),
                    _ => (0, 0, 0, 0, 0, 0),
                };
                let rows_out = match &output {
                    ExecOutput::Rows(rows) => rows.len(),
                    ExecOutput::Groups(groups) => groups.len(),
                };
                analyses.push(probe.finish(pages, bytes, hits, misses, filtered, skipped, rows_out));
                outputs.push(output);
                Ok(())
            };
            match &target {
                QueryTarget::Snapshot(snapshot) => run_one(&|| snapshot_io(snapshot), &|p| {
                    self.output_for_snapshot(snapshot, &plan, Some(p))
                })?,
                QueryTarget::Dataset(dataset) => run_one(&|| Some(dataset.io_stats()), &|p| {
                    self.output_for_dataset(dataset, &plan, Some(p))
                })?,
                QueryTarget::Snapshots(snapshots) => {
                    for snapshot in *snapshots {
                        run_one(&|| snapshot_io(snapshot), &|p| {
                            self.output_for_snapshot(snapshot, &plan, Some(p))
                        })?;
                    }
                }
                QueryTarget::Shards(shards) => {
                    for dataset in *shards {
                        run_one(&|| Some(dataset.io_stats()), &|p| {
                            self.output_for_dataset(dataset, &plan, Some(p))
                        })?;
                    }
                }
            }
        }
        // An empty shard list has no partitions — no rows, like execute().
        let rows = if outputs.is_empty() {
            Vec::new()
        } else {
            match merge_exec_outputs(outputs, &plan) {
                ExecOutput::Groups(partials) => finalize(partials, &plan),
                ExecOutput::Rows(rows) => rows,
            }
        };
        Ok(AnalyzeReport {
            plan: plan_text,
            rows,
            shards: analyses,
            wall: started.elapsed(),
        })
    }

    /// Fan a plan out over several partitions, one thread each, and merge
    /// the per-partition outputs: group partials merge group-wise, and
    /// projection plans k-way-merge the per-shard key-ordered row streams
    /// (each already capped at the plan's limit) instead of concatenating
    /// batches.
    fn fan_out<T: Sync>(
        &self,
        parts: &[T],
        plan: &PhysicalPlan,
        run: impl Fn(&QueryEngine, &T, &PhysicalPlan) -> Result<ExecOutput> + Send + Sync,
    ) -> Result<ExecOutput> {
        if parts.is_empty() {
            return Ok(ExecOutput::empty(plan));
        }
        if parts.len() == 1 {
            return run(self, &parts[0], plan);
        }
        let results: Vec<Result<ExecOutput>> = std::thread::scope(|scope| {
            let run = &run;
            let handles: Vec<_> = parts
                .iter()
                .map(|part| scope.spawn(move || run(self, part, plan)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sharded query thread panicked"))
                .collect()
        });
        let outputs: Vec<ExecOutput> = results.into_iter().collect::<Result<_>>()?;
        Ok(merge_exec_outputs(outputs, plan))
    }

    /// Execute the plan's access path against a dataset (index probes
    /// included) in the configured mode. When a `probe` is supplied
    /// (EXPLAIN ANALYZE) the record stream is wrapped to count actual pulls.
    fn output_for_dataset(
        &self,
        dataset: &LsmDataset,
        plan: &PhysicalPlan,
        probe: Option<&ExecProbe>,
    ) -> Result<ExecOutput> {
        match &plan.access {
            AccessPath::IndexRange { lo, hi, .. } => {
                // The probe's sorted batched lookups yield key-ordered
                // (key, record) pairs — only the estimated matches are ever
                // materialised, never the component.
                let entries = dataset.secondary_range_entries(
                    as_bound_ref(lo),
                    as_bound_ref(hi),
                    plan.projection.as_deref(),
                )?;
                if let Some(probe) = probe {
                    // An index probe's point lookups may touch every
                    // component; zone maps play no part.
                    probe.set_components(dataset.component_count(), 0);
                    let stream = CountingIter::new(entries.into_iter().map(Ok), probe.pull.clone());
                    if plan.is_projection() {
                        self.select_rows(stream, plan)
                    } else {
                        self.aggregate(stream.map(|e| e.map(|(_, doc)| doc)), plan)
                    }
                } else if plan.is_projection() {
                    self.select_rows(entries.into_iter().map(Ok), plan)
                } else {
                    self.aggregate(entries.into_iter().map(|(_, doc)| Ok(doc)), plan)
                }
            }
            _ => self.output_for_snapshot(&dataset.snapshot(), plan, probe),
        }
    }

    /// Execute a scan-shaped access path against a snapshot in the
    /// configured mode, streaming the snapshot's merge-reconcile cursor.
    fn output_for_snapshot(
        &self,
        snapshot: &Snapshot,
        plan: &PhysicalPlan,
        probe: Option<&ExecProbe>,
    ) -> Result<ExecOutput> {
        match &plan.access {
            AccessPath::KeyOnlyScan => {
                if let Some(probe) = probe {
                    // A key-only count reads key columns from every
                    // component but never materialises a record: its cost
                    // is all in the page counters.
                    probe.set_components(snapshot.components().len(), 0);
                    probe.mark_exhausted();
                }
                Ok(ExecOutput::Groups(key_count_partials(snapshot.count()?, plan)))
            }
            AccessPath::FullScan => {
                // Zone-map pruning: skip components whose statistics prove
                // no record can match. The flags come from the execution
                // snapshot's own components, so planning-time staleness can
                // never skip the wrong component.
                let skip: Vec<bool> = match &plan.filter {
                    Some(filter) if plan.zone_map_pruning => {
                        let infos: Vec<ComponentPlanInfo> = snapshot
                            .components()
                            .iter()
                            .map(|c| ComponentPlanInfo::of(c))
                            .collect();
                        physical::prune_flags(&infos, filter)
                    }
                    _ => Vec::new(),
                };
                // Late materialization: sargable conjuncts travel into the
                // scan so columnar components can reject reconciliation
                // winners from their filter columns alone (and skip whole
                // leaves via zone maps) before assembling a record. The
                // engines above evaluate only `plan.residual`.
                let cursor = snapshot.cursor_pushed(
                    plan.projection.as_deref(),
                    &skip,
                    Arc::new(plan.pushed.clone()),
                )?;
                if let Some(probe) = probe {
                    let total = snapshot.components().len();
                    let pruned = skip.iter().filter(|&&s| s).count();
                    probe.set_components(total - pruned, pruned);
                    let stream = CountingIter::new(cursor, probe.pull.clone());
                    if plan.is_projection() {
                        self.select_rows(stream.map(|e| e.map_err(Error::from)), plan)
                    } else {
                        self.aggregate(
                            stream.map(|e| e.map(|(_, doc)| doc).map_err(Error::from)),
                            plan,
                        )
                    }
                } else if plan.is_projection() {
                    self.select_rows(cursor.map(|e| e.map_err(Error::from)), plan)
                } else {
                    self.aggregate(
                        cursor.map(|e| e.map(|(_, doc)| doc).map_err(Error::from)),
                        plan,
                    )
                }
            }
            AccessPath::IndexRange { .. } => Err(Error::invalid_plan(
                "an index-probe plan needs a dataset target, not a bare snapshot",
            )),
        }
    }

    /// The mode-specific streaming aggregation: the fused single-pass loop
    /// or the boxed operator pipeline, both pulling one record at a time.
    fn aggregate(
        &self,
        docs: impl Iterator<Item = Result<Value>>,
        plan: &PhysicalPlan,
    ) -> Result<ExecOutput> {
        let partials = match self.mode {
            ExecMode::Compiled => compiled::aggregate_stream(docs, plan)?,
            ExecMode::Interpreted => interp::run_stream(docs, plan)?,
        };
        Ok(ExecOutput::Groups(partials))
    }

    /// The streaming projection: key-ordered rows out, the input stream
    /// dropped at the plan's limit (`ORDER BY key LIMIT k` never reads the
    /// tail). Projection plans have no pipeline breaker and no per-tuple
    /// interpretation contrast — filter evaluation and path projection are
    /// identical either way — so both modes share this loop.
    fn select_rows(
        &self,
        entries: impl Iterator<Item = Result<(Value, Value)>>,
        plan: &PhysicalPlan,
    ) -> Result<ExecOutput> {
        let paths = plan
            .select_paths
            .as_deref()
            .expect("select_rows requires a projection plan");
        let limit = plan.limit.unwrap_or(usize::MAX);
        let mut rows = Vec::new();
        if limit == 0 {
            return Ok(ExecOutput::Rows(rows));
        }
        for entry in entries {
            let (key, doc) = entry?;
            // Only the residual runs here: the sargable conjuncts were
            // pushed into the scan (or folded into `residual` when
            // pushdown is disabled / the access path is not a full scan).
            if let Some(f) = &plan.residual {
                if !f.matches(&doc) {
                    continue;
                }
            }
            let values: Vec<Value> = paths
                .iter()
                .map(|p| {
                    p.evaluate(&doc)
                        .first()
                        .map(|v| (*v).clone())
                        .unwrap_or(Value::Null)
                })
                .collect();
            rows.push(QueryRow { group: Some(key), aggs: values });
            // Check *after* pushing so the k-th match is the last entry
            // ever pulled — pulling once more could decode the next leaf.
            if rows.len() >= limit {
                break;
            }
        }
        Ok(ExecOutput::Rows(rows))
    }
}

/// What one partition's execution produces: mergeable group partials
/// (aggregate plans) or key-ordered output rows (projection plans).
enum ExecOutput {
    Groups(GroupPartials),
    Rows(Vec<QueryRow>),
}

impl ExecOutput {
    fn empty(plan: &PhysicalPlan) -> ExecOutput {
        if plan.is_projection() {
            ExecOutput::Rows(Vec::new())
        } else {
            ExecOutput::Groups(GroupPartials::new())
        }
    }
}

/// Merge per-partition execution outputs exactly as the sharded fan-out
/// does: group partials merge group-wise, projection plans k-way-merge
/// their key-ordered row streams under the plan's limit.
fn merge_exec_outputs(outputs: Vec<ExecOutput>, plan: &PhysicalPlan) -> ExecOutput {
    if outputs.len() == 1 {
        return outputs.into_iter().next().expect("one output");
    }
    if plan.is_projection() {
        let streams = outputs
            .into_iter()
            .map(|output| match output {
                ExecOutput::Rows(rows) => rows,
                ExecOutput::Groups(_) => unreachable!("projection plans emit rows"),
            })
            .collect();
        ExecOutput::Rows(merge_row_streams(streams, plan.limit))
    } else {
        let mut merged = GroupPartials::new();
        for output in outputs {
            match output {
                ExecOutput::Groups(partials) => merge_partials(&mut merged, partials),
                ExecOutput::Rows(_) => unreachable!("aggregate plans emit partials"),
            }
        }
        ExecOutput::Groups(merged)
    }
}

/// I/O counters of the store a bare snapshot reads from, when it has any
/// on-disk component at all (a memtable-only snapshot does no page I/O).
fn snapshot_io(snapshot: &Snapshot) -> Option<IoStats> {
    snapshot
        .components()
        .first()
        .map(|c| c.cache().store().stats())
}

/// K-way merge of per-shard key-ordered row streams into one key-ordered
/// result, stopping at `limit`. Shards partition by primary key, so the
/// merged stream has no duplicates and equals the single-dataset order.
fn merge_row_streams(streams: Vec<Vec<QueryRow>>, limit: Option<usize>) -> Vec<QueryRow> {
    let limit = limit.unwrap_or(usize::MAX);
    let mut iters: Vec<std::vec::IntoIter<QueryRow>> =
        streams.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<QueryRow>> = iters.iter_mut().map(Iterator::next).collect();
    let mut out = Vec::new();
    while out.len() < limit {
        let mut best: Option<usize> = None;
        for (i, head) in heads.iter().enumerate() {
            let Some(row) = head else { continue };
            match best {
                None => best = Some(i),
                Some(b) => {
                    let best_key = heads[b].as_ref().and_then(|r| r.group.as_ref());
                    let key = row.group.as_ref();
                    if let (Some(key), Some(best_key)) = (key, best_key) {
                        if docmodel::total_cmp(key, best_key) == std::cmp::Ordering::Less {
                            best = Some(i);
                        }
                    }
                }
            }
        }
        let Some(best) = best else { break };
        out.push(heads[best].take().expect("best head present"));
        heads[best] = iters[best].next();
    }
    out
}

fn as_bound_ref(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::{doc, Path};
    use lsm::DatasetConfig;
    use storage::LayoutKind;

    fn sample_doc(i: i64) -> Value {
        doc!({
            "id": i,
            "grp": (format!("g{}", i % 7)),
            "score": (i % 100),
            "duration": (i % 900),
            "caller": (format!("caller{}", i % 23)),
            "games": [
                {"title": (format!("game{}", i % 7)), "consoles": ["PC", "PS4"]},
                {"title": (format!("game{}", (i + 1) % 7))}
            ],
            "text": (format!("text body {i} #jobs and more"))
        })
    }

    fn build_dataset(layout: LayoutKind) -> LsmDataset {
        let ds = LsmDataset::new(
            DatasetConfig::new("gamers", layout)
                .with_memtable_budget(16 * 1024)
                .with_page_size(8 * 1024),
        );
        for i in 0..400i64 {
            ds.insert(sample_doc(i)).unwrap();
        }
        ds.flush().unwrap();
        ds
    }

    fn both_modes(ds: &LsmDataset, q: &Query) -> Vec<QueryRow> {
        let compiled = QueryEngine::new(ExecMode::Compiled).execute(ds, q).unwrap();
        let interpreted = QueryEngine::new(ExecMode::Interpreted).execute(ds, q).unwrap();
        assert_eq!(compiled, interpreted, "engines disagree on {q:?}");
        compiled
    }

    #[test]
    fn count_star_matches_between_engines() {
        for layout in LayoutKind::ALL {
            let ds = build_dataset(layout);
            let rows = both_modes(&ds, &Query::count_star());
            assert_eq!(rows[0].agg(), &Value::Int(400), "{layout:?}");
        }
    }

    #[test]
    fn filtered_count_matches_between_engines() {
        let ds = build_dataset(LayoutKind::Amax);
        let q = Query::count_star().with_filter(Expr::ge("duration", 600));
        let rows = both_modes(&ds, &q);
        let expected = (0..400i64).filter(|i| i % 900 >= 600).count() as i64;
        assert_eq!(rows[0].agg(), &Value::Int(expected));
    }

    #[test]
    fn group_by_with_unnest_matches_between_engines() {
        for layout in [LayoutKind::Vb, LayoutKind::Apax, LayoutKind::Amax] {
            let ds = build_dataset(layout);
            // SELECT t.title, COUNT(*) FROM ds UNNEST games AS t GROUP BY t.title
            let q = Query::count_star()
                .with_unnest("games")
                .group_by_element("title")
                .top_k(3);
            let rows = both_modes(&ds, &q);
            assert_eq!(rows.len(), 3, "{layout:?}");
            // 400 records x 2 games each spread over 7 titles.
            assert!(rows[0].agg().as_int().unwrap() > 100);
        }
    }

    #[test]
    fn multi_aggregate_queries_return_one_value_per_aggregate() {
        let ds = build_dataset(LayoutKind::Amax);
        let q = Query::select([
            Aggregate::Count,
            Aggregate::Max(Path::parse("score")),
            Aggregate::Avg(Path::parse("score")),
            Aggregate::Sum(Path::parse("score")),
        ])
        .with_filter(Expr::and([Expr::ge("score", 50), Expr::exists("games")]))
        .group_by("grp")
        .top_k(3);
        let rows = both_modes(&ds, &q);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.aggs.len(), 4);
            let count = row.aggs[0].as_int().unwrap();
            let max = row.aggs[1].as_int().unwrap();
            let avg = match row.aggs[2] {
                Value::Double(d) => d,
                ref other => panic!("AVG must be a double, got {other:?}"),
            };
            let sum = row.aggs[3].as_int().unwrap();
            assert!(count > 0 && max >= 50 && avg >= 50.0);
            assert_eq!(sum as f64, avg * count as f64);
        }
    }

    #[test]
    fn contains_filter_and_max_length() {
        let ds = build_dataset(LayoutKind::Vb);
        let q = Query::select([Aggregate::MaxLength(Path::parse("text"))])
            .with_filter(Expr::contains("games[*].consoles[*]", "PC"))
            .group_by("caller")
            .top_k(5);
        let rows = both_modes(&ds, &q);
        assert_eq!(rows.len(), 5);
        assert!(rows[0].agg().as_int().unwrap() > 0);
    }

    #[test]
    fn complex_boolean_filters_match_a_scan_oracle() {
        let ds = build_dataset(LayoutKind::Apax);
        let filter = Expr::and([
            Expr::or([Expr::lt("score", 20), Expr::ge("score", 80)]),
            Expr::not(Expr::eq("grp", "g3")),
            Expr::length("text", CmpOp::Gt, 5),
        ]);
        let rows = both_modes(&ds, &Query::count_star().with_filter(filter.clone()));
        let oracle = (0..400i64)
            .map(sample_doc)
            .filter(|d| filter.matches(d))
            .count() as i64;
        assert_eq!(rows[0].agg(), &Value::Int(oracle));
    }

    #[test]
    fn sharded_execution_matches_single_dataset() {
        let shards: Vec<LsmDataset> = (0..4)
            .map(|i| {
                LsmDataset::new(
                    DatasetConfig::new(format!("shard-{i}"), LayoutKind::Amax)
                        .with_memtable_budget(16 * 1024)
                        .with_page_size(8 * 1024),
                )
            })
            .collect();
        let reference = LsmDataset::new(
            DatasetConfig::new("all", LayoutKind::Amax)
                .with_memtable_budget(16 * 1024)
                .with_page_size(8 * 1024),
        );
        for i in 0..400i64 {
            shards[(i as usize) % 4].insert(sample_doc(i)).unwrap();
            reference.insert(sample_doc(i)).unwrap();
        }
        for shard in &shards {
            shard.flush().unwrap();
        }
        reference.flush().unwrap();

        let queries = [
            Query::count_star(),
            Query::count_star().group_by("grp"),
            Query::select([Aggregate::Max(Path::parse("score"))])
                .group_by("grp")
                .top_k(3),
            Query::select([
                Aggregate::Count,
                Aggregate::Avg(Path::parse("score")),
                Aggregate::Min(Path::parse("score")),
            ])
            .group_by("grp"),
            Query::count_star().with_filter(Expr::ge("score", 50)),
        ];
        let refs: Vec<&LsmDataset> = shards.iter().collect();
        for (i, q) in queries.iter().enumerate() {
            for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
                let engine = QueryEngine::new(mode);
                let sharded = engine.execute(&refs[..], q).unwrap();
                let single = engine.execute(&reference, q).unwrap();
                assert_eq!(sharded, single, "query {i} ({mode:?})");
                // Snapshot-based fan-out agrees too.
                let snapshots: Vec<Snapshot> = shards.iter().map(LsmDataset::snapshot).collect();
                let via_snapshots = engine.execute(&snapshots[..], q).unwrap();
                assert_eq!(via_snapshots, single, "query {i} ({mode:?}, snapshots)");
            }
        }
    }

    #[test]
    fn empty_and_single_shard_cases() {
        let engine = QueryEngine::new(ExecMode::Compiled);
        let none: [&LsmDataset; 0] = [];
        assert!(engine.execute(&none[..], &Query::count_star()).unwrap().is_empty());
        let ds = build_dataset(LayoutKind::Amax);
        let one = [&ds];
        let rows = engine.execute(&one[..], &Query::count_star()).unwrap();
        assert_eq!(rows[0].agg(), &Value::Int(400));
    }

    #[test]
    fn index_probe_plans_route_and_agree_with_scans() {
        let ds = LsmDataset::new(
            DatasetConfig::new("tweets", LayoutKind::Amax)
                .with_memtable_budget(16 * 1024)
                .with_page_size(8 * 1024)
                .with_secondary_index(Path::parse("timestamp")),
        );
        for i in 0..300i64 {
            ds.insert(doc!({"id": i, "timestamp": (1000 + i), "likes": (i % 50)}))
                .unwrap();
        }
        ds.flush().unwrap();
        let q = Query::count_star().with_filter(Expr::between("timestamp", 1100, 1199));
        let engine = QueryEngine::with_options(
            ExecMode::Compiled,
            PlannerOptions::with_access_path(AccessPathChoice::ForceIndex),
        );
        let plan_text = engine.explain(&ds, &q).unwrap();
        assert!(
            plan_text.contains("secondary-index range probe on `timestamp`"),
            "{plan_text}"
        );
        assert!(plan_text.contains("selectivity"), "{plan_text}");
        let via_index = engine.execute(&ds, &q).unwrap();
        assert_eq!(via_index[0].agg(), &Value::Int(100));
        // The same query forced to scan agrees.
        let scan_engine = QueryEngine::with_options(
            ExecMode::Compiled,
            PlannerOptions::with_access_path(AccessPathChoice::ForceScan),
        );
        assert!(scan_engine.explain(&ds, &q).unwrap().contains("full scan"));
        assert_eq!(scan_engine.execute(&ds, &q).unwrap(), via_index);
        // The cost-based default agrees whichever path it picks, and its
        // explain names the path and the estimate.
        let auto = QueryEngine::new(ExecMode::Compiled);
        assert_eq!(auto.execute(&ds, &q).unwrap(), via_index);
        let text = auto.explain(&ds, &q).unwrap();
        assert!(text.contains("estimate"), "{text}");
        assert!(text.contains("[auto]"), "{text}");
        // A snapshot target cannot probe: it plans a scan and still agrees.
        let snapshot = ds.snapshot();
        assert_eq!(engine.execute(&snapshot, &q).unwrap(), via_index);
    }

    #[test]
    fn index_probes_on_array_paths_stay_sound() {
        // Existential semantics on a multi-valued indexed path: the record
        // {"ts": [100, 200]} matches `ts[*] BETWEEN 120 AND 180` with two
        // different witnesses. The planner must not intersect the conjuncts'
        // bounds into [120, 180] (which contains neither indexed value) —
        // the probe has to return a superset of the scan result.
        let ds = LsmDataset::new(
            DatasetConfig::new("multi", LayoutKind::Amax)
                .with_page_size(8 * 1024)
                .with_secondary_index(Path::parse("ts[*]")),
        );
        ds.insert(doc!({"id": 1, "ts": [100, 200]})).unwrap();
        ds.insert(doc!({"id": 2, "ts": [150]})).unwrap();
        ds.insert(doc!({"id": 3, "ts": [10, 20]})).unwrap();
        ds.flush().unwrap();
        let q = Query::count_star().with_filter(Expr::between("ts[*]", 120, 180));
        let engine = QueryEngine::with_options(
            ExecMode::Compiled,
            PlannerOptions::with_access_path(AccessPathChoice::ForceIndex),
        );
        assert!(engine.explain(&ds, &q).unwrap().contains("range probe on `ts[*]`"));
        let via_index = engine.execute(&ds, &q).unwrap();
        let scan_engine = QueryEngine::with_options(
            ExecMode::Compiled,
            PlannerOptions::with_access_path(AccessPathChoice::ForceScan),
        );
        let via_scan = scan_engine.execute(&ds, &q).unwrap();
        assert_eq!(via_index, via_scan);
        assert_eq!(via_index[0].agg(), &Value::Int(2), "records 1 and 2 match");
    }

    #[test]
    fn raw_select_returns_key_ordered_rows_in_both_modes() {
        let ds = build_dataset(LayoutKind::Amax);
        let q = Query::select_paths(["caller", "score"])
            .with_filter(Expr::ge("score", 90))
            .order_by_key();
        let rows = both_modes(&ds, &q);
        let expected: Vec<i64> = (0..400i64).filter(|i| i % 100 >= 90).collect();
        assert_eq!(rows.len(), expected.len());
        for (row, want_id) in rows.iter().zip(&expected) {
            assert_eq!(row.group, Some(Value::Int(*want_id)), "key order");
            assert_eq!(row.aggs.len(), 2);
            assert!(matches!(row.aggs[0], Value::String(_)), "{:?}", row.aggs);
            assert!(row.aggs[1].as_int().unwrap() >= 90);
        }
        // A missing path projects as Null.
        let q = Query::select_paths(["nonexistent"]).with_limit(3);
        let rows = both_modes(&ds, &q);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.aggs == vec![Value::Null]));
    }

    #[test]
    fn raw_select_limit_agrees_across_engines_and_shards() {
        let shards: Vec<LsmDataset> = (0..4)
            .map(|i| {
                LsmDataset::new(
                    DatasetConfig::new(format!("sel-shard-{i}"), LayoutKind::Amax)
                        .with_memtable_budget(16 * 1024)
                        .with_page_size(8 * 1024),
                )
            })
            .collect();
        let single = LsmDataset::new(
            DatasetConfig::new("sel-single", LayoutKind::Amax)
                .with_memtable_budget(16 * 1024)
                .with_page_size(8 * 1024),
        );
        for i in 0..300i64 {
            let doc = sample_doc(i);
            shards[(i as usize) % 4].insert(doc.clone()).unwrap();
            single.insert(doc).unwrap();
        }
        for ds in shards.iter().chain(std::iter::once(&single)) {
            ds.flush().unwrap();
        }
        let refs: Vec<&LsmDataset> = shards.iter().collect();
        for limit in [1usize, 7, 50, 1000] {
            let q = Query::select_paths(["score"])
                .with_filter(Expr::ge("score", 30))
                .order_by_key()
                .with_limit(limit);
            let reference = QueryEngine::new(ExecMode::Compiled).execute(&single, &q).unwrap();
            for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
                let engine = QueryEngine::new(mode);
                assert_eq!(engine.execute(&single, &q).unwrap(), reference, "{mode:?}");
                // The sharded fan-out merges per-shard key-ordered streams;
                // keys partition by shard, so the merge equals the single run.
                let sharded = engine.execute(&refs[..], &q).unwrap();
                assert_eq!(sharded, reference, "sharded {mode:?} limit {limit}");
            }
        }
    }

    #[test]
    fn raw_select_through_an_index_probe_matches_the_scan() {
        let ds = LsmDataset::new(
            DatasetConfig::new("sel-idx", LayoutKind::Amax)
                .with_memtable_budget(16 * 1024)
                .with_page_size(8 * 1024)
                .with_secondary_index(Path::parse("timestamp")),
        );
        for i in 0..300i64 {
            ds.insert(doc!({"id": i, "timestamp": (1000 + i), "likes": (i % 50)}))
                .unwrap();
        }
        ds.flush().unwrap();
        let q = Query::select_paths(["likes"])
            .with_filter(Expr::between("timestamp", 1100, 1159))
            .order_by_key()
            .with_limit(10);
        let probe = QueryEngine::with_options(
            ExecMode::Compiled,
            PlannerOptions::with_access_path(AccessPathChoice::ForceIndex),
        );
        let scan = QueryEngine::with_options(
            ExecMode::Compiled,
            PlannerOptions::with_access_path(AccessPathChoice::ForceScan),
        );
        assert!(probe.explain(&ds, &q).unwrap().contains("range probe"), "probe routes");
        let via_probe = probe.execute(&ds, &q).unwrap();
        let via_scan = scan.execute(&ds, &q).unwrap();
        assert_eq!(via_probe, via_scan);
        assert_eq!(via_probe.len(), 10);
        assert_eq!(via_probe[0].group, Some(Value::Int(100)));
    }

    #[test]
    fn invalid_plans_surface_as_invalid_plan_errors() {
        let ds = build_dataset(LayoutKind::Amax);
        let engine = QueryEngine::new(ExecMode::Compiled);
        let err = engine.execute(&ds, &Query::new()).unwrap_err();
        assert!(matches!(err, Error::InvalidPlan(_)), "{err}");
        assert!(err.to_string().contains("invalid query plan"));
    }
}
