//! # query — compositional analytical queries over LSM datasets
//!
//! The paper's evaluation runs a family of analytical queries (COUNT(*),
//! filtered counts, grouped aggregates over possibly-unnested arrays, top-k
//! by aggregate) against datasets stored in the four layouts, and §5 shows
//! that the *execution model* matters as much as the layout. This crate
//! reproduces that contrast behind a compositional query API:
//!
//! * [`Query`] — the logical plan: a predicate [`Expr`] tree
//!   (`AND`/`OR`/`NOT` over comparisons, `EXISTS`, `CONTAINS`, `LENGTH`), an
//!   optional `UNNEST`, an optional group key, and **any number of
//!   aggregates** per query ([`Aggregate`], including `SUM`/`AVG` with
//!   mergeable `(sum, count)` partials);
//! * [`physical`] — the planner: validates the logical plan, derives the
//!   pushed-down projection from the expression tree, and makes a
//!   **cost-based** access-path choice — full scan, key-only scan for
//!   `COUNT(*)`, or a secondary-index range probe — by estimating matching
//!   records from each component's column statistics (the fig. 15
//!   scan-vs-probe crossover; [`AccessPathChoice`] forces either path).
//!   Scans additionally **zone-map-prune**: a component whose statistics
//!   prove no record can match the filter is skipped without reading a
//!   single page. [`Query::explain`] renders the chosen
//!   [`physical::PhysicalPlan`] including the estimate;
//! * [`QueryEngine`] — the single execution entry point:
//!   [`QueryEngine::execute`] accepts any [`QueryTarget`] (a snapshot, a
//!   dataset, per-shard snapshots, or sharded datasets) and routes the same
//!   physical plan through the right access path, fanning out one thread per
//!   shard and merging per-group partial aggregates exactly.
//!
//! Two execution modes run every plan ([`ExecMode`]):
//!
//! * [`ExecMode::Interpreted`] — a classic operator pipeline
//!   (scan → filter → unnest → project → group) where every operator is a
//!   boxed trait object that materialises its full output batch before the
//!   next operator runs;
//! * [`ExecMode::Compiled`] — the "code generation" mode: the plan is
//!   lowered once into a fused, monomorphised pipeline with pre-resolved
//!   field accessors, and the data is processed in a single pass with no
//!   intermediate materialisation. Rust closure fusion stands in for the
//!   Truffle AST + JIT of the paper (see DESIGN.md §2); the property being
//!   measured — per-tuple interpretation overhead vs. specialised code — is
//!   the same.
//!
//! Group-by (the pipeline breaker) is executed by the engine itself in both
//! modes, exactly as in the paper where code generation stops at the first
//! pipeline breaker.
//!
//! ```
//! use docmodel::{doc, Path};
//! use lsm::{DatasetConfig, LsmDataset};
//! use query::{Aggregate, ExecMode, Expr, Query, QueryEngine};
//! use storage::LayoutKind;
//!
//! let ds = LsmDataset::new(DatasetConfig::new("scores", LayoutKind::Amax));
//! for i in 0..100i64 {
//!     ds.insert(doc!({"id": i, "grp": (format!("g{}", i % 3)), "score": (i % 10)})).unwrap();
//! }
//! ds.flush().unwrap();
//!
//! // SELECT grp, COUNT(*), MAX(score), AVG(score) WHERE score >= 5 GROUP BY grp
//! let q = Query::select([
//!         Aggregate::Count,
//!         Aggregate::Max(Path::parse("score")),
//!         Aggregate::Avg(Path::parse("score")),
//!     ])
//!     .with_filter(Expr::ge("score", 5))
//!     .group_by("grp");
//! let rows = QueryEngine::new(ExecMode::Compiled).execute(&ds, &q).unwrap();
//! assert_eq!(rows.len(), 3);
//! assert_eq!(rows[0].aggs.len(), 3);
//! ```
//!
//! ## Snapshots and sharded execution
//!
//! Both engines execute against [`lsm::Snapshot`]s — consistent
//! point-in-time views that concurrent ingestion, flushes and merges cannot
//! disturb. A sharded target fans the plan out over the partitions (one
//! thread each) and merges the per-shard **partial aggregates** — counts
//! sum, max/min combine, `SUM`/`AVG` carry exact `(sum, count)` partials —
//! before the global order-by/limit is applied. Because shards partition by
//! primary key, every group's partials come from disjoint record sets and
//! the merged result equals a single-dataset run. Index-probe plans fan out
//! the same way: each shard probes its own secondary index and contributes
//! partials.

pub mod compiled;
pub mod expr;
pub mod interp;
pub mod physical;
pub mod plan;

pub use expr::{CmpOp, Expr};
pub use physical::{
    AccessEstimate, AccessPath, AccessPathChoice, ComponentPlanInfo, PhysicalPlan, PlanContext,
    PlannerOptions,
};
pub use plan::{AggSpec, Aggregate, ExecMode, Query, QueryRow};

use std::fmt;
use std::ops::Bound;

use docmodel::Value;
use lsm::{LsmDataset, Snapshot};

use physical::{finalize, key_count_partials, merge_partials, GroupPartials};

/// Error type of the query layer: plan validation failures are separated
/// from storage/decode failures, so callers can tell a malformed query from
/// a broken dataset.
#[derive(Debug)]
pub enum Error {
    /// The logical plan failed the planner's validation.
    InvalidPlan(String),
    /// The storage layer failed while reading (page decode, I/O, missing
    /// index).
    Storage(encoding::DecodeError),
}

impl Error {
    /// A plan-validation error.
    pub fn invalid_plan(msg: impl Into<String>) -> Error {
        Error::InvalidPlan(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidPlan(msg) => write!(f, "invalid query plan: {msg}"),
            Error::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::InvalidPlan(_) => None,
            Error::Storage(e) => Some(e),
        }
    }
}

impl From<encoding::DecodeError> for Error {
    fn from(e: encoding::DecodeError) -> Error {
        Error::Storage(e)
    }
}

/// Result alias of the query layer.
pub type Result<T> = std::result::Result<T, Error>;

/// What a query executes against: one consistent snapshot, one dataset
/// (enabling index probes), or the partitions of a sharded dataset.
///
/// Constructed implicitly via `From` — pass `&snapshot`, `&dataset`,
/// `&snapshots[..]` or `&shards[..]` straight to [`QueryEngine::execute`].
pub enum QueryTarget<'a> {
    /// A single consistent snapshot. Index probes are unavailable (a
    /// snapshot carries no secondary index), so plans fall back to scans.
    Snapshot(&'a Snapshot),
    /// A single dataset: snapshots are taken as needed and the dataset's
    /// secondary index is available to the planner.
    Dataset(&'a LsmDataset),
    /// Per-shard snapshots of a hash-partitioned dataset (scan-only).
    Snapshots(&'a [Snapshot]),
    /// The partitions of a hash-partitioned dataset; every access path,
    /// including index probes, fans out with partial-aggregate merging.
    Shards(&'a [&'a LsmDataset]),
}

impl<'a> From<&'a Snapshot> for QueryTarget<'a> {
    fn from(s: &'a Snapshot) -> Self {
        QueryTarget::Snapshot(s)
    }
}
impl<'a> From<&'a LsmDataset> for QueryTarget<'a> {
    fn from(d: &'a LsmDataset) -> Self {
        QueryTarget::Dataset(d)
    }
}
impl<'a> From<&'a [Snapshot]> for QueryTarget<'a> {
    fn from(s: &'a [Snapshot]) -> Self {
        QueryTarget::Snapshots(s)
    }
}
impl<'a> From<&'a [&'a LsmDataset]> for QueryTarget<'a> {
    fn from(s: &'a [&'a LsmDataset]) -> Self {
        QueryTarget::Shards(s)
    }
}

impl QueryTarget<'_> {
    fn plan_context(&self) -> PlanContext {
        match self {
            QueryTarget::Snapshot(s) => PlanContext::for_snapshot(s),
            QueryTarget::Snapshots(s) => PlanContext::for_snapshots(s),
            QueryTarget::Dataset(d) => PlanContext::for_dataset(d),
            QueryTarget::Shards(shards) => PlanContext::for_shards(shards),
        }
    }
}

/// The execution entry point: plans a [`Query`] for its target and runs the
/// physical plan in the configured [`ExecMode`], routing between full scans,
/// key-only scans, secondary-index range probes and sharded fan-out.
#[derive(Debug, Clone, Copy)]
pub struct QueryEngine {
    mode: ExecMode,
    options: PlannerOptions,
}

impl QueryEngine {
    /// An engine with default planner options (all optimisations on).
    pub fn new(mode: ExecMode) -> QueryEngine {
        QueryEngine { mode, options: PlannerOptions::default() }
    }

    /// An engine with explicit planner options (the benchmarks flip
    /// projection pushdown and index routing off to measure them).
    pub fn with_options(mode: ExecMode, options: PlannerOptions) -> QueryEngine {
        QueryEngine { mode, options }
    }

    /// The configured execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Plan and execute a query against any [`QueryTarget`].
    pub fn execute<'a>(
        &self,
        target: impl Into<QueryTarget<'a>>,
        query: &Query,
    ) -> Result<Vec<QueryRow>> {
        let target = target.into();
        let plan = physical::plan(query, &target.plan_context(), &self.options)?;
        // An empty shard list has no partitions to aggregate over — return
        // no rows rather than a default global aggregate.
        if matches!(&target, QueryTarget::Snapshots([]) | QueryTarget::Shards([])) {
            return Ok(Vec::new());
        }
        let partials = match target {
            QueryTarget::Snapshot(snapshot) => self.partials_for_snapshot(snapshot, &plan)?,
            QueryTarget::Dataset(dataset) => self.partials_for_dataset(dataset, &plan)?,
            QueryTarget::Snapshots(snapshots) => {
                self.fan_out(snapshots, &plan, |engine, snapshot, plan| {
                    engine.partials_for_snapshot(snapshot, plan)
                })?
            }
            QueryTarget::Shards(shards) => {
                self.fan_out(shards, &plan, |engine, dataset, plan| {
                    engine.partials_for_dataset(dataset, plan)
                })?
            }
        };
        Ok(finalize(partials, &plan))
    }

    /// Plan a query for the target and render the physical plan (`EXPLAIN`):
    /// the chosen access path, the pushed-down projection, and the operator
    /// chain.
    pub fn explain<'a>(
        &self,
        target: impl Into<QueryTarget<'a>>,
        query: &Query,
    ) -> Result<String> {
        let target = target.into();
        physical::plan(query, &target.plan_context(), &self.options).map(|p| p.describe())
    }

    /// Fan a plan out over several partitions, one thread each, and merge
    /// the per-partition group partials.
    fn fan_out<T: Sync>(
        &self,
        parts: &[T],
        plan: &PhysicalPlan,
        run: impl Fn(&QueryEngine, &T, &PhysicalPlan) -> Result<GroupPartials> + Send + Sync,
    ) -> Result<GroupPartials> {
        if parts.is_empty() {
            return Ok(GroupPartials::new());
        }
        if parts.len() == 1 {
            return run(self, &parts[0], plan);
        }
        let results: Vec<Result<GroupPartials>> = std::thread::scope(|scope| {
            let run = &run;
            let handles: Vec<_> = parts
                .iter()
                .map(|part| scope.spawn(move || run(self, part, plan)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sharded query thread panicked"))
                .collect()
        });
        let mut merged = GroupPartials::new();
        for partial in results {
            merge_partials(&mut merged, partial?);
        }
        Ok(merged)
    }

    /// Execute the plan's access path against a dataset (index probes
    /// included) and aggregate in the configured mode.
    fn partials_for_dataset(
        &self,
        dataset: &LsmDataset,
        plan: &PhysicalPlan,
    ) -> Result<GroupPartials> {
        match &plan.access {
            AccessPath::IndexRange { lo, hi, .. } => {
                let docs = dataset.secondary_range_bounds(
                    as_bound_ref(lo),
                    as_bound_ref(hi),
                    plan.projection.as_deref(),
                )?;
                Ok(self.aggregate(docs, plan))
            }
            _ => self.partials_for_snapshot(&dataset.snapshot(), plan),
        }
    }

    /// Execute a scan-shaped access path against a snapshot and aggregate in
    /// the configured mode.
    fn partials_for_snapshot(
        &self,
        snapshot: &Snapshot,
        plan: &PhysicalPlan,
    ) -> Result<GroupPartials> {
        match &plan.access {
            AccessPath::KeyOnlyScan => Ok(key_count_partials(snapshot.count()?, plan)),
            AccessPath::FullScan => {
                // Zone-map pruning: skip components whose statistics prove
                // no record can match. The flags come from the execution
                // snapshot's own components, so planning-time staleness can
                // never skip the wrong component.
                let docs = match &plan.filter {
                    Some(filter) if plan.zone_map_pruning => {
                        let infos: Vec<ComponentPlanInfo> = snapshot
                            .components()
                            .iter()
                            .map(|c| ComponentPlanInfo::of(c))
                            .collect();
                        let skip = physical::prune_flags(&infos, filter);
                        snapshot.scan_pruned(plan.projection.as_deref(), &skip)?
                    }
                    _ => snapshot.scan(plan.projection.as_deref())?,
                };
                Ok(self.aggregate(docs, plan))
            }
            AccessPath::IndexRange { .. } => Err(Error::invalid_plan(
                "an index-probe plan needs a dataset target, not a bare snapshot",
            )),
        }
    }

    /// The mode-specific aggregation over an acquired batch: the fused
    /// single-pass loop or the materialising operator pipeline.
    fn aggregate(&self, docs: Vec<Value>, plan: &PhysicalPlan) -> GroupPartials {
        match self.mode {
            ExecMode::Compiled => compiled::aggregate_docs(docs.iter(), plan),
            ExecMode::Interpreted => interp::run_batch(docs, plan),
        }
    }
}

fn as_bound_ref(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::{doc, Path};
    use lsm::DatasetConfig;
    use storage::LayoutKind;

    fn sample_doc(i: i64) -> Value {
        doc!({
            "id": i,
            "grp": (format!("g{}", i % 7)),
            "score": (i % 100),
            "duration": (i % 900),
            "caller": (format!("caller{}", i % 23)),
            "games": [
                {"title": (format!("game{}", i % 7)), "consoles": ["PC", "PS4"]},
                {"title": (format!("game{}", (i + 1) % 7))}
            ],
            "text": (format!("text body {i} #jobs and more"))
        })
    }

    fn build_dataset(layout: LayoutKind) -> LsmDataset {
        let ds = LsmDataset::new(
            DatasetConfig::new("gamers", layout)
                .with_memtable_budget(16 * 1024)
                .with_page_size(8 * 1024),
        );
        for i in 0..400i64 {
            ds.insert(sample_doc(i)).unwrap();
        }
        ds.flush().unwrap();
        ds
    }

    fn both_modes(ds: &LsmDataset, q: &Query) -> Vec<QueryRow> {
        let compiled = QueryEngine::new(ExecMode::Compiled).execute(ds, q).unwrap();
        let interpreted = QueryEngine::new(ExecMode::Interpreted).execute(ds, q).unwrap();
        assert_eq!(compiled, interpreted, "engines disagree on {q:?}");
        compiled
    }

    #[test]
    fn count_star_matches_between_engines() {
        for layout in LayoutKind::ALL {
            let ds = build_dataset(layout);
            let rows = both_modes(&ds, &Query::count_star());
            assert_eq!(rows[0].agg(), &Value::Int(400), "{layout:?}");
        }
    }

    #[test]
    fn filtered_count_matches_between_engines() {
        let ds = build_dataset(LayoutKind::Amax);
        let q = Query::count_star().with_filter(Expr::ge("duration", 600));
        let rows = both_modes(&ds, &q);
        let expected = (0..400i64).filter(|i| i % 900 >= 600).count() as i64;
        assert_eq!(rows[0].agg(), &Value::Int(expected));
    }

    #[test]
    fn group_by_with_unnest_matches_between_engines() {
        for layout in [LayoutKind::Vb, LayoutKind::Apax, LayoutKind::Amax] {
            let ds = build_dataset(layout);
            // SELECT t.title, COUNT(*) FROM ds UNNEST games AS t GROUP BY t.title
            let q = Query::count_star()
                .with_unnest("games")
                .group_by_element("title")
                .top_k(3);
            let rows = both_modes(&ds, &q);
            assert_eq!(rows.len(), 3, "{layout:?}");
            // 400 records x 2 games each spread over 7 titles.
            assert!(rows[0].agg().as_int().unwrap() > 100);
        }
    }

    #[test]
    fn multi_aggregate_queries_return_one_value_per_aggregate() {
        let ds = build_dataset(LayoutKind::Amax);
        let q = Query::select([
            Aggregate::Count,
            Aggregate::Max(Path::parse("score")),
            Aggregate::Avg(Path::parse("score")),
            Aggregate::Sum(Path::parse("score")),
        ])
        .with_filter(Expr::and([Expr::ge("score", 50), Expr::exists("games")]))
        .group_by("grp")
        .top_k(3);
        let rows = both_modes(&ds, &q);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.aggs.len(), 4);
            let count = row.aggs[0].as_int().unwrap();
            let max = row.aggs[1].as_int().unwrap();
            let avg = match row.aggs[2] {
                Value::Double(d) => d,
                ref other => panic!("AVG must be a double, got {other:?}"),
            };
            let sum = row.aggs[3].as_int().unwrap();
            assert!(count > 0 && max >= 50 && avg >= 50.0);
            assert_eq!(sum as f64, avg * count as f64);
        }
    }

    #[test]
    fn contains_filter_and_max_length() {
        let ds = build_dataset(LayoutKind::Vb);
        let q = Query::select([Aggregate::MaxLength(Path::parse("text"))])
            .with_filter(Expr::contains("games[*].consoles[*]", "PC"))
            .group_by("caller")
            .top_k(5);
        let rows = both_modes(&ds, &q);
        assert_eq!(rows.len(), 5);
        assert!(rows[0].agg().as_int().unwrap() > 0);
    }

    #[test]
    fn complex_boolean_filters_match_a_scan_oracle() {
        let ds = build_dataset(LayoutKind::Apax);
        let filter = Expr::and([
            Expr::or([Expr::lt("score", 20), Expr::ge("score", 80)]),
            Expr::not(Expr::eq("grp", "g3")),
            Expr::length("text", CmpOp::Gt, 5),
        ]);
        let rows = both_modes(&ds, &Query::count_star().with_filter(filter.clone()));
        let oracle = (0..400i64)
            .map(sample_doc)
            .filter(|d| filter.matches(d))
            .count() as i64;
        assert_eq!(rows[0].agg(), &Value::Int(oracle));
    }

    #[test]
    fn sharded_execution_matches_single_dataset() {
        let shards: Vec<LsmDataset> = (0..4)
            .map(|i| {
                LsmDataset::new(
                    DatasetConfig::new(format!("shard-{i}"), LayoutKind::Amax)
                        .with_memtable_budget(16 * 1024)
                        .with_page_size(8 * 1024),
                )
            })
            .collect();
        let reference = LsmDataset::new(
            DatasetConfig::new("all", LayoutKind::Amax)
                .with_memtable_budget(16 * 1024)
                .with_page_size(8 * 1024),
        );
        for i in 0..400i64 {
            shards[(i as usize) % 4].insert(sample_doc(i)).unwrap();
            reference.insert(sample_doc(i)).unwrap();
        }
        for shard in &shards {
            shard.flush().unwrap();
        }
        reference.flush().unwrap();

        let queries = [
            Query::count_star(),
            Query::count_star().group_by("grp"),
            Query::select([Aggregate::Max(Path::parse("score"))])
                .group_by("grp")
                .top_k(3),
            Query::select([
                Aggregate::Count,
                Aggregate::Avg(Path::parse("score")),
                Aggregate::Min(Path::parse("score")),
            ])
            .group_by("grp"),
            Query::count_star().with_filter(Expr::ge("score", 50)),
        ];
        let refs: Vec<&LsmDataset> = shards.iter().collect();
        for (i, q) in queries.iter().enumerate() {
            for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
                let engine = QueryEngine::new(mode);
                let sharded = engine.execute(&refs[..], q).unwrap();
                let single = engine.execute(&reference, q).unwrap();
                assert_eq!(sharded, single, "query {i} ({mode:?})");
                // Snapshot-based fan-out agrees too.
                let snapshots: Vec<Snapshot> = shards.iter().map(LsmDataset::snapshot).collect();
                let via_snapshots = engine.execute(&snapshots[..], q).unwrap();
                assert_eq!(via_snapshots, single, "query {i} ({mode:?}, snapshots)");
            }
        }
    }

    #[test]
    fn empty_and_single_shard_cases() {
        let engine = QueryEngine::new(ExecMode::Compiled);
        let none: [&LsmDataset; 0] = [];
        assert!(engine.execute(&none[..], &Query::count_star()).unwrap().is_empty());
        let ds = build_dataset(LayoutKind::Amax);
        let one = [&ds];
        let rows = engine.execute(&one[..], &Query::count_star()).unwrap();
        assert_eq!(rows[0].agg(), &Value::Int(400));
    }

    #[test]
    fn index_probe_plans_route_and_agree_with_scans() {
        let ds = LsmDataset::new(
            DatasetConfig::new("tweets", LayoutKind::Amax)
                .with_memtable_budget(16 * 1024)
                .with_page_size(8 * 1024)
                .with_secondary_index(Path::parse("timestamp")),
        );
        for i in 0..300i64 {
            ds.insert(doc!({"id": i, "timestamp": (1000 + i), "likes": (i % 50)}))
                .unwrap();
        }
        ds.flush().unwrap();
        let q = Query::count_star().with_filter(Expr::between("timestamp", 1100, 1199));
        let engine = QueryEngine::with_options(
            ExecMode::Compiled,
            PlannerOptions::with_access_path(AccessPathChoice::ForceIndex),
        );
        let plan_text = engine.explain(&ds, &q).unwrap();
        assert!(
            plan_text.contains("secondary-index range probe on `timestamp`"),
            "{plan_text}"
        );
        assert!(plan_text.contains("selectivity"), "{plan_text}");
        let via_index = engine.execute(&ds, &q).unwrap();
        assert_eq!(via_index[0].agg(), &Value::Int(100));
        // The same query forced to scan agrees.
        let scan_engine = QueryEngine::with_options(
            ExecMode::Compiled,
            PlannerOptions::with_access_path(AccessPathChoice::ForceScan),
        );
        assert!(scan_engine.explain(&ds, &q).unwrap().contains("full scan"));
        assert_eq!(scan_engine.execute(&ds, &q).unwrap(), via_index);
        // The cost-based default agrees whichever path it picks, and its
        // explain names the path and the estimate.
        let auto = QueryEngine::new(ExecMode::Compiled);
        assert_eq!(auto.execute(&ds, &q).unwrap(), via_index);
        let text = auto.explain(&ds, &q).unwrap();
        assert!(text.contains("estimate"), "{text}");
        assert!(text.contains("[auto]"), "{text}");
        // A snapshot target cannot probe: it plans a scan and still agrees.
        let snapshot = ds.snapshot();
        assert_eq!(engine.execute(&snapshot, &q).unwrap(), via_index);
    }

    #[test]
    fn index_probes_on_array_paths_stay_sound() {
        // Existential semantics on a multi-valued indexed path: the record
        // {"ts": [100, 200]} matches `ts[*] BETWEEN 120 AND 180` with two
        // different witnesses. The planner must not intersect the conjuncts'
        // bounds into [120, 180] (which contains neither indexed value) —
        // the probe has to return a superset of the scan result.
        let ds = LsmDataset::new(
            DatasetConfig::new("multi", LayoutKind::Amax)
                .with_page_size(8 * 1024)
                .with_secondary_index(Path::parse("ts[*]")),
        );
        ds.insert(doc!({"id": 1, "ts": [100, 200]})).unwrap();
        ds.insert(doc!({"id": 2, "ts": [150]})).unwrap();
        ds.insert(doc!({"id": 3, "ts": [10, 20]})).unwrap();
        ds.flush().unwrap();
        let q = Query::count_star().with_filter(Expr::between("ts[*]", 120, 180));
        let engine = QueryEngine::with_options(
            ExecMode::Compiled,
            PlannerOptions::with_access_path(AccessPathChoice::ForceIndex),
        );
        assert!(engine.explain(&ds, &q).unwrap().contains("range probe on `ts[*]`"));
        let via_index = engine.execute(&ds, &q).unwrap();
        let scan_engine = QueryEngine::with_options(
            ExecMode::Compiled,
            PlannerOptions::with_access_path(AccessPathChoice::ForceScan),
        );
        let via_scan = scan_engine.execute(&ds, &q).unwrap();
        assert_eq!(via_index, via_scan);
        assert_eq!(via_index[0].agg(), &Value::Int(2), "records 1 and 2 match");
    }

    #[test]
    fn invalid_plans_surface_as_invalid_plan_errors() {
        let ds = build_dataset(LayoutKind::Amax);
        let engine = QueryEngine::new(ExecMode::Compiled);
        let err = engine.execute(&ds, &Query::new()).unwrap_err();
        assert!(matches!(err, Error::InvalidPlan(_)), "{err}");
        assert!(err.to_string().contains("invalid query plan"));
    }
}
