//! # query — analytical queries over LSM datasets, interpreted and compiled
//!
//! The paper's evaluation runs a small family of analytical queries
//! (COUNT(*), filtered counts, grouped aggregates over possibly-unnested
//! arrays, top-k by aggregate) against datasets stored in the four layouts,
//! and §5 shows that the *execution model* matters as much as the layout:
//! AsterixDB's interpreted, batch-at-a-time engine re-materialises tuples
//! between operators and re-assembles nested values, wiping out much of the
//! columnar I/O win, while generating code for the pipelining part of the
//! plan (Truffle in the paper) recovers it.
//!
//! This crate reproduces that contrast with two execution modes over the same
//! logical plan ([`Query`]):
//!
//! * [`interp::run_interpreted`] — a classic operator pipeline
//!   (scan → filter → unnest → project → group) where every operator is a
//!   boxed trait object that materialises its full output batch before the
//!   next operator runs;
//! * [`compiled::run_compiled`] — the "code generation" mode: the plan is
//!   lowered once into a fused, monomorphised pipeline with pre-resolved
//!   field accessors, and the data is processed in a single pass with no
//!   intermediate materialisation. Rust closure fusion stands in for the
//!   Truffle AST + JIT of the paper (see DESIGN.md §2); the property being
//!   measured — per-tuple interpretation overhead vs. specialised code — is
//!   the same.
//!
//! Group-by (the pipeline breaker) is executed by the engine itself in both
//! modes, exactly as in the paper where code generation stops at the first
//! pipeline breaker.

pub mod compiled;
pub mod interp;
pub mod plan;

pub use compiled::run_compiled;
pub use interp::run_interpreted;
pub use plan::{Aggregate, ExecMode, Predicate, Query, QueryRow};

use docmodel::Value;
use lsm::LsmDataset;

/// Error type for query execution.
pub type QueryError = encoding::DecodeError;
/// Result alias.
pub type Result<T> = std::result::Result<T, QueryError>;

/// Run a query in the given execution mode.
pub fn run(dataset: &LsmDataset, query: &Query, mode: ExecMode) -> Result<Vec<QueryRow>> {
    match mode {
        ExecMode::Interpreted => run_interpreted(dataset, query),
        ExecMode::Compiled => run_compiled(dataset, query),
    }
}

/// Answer a range query through the dataset's secondary index and aggregate
/// the qualifying records with the query's aggregate/group-by. Used by the
/// secondary-index experiments (Figures 15 and 16).
pub fn run_with_secondary_index(
    dataset: &LsmDataset,
    lo: &Value,
    hi: &Value,
    query: &Query,
) -> Result<Vec<QueryRow>> {
    let projection = query.projection_paths();
    let docs = dataset.secondary_range(lo, hi, Some(&projection))?;
    compiled::aggregate_docs(docs.iter(), query)
}
