//! The compiled engine: a fused, pre-resolved, single-pass pipeline.
//!
//! The paper generates a Truffle AST for the pipelining part of the plan
//! (scan → assign → unnest → project), executes it interpreted a few times
//! and lets the JVM JIT turn it into machine code. The observable property is
//! that per-tuple work becomes straight-line specialised code: field
//! accessors are resolved once, there is no operator dispatch and no
//! materialisation between operators, and only the pipeline breaker
//! (group-by) runs in the regular engine.
//!
//! In Rust we get the same effect by lowering the plan *once* into a fused
//! closure pipeline: all paths are cloned out of the plan up front, and the
//! record loop feeds the aggregation table directly.

use std::collections::BTreeMap;

use docmodel::cmp::OrderedValue;
use docmodel::{Path, Value};
use lsm::Snapshot;

use crate::interp::{finalize, AggState};
use crate::plan::{Query, QueryRow};
use crate::Result;

/// Execute a query with the compiled (fused) engine against a consistent
/// point-in-time snapshot.
pub fn run_compiled(snapshot: &Snapshot, query: &Query) -> Result<Vec<QueryRow>> {
    // Fast path for SELECT COUNT(*): only the primary keys are needed, which
    // for AMAX means reading Page 0 of each mega leaf.
    if query.filter.is_none()
        && query.unnest.is_none()
        && query.group_by.is_none()
        && matches!(query.agg, crate::plan::Aggregate::Count)
    {
        let count = snapshot.count()?;
        return Ok(vec![QueryRow {
            group: None,
            agg: Value::Int(count as i64),
        }]);
    }

    let projection = query.projection_paths();
    let docs = snapshot.scan(Some(&projection))?;
    aggregate_docs(docs.iter(), query)
}

/// The fused per-record loop shared by [`run_compiled`] and the
/// secondary-index execution path: filter, unnest and aggregate in one pass,
/// with every path pre-resolved outside the loop.
pub fn aggregate_docs<'a>(
    docs: impl Iterator<Item = &'a Value>,
    query: &Query,
) -> Result<Vec<QueryRow>> {
    // "Code generation": resolve all plan parameters once, before the loop.
    let filter = query.filter.clone();
    let unnest: Option<Path> = query.unnest.clone();
    let group_path = query.group_by.clone();
    let group_on_element = query.group_on_element;
    let agg_path = query.agg.path().cloned();
    let agg_on_element = query.agg_on_element;

    let mut groups: BTreeMap<Option<OrderedValue>, AggState> = BTreeMap::new();
    let update = |record: &Value, element: Option<&Value>, groups: &mut BTreeMap<Option<OrderedValue>, AggState>| {
        let resolve_one = |on_element: bool, path: &Path| -> Option<Value> {
            let base = if on_element { element? } else { record };
            if path.is_empty() {
                Some(base.clone())
            } else {
                path.evaluate(base).first().map(|v| (*v).clone())
            }
        };
        let key = match &group_path {
            Some(p) => match resolve_one(group_on_element, p) {
                Some(k) => Some(OrderedValue(k)),
                None => return,
            },
            None => None,
        };
        let input = agg_path
            .as_ref()
            .and_then(|p| resolve_one(agg_on_element, p));
        groups
            .entry(key)
            .or_insert_with(|| AggState::new(&query.agg))
            .update(input.as_ref());
    };

    for record in docs {
        if let Some(f) = &filter {
            if !f.matches(record) {
                continue;
            }
        }
        match &unnest {
            None => update(record, None, &mut groups),
            Some(path) => {
                for value in path.evaluate(record) {
                    match value {
                        Value::Array(elems) => {
                            for element in elems {
                                update(record, Some(element), &mut groups);
                            }
                        }
                        other => update(record, Some(other), &mut groups),
                    }
                }
            }
        }
    }
    finalize(groups, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Aggregate, Predicate};
    use crate::run_interpreted;
    use docmodel::doc;
    use lsm::{DatasetConfig, LsmDataset};
    use storage::LayoutKind;

    fn build_dataset(layout: LayoutKind) -> LsmDataset {
        let ds = LsmDataset::new(
            DatasetConfig::new("gamers", layout)
                .with_memtable_budget(16 * 1024)
                .with_page_size(8 * 1024),
        );
        for i in 0..400i64 {
            ds.insert(doc!({
                "id": i,
                "duration": (i % 900),
                "caller": (format!("caller{}", i % 23)),
                "games": [
                    {"title": (format!("game{}", i % 7)), "consoles": ["PC", "PS4"]},
                    {"title": (format!("game{}", (i + 1) % 7))}
                ],
                "text": (format!("text body {i} #jobs and more"))
            }))
            .unwrap();
        }
        ds.flush().unwrap();
        ds
    }

    #[test]
    fn count_star_matches_between_engines() {
        for layout in LayoutKind::ALL {
            let ds = build_dataset(layout);
            let q = Query::count_star();
            let compiled = run_compiled(&ds.snapshot(), &q).unwrap();
            let interpreted = run_interpreted(&ds.snapshot(), &q).unwrap();
            assert_eq!(compiled, interpreted, "{layout:?}");
            assert_eq!(compiled[0].agg, Value::Int(400));
        }
    }

    #[test]
    fn filtered_count_matches_between_engines() {
        let ds = build_dataset(LayoutKind::Amax);
        let q = Query::count_star().with_filter(Predicate::GreaterEq {
            path: Path::parse("duration"),
            value: Value::Int(600),
        });
        let compiled = run_compiled(&ds.snapshot(), &q).unwrap();
        let interpreted = run_interpreted(&ds.snapshot(), &q).unwrap();
        assert_eq!(compiled, interpreted);
        let expected = (0..400i64).filter(|i| i % 900 >= 600).count() as i64;
        assert_eq!(compiled[0].agg, Value::Int(expected));
    }

    #[test]
    fn group_by_with_unnest_matches_between_engines() {
        for layout in [LayoutKind::Vb, LayoutKind::Apax, LayoutKind::Amax] {
            let ds = build_dataset(layout);
            // SELECT t.title, COUNT(*) FROM ds UNNEST games AS t GROUP BY t.title
            let q = Query::count_star()
                .with_unnest(Path::parse("games"))
                .group_by_element(Path::parse("title"))
                .top_k(3);
            let compiled = run_compiled(&ds.snapshot(), &q).unwrap();
            let interpreted = run_interpreted(&ds.snapshot(), &q).unwrap();
            assert_eq!(compiled, interpreted, "{layout:?}");
            assert_eq!(compiled.len(), 3);
            // 400 records x 2 games each spread over 7 titles.
            assert!(compiled[0].agg.as_int().unwrap() > 100);
        }
    }

    #[test]
    fn top_k_group_aggregate_matches() {
        let ds = build_dataset(LayoutKind::Apax);
        // Top callers by maximum duration (cell Q2 shape).
        let q = Query::count_star()
            .group_by(Path::parse("caller"))
            .aggregate(Aggregate::Max(Path::parse("duration")))
            .top_k(10);
        let compiled = run_compiled(&ds.snapshot(), &q).unwrap();
        let interpreted = run_interpreted(&ds.snapshot(), &q).unwrap();
        assert_eq!(compiled, interpreted);
        assert_eq!(compiled.len(), 10);
        // Aggregates are sorted descending.
        for pair in compiled.windows(2) {
            assert!(
                docmodel::total_cmp(&pair[0].agg, &pair[1].agg) != std::cmp::Ordering::Less
            );
        }
    }

    #[test]
    fn contains_predicate_and_max_length() {
        let ds = build_dataset(LayoutKind::Vb);
        let q = Query::count_star()
            .with_filter(Predicate::Contains {
                path: Path::parse("games[*].consoles[*]"),
                value: Value::from("PC"),
            })
            .group_by(Path::parse("caller"))
            .aggregate(Aggregate::MaxLength(Path::parse("text")))
            .top_k(5);
        let compiled = run_compiled(&ds.snapshot(), &q).unwrap();
        let interpreted = run_interpreted(&ds.snapshot(), &q).unwrap();
        assert_eq!(compiled, interpreted);
        assert_eq!(compiled.len(), 5);
        assert!(compiled[0].agg.as_int().unwrap() > 0);
    }

    #[test]
    fn secondary_index_path_matches_scan_filter() {
        let ds = LsmDataset::new(
            DatasetConfig::new("tweets", LayoutKind::Amax)
                .with_memtable_budget(16 * 1024)
                .with_page_size(8 * 1024)
                .with_secondary_index(Path::parse("timestamp")),
        );
        for i in 0..300i64 {
            ds.insert(doc!({"id": i, "timestamp": (1000 + i), "likes": (i % 50)}))
                .unwrap();
        }
        ds.flush().unwrap();
        let q = Query::count_star();
        let via_index =
            crate::run_with_secondary_index(&ds, &Value::Int(1100), &Value::Int(1199), &q).unwrap();
        assert_eq!(via_index[0].agg, Value::Int(100));
    }
}
