//! The compiled engine: a fused, pre-resolved, single-pass pipeline.
//!
//! The paper generates a Truffle AST for the pipelining part of the plan
//! (scan → assign → unnest → project), executes it interpreted a few times
//! and lets the JVM JIT turn it into machine code. The observable property is
//! that per-tuple work becomes straight-line specialised code: field
//! accessors are resolved once, there is no operator dispatch and no
//! materialisation between operators, and only the pipeline breaker
//! (group-by) runs in the regular engine.
//!
//! In Rust we get the same effect by lowering the physical plan *once* into
//! a fused closure pipeline: all paths are cloned out of the plan up front,
//! and the record loop feeds the aggregation table directly. The loop
//! **pulls** from the access stage's streaming cursor — one record in
//! flight, one decoded leaf per component resident — so the contrast with
//! [`crate::interp`] is purely the per-tuple execution model, exactly what
//! §5 of the paper measures. (Projection plans have no pipeline breaker
//! and no per-tuple interpretation contrast; both modes share one
//! projection loop in the engine crate root.)

use docmodel::cmp::OrderedValue;
use docmodel::{Path, Value};

use crate::physical::{new_states, GroupPartials, PhysicalPlan};
use crate::Result;

/// The fused per-record loop shared by the scan and index-probe access
/// paths: filter, unnest and aggregate in one pass, with every path
/// pre-resolved outside the loop. Pulls the stream record by record; no
/// batch is ever materialised.
pub(crate) fn aggregate_stream(
    docs: impl Iterator<Item = Result<Value>>,
    plan: &PhysicalPlan,
) -> Result<GroupPartials> {
    // "Code generation": resolve all plan parameters once, before the loop.
    // The filter here is the residual only — sargable conjuncts were pushed
    // into the scan (non-scan access paths keep the whole filter residual).
    let filter = plan.residual.clone();
    let unnest: Option<Path> = plan.unnest.clone();
    let group_path = plan.group_by.clone();
    let group_on_element = plan.group_on_element;
    let agg_inputs: Vec<(bool, Option<Path>)> = plan
        .aggregates
        .iter()
        .map(|s| (s.on_element, s.agg.path().cloned()))
        .collect();

    let mut groups = GroupPartials::new();
    let update = |record: &Value, element: Option<&Value>, groups: &mut GroupPartials| {
        let resolve_one = |on_element: bool, path: &Path| -> Option<Value> {
            let base = if on_element { element? } else { record };
            if path.is_empty() {
                Some(base.clone())
            } else {
                path.evaluate(base).first().map(|v| (*v).clone())
            }
        };
        let key = match &group_path {
            Some(p) => match resolve_one(group_on_element, p) {
                Some(k) => Some(OrderedValue(k)),
                None => return,
            },
            None => None,
        };
        let states = groups.entry(key).or_insert_with(|| new_states(plan));
        for (state, (on_element, path)) in states.iter_mut().zip(&agg_inputs) {
            let input = path.as_ref().and_then(|p| resolve_one(*on_element, p));
            state.update(input.as_ref());
        }
    };

    for record in docs {
        let record = record?;
        if let Some(f) = &filter {
            if !f.matches(&record) {
                continue;
            }
        }
        match &unnest {
            None => update(&record, None, &mut groups),
            Some(path) => {
                for value in path.evaluate(&record) {
                    match value {
                        Value::Array(elems) => {
                            for element in elems {
                                update(&record, Some(element), &mut groups);
                            }
                        }
                        other => update(&record, Some(other), &mut groups),
                    }
                }
            }
        }
    }
    Ok(groups)
}

