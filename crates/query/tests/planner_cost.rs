//! Differential test fleet for statistics-driven planning.
//!
//! The cost-based access-path choice and zone-map pruning are pure
//! *performance* decisions — they may never change an answer. This suite
//! locks that in from three directions:
//!
//! * a property test running random documents × range-heavy filters ×
//!   aggregate lists through every `AccessPathChoice` with pruning on and
//!   off, against a pruning-disabled ForceScan oracle — before and after a
//!   merge reshuffles the components;
//! * the multi-valued probe regression folded in from PR 3's one-off
//!   `dup_probe_test.rs` (a record with two indexed values inside the probe
//!   range must be counted once);
//! * I/O-level assertions that a component whose statistics are disjoint
//!   from the filter range is skipped without reading a single page, and
//!   that the cost model's `EXPLAIN` output picks the right path at both
//!   selectivity extremes (the fig. 15 crossover).

mod support;

use proptest::prelude::*;

use docmodel::{doc, Path, Value};
use lsm::{DatasetConfig, LsmDataset};
use query::{
    AccessPathChoice, ExecMode, Expr, PlannerOptions, Query, QueryEngine,
};
use storage::LayoutKind;

use support::{
    arb_aggregate, arb_doc_body, build_doc, dataset, dataset_indexed_on, range_heavy_expr,
};

/// Engines for every (access-path, pruning) combination under test. The
/// `pruning: false` oracle must *read everything for real*, so it also
/// turns filter pushdown off — otherwise per-leaf zone maps would let it
/// skip the same pages component pruning would have.
fn engine(mode: ExecMode, choice: AccessPathChoice, pruning: bool) -> QueryEngine {
    QueryEngine::with_options(
        mode,
        PlannerOptions {
            access_path: choice,
            zone_map_pruning: pruning,
            filter_pushdown: pruning,
            ..Default::default()
        },
    )
}

// ForceIndex == ForceScan == Auto, pruned == unpruned — over random
// documents, range filters and aggregate lists, with updates spread over
// several flushes (overlapping components) and again after a full merge
// reshuffles them.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn access_paths_and_pruning_never_change_answers(
        bodies in prop::collection::vec(arb_doc_body(), 24..56),
        update_bodies in prop::collection::vec(arb_doc_body(), 0..12),
        filter in range_heavy_expr(),
        aggs in prop::collection::vec(arb_aggregate(), 1..3),
        group in prop_oneof![Just(false), Just(true)],
    ) {
        let ds = dataset("planner-cost", true);
        // First batch, sealed into its own component.
        let half = bodies.len() / 2;
        for (i, body) in bodies[..half].iter().enumerate() {
            ds.insert(build_doc(i as i64, body)).unwrap();
        }
        ds.flush().unwrap();
        // Updates to existing keys: the next component's key range overlaps
        // the first one's, which must disable pruning where skipping could
        // resurrect the old versions.
        for (i, body) in update_bodies.iter().enumerate() {
            ds.insert(build_doc((i % half.max(1)) as i64, body)).unwrap();
        }
        // Second batch on top.
        for (i, body) in bodies[half..].iter().enumerate() {
            ds.insert(build_doc((half + i) as i64, body)).unwrap();
        }
        ds.flush().unwrap();

        let mut query = Query::select(aggs).with_filter(filter);
        if group {
            query = query.group_by("grp");
        }

        let check = |label: &str| {
            let oracle = engine(ExecMode::Compiled, AccessPathChoice::ForceScan, false)
                .execute(&ds, &query)
                .unwrap();
            for choice in [
                AccessPathChoice::Auto,
                AccessPathChoice::ForceIndex,
                AccessPathChoice::ForceScan,
            ] {
                for pruning in [true, false] {
                    for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
                        let rows = engine(mode, choice, pruning)
                            .execute(&ds, &query)
                            .unwrap();
                        prop_assert_eq!(
                            &oracle, &rows,
                            "{}: {:?}/pruning={}/{:?} diverged on {:?}",
                            label, choice, pruning, mode, query
                        );
                    }
                }
            }
            // Planning stays total and the estimate is always rendered.
            let text = engine(ExecMode::Compiled, AccessPathChoice::Auto, true)
                .explain(&ds, &query)
                .unwrap();
            prop_assert!(text.contains("estimate"), "{}", text);
        };

        check("multi-component");
        // A merge rewrites the components (and their statistics) — nothing
        // may change.
        ds.compact_fully().unwrap();
        check("post-merge");
    }
}

/// Folded in from PR 3's `dup_probe_test.rs`: both indexed values of one
/// record fall inside the probe range; the probe must count the record
/// once. (The fix deduplicates keys in `SecondaryIndex::range_bounds`.)
#[test]
fn multi_valued_probe_does_not_double_count() {
    let ds = dataset_indexed_on("multi", "ts[*]");
    ds.insert(doc!({"id": 1, "ts": [150, 160]})).unwrap();
    ds.flush().unwrap();
    let q = Query::count_star().with_filter(Expr::ge("ts[*]", 120));
    let via_index = engine(ExecMode::Compiled, AccessPathChoice::ForceIndex, true)
        .execute(&ds, &q)
        .unwrap();
    let via_scan = engine(ExecMode::Compiled, AccessPathChoice::ForceScan, true)
        .execute(&ds, &q)
        .unwrap();
    assert_eq!(via_index, via_scan, "index probe disagrees with scan");
    assert_eq!(via_index[0].agg(), &Value::Int(1), "one record, one count");
}

/// A component whose statistics are disjoint from the filter's implied
/// range is never read: zero pages when every component is disjoint, and
/// only the matching component's pages otherwise. The pruning-disabled
/// oracle returns the same rows while reading strictly more.
#[test]
fn zone_map_pruning_reads_zero_pages_for_disjoint_components() {
    let ds = LsmDataset::new(
        DatasetConfig::new("zonemap", LayoutKind::Amax)
            .with_memtable_budget(usize::MAX)
            .with_page_size(4 * 1024),
    );
    // Two components with disjoint keys and disjoint score ranges.
    for i in 0..100i64 {
        ds.insert(doc!({"id": i, "score": i, "grp": (format!("g{}", i % 5))}))
            .unwrap();
    }
    ds.flush().unwrap();
    for i in 100..200i64 {
        ds.insert(doc!({"id": i, "score": (1_000 + i), "grp": (format!("g{}", i % 5))}))
            .unwrap();
    }
    ds.flush().unwrap();
    assert_eq!(ds.component_count(), 2);

    let pruned = engine(ExecMode::Compiled, AccessPathChoice::ForceScan, true);
    let unpruned = engine(ExecMode::Compiled, AccessPathChoice::ForceScan, false);
    let pages_read = |engine: &QueryEngine, q: &Query| {
        ds.cache().clear();
        ds.cache().store().reset_stats();
        let rows = engine.execute(&ds, q).unwrap();
        (rows, ds.io_stats().pages_read)
    };

    // Disjoint from *every* component: the filtered scan reads nothing.
    let nothing = Query::count_star().with_filter(Expr::between("score", 5_000, 6_000));
    let (rows, pages) = pages_read(&pruned, &nothing);
    assert_eq!(rows[0].agg(), &Value::Int(0));
    assert_eq!(pages, 0, "a fully-pruned scan must not read any page");
    let (oracle_rows, oracle_pages) = pages_read(&unpruned, &nothing);
    assert_eq!(rows, oracle_rows, "pruning changed an answer");
    assert!(oracle_pages > 0, "the oracle scans for real");

    // Disjoint from one component: only the other one is read.
    let second_only = Query::count_star().with_filter(Expr::ge("score", 1_000));
    let (rows, pages) = pages_read(&pruned, &second_only);
    assert_eq!(rows[0].agg(), &Value::Int(100));
    let (oracle_rows, oracle_pages) = pages_read(&unpruned, &second_only);
    assert_eq!(rows, oracle_rows);
    assert!(
        pages < oracle_pages,
        "pruned scan ({pages} pages) must read less than the oracle ({oracle_pages})"
    );

    // A path no record has: statistics prove absence, zero pages again.
    let absent = Query::count_star().with_filter(Expr::ge("no_such_field", 1));
    let (rows, pages) = pages_read(&pruned, &absent);
    assert_eq!(rows[0].agg(), &Value::Int(0));
    assert_eq!(pages, 0, "absence pruning must not read any page");
}

/// The memtable-aware CPU term (ROADMAP PR 4 open edge): in-memory records
/// cost no pages, but a scan must filter every one of them while a probe
/// touches only the matches. The estimate must surface them, charge the
/// scan more than the probe as the memtable grows, and flip a
/// near-crossover Auto decision to the probe once the memtable is large
/// enough — all without ever changing an answer.
#[test]
fn memtable_records_sharpen_the_auto_choice() {
    use query::physical::{self, PlanContext};

    let mut config = DatasetConfig::new("memtable-cost", LayoutKind::Amax)
        .with_memtable_budget(usize::MAX)
        .with_page_size(4 * 1024)
        .with_secondary_index(Path::parse("score"));
    config.amax.record_limit = 64;
    let ds = LsmDataset::new(config);
    for i in 0..600i64 {
        ds.insert(doc!({"id": i, "score": i, "grp": (format!("g{}", i % 7))}))
            .unwrap();
    }
    ds.flush().unwrap();
    ds.compact_fully().unwrap();

    // Flushed state: no memtable term in the estimate.
    let q = Query::count_star().with_filter(Expr::between("score", 100, 140));
    let flushed_ctx = PlanContext::for_dataset(&ds);
    assert_eq!(flushed_ctx.in_memory_records, 0);
    let opts = PlannerOptions::default();
    let flushed = physical::plan(&q, &flushed_ctx, &opts).unwrap();
    let flushed_est = flushed.estimate.clone().unwrap();
    assert!(!flushed.describe().contains("memtable"), "{}", flushed.describe());

    // Unflushed records appear in the context and the explain text, and the
    // CPU term charges the scan more than the probe (the probe only pays
    // for its matches).
    for i in 600..1_400i64 {
        ds.insert(doc!({"id": i, "score": i, "grp": (format!("g{}", i % 7))}))
            .unwrap();
    }
    let mem_ctx = PlanContext::for_dataset(&ds);
    assert_eq!(mem_ctx.in_memory_records, 800);
    let with_mem = physical::plan(&q, &mem_ctx, &opts).unwrap();
    let mem_est = with_mem.estimate.clone().unwrap();
    assert!(with_mem.describe().contains("memtable 800 rec"), "{}", with_mem.describe());
    let scan_growth = mem_est.scan_cost - flushed_est.scan_cost;
    let probe_growth = mem_est.probe_cost.unwrap() - flushed_est.probe_cost.unwrap();
    assert!(
        scan_growth > probe_growth && scan_growth > 0.0,
        "memtable must penalise the scan more: scan +{scan_growth:.2}, probe +{probe_growth:.2}"
    );

    // Find a width where the page-only model scans but the probe is close,
    // then grow the (synthetic) memtable until the CPU term flips Auto to
    // the probe — the crossover sharpening the ROADMAP asks for.
    let mut flipped = false;
    for hi in [140i64, 180, 240, 320, 440, 580] {
        let q = Query::count_star().with_filter(Expr::between("score", 100, hi));
        let p = physical::plan(&q, &flushed_ctx, &opts).unwrap();
        if !matches!(p.access, query::AccessPath::FullScan) {
            continue; // pages already favour the probe; wider, please
        }
        let est = p.estimate.unwrap();
        let Some(probe_cost) = est.probe_cost else { continue };
        // Memtable records needed to flip, from the cost model's own
        // terms: the scan pays the CPU charge for every in-memory record,
        // the probe only for the matching fraction, so the gap closes at
        // mem * (1 - selectivity) / 64 page-equivalents.
        let frac = est.est_selectivity;
        if frac >= 1.0 {
            continue;
        }
        let needed = ((probe_cost - est.scan_cost) * 64.0 / (1.0 - frac)).ceil() as u64 + 64;
        let mut bumped = flushed_ctx.clone();
        bumped.in_memory_records = needed;
        let p = physical::plan(&q, &bumped, &opts).unwrap();
        if matches!(p.access, query::AccessPath::IndexRange { .. }) {
            flipped = true;
            break;
        }
    }
    assert!(flipped, "a large memtable must flip some near-crossover scan to a probe");

    // And the answers agree across every policy with the memtable in play.
    let expected = engine(ExecMode::Compiled, AccessPathChoice::ForceScan, false)
        .execute(&ds, &q)
        .unwrap();
    for choice in [
        AccessPathChoice::Auto,
        AccessPathChoice::ForceIndex,
        AccessPathChoice::ForceScan,
    ] {
        for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
            let rows = engine(mode, choice, true).execute(&ds, &q).unwrap();
            assert_eq!(expected, rows, "{choice:?}/{mode:?} diverged with a memtable");
        }
    }
}

/// The cost model picks the probe at high selectivity (few matches) and the
/// scan at low selectivity (many matches) — the fig. 15 crossover — and
/// `EXPLAIN` shows the estimate it decided on.
#[test]
fn auto_picks_probe_and_scan_at_the_selectivity_extremes() {
    // Many leaves per component (small AMAX mega leaves) so a point lookup
    // is genuinely cheaper than a scan.
    let mut config = DatasetConfig::new("crossover", LayoutKind::Amax)
        .with_memtable_budget(usize::MAX)
        .with_page_size(4 * 1024)
        .with_secondary_index(Path::parse("score"));
    config.amax.record_limit = 64;
    let ds = LsmDataset::new(config);
    for i in 0..600i64 {
        ds.insert(doc!({"id": i, "score": i, "grp": (format!("g{}", i % 7))}))
            .unwrap();
    }
    ds.flush().unwrap();
    ds.compact_fully().unwrap();

    let auto = engine(ExecMode::Compiled, AccessPathChoice::Auto, true);
    let tight = Query::count_star().with_filter(Expr::between("score", 300, 302));
    let text = auto.explain(&ds, &tight).unwrap();
    assert!(text.contains("secondary-index range probe"), "{text}");
    assert!(text.contains("selectivity"), "{text}");
    assert!(text.contains("[auto]"), "{text}");
    assert_eq!(auto.execute(&ds, &tight).unwrap()[0].agg(), &Value::Int(3));

    let wide = Query::count_star().with_filter(Expr::ge("score", 10));
    let text = auto.explain(&ds, &wide).unwrap();
    assert!(text.contains("full scan"), "{text}");
    assert_eq!(auto.execute(&ds, &wide).unwrap()[0].agg(), &Value::Int(590));
}
