//! Differential tests for EXPLAIN ANALYZE: the report's *actual* counters
//! must be exact, not estimates.
//!
//! * pages read in the report == the I/O-stats delta the test measures
//!   around the call, to the page — across engines × layouts × single and
//!   sharded targets;
//! * a query whose zone maps prune every component reads **zero** pages;
//! * `ORDER BY key LIMIT k` reports its early-termination point (the exact
//!   number of records pulled before the pipeline stopped);
//! * the report's result rows are identical to `execute`'s, so analyzing
//!   never changes an answer.

mod support;

use docmodel::{doc, Value};
use lsm::{DatasetConfig, LsmDataset};
use query::{ExecMode, Expr, Query, QueryEngine};
use storage::LayoutKind;

use support::{build_doc, dataset};

/// Two flushed components with disjoint `score` ranges (0..100 and
/// 1000..1100), multi-leaf pages, empty memtable.
fn two_band_dataset(layout: LayoutKind) -> LsmDataset {
    let mut config = DatasetConfig::new("analyze", layout)
        .with_memtable_budget(usize::MAX)
        .with_page_size(4 * 1024);
    config.amax.record_limit = 64;
    let ds = LsmDataset::new(config);
    for i in 0..300i64 {
        ds.insert(doc!({
            "id": i,
            "score": (i % 100),
            "grp": (format!("g{}", i % 7)),
            "text": (format!("padding text for record {i} to fill leaves with bytes"))
        }))
        .unwrap();
    }
    ds.flush().unwrap();
    for i in 300..600i64 {
        ds.insert(doc!({
            "id": i,
            "score": (1_000 + i % 100),
            "grp": (format!("g{}", i % 7)),
            "text": (format!("padding text for record {i} to fill leaves with bytes"))
        }))
        .unwrap();
    }
    ds.flush().unwrap();
    assert_eq!(ds.component_count(), 2);
    ds
}

/// The workhorse assertion: run `explain_analyze` from a cold cache and
/// check (a) the reported page/byte counts equal the I/O-stats delta the
/// test measures around the call, and (b) the rows equal `execute`'s.
fn assert_exact(ds: &LsmDataset, engine: &QueryEngine, query: &Query, label: &str) {
    let expected = engine.execute(ds, query).unwrap();
    ds.cache().clear();
    ds.cache().store().reset_stats();
    let before = ds.io_stats();
    let report = engine.explain_analyze(ds, query).unwrap();
    let after = ds.io_stats();
    assert_eq!(report.rows, expected, "{label}: analyze changed the answer");
    assert_eq!(
        report.pages_read(),
        after.pages_read - before.pages_read,
        "{label}: reported pages must equal the I/O delta exactly"
    );
    assert_eq!(
        report.bytes_read(),
        after.bytes_read - before.bytes_read,
        "{label}: reported bytes must equal the I/O delta exactly"
    );
    // The annotated rendering embeds the plan and the counters.
    let text = report.describe();
    assert!(text.contains("analyze:"), "{label}: {text}");
    assert!(text.starts_with(&report.plan), "{label}: {text}");
}

#[test]
fn analyze_counters_are_exact_across_engines_and_layouts() {
    let queries = [
        Query::select_paths(["score", "grp"])
            .with_filter(Expr::ge("score", 10))
            .order_by_key(),
        Query::select_paths(["score"]).order_by_key().with_limit(5),
        Query::count_star(),
        Query::count_star().with_filter(Expr::between("score", 1_000i64, 1_099i64)),
        Query::select([query::Aggregate::Sum(docmodel::Path::parse("score"))])
            .with_filter(Expr::exists("score"))
            .group_by("grp"),
    ];
    for layout in [LayoutKind::Vb, LayoutKind::Apax, LayoutKind::Amax] {
        let ds = two_band_dataset(layout);
        for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
            let engine = QueryEngine::new(mode);
            for (qi, query) in queries.iter().enumerate() {
                assert_exact(&ds, &engine, query, &format!("{layout:?}/{mode:?}/q{qi}"));
            }
        }
    }
}

#[test]
fn fully_pruned_queries_read_zero_pages() {
    for layout in [LayoutKind::Vb, LayoutKind::Amax] {
        let ds = two_band_dataset(layout);
        let engine = QueryEngine::new(ExecMode::Compiled);

        // Disjoint from both bands: every component is pruned, zero I/O.
        let nowhere = Query::select_paths(["score"])
            .with_filter(Expr::between("score", 5_000i64, 6_000i64))
            .order_by_key();
        ds.cache().clear();
        ds.cache().store().reset_stats();
        let report = engine.explain_analyze(&ds, &nowhere).unwrap();
        assert!(report.rows.is_empty());
        assert_eq!(report.components_pruned(), 2, "{layout:?}");
        assert_eq!(report.components_scanned(), 0, "{layout:?}");
        assert_eq!(
            report.pages_read(),
            0,
            "{layout:?}: pruned components must cost zero pages"
        );
        assert_eq!(ds.io_stats().pages_read, 0, "{layout:?}: nothing read at all");

        // Matching only the second band prunes exactly the first component,
        // and the analyze counters stay exact.
        let second_band = Query::select_paths(["score"])
            .with_filter(Expr::between("score", 1_000i64, 1_099i64))
            .order_by_key();
        let report = engine.explain_analyze(&ds, &second_band).unwrap();
        assert_eq!(report.rows.len(), 300, "{layout:?}");
        assert_eq!(report.components_pruned(), 1, "{layout:?}");
        assert_eq!(report.components_scanned(), 1, "{layout:?}");
        assert!(report.pages_read() > 0, "{layout:?}");
        assert_exact(&ds, &engine, &second_band, &format!("{layout:?}/second-band"));
    }
}

#[test]
fn order_by_key_limit_reports_the_early_termination_point() {
    for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
        let ds = two_band_dataset(LayoutKind::Amax);
        let engine = QueryEngine::new(mode);

        let limited = Query::select_paths(["score"]).order_by_key().with_limit(5);
        let report = engine.explain_analyze(&ds, &limited).unwrap();
        assert_eq!(report.rows.len(), 5, "{mode:?}");
        let stopped_at = report
            .early_termination()
            .expect("a satisfied LIMIT stops before draining 600 records");
        assert_eq!(stopped_at, report.rows_pulled(), "{mode:?}");
        assert!(
            (5..600).contains(&(stopped_at as usize)),
            "{mode:?}: pulled {stopped_at} records for LIMIT 5 over 600"
        );

        // An unlimited scan drains the stream: no early termination.
        let full = Query::select_paths(["score"]).order_by_key();
        let report = engine.explain_analyze(&ds, &full).unwrap();
        assert_eq!(report.rows.len(), 600, "{mode:?}");
        assert_eq!(report.early_termination(), None, "{mode:?}");
        assert_eq!(report.rows_pulled(), 600, "{mode:?}");

        // A key-only COUNT(*) never pulls records through the pipeline; its
        // cost is pure page I/O and the stream reports complete.
        ds.cache().clear();
        ds.cache().store().reset_stats();
        let report = engine.explain_analyze(&ds, &Query::count_star()).unwrap();
        assert_eq!(report.rows[0].agg(), &Value::Int(600), "{mode:?}");
        assert_eq!(report.rows_pulled(), 0, "{mode:?}");
        assert_eq!(report.early_termination(), None, "{mode:?}");
        assert!(report.pages_read() > 0, "{mode:?}");
    }
}

#[test]
fn sharded_analyze_reports_exact_per_shard_deltas() {
    let shards: Vec<LsmDataset> = (0..4)
        .map(|i| dataset(&format!("analyze-shard-{i}"), false))
        .collect();
    let bodies: Vec<support::DocBody> = (0..80)
        .map(|i| (Some(i % 100), (i as usize) % 5, None))
        .collect();
    for (i, body) in bodies.iter().enumerate() {
        shards[i % 4].insert(build_doc(i as i64, body)).unwrap();
    }
    for shard in &shards {
        shard.flush().unwrap();
    }
    let refs: Vec<&LsmDataset> = shards.iter().collect();

    for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
        let engine = QueryEngine::new(mode);
        for query in [
            Query::select_paths(["score", "grp"])
                .with_filter(Expr::ge("score", 20))
                .order_by_key(),
            Query::count_star(),
            Query::select([query::Aggregate::Max(docmodel::Path::parse("score"))])
                .group_by("grp"),
        ] {
            let expected = engine.execute(&refs[..], &query).unwrap();
            for shard in &shards {
                shard.cache().clear();
                shard.cache().store().reset_stats();
            }
            let before: Vec<_> = shards.iter().map(|s| s.io_stats()).collect();
            let report = engine.explain_analyze(&refs[..], &query).unwrap();
            assert_eq!(report.rows, expected, "{mode:?}: {query:?}");
            assert_eq!(report.shards.len(), 4, "{mode:?}");
            // Each shard's entry matches that shard's own store delta —
            // partitions run sequentially under analyze, so per-shard
            // attribution is exact, not approximate.
            for (i, (shard, before)) in shards.iter().zip(&before).enumerate() {
                let delta = shard.io_stats().pages_read - before.pages_read;
                assert_eq!(
                    report.shards[i].pages_read, delta,
                    "{mode:?}: shard {i} pages must match its own I/O delta"
                );
            }
        }
    }
}

/// Analyzing a snapshot target accounts I/O through the component's shared
/// store handle, identically to the dataset path.
#[test]
fn snapshot_targets_account_pages_too() {
    let ds = two_band_dataset(LayoutKind::Amax);
    let engine = QueryEngine::new(ExecMode::Compiled);
    let query = Query::select_paths(["score"])
        .with_filter(Expr::ge("score", 0))
        .order_by_key();

    let snapshot = ds.snapshot();
    ds.cache().clear();
    ds.cache().store().reset_stats();
    let before = ds.io_stats();
    let report = engine.explain_analyze(&snapshot, &query).unwrap();
    let after = ds.io_stats();
    assert_eq!(report.rows.len(), 600);
    assert_eq!(report.pages_read(), after.pages_read - before.pages_read);
    assert!(report.pages_read() > 0, "a cold full scan reads pages");
}
