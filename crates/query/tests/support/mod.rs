//! Shared generators and dataset builders for the query differential
//! suites (`differential.rs` — engine/shard equivalence — and
//! `planner_cost.rs` — access-path and zone-map equivalence).
//!
//! Each integration-test binary uses a subset of these helpers, so the
//! module as a whole allows dead code.
#![allow(dead_code)]

use proptest::prelude::*;

use docmodel::{Path, Value};
use lsm::{DatasetConfig, LsmDataset};
use query::{Aggregate, CmpOp, Expr};
use storage::LayoutKind;

pub fn cmp_op() -> BoxedStrategy<CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
    .boxed()
}

/// A leaf predicate over the generated document shape: `score` (int, may be
/// missing), `grp` (string), `tags` (string array, may be missing).
pub fn leaf_expr() -> BoxedStrategy<Expr> {
    prop_oneof![
        (cmp_op(), 0i64..100).prop_map(|(op, v)| Expr::Cmp {
            op,
            path: Path::parse("score"),
            value: Value::Int(v),
        }),
        (0usize..5).prop_map(|g| Expr::eq("grp", format!("g{g}"))),
        (0usize..4).prop_map(|t| Expr::contains("tags[*]", format!("t{t}"))),
        prop_oneof![
            Just(Expr::exists("score")),
            Just(Expr::exists("tags")),
            Just(Expr::exists("missing")),
        ],
        (cmp_op(), 0i64..4).prop_map(|(op, n)| Expr::length("tags", op, n)),
    ]
    .boxed()
}

/// Boolean combinations of leaves, up to depth 3.
pub fn arb_expr() -> BoxedStrategy<Expr> {
    leaf_expr()
        .prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and([a, b])),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or([a, b])),
                inner.prop_map(Expr::not),
            ]
        })
        .boxed()
}

/// Filters biased toward implying a range on `score` — the shapes that make
/// the planner's access-path choice and the zone maps actually fire. Plain
/// `arb_expr` noise is mixed in so unprunable filters stay covered.
pub fn range_heavy_expr() -> BoxedStrategy<Expr> {
    let range = (0i64..100, 0i64..100).prop_map(|(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        Expr::between("score", lo, hi)
    });
    let one_sided = (cmp_op(), -20i64..120).prop_map(|(op, v)| Expr::Cmp {
        op,
        path: Path::parse("score"),
        value: Value::Int(v),
    });
    // Far-out ranges that zone maps prune whole components (or datasets) on.
    let disjoint = (1_000i64..2_000).prop_map(|lo| Expr::between("score", lo, lo + 50));
    prop_oneof![
        range,
        one_sided,
        disjoint,
        (range_fragment(), arb_expr()).prop_map(|(r, e)| Expr::and([r, e])),
        arb_expr(),
    ]
    .boxed()
}

fn range_fragment() -> BoxedStrategy<Expr> {
    (0i64..100, 0i64..100)
        .prop_map(|(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            Expr::between("score", lo, hi)
        })
        .boxed()
}

pub fn arb_aggregate() -> BoxedStrategy<Aggregate> {
    prop_oneof![
        Just(Aggregate::Count),
        Just(Aggregate::CountNonNull(Path::parse("tags"))),
        Just(Aggregate::Max(Path::parse("score"))),
        Just(Aggregate::Min(Path::parse("score"))),
        Just(Aggregate::Sum(Path::parse("score"))),
        Just(Aggregate::Avg(Path::parse("score"))),
        Just(Aggregate::MaxLength(Path::parse("grp"))),
    ]
    .boxed()
}

/// One generated document body: optional score, group, optional tags.
pub type DocBody = (Option<i64>, usize, Option<Vec<usize>>);

pub fn arb_doc_body() -> BoxedStrategy<DocBody> {
    (
        prop_oneof![Just(None), (0i64..100).prop_map(Some)],
        0usize..5,
        // Tags are either missing or non-empty: an *empty* array only
        // survives columnar reassembly when some other record in the same
        // component materialised the `tags[*]` column, so `EXISTS(tags)` on
        // empty arrays is schema-dependent — a storage-layer property, not
        // an engine-equivalence one (see the shredder docs).
        prop_oneof![
            Just(None),
            prop::collection::vec(0usize..4, 1..3).prop_map(Some)
        ],
    )
        .boxed()
}

pub fn build_doc(id: i64, body: &DocBody) -> Value {
    let (score, grp, tags) = body;
    let mut doc = Value::empty_object();
    doc.set_field("id", Value::Int(id));
    doc.set_field("grp", Value::from(format!("g{grp}")));
    if let Some(s) = score {
        doc.set_field("score", Value::Int(*s));
    }
    if let Some(tags) = tags {
        doc.set_field(
            "tags",
            Value::Array(tags.iter().map(|t| Value::from(format!("t{t}"))).collect()),
        );
    }
    doc
}

/// The suites' standard dataset: AMAX, small pages, optionally a secondary
/// index on `score`.
pub fn dataset(name: &str, indexed: bool) -> LsmDataset {
    let mut config = DatasetConfig::new(name, LayoutKind::Amax)
        .with_memtable_budget(64 * 1024)
        .with_page_size(8 * 1024);
    if indexed {
        config = config.with_secondary_index(Path::parse("score"));
    }
    LsmDataset::new(config)
}

/// A dataset indexed on an arbitrary (possibly multi-valued) path, with a
/// memtable large enough that flushes only happen on demand.
pub fn dataset_indexed_on(name: &str, path: &str) -> LsmDataset {
    LsmDataset::new(
        DatasetConfig::new(name, LayoutKind::Amax)
            .with_memtable_budget(usize::MAX)
            .with_page_size(8 * 1024)
            .with_secondary_index(Path::parse(path)),
    )
}
