//! Differential property test for the compositional query API.
//!
//! Random documents × random `Expr` filters × random multi-aggregate select
//! lists, executed four ways — interpreted, compiled, sharded over four
//! disjoint partitions, and against an indexed dataset where the planner may
//! route through the secondary index — must all return identical rows. This
//! is the safety net under the planner: whatever access path it picks, the
//! answer may not change.

use proptest::prelude::*;

use docmodel::{Path, Value};
use lsm::{DatasetConfig, LsmDataset};
use query::{Aggregate, CmpOp, ExecMode, Expr, PlanContext, Query, QueryEngine};
use storage::LayoutKind;

fn cmp_op() -> BoxedStrategy<CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
    .boxed()
}

/// A leaf predicate over the generated document shape: `score` (int, may be
/// missing), `grp` (string), `tags` (string array, may be missing).
fn leaf_expr() -> BoxedStrategy<Expr> {
    prop_oneof![
        (cmp_op(), 0i64..100).prop_map(|(op, v)| Expr::Cmp {
            op,
            path: Path::parse("score"),
            value: Value::Int(v),
        }),
        (0usize..5).prop_map(|g| Expr::eq("grp", format!("g{g}"))),
        (0usize..4).prop_map(|t| Expr::contains("tags[*]", format!("t{t}"))),
        prop_oneof![
            Just(Expr::exists("score")),
            Just(Expr::exists("tags")),
            Just(Expr::exists("missing")),
        ],
        (cmp_op(), 0i64..4).prop_map(|(op, n)| Expr::length("tags", op, n)),
    ]
    .boxed()
}

/// Boolean combinations of leaves, up to depth 3.
fn arb_expr() -> BoxedStrategy<Expr> {
    leaf_expr().prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and([a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or([a, b])),
            inner.prop_map(Expr::not),
        ]
    })
}

fn arb_aggregate() -> BoxedStrategy<Aggregate> {
    prop_oneof![
        Just(Aggregate::Count),
        Just(Aggregate::CountNonNull(Path::parse("tags"))),
        Just(Aggregate::Max(Path::parse("score"))),
        Just(Aggregate::Min(Path::parse("score"))),
        Just(Aggregate::Sum(Path::parse("score"))),
        Just(Aggregate::Avg(Path::parse("score"))),
        Just(Aggregate::MaxLength(Path::parse("grp"))),
    ]
    .boxed()
}

/// One generated document body: optional score, group, optional tags.
fn arb_doc_body() -> BoxedStrategy<(Option<i64>, usize, Option<Vec<usize>>)> {
    (
        prop_oneof![Just(None), (0i64..100).prop_map(Some)],
        0usize..5,
        // Tags are either missing or non-empty: an *empty* array only
        // survives columnar reassembly when some other record in the same
        // component materialised the `tags[*]` column, so `EXISTS(tags)` on
        // empty arrays is schema-dependent — a storage-layer property, not
        // an engine-equivalence one (see the shredder docs).
        prop_oneof![
            Just(None),
            prop::collection::vec(0usize..4, 1..3).prop_map(Some)
        ],
    )
        .boxed()
}

fn build_doc(id: i64, body: &(Option<i64>, usize, Option<Vec<usize>>)) -> Value {
    let (score, grp, tags) = body;
    let mut doc = Value::empty_object();
    doc.set_field("id", Value::Int(id));
    doc.set_field("grp", Value::from(format!("g{grp}")));
    if let Some(s) = score {
        doc.set_field("score", Value::Int(*s));
    }
    if let Some(tags) = tags {
        doc.set_field(
            "tags",
            Value::Array(tags.iter().map(|t| Value::from(format!("t{t}"))).collect()),
        );
    }
    doc
}

fn dataset(name: &str, indexed: bool) -> LsmDataset {
    let mut config = DatasetConfig::new(name, LayoutKind::Amax)
        .with_memtable_budget(64 * 1024)
        .with_page_size(8 * 1024);
    if indexed {
        config = config.with_secondary_index(Path::parse("score"));
    }
    LsmDataset::new(config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_execution_paths_agree(
        bodies in prop::collection::vec(arb_doc_body(), 20..60),
        filter in arb_expr(),
        aggs in prop::collection::vec(arb_aggregate(), 1..4),
        group in prop_oneof![Just(false), Just(true)],
        limit in prop_oneof![Just(None), (1usize..6).prop_map(Some)],
    ) {
        let reference = dataset("reference", false);
        let indexed = dataset("indexed", true);
        let shards: Vec<LsmDataset> =
            (0..4).map(|i| dataset(&format!("shard-{i}"), false)).collect();
        for (i, body) in bodies.iter().enumerate() {
            let doc = build_doc(i as i64, body);
            reference.insert(doc.clone()).unwrap();
            indexed.insert(doc.clone()).unwrap();
            // Any disjoint partition works for the merge; round-robin is the
            // simplest.
            shards[i % 4].insert(doc).unwrap();
        }
        reference.flush().unwrap();
        indexed.flush().unwrap();
        for shard in &shards {
            shard.flush().unwrap();
        }

        let mut query = Query::select(aggs).with_filter(filter);
        if group {
            query = query.group_by("grp");
        }
        if let Some(k) = limit {
            query = query.top_k(k);
        }

        let compiled = QueryEngine::new(ExecMode::Compiled)
            .execute(&reference, &query)
            .unwrap();
        let interpreted = QueryEngine::new(ExecMode::Interpreted)
            .execute(&reference, &query)
            .unwrap();
        prop_assert_eq!(&compiled, &interpreted, "interpreted vs compiled: {:?}", query);

        let refs: Vec<&LsmDataset> = shards.iter().collect();
        for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
            let sharded = QueryEngine::new(mode).execute(&refs[..], &query).unwrap();
            prop_assert_eq!(&compiled, &sharded, "sharded(4) vs single ({:?}): {:?}", mode, query);
        }

        // The indexed dataset may plan a secondary-index probe (whenever the
        // filter implies a range on `score`) — the answer must not change.
        let via_index = QueryEngine::new(ExecMode::Compiled)
            .execute(&indexed, &query)
            .unwrap();
        prop_assert_eq!(&compiled, &via_index, "index-probe vs scan: {:?}", query);

        // Planning is total: explain never fails on a valid query.
        let plan = query.explain(&PlanContext::for_dataset(&indexed)).unwrap();
        prop_assert!(plan.contains("access"), "{}", plan);
    }
}
