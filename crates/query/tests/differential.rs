//! Differential property test for the compositional query API.
//!
//! Random documents × random `Expr` filters × random multi-aggregate select
//! lists, executed four ways — interpreted, compiled, sharded over four
//! disjoint partitions, and against an indexed dataset where the planner may
//! route through the secondary index — must all return identical rows. This
//! is the safety net under the planner: whatever access path it picks, the
//! answer may not change. (Its sibling `planner_cost.rs` attacks the same
//! invariant from the access-path side: ForceIndex vs ForceScan vs Auto and
//! zone-map pruning on vs off.)

mod support;

use proptest::prelude::*;

use lsm::LsmDataset;
use query::{ExecMode, PlanContext, Query, QueryEngine};

use support::{arb_aggregate, arb_doc_body, arb_expr, build_doc, dataset};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_execution_paths_agree(
        bodies in prop::collection::vec(arb_doc_body(), 20..60),
        filter in arb_expr(),
        aggs in prop::collection::vec(arb_aggregate(), 1..4),
        group in prop_oneof![Just(false), Just(true)],
        limit in prop_oneof![Just(None), (1usize..6).prop_map(Some)],
    ) {
        let reference = dataset("reference", false);
        let indexed = dataset("indexed", true);
        let shards: Vec<LsmDataset> =
            (0..4).map(|i| dataset(&format!("shard-{i}"), false)).collect();
        for (i, body) in bodies.iter().enumerate() {
            let doc = build_doc(i as i64, body);
            reference.insert(doc.clone()).unwrap();
            indexed.insert(doc.clone()).unwrap();
            // Any disjoint partition works for the merge; round-robin is the
            // simplest.
            shards[i % 4].insert(doc).unwrap();
        }
        reference.flush().unwrap();
        indexed.flush().unwrap();
        for shard in &shards {
            shard.flush().unwrap();
        }

        let mut query = Query::select(aggs).with_filter(filter);
        if group {
            query = query.group_by("grp");
        }
        if let Some(k) = limit {
            query = query.top_k(k);
        }

        let compiled = QueryEngine::new(ExecMode::Compiled)
            .execute(&reference, &query)
            .unwrap();
        let interpreted = QueryEngine::new(ExecMode::Interpreted)
            .execute(&reference, &query)
            .unwrap();
        prop_assert_eq!(&compiled, &interpreted, "interpreted vs compiled: {:?}", query);

        let refs: Vec<&LsmDataset> = shards.iter().collect();
        for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
            let sharded = QueryEngine::new(mode).execute(&refs[..], &query).unwrap();
            prop_assert_eq!(&compiled, &sharded, "sharded(4) vs single ({:?}): {:?}", mode, query);
        }

        // The indexed dataset may plan a secondary-index probe (whenever the
        // filter implies a range on `score` and the cost model favours it) —
        // the answer must not change.
        let via_index = QueryEngine::new(ExecMode::Compiled)
            .execute(&indexed, &query)
            .unwrap();
        prop_assert_eq!(&compiled, &via_index, "index-probe vs scan: {:?}", query);

        // Planning is total: explain never fails on a valid query.
        let plan = query.explain(&PlanContext::for_dataset(&indexed)).unwrap();
        prop_assert!(plan.contains("access"), "{}", plan);
    }
}
